"""Setuptools shim.

Kept so that ``pip install -e .`` works on environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (e.g. offline images without
the ``wheel`` package).  The test/benchmark suites do not require an install:
they run with ``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "rls-prof=repro.profiler.cli:main",
            "rls-experiment=repro.experiments.cli:main",
            "repro-trace=repro.tracedb.cli:main",
        ],
    },
)
