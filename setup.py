"""Setuptools shim.

Kept so that ``pip install -e .`` works on environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (e.g. offline images without
the ``wheel`` package).  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
