"""Calibration and overhead correction walk-through (Section 3.4, Appendix C).

Profilers inflate CPU time.  This example calibrates RL-Scope's book-keeping
costs for one workload (delta calibration + difference-of-average calibration
for CUPTI), then shows that the corrected training time lands within the
paper's +/-16 % of an uninstrumented run, while the uncorrected time can be
substantially inflated.

Run with::

    python examples/overhead_correction.py
"""

from __future__ import annotations

from repro.experiments.common import WorkloadSpec, calibrate_workload, run_workload
from repro.experiments.fig11 import validate_workload
from repro.profiler import ProfilerConfig

SPEC = WorkloadSpec(algo="SAC", simulator="Walker2D", total_timesteps=120)


def main() -> None:
    print(f"workload: {SPEC.label} ({SPEC.total_timesteps} steps)\n")

    print("step 1: calibrate book-keeping durations (6 runs)")
    calibration = calibrate_workload(SPEC)
    print(f"  Python<->C interception : {calibration.pyprof_us:6.2f} us / event")
    print(f"  CUDA API interception   : {calibration.cuda_interception_us:6.2f} us / call")
    print(f"  operation annotation    : {calibration.annotation_us:6.2f} us / annotation")
    for api, value in sorted(calibration.cupti_per_api_us.items()):
        print(f"  CUPTI inflation [{api:22s}]: {value:5.2f} us / call")

    print("\nstep 2: validate correction against an uninstrumented run")
    validation = validate_workload(SPEC, calibration=calibration)
    print(f"  uninstrumented : {validation.uninstrumented_sec:8.4f} s")
    print(f"  instrumented   : {validation.instrumented_sec:8.4f} s "
          f"(+{validation.uncorrected_inflation_percent:.1f}% profiling inflation)")
    print(f"  corrected      : {validation.corrected_sec:8.4f} s "
          f"(bias {validation.bias_percent:+.2f}%, paper bound: +/-16%)")

    print("\nstep 3: corrected per-operation breakdown")
    run = run_workload(SPEC, profiler_config=ProfilerConfig.full(), calibration=calibration)
    for operation, categories in sorted(run.analysis.category_breakdown_sec().items()):
        row = ", ".join(f"{category}: {seconds:.4f}s" for category, seconds in sorted(categories.items()))
        print(f"  {operation:16s} {row}")


if __name__ == "__main__":
    main()
