"""Minigo scale-up workload: why "100% GPU utilization" can be meaningless (Section 4.3).

Runs one round of Minigo training — 16 parallel self-play workers feeding a
shared GPU, followed by SGD updates and candidate evaluation — and contrasts
the coarse-grained nvidia-smi utilization metric with RL-Scope's true
GPU-kernel time per worker (Figure 8, finding F.11).

Run with::

    python examples/minigo_scaleup.py [num_workers] [scheduler] [num_replicas]

where ``scheduler`` is ``sequential`` (default) or ``event`` — the latter
interleaves the self-play workers at MCTS-wave granularity so one shared
engine call batches leaf evaluations across workers, like a real inference
server, and prints the resulting batching statistics.  ``num_replicas``
shards the inference service across that many model replicas (each beyond
the first modelling an additional inference GPU, routed round-robin).
"""

from __future__ import annotations

import sys

from repro.experiments import run_fig8
from repro.experiments.findings import check_f11_misleading_gpu_utilization
from repro.minigo import MinigoConfig


def main(num_workers: int = 16, scheduler: str = "sequential", num_replicas: int = 1) -> None:
    if num_replicas > 1 and scheduler != "event":
        raise SystemExit("num_replicas > 1 requires the event scheduler: "
                         "python examples/minigo_scaleup.py [workers] event [replicas]")
    config = MinigoConfig(
        num_workers=num_workers,
        board_size=5,
        num_simulations=6,
        games_per_worker=1,
        max_moves=20,
        sgd_steps=16,
        evaluation_games=2,
        hidden=(64, 64),
    )
    result = run_fig8(config, scheduler=scheduler if scheduler != "sequential" else None,
                      leaf_batch=8 if scheduler == "event" else None,
                      num_replicas=num_replicas if num_replicas > 1 else None)
    print(result.report())
    print()
    check = check_f11_misleading_gpu_utilization(result)
    print(check)
    busiest = max(result.selfplay_summaries(), key=lambda s: s.total_time_us)
    print(f"\nbusiest self-play worker: {busiest.worker} — "
          f"{busiest.total_time_sec:.2f}s total, only {busiest.gpu_time_sec:.3f}s executing GPU kernels, "
          f"yet nvidia-smi reports {result.reported_utilization_pct():.0f}% GPU utilization.")
    stats = result.round_result.selfplay_inference_stats
    if stats is not None and stats.cross_worker_batches:
        print(f"event-driven scheduler: {stats.engine_calls} batched engine calls served "
              f"{stats.rows} leaf evaluations ({stats.mean_batch_rows:.1f} rows/call, "
              f"{100.0 * stats.cross_worker_share:.0f}% of batches cross-worker, "
              f"mean queueing delay {stats.mean_queue_delay_us:.0f}us).")
    replica_stats = result.round_result.selfplay_replica_stats
    if replica_stats is not None and len(replica_stats) > 1:
        shares = ", ".join(f"replica_{i}: {rs.engine_calls} calls / {rs.rows} rows"
                           for i, rs in enumerate(replica_stats))
        print(f"sharded inference across {len(replica_stats)} replicas — {shares}; "
              f"weight broadcast after the round took "
              f"{result.round_result.weight_broadcast_us:.0f}us of virtual time.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16,
         sys.argv[2] if len(sys.argv) > 2 else "sequential",
         int(sys.argv[3]) if len(sys.argv) > 3 else 1)
