"""Quickstart: profile a DQN agent learning Atari Pong with RL-Scope.

This mirrors the paper's running example (Section 2.1): a DQN training loop
whose time is split between inference, simulation and backpropagation.  The
script trains for a few hundred steps under the profiler, then prints the
cross-stack, per-operation breakdown and the language-transition counts.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.profiler import Profiler, ProfilerConfig, analyze, report
from repro.rl import default_config, default_framework, make_algorithm
from repro.sim import make
from repro.system import System

TOTAL_STEPS = 400


def main() -> None:
    # 1. Build the simulated stack: virtual clock + GPU + CUDA runtime.
    system = System.create(seed=0)

    # 2. Build the workload: Pong simulator, stable-baselines-style framework, DQN.
    env = make("Pong", system, seed=0)
    framework = default_framework(system)

    # 3. Attach RL-Scope: transparent interception of the backend, the
    #    simulator and the CUDA runtime, plus operation annotations provided
    #    by the algorithm's training loop.
    profiler = Profiler(system, ProfilerConfig.full())
    profiler.attach(engine=framework.engine, envs=[env])

    agent = make_algorithm("DQN", env, framework,
                           config=default_config("DQN", warmup_steps=32, buffer_size=5_000),
                           profiler=profiler, seed=0)
    result = agent.train(TOTAL_STEPS)

    # 4. Offline analysis: overlap computation scoped to the annotations.
    trace = profiler.finalize()
    analysis = analyze(trace, iterations=TOTAL_STEPS)

    print(f"trained DQN on Pong for {TOTAL_STEPS} steps "
          f"({result.gradient_updates} gradient updates, {result.episodes} episodes)")
    print(f"total training time: {analysis.total_time_sec():.3f} virtual seconds, "
          f"GPU-bound fraction: {100 * analysis.gpu_fraction():.1f}%\n")

    analyses = {"DQN / Pong": analysis}
    print(report.total_time_table(analyses))
    print()
    print(report.breakdown_table(analyses))
    print()
    print(report.transitions_table(analyses, TOTAL_STEPS))


if __name__ == "__main__":
    main()
