"""Framework comparison: which RL framework should you pick? (paper Section 4.1)

Trains the same TD3 agent on Walker2D with identical hyperparameters under
the four framework configurations of Table 1 (stable-baselines Graph,
tf-agents Autograph, tf-agents Eager, ReAgent PyTorch Eager) and reports how
the training-time breakdown and the Python->Backend transition counts differ
— the data behind Figures 4a and 4c and findings F.1, F.2, F.3.

Run with::

    python examples/framework_comparison.py [steps]
"""

from __future__ import annotations

import sys

from repro.experiments import run_fig4
from repro.experiments.findings import (
    check_f1_eager_slower,
    check_f2_autograph_reduces_transitions,
    check_f3_pytorch_vs_tf_eager,
    check_f7_low_gpu_usage,
)


def main(timesteps: int = 150) -> None:
    result = run_fig4("TD3", timesteps=timesteps)
    print(result.report())
    print()
    print("How the paper's framework findings look on this run:")
    for check in (check_f1_eager_slower(result),
                  check_f2_autograph_reduces_transitions(result),
                  check_f3_pytorch_vs_tf_eager(result),
                  check_f7_low_gpu_usage(result)):
        print(" ", check)

    totals = result.total_times_sec()
    fastest = min(totals, key=totals.get)
    print(f"\nfastest configuration for TD3/Walker2D: {fastest} ({totals[fastest]:.2f} virtual s)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
