"""Algorithm and simulator survey: where does RL training time go? (Sections 4.2, B.1)

Part 1 fixes the simulator (Walker2D) and sweeps the RL algorithm
(DDPG, SAC, A2C, PPO2), showing that on-policy algorithms are far more
simulation-bound than off-policy ones (finding F.10) and that everything is
~90 % CPU-bound (finding F.9).

Part 2 fixes the algorithm (PPO) and sweeps the simulator from low complexity
(Pong) to high complexity (AirLearning), showing that simulation is always a
large bottleneck (finding F.12).

Run with::

    python examples/algorithm_and_simulator_survey.py [steps]
"""

from __future__ import annotations

import sys

from repro.experiments import run_fig5, run_fig7
from repro.experiments.findings import (
    check_f9_cpu_bound_across_algorithms,
    check_f10_on_policy_simulation_bound,
    check_f12_simulation_always_large,
)


def main(timesteps: int = 150) -> None:
    print("=" * 72)
    print("Part 1: algorithm survey (Figure 5)")
    print("=" * 72)
    fig5 = run_fig5(timesteps=timesteps)
    print(fig5.report())
    for check in (check_f9_cpu_bound_across_algorithms(fig5),
                  check_f10_on_policy_simulation_bound(fig5)):
        print(" ", check)

    print()
    print("=" * 72)
    print("Part 2: simulator survey (Figure 7)")
    print("=" * 72)
    fig7 = run_fig7(timesteps=timesteps)
    print(fig7.report())
    print(" ", check_f12_simulation_always_large(fig7))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
