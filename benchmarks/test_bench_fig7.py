"""Benchmark: Figure 7 (Appendix B.1) — simulator survey with PPO."""

from conftest import BENCH_TIMESTEPS, save_report
from repro.experiments import findings, run_fig7


def test_bench_fig7_simulator_survey(benchmark):
    result = benchmark.pedantic(lambda: run_fig7(timesteps=BENCH_TIMESTEPS), rounds=1, iterations=1)
    print()
    print(result.report())
    save_report("fig7_simulator_survey", result.report())
    check = findings.check_f12_simulation_always_large(result)
    print(check)
    assert check.holds, str(check)
    # The high-complexity simulator dwarfs everything else, as in the paper.
    totals = result.total_times_sec()
    assert totals["AirLearning"] > 10 * totals["Walker2D"]
    assert result.simulation_fraction("AirLearning") > 0.9
    # GPU time is a few percent at most on every simulator.
    assert all(result.gpu_fraction(sim) < 0.2 for sim in result.runs)
