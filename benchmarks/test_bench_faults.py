"""Benchmark: the fault-injection machinery's recovery floors, pinned.

ISSUE 10's fault tolerance spans three layers; this benchmark pins the
serving-tier guarantees on pinned workloads (the parallel-tier byte-identity
bars live in ``tests/test_faults.py`` where respawning real processes is
cheap relative to the suite):

* **Empty-plan identity** — a server built with ``fault_plan=None`` and one
  built with an empty :class:`~repro.faults.plan.FaultPlan` must produce
  byte-identical decision logs and SLO reports: fault support must cost
  nothing when unused.
* **1-of-4 replica crash** — a 12ms crash of one replica in four under
  1.2x fleet overload must lose **zero requests** (every request reaches a
  terminal outcome), re-dispatch the dead replica's planned rows onto
  survivors, report availability exactly 0.9, and keep degraded-mode
  goodput **>= the no-degrade control**.
* **1-of-2 replica crash** — halving the fleet is where degraded admission
  pays: the degrade arm must beat the control on goodput **and** deadline
  misses (the control queues a full window onto the survivor and serves it
  late).
* **Replay** — a seeded plan's run, fault lines included, must replay
  line-identically under one seed.

Outputs:

* ``results/fault_sweep.txt`` — the rendered fault-sweep table;
* a ``faults`` block merged into ``BENCH_wallclock.json`` (the perf
  trajectory guard in CI fails when the block is missing or stale).

Set ``FAULTS_QUICK=1`` (the CI smoke step does) for smaller workloads with
the same assertions.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import numpy as np

from conftest import save_report
from repro.experiments import DEFAULT_FAULT_KWARGS, run_fault_sweep
from repro.faults import (
    FaultEvent,
    FaultPlan,
    REPLICA_CRASH,
    REPLICA_RECOVER,
)
from repro.minigo import PolicyValueNet
from repro.serving import (
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    build_slo_report,
    estimate_capacity_rows_per_sec,
    run_serving,
)

QUICK = os.environ.get("FAULTS_QUICK") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent
SEED = 0

BOARD = DEFAULT_FAULT_KWARGS["board_size"]
FEATURE_DIM = 3 * BOARD * BOARD
HORIZON_US = 15_000.0 if QUICK else DEFAULT_FAULT_KWARGS["horizon_us"]
CLIENTS = 64 if QUICK else DEFAULT_FAULT_KWARGS["num_clients"]
LOAD_MULTIPLIER = DEFAULT_FAULT_KWARGS["load_multiplier"]

#: One replica crashes a quarter into the trace and recovers at 65% — a
#: 0.4-horizon outage, so fleet availability is exactly 1 - 0.4/replicas.
CRASH_AT = 0.25 * HORIZON_US
RECOVER_AT = 0.65 * HORIZON_US


def _commit_hash() -> str:
    try:
        return subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def _make_network():
    return PolicyValueNet(BOARD, hidden=DEFAULT_FAULT_KWARGS["hidden"],
                          rng=np.random.default_rng(SEED))


def _single_crash_plan() -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent(CRASH_AT, REPLICA_CRASH, 1),
        FaultEvent(RECOVER_AT, REPLICA_RECOVER, 1),
    ))


def _fault_run(plan, *, num_replicas: int, degraded: bool, keep_log: bool = False,
               capacity: float):
    """One 1.2x-overload run; same seed => identical offered load."""
    server = InferenceServer(
        _make_network(),
        max_batch=DEFAULT_FAULT_KWARGS["max_batch"],
        queue_capacity=DEFAULT_FAULT_KWARGS["queue_capacity"],
        overload="shed-newest",
        rate_limit_per_sec=None,
        flush_policy="timeout",
        flush_timeout_us=DEFAULT_FAULT_KWARGS["flush_timeout_us"],
        num_replicas=num_replicas,
        seed=SEED,
        keep_decision_log=keep_log,
        fault_plan=plan,
        degraded_admission=degraded)
    loadgen = LoadGenerator(
        PoissonProcess(LOAD_MULTIPLIER * capacity * num_replicas), CLIENTS,
        feature_dim=FEATURE_DIM,
        request_deadline_us=DEFAULT_FAULT_KWARGS["request_deadline_us"],
        seed=SEED)
    result = run_serving(server, loadgen, HORIZON_US)
    return server, build_slo_report(result)


def _lost(slo) -> int:
    """Requests that never reached a terminal outcome (must be zero)."""
    return slo.requests - slo.completed - slo.gave_up


def test_bench_faults(benchmark):
    capacity = estimate_capacity_rows_per_sec(
        _make_network, feature_dim=FEATURE_DIM,
        max_batch=DEFAULT_FAULT_KWARGS["max_batch"], seed=SEED)

    # --- empty-plan identity: fault support must cost nothing when unused.
    server_none, slo_none = _fault_run(None, num_replicas=4, degraded=True,
                                       keep_log=True, capacity=capacity)
    server_empty, slo_empty = _fault_run(FaultPlan(), num_replicas=4,
                                         degraded=True, keep_log=True,
                                         capacity=capacity)
    assert server_none.decision_log_lines() == server_empty.decision_log_lines(), \
        "an empty FaultPlan must leave the decision log byte-identical"
    assert slo_none.format() == slo_empty.format(), \
        "an empty FaultPlan must leave the SLO report byte-identical"
    assert slo_none.availability == 1.0 and slo_none.replica_crashes == 0

    # --- 1-of-4 crash: zero lost requests, degrade >= no-degrade control.
    plan = _single_crash_plan()
    _, slo_degrade = benchmark.pedantic(
        lambda: _fault_run(plan, num_replicas=4, degraded=True,
                           capacity=capacity),
        rounds=1, iterations=1)
    _, slo_full = _fault_run(plan, num_replicas=4, degraded=False,
                             capacity=capacity)
    for label, slo in (("degrade", slo_degrade), ("full", slo_full)):
        assert _lost(slo) == 0, (
            f"{label}: {_lost(slo)} requests vanished without a terminal "
            f"outcome under a 1-of-4 replica crash")
        assert slo.replica_crashes == 1 and slo.replica_recoveries == 1
        assert slo.redispatched_rows > 0, \
            f"{label}: the dead replica's planned rows must re-dispatch"
        assert abs(slo.availability - 0.9) < 1e-9, slo.availability
    assert slo_degrade.requests == slo_full.requests, \
        "both arms must face identical offered load (same seed)"
    assert slo_degrade.goodput_per_sec >= slo_full.goodput_per_sec, (
        f"degraded-mode admission must not lose goodput vs the no-degrade "
        f"control under a 1-of-4 crash: degrade {slo_degrade.goodput_per_sec:.1f} "
        f"vs full {slo_full.goodput_per_sec:.1f} req/s")
    assert slo_degrade.degraded_entries == 1 and slo_full.degraded_entries == 0

    # --- 1-of-2 crash: halving the fleet is where degraded admission pays.
    _, slo2_degrade = _fault_run(plan, num_replicas=2, degraded=True,
                                 capacity=capacity)
    _, slo2_full = _fault_run(plan, num_replicas=2, degraded=False,
                              capacity=capacity)
    assert _lost(slo2_degrade) == 0 and _lost(slo2_full) == 0
    assert slo2_degrade.goodput_per_sec > slo2_full.goodput_per_sec, (
        f"under a 1-of-2 crash the degrade arm must beat the control: "
        f"degrade {slo2_degrade.goodput_per_sec:.1f} vs "
        f"full {slo2_full.goodput_per_sec:.1f} req/s")
    assert slo2_degrade.timeout_fraction < slo2_full.timeout_fraction, (
        f"degraded admission must trade sheds for deadline misses: "
        f"degrade late {slo2_degrade.timeout_fraction:.4f} vs "
        f"full {slo2_full.timeout_fraction:.4f}")

    # --- replay: the fault-annotated decision log is a pure function of
    # (plan, workload, seed).
    server_a, _ = _fault_run(plan, num_replicas=4, degraded=True,
                             keep_log=True, capacity=capacity)
    server_b, _ = _fault_run(plan, num_replicas=4, degraded=True,
                             keep_log=True, capacity=capacity)
    log_a, log_b = server_a.decision_log_lines(), server_b.decision_log_lines()
    assert log_a == log_b, \
        "the fault-annotated decision log must replay exactly under one seed"
    for marker in (REPLICA_CRASH, REPLICA_RECOVER, "degrade", "restore"):
        assert any(f" {marker} " in line or line.split(" ", 2)[1] == marker
                   for line in log_a), f"expected a {marker!r} line in the log"

    # --- the sweep table (the CLI artifact, regenerated here too).
    sweep = run_fault_sweep(seed=SEED, **(
        dict(crash_rates=(0.0, 150.0), replica_counts=(4,), num_clients=64,
             horizon_us=15_000.0) if QUICK else {}))
    for rate in ({0.0, 150.0} if QUICK else {0.0, 50.0, 150.0}):
        for replicas in ((4,) if QUICK else (2, 4)):
            a = sweep.point(rate, "degrade", replicas).slo
            b = sweep.point(rate, "full", replicas).slo
            if rate == 0.0:
                # lines()[0] carries the per-arm label; the rest is the run.
                assert a.lines()[1:] == b.lines()[1:], \
                    "fault-free sweep arms must be bit-identical"

    # --- perf-trajectory entry: merge a faults block into the wall-clock
    # payload (the wallclock bench preserves it when it rewrites the file).
    path = REPO_ROOT / "BENCH_wallclock.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {"benchmark": "wallclock", "commit": _commit_hash(),
                   "metrics": {}}
    payload["faults"] = {
        "commit": _commit_hash(),
        "quick": QUICK,
        "scenario": {
            "replicas": 4,
            "clients": CLIENTS,
            "load_multiplier": LOAD_MULTIPLIER,
            "horizon_us": HORIZON_US,
            "crash_at_us": CRASH_AT,
            "recover_at_us": RECOVER_AT,
            "queue_capacity": DEFAULT_FAULT_KWARGS["queue_capacity"],
            "request_deadline_us": DEFAULT_FAULT_KWARGS["request_deadline_us"],
        },
        "crash_1_of_4": {
            "lost_requests": _lost(slo_degrade),
            "redispatched_rows": slo_degrade.redispatched_rows,
            "availability": slo_degrade.availability,
            "goodput_degrade_per_sec": slo_degrade.goodput_per_sec,
            "goodput_full_per_sec": slo_full.goodput_per_sec,
        },
        "crash_1_of_2": {
            "goodput_degrade_per_sec": slo2_degrade.goodput_per_sec,
            "goodput_full_per_sec": slo2_full.goodput_per_sec,
            "late_fraction_degrade": slo2_degrade.timeout_fraction,
            "late_fraction_full": slo2_full.timeout_fraction,
        },
        "empty_plan_identical": True,
        "replay_identical": True,
        "decision_log_lines": len(log_a),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report = sweep.report()
    print()
    print(report)
    print()
    print(f"1-of-4 crash: goodput degrade {slo_degrade.goodput_per_sec:.1f} vs "
          f"full {slo_full.goodput_per_sec:.1f} req/s, "
          f"{slo_degrade.redispatched_rows} rows re-dispatched, "
          f"availability {slo_degrade.availability:.4f}; "
          f"1-of-2 crash: degrade {slo2_degrade.goodput_per_sec:.1f} vs "
          f"full {slo2_full.goodput_per_sec:.1f} req/s "
          f"(late {slo2_degrade.timeout_fraction:.4f} vs "
          f"{slo2_full.timeout_fraction:.4f})")
    save_report("fault_sweep", report)
