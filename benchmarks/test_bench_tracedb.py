"""Benchmark: TraceDB streaming store vs dump-at-end, map-reduce vs single-pass.

Regenerates the scaling argument behind the TraceDB subsystem on a
16-worker Minigo trace (the paper's Figure 8 workload shape):

* write volume — dump-at-end uncompressed JSON vs streaming
  gzip-compressed JSONL shards;
* peak buffered records — whole trace in memory vs at most one chunk;
* overlap wall time — single-pass over the merged trace vs the
  shard-parallel map-reduce pass (which must stay byte-identical).
"""

import json
import time

from conftest import save_report
from repro.minigo.workers import SelfPlayPool
from repro.profiler import multi_process_summary
from repro.profiler.overlap import compute_overlap
from repro.tracedb import TraceDB, parallel_overlap

#: 16 parallel self-play workers, as in the paper, at reproduction scale.
POOL_KWARGS = dict(
    board_size=5,
    num_simulations=4,
    games_per_worker=1,
    max_moves=10,
    hidden=(32, 32),
    seed=0,
)
NUM_WORKERS = 16
CHUNK_EVENTS = 2_000


def _run_pools(tmp_path):
    """One in-memory pool run and one identically-seeded streaming run."""
    in_memory = SelfPlayPool(NUM_WORKERS, **POOL_KWARGS)
    in_memory.run()
    streaming = SelfPlayPool(NUM_WORKERS, trace_dir=str(tmp_path / "store"),
                             chunk_events=CHUNK_EVENTS, **POOL_KWARGS)
    streaming.run()
    return in_memory, streaming


def test_bench_tracedb_streaming_and_mapreduce(benchmark, tmp_path):
    in_memory, streaming = benchmark.pedantic(lambda: _run_pools(tmp_path),
                                              rounds=1, iterations=1)

    # --- write volume: dump-at-end uncompressed JSON vs compressed shards.
    json_dir = tmp_path / "json_dump"
    json_dir.mkdir()
    json_bytes = 0
    peak_dump_records = 0
    for worker, trace in in_memory.traces().items():
        path = json_dir / f"{worker}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace.to_dict(), handle)
        json_bytes += path.stat().st_size
        peak_dump_records = max(peak_dump_records,
                                trace.total_events() + len(trace.markers))
    stream_bytes = streaming.store.bytes_written()
    peak_stream_records = streaming.store.peak_buffered_records()

    assert stream_bytes < json_bytes, "compressed shards should beat raw JSON"
    assert peak_stream_records <= CHUNK_EVENTS, "streaming must stay within one chunk"
    assert peak_dump_records > CHUNK_EVENTS, "dump-at-end buffers the whole trace"

    # --- overlap: single pass (load + compute) vs shard-parallel map-reduce.
    store_dir = str(streaming.store.directory)
    t0 = time.perf_counter()
    single = compute_overlap(TraceDB(store_dir).to_event_trace())
    single_sec = time.perf_counter() - t0
    timings = {}
    for mode in ("serial", "thread", "process"):
        t0 = time.perf_counter()
        result = parallel_overlap(TraceDB(store_dir), mode=mode)
        timings[mode] = time.perf_counter() - t0
        # The acceptance bar: byte-identical region durations, not approx.
        assert result.regions == single.regions
    db = streaming.tracedb()

    # Streamed store reproduces the in-memory Figure 8 summaries exactly.
    base = multi_process_summary(in_memory.traces())
    from repro.profiler import multi_process_summary_db
    from_db = [s for s in multi_process_summary_db(db)]
    assert [(s.worker, s.total_time_us, s.gpu_time_us) for s in from_db] == \
           [(s.worker, s.total_time_us, s.gpu_time_us) for s in base]

    lines = [
        "TraceDB benchmark: 16-worker Minigo self-play trace",
        f"  events in store:            {db.num_events():,}",
        f"  chunks:                     {len(db.chunks())} (chunk_events={CHUNK_EVENTS:,})",
        f"  dump-at-end JSON:           {json_bytes:,} bytes, peak {peak_dump_records:,} records buffered",
        f"  streaming gzip JSONL:       {stream_bytes:,} bytes, peak {peak_stream_records:,} records buffered",
        f"  compression ratio:          {json_bytes / max(stream_bytes, 1):.1f}x",
        f"  overlap single-pass:        {single_sec * 1e3:8.1f} ms",
    ]
    for mode, sec in timings.items():
        lines.append(f"  overlap map-reduce ({mode:7s}): {sec * 1e3:8.1f} ms (byte-identical)")
    report = "\n".join(lines)
    print()
    print(report)
    save_report("tracedb_streaming", report)
