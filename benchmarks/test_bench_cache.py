"""Benchmark: engine work saved by the evaluation cache, with hard floors.

ISSUE 9's cache spans three layers; this benchmark pins the measured wins of
each on pinned workloads, plus the correctness bars that make the wins safe:

* **Self-play** — the pinned 8-worker / ``leaf_batch=8`` event-scheduler
  pool (the wall-clock bench's shape) with the service cache armed must
  issue **>= 1.3x fewer engine calls** than cache-off, with game records
  bit-for-bit identical (cached rows are bitwise-equal, so play cannot
  change).
* **Concurrent evaluation** — a 4-game evaluation round (games alternate
  colors with period 2, so noise-free argmax play makes games 3 and 4
  replay games 1 and 2) must evaluate **>= 2x fewer engine rows** than
  cache-off, with the candidate's win count identical.
* **Serving admission** — at 2x measured overload on a keyed workload, the
  admission cache must cut the shed rate at identical offered load, and the
  decision log (cache-hit lines included) must replay line-identically
  under one seed.

Outputs:

* ``results/cache_sweep.txt`` — the rendered cache-sweep table;
* a ``cache`` block merged into ``BENCH_wallclock.json`` (the perf
  trajectory guard in CI fails when the block is missing or stale).

Set ``CACHE_QUICK=1`` (the CI smoke step does) for smaller workloads with
the same assertions.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import numpy as np

from conftest import save_report
from repro.experiments import DEFAULT_SERVE_KWARGS, run_cache_sweep, run_serve_sweep
from repro.minigo import PolicyValueNet
from repro.minigo.training import MinigoConfig, MinigoTraining
from repro.minigo.workers import SelfPlayPool
from repro.serving import (
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    build_slo_report,
    estimate_capacity_rows_per_sec,
    run_serving,
)

QUICK = os.environ.get("CACHE_QUICK") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent
SEED = 0

#: The pinned self-play shape (the wall-clock bench's run) and its floor.
SELFPLAY_KWARGS = dict(
    board_size=9,
    num_simulations=16,
    games_per_worker=1,
    max_moves=6 if QUICK else 12,
    hidden=(32, 32),
    seed=SEED,
    profile=False,
    batched_inference=True,
    leaf_batch=8,
    scheduler="event",
)
SELFPLAY_WORKERS = 8
MIN_SELFPLAY_CALL_REDUCTION = 1.3

#: The pinned concurrent evaluation round and its floor.
EVAL_GAMES = 4
EVAL_CONFIG_KWARGS = dict(
    num_workers=2,
    board_size=5,
    num_simulations=8,
    games_per_worker=1,
    max_moves=4 if QUICK else 8,
    hidden=(16,),
    sgd_steps=2,
    evaluation_games=EVAL_GAMES,
    profile=False,
    seed=SEED,
    batched_inference=True,
    leaf_batch=8,
    scheduler="event",
)
MIN_EVAL_ROW_REDUCTION = 2.0

CACHE_CAPACITY = 4096

#: Serving scenario: 2x overload, keyed workload, admission cache on vs off.
SERVE_MULTIPLIER = 2.0
SERVE_CLIENTS = 256
SERVE_KEY_SPACE = 64
SERVE_CACHE_CAPACITY = 256
SERVE_HORIZON_US = 10_000.0 if QUICK else DEFAULT_SERVE_KWARGS["horizon_us"]


def _commit_hash() -> str:
    try:
        return subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def _run_selfplay(cache: bool):
    kwargs = dict(SELFPLAY_KWARGS)
    if cache:
        kwargs.update(cache_capacity=CACHE_CAPACITY, transposition=True)
    pool = SelfPlayPool(SELFPLAY_WORKERS, **kwargs)
    pool.run()
    return pool


def _game_records(pool):
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def _run_eval_round(cache: bool):
    kwargs = dict(EVAL_CONFIG_KWARGS)
    if cache:
        kwargs.update(cache_capacity=CACHE_CAPACITY, transposition=True)
    return MinigoTraining(MinigoConfig(**kwargs)).run_round()


def _serving_run(cache: bool, *, keep_log: bool):
    """One 2x-overload keyed run; same seed => identical offered load."""
    board = DEFAULT_SERVE_KWARGS["board_size"]
    feature_dim = 3 * board * board

    def make_network():
        return PolicyValueNet(board, hidden=DEFAULT_SERVE_KWARGS["hidden"],
                              rng=np.random.default_rng(SEED))

    capacity = estimate_capacity_rows_per_sec(
        make_network, feature_dim=feature_dim,
        max_batch=DEFAULT_SERVE_KWARGS["max_batch"], seed=SEED)
    server = InferenceServer(
        make_network(),
        max_batch=DEFAULT_SERVE_KWARGS["max_batch"],
        queue_capacity=DEFAULT_SERVE_KWARGS["queue_capacity"],
        overload="shed-newest",
        flush_policy="timeout",
        flush_timeout_us=DEFAULT_SERVE_KWARGS["flush_timeout_us"],
        seed=SEED,
        keep_decision_log=keep_log,
        cache_capacity=SERVE_CACHE_CAPACITY if cache else None)
    loadgen = LoadGenerator(
        PoissonProcess(SERVE_MULTIPLIER * capacity), SERVE_CLIENTS,
        feature_dim=feature_dim,
        request_deadline_us=DEFAULT_SERVE_KWARGS["request_deadline_us"],
        key_space=SERVE_KEY_SPACE, seed=SEED)
    result = run_serving(server, loadgen, SERVE_HORIZON_US)
    slo = build_slo_report(result, label="cache" if cache else "control")
    return server, slo


def test_bench_cache(benchmark):
    # --- self-play: the pinned 8-worker pool, cache off vs on.
    off_pool = benchmark.pedantic(lambda: _run_selfplay(False),
                                  rounds=1, iterations=1)
    on_pool = _run_selfplay(True)
    assert _game_records(on_pool) == _game_records(off_pool), \
        "cached rows are bitwise-equal: self-play records must not change"
    sp_off, sp_on = off_pool.inference_service.stats, on_pool.inference_service.stats
    assert sp_on.cache_hits + sp_on.dedupe_rows > 0, \
        "the pinned pool must actually exercise the cache"
    call_reduction = sp_off.engine_calls / max(sp_on.engine_calls, 1)
    assert call_reduction >= MIN_SELFPLAY_CALL_REDUCTION, (
        f"expected >= {MIN_SELFPLAY_CALL_REDUCTION}x engine-call reduction on the "
        f"{SELFPLAY_WORKERS}-worker/leaf_batch={SELFPLAY_KWARGS['leaf_batch']} "
        f"self-play run, got {call_reduction:.2f}x "
        f"({sp_off.engine_calls} -> {sp_on.engine_calls} calls)")

    # --- evaluation: the pinned 4-game concurrent round, cache off vs on.
    eval_off = _run_eval_round(False)
    eval_on = _run_eval_round(True)
    assert eval_on.candidate_wins == eval_off.candidate_wins, \
        "the cache must not change evaluation outcomes"
    ev_off = eval_off.evaluation_inference_stats
    ev_on = eval_on.evaluation_inference_stats
    row_reduction = ev_off.rows / max(ev_on.rows, 1)
    assert row_reduction >= MIN_EVAL_ROW_REDUCTION, (
        f"expected >= {MIN_EVAL_ROW_REDUCTION}x engine-row reduction on the "
        f"{EVAL_GAMES}-game concurrent evaluation round, got {row_reduction:.2f}x "
        f"({ev_off.rows} -> {ev_on.rows} rows)")

    # --- serving: 2x overload, keyed workload; admission hits cut shedding.
    _, slo_off = _serving_run(False, keep_log=False)
    _, slo_on = _serving_run(True, keep_log=False)
    assert slo_on.requests == slo_off.requests, \
        "cache on/off must face identical offered load (same seed, same keys)"
    assert slo_on.cache_hit_fraction > 0.0
    assert slo_off.cache_hits == 0
    assert slo_on.shed_fraction < slo_off.shed_fraction, (
        f"admission cache hits must reduce the shed rate at "
        f"{SERVE_MULTIPLIER}x overload: off {slo_off.shed_fraction:.4f} vs "
        f"on {slo_on.shed_fraction:.4f}")

    # --- determinism: the decision log, cache-hit lines included, replays
    # line-identically under one seed.
    server_a, _ = _serving_run(True, keep_log=True)
    server_b, _ = _serving_run(True, keep_log=True)
    log_a, log_b = server_a.decision_log_lines(), server_b.decision_log_lines()
    assert log_a == log_b, \
        "the cache-enabled decision log must replay exactly under one seed"
    assert any(" cache-hit " in line for line in log_a), \
        "the logged run must actually answer requests at admission"

    # --- the sweep table (the CLI artifact, regenerated here too).
    sweep = run_cache_sweep(seed=SEED, **(
        dict(worker_counts=(2,), replica_counts=(1,), evaluation_games=(2,),
             max_moves=4) if QUICK else {}))
    assert all(p.wins_match for p in sweep.points), \
        "every sweep cell must keep win counts identical cache off vs on"

    # --- perf-trajectory entry: merge a cache block into the wall-clock
    # payload (the wallclock bench preserves it when it rewrites the file).
    path = REPO_ROOT / "BENCH_wallclock.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {"benchmark": "wallclock", "commit": _commit_hash(),
                   "metrics": {}}
    payload["cache"] = {
        "commit": _commit_hash(),
        "quick": QUICK,
        "selfplay": {
            "workers": SELFPLAY_WORKERS,
            "leaf_batch": SELFPLAY_KWARGS["leaf_batch"],
            "board_size": SELFPLAY_KWARGS["board_size"],
            "max_moves": SELFPLAY_KWARGS["max_moves"],
            "engine_calls_off": sp_off.engine_calls,
            "engine_calls_on": sp_on.engine_calls,
            "call_reduction": call_reduction,
            "rows_off": sp_off.rows,
            "rows_on": sp_on.rows,
            "cache_hits": sp_on.cache_hits,
            "dedupe_rows": sp_on.dedupe_rows,
            "min_call_reduction_bar": MIN_SELFPLAY_CALL_REDUCTION,
        },
        "evaluation": {
            "games": EVAL_GAMES,
            "board_size": EVAL_CONFIG_KWARGS["board_size"],
            "max_moves": EVAL_CONFIG_KWARGS["max_moves"],
            "leaf_batch": EVAL_CONFIG_KWARGS["leaf_batch"],
            "rows_off": ev_off.rows,
            "rows_on": ev_on.rows,
            "row_reduction": row_reduction,
            "engine_calls_off": ev_off.engine_calls,
            "engine_calls_on": ev_on.engine_calls,
            "cache_hits": ev_on.cache_hits,
            "dedupe_rows": ev_on.dedupe_rows,
            "wins": eval_on.candidate_wins,
            "min_row_reduction_bar": MIN_EVAL_ROW_REDUCTION,
        },
        "serving": {
            "overload_multiplier": SERVE_MULTIPLIER,
            "clients": SERVE_CLIENTS,
            "key_space": SERVE_KEY_SPACE,
            "cache_capacity": SERVE_CACHE_CAPACITY,
            "horizon_us": SERVE_HORIZON_US,
            "shed_fraction_off": slo_off.shed_fraction,
            "shed_fraction_on": slo_on.shed_fraction,
            "cache_hit_fraction": slo_on.cache_hit_fraction,
            "goodput_off_per_sec": slo_off.goodput_per_sec,
            "goodput_on_per_sec": slo_on.goodput_per_sec,
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report = sweep.report()
    print()
    print(report)
    print()
    print(f"selfplay engine calls {sp_off.engine_calls} -> {sp_on.engine_calls} "
          f"({call_reduction:.2f}x, bar {MIN_SELFPLAY_CALL_REDUCTION}x); "
          f"eval rows {ev_off.rows} -> {ev_on.rows} "
          f"({row_reduction:.2f}x, bar {MIN_EVAL_ROW_REDUCTION}x); "
          f"serving shed {slo_off.shed_fraction:.4f} -> {slo_on.shed_fraction:.4f} "
          f"at {SERVE_MULTIPLIER}x (hit rate {slo_on.cache_hit_fraction:.4f})")
    save_report("cache_sweep", report)
