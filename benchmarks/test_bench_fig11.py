"""Benchmarks: Figure 11 (Appendix C.3) — overhead-correction validation.

Each workload is calibrated (6 runs), then run uninstrumented and fully
instrumented; the corrected total must fall within the paper's +/-16 % bound
of the uninstrumented total.
"""

from conftest import FIG11_TIMESTEPS, save_report
from repro.experiments import findings, run_fig11a, run_fig11b


def test_bench_fig11a_algorithm_sweep(benchmark):
    result = benchmark.pedantic(lambda: run_fig11a(timesteps=FIG11_TIMESTEPS), rounds=1, iterations=1)
    print()
    print(result.report())
    save_report("fig11a_overhead_correction_algorithms", result.report())
    check = findings.check_overhead_correction(result)
    print(check)
    assert check.holds, str(check)
    # Profiling meaningfully inflates runtime before correction.
    assert all(v.uncorrected_inflation_percent > 1.0 for v in result.validations.values())


def test_bench_fig11b_simulator_sweep(benchmark):
    result = benchmark.pedantic(lambda: run_fig11b(timesteps=FIG11_TIMESTEPS), rounds=1, iterations=1)
    print()
    print(result.report())
    save_report("fig11b_overhead_correction_simulators", result.report())
    check = findings.check_overhead_correction(result)
    print(check)
    assert check.holds, str(check)
