"""Benchmark: Figure 5 — RL algorithm survey on Walker2D."""

from conftest import BENCH_TIMESTEPS, save_report
from repro.experiments import findings, run_fig5


def test_bench_fig5_algorithm_survey(benchmark):
    result = benchmark.pedantic(lambda: run_fig5(timesteps=BENCH_TIMESTEPS), rounds=1, iterations=1)
    print()
    print(result.report())
    save_report("fig5_algorithm_survey", result.report())
    for check in (findings.check_f9_cpu_bound_across_algorithms(result),
                  findings.check_f10_on_policy_simulation_bound(result)):
        print(check)
        assert check.holds, str(check)
    # Off-policy algorithms are dominated by backpropagation, on-policy by simulation.
    assert result.runs["DDPG"].analysis.operation_fraction("backpropagation") > \
        result.runs["A2C"].analysis.operation_fraction("backpropagation")
