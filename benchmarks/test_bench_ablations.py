"""Ablation benchmarks for design choices called out in DESIGN.md.

* Profiling-overhead ablation: how much each book-keeping subsystem
  (annotations, Python<->C interception, CUDA interception, CUPTI) inflates
  the training time of a fixed workload — the per-component view behind
  Appendix C's stacked overhead bars.
* Execution-model ablation for the overlap computation: cost of the offline
  analysis itself as the trace grows.
"""

import pytest

from conftest import FIG11_TIMESTEPS, save_report
from repro.experiments.common import WorkloadSpec, run_workload
from repro.profiler import ProfilerConfig, compute_overlap

SPEC = WorkloadSpec(algo="SAC", simulator="Walker2D", total_timesteps=FIG11_TIMESTEPS)

CONFIGS = {
    "uninstrumented": ProfilerConfig.uninstrumented(),
    "annotations_only": ProfilerConfig.only(annotations=True),
    "pyprof_only": ProfilerConfig.only(pyprof=True),
    "cuda_interception_only": ProfilerConfig.only(cuda_interception=True),
    "cuda+cupti": ProfilerConfig.only(cuda_interception=True, cupti=True),
    "full": ProfilerConfig.full(),
}


def test_bench_profiling_overhead_ablation(benchmark):
    def run_all():
        return {name: run_workload(SPEC, profiler_config=config).total_time_us
                for name, config in CONFIGS.items()}

    totals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = totals["uninstrumented"]
    lines = [
        f"  {name:24s} {total / 1e6:8.4f}s  (+{100.0 * (total - baseline) / baseline:5.2f}%)"
        for name, total in totals.items()
    ]
    report = "profiling overhead ablation (SAC/Walker2D):\n" + "\n".join(lines)
    print()
    print(report)
    save_report("ablation_profiling_overhead", report)
    # Every book-keeping subsystem costs something; the full profiler costs the most.
    assert all(total >= baseline for total in totals.values())
    assert totals["full"] == max(totals.values())
    assert totals["cuda+cupti"] > totals["cuda_interception_only"]


def test_bench_overlap_analysis_cost(benchmark):
    run = run_workload(SPEC)
    overlap = benchmark(lambda: compute_overlap(run.trace))
    assert overlap.total_us() > 0
