"""Benchmark: batched cross-worker inference vs per-leaf leaf evaluation.

Regenerates the batch-size sweep behind the InferenceService (the
``expand_leaf`` bottleneck of the paper's Minigo workload):

* at ``leaf_batch=1`` the batched service reproduces the legacy per-leaf
  game records move-for-move under identical seeds (the figures the paper's
  Minigo analysis rests on are unchanged);
* at ``leaf_batch=16`` the service issues at least 4x fewer engine
  evaluation calls per leaf row and finishes the collection phase in less
  virtual wall-clock.
"""

from conftest import save_report
from repro.experiments.batchsweep import run_batch_sweep
from repro.minigo.workers import SelfPlayPool

SWEEP_LEAF_BATCHES = (1, 4, 16, 64)
POOL_KWARGS = dict(
    board_size=5,
    num_simulations=16,
    games_per_worker=1,
    max_moves=10,
    hidden=(32, 32),
    seed=0,
)
NUM_WORKERS = 4


def _game_records(pool):
    """Per-worker (features, policy, value) byte records of every move."""
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def test_bench_inference_batchsweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_batch_sweep(SWEEP_LEAF_BATCHES, num_workers=NUM_WORKERS, **POOL_KWARGS),
        rounds=1, iterations=1)

    # --- determinism: batched leaf_batch=1 == legacy per-leaf path.
    legacy = SelfPlayPool(NUM_WORKERS, profile=False, **POOL_KWARGS)
    legacy.run()
    batched = SelfPlayPool(NUM_WORKERS, profile=False, batched_inference=True,
                           leaf_batch=1, **POOL_KWARGS)
    batched.run()
    assert _game_records(legacy) == _game_records(batched), \
        "leaf_batch=1 must reproduce the legacy per-leaf game records move-for-move"
    # Per-leaf evaluation is exactly one engine call per evaluated row.
    stats1 = batched.inference_service.stats
    assert stats1.engine_calls == stats1.rows

    # --- the acceptance bar: >=4x fewer engine evaluation calls at 16.
    assert sweep.call_reduction(16) >= 4.0, \
        f"expected >=4x fewer engine calls at leaf_batch=16, got {sweep.call_reduction(16):.2f}x"
    # Larger batches also reduce virtual wall-clock of the collection phase.
    assert sweep.point(16).span_us < sweep.point(1).span_us
    assert sweep.point(16).moves_per_sec > sweep.point(1).moves_per_sec

    report = sweep.report()
    print()
    print(report)
    save_report("inference_batchsweep", report)
