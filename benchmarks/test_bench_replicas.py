"""Benchmark: sharded inference service vs the single-replica event pool.

Regenerates the replica sweep behind the multi-GPU inference sharding
(replicas × workers × routing on an inference-bound cost model):

* with 8 workers and ``leaf_batch=8`` the event-driven pool at 2 replicas
  completes its virtual collection span at least 1.8x faster than the same
  pool on 1 replica (the acceptance bar; the measured speedup is ~2.1x, and
  ~4x at 4 replicas), with per-replica occupancy/utilisation reported;
* ``num_replicas=1`` under *any* routing policy reproduces the
  single-service pool's game records and per-worker clocks bit-for-bit, so
  the sharding refactor (replica objects, routing, eager serving guards)
  introduces zero drift in every configuration shipped before it.
"""

from conftest import save_report
from repro.experiments.replicasweep import (
    DEFAULT_REPLICA_POOL_KWARGS,
    inference_bound_cost_config,
    run_replica_sweep,
)
from repro.minigo.workers import SelfPlayPool

NUM_WORKERS = 8
POOL_KWARGS = dict(
    board_size=5,
    num_simulations=16,
    games_per_worker=1,
    max_moves=10,
    hidden=(32, 32),
    seed=0,
)


def _game_records(pool):
    """Per-worker (features, policy, value) byte records of every move."""
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def test_bench_replica_sweep(benchmark):
    sweep = benchmark.pedantic(run_replica_sweep, rounds=1, iterations=1)

    # --- determinism: sharding machinery adds zero drift at one replica.
    baseline = SelfPlayPool(NUM_WORKERS, profile=False, batched_inference=True,
                            leaf_batch=8, scheduler="event", **POOL_KWARGS)
    baseline.run()
    for routing in ("round-robin", "least-loaded", "sticky"):
        single = SelfPlayPool(NUM_WORKERS, profile=False, batched_inference=True,
                              leaf_batch=8, scheduler="event",
                              num_replicas=1, routing=routing, **POOL_KWARGS)
        single.run()
        assert _game_records(single) == _game_records(baseline), \
            f"num_replicas=1 with {routing!r} routing must reproduce the single-service records"
        assert [run.total_time_us for run in single.runs] == \
            [run.total_time_us for run in baseline.runs], \
            f"num_replicas=1 with {routing!r} routing must reproduce per-worker clocks"

    # --- the acceptance bar: >=1.8x shorter collection span at 2 replicas.
    for routing in ("round-robin", "least-loaded"):
        speedup = sweep.speedup(NUM_WORKERS, 2, routing)
        assert speedup >= 1.8, \
            (f"expected >=1.8x effective-throughput (collection-span) improvement at "
             f"2 replicas / {NUM_WORKERS} workers / leaf_batch="
             f"{DEFAULT_REPLICA_POOL_KWARGS['leaf_batch']} ({routing}), got {speedup:.2f}x")
    assert sweep.speedup(NUM_WORKERS, 4, "least-loaded") > sweep.speedup(NUM_WORKERS, 2, "least-loaded"), \
        "four replicas must beat two on an inference-bound workload"

    # --- per-replica occupancy/utilisation is reported for every point.
    for point in sweep.points:
        assert len(point.replica_calls) == point.num_replicas
        assert len(point.replica_occupancy) == point.num_replicas
        assert len(point.replica_utilisation) == point.num_replicas
        assert sum(point.routing_decisions) == point.engine_calls
        assert all(calls > 0 for calls in point.replica_calls), \
            "every replica must serve work under every routing policy"
        assert all(0.0 < occ <= 1.0 for occ in point.replica_occupancy)

    # The eager path really engaged once replicas could make progress early.
    sharded = [p for p in sweep.points if p.num_replicas > 1]
    assert any(p.eager_serves > 0 for p in sharded)

    # The sweep's pinned point matches the config the bar describes.
    assert DEFAULT_REPLICA_POOL_KWARGS["leaf_batch"] == 8
    assert inference_bound_cost_config().python_op_us < 0.01

    report = sweep.report()
    print()
    print(report)
    save_report("replica_sweep", report)
