"""Benchmarks: Figure 4 — RL framework comparison (TD3 and DDPG on Walker2D).

Figure 4a/4b are the per-operation time breakdowns; Figure 4c/4d are the
language-transition counts.  The TD3 and DDPG panels are each regenerated
once and cached for the transition benchmarks, which only re-run the analysis.
"""

import pytest

from conftest import BENCH_TIMESTEPS, save_report
from repro.experiments import run_fig4
from repro.experiments import findings

_CACHE = {}


def _panel(algo):
    if algo not in _CACHE:
        _CACHE[algo] = run_fig4(algo, timesteps=BENCH_TIMESTEPS)
    return _CACHE[algo]


def test_bench_fig4a_td3_time_breakdown(benchmark):
    result = benchmark.pedantic(lambda: run_fig4("TD3", timesteps=BENCH_TIMESTEPS), rounds=1, iterations=1)
    _CACHE["TD3"] = result
    print()
    print(result.report())
    save_report("fig4a_fig4c_td3", result.report())
    checks = [findings.check_f1_eager_slower(result),
              findings.check_f3_pytorch_vs_tf_eager(result),
              findings.check_f6_autograph_inference_backend_inflation(result),
              findings.check_f7_low_gpu_usage(result),
              findings.check_f8_cuda_api_dominates_gpu(result)]
    for check in checks:
        print(check)
        assert check.holds, str(check)


def test_bench_fig4b_ddpg_time_breakdown(benchmark):
    result = benchmark.pedantic(lambda: run_fig4("DDPG", timesteps=BENCH_TIMESTEPS), rounds=1, iterations=1)
    _CACHE["DDPG"] = result
    print()
    print(result.report())
    save_report("fig4b_fig4d_ddpg", result.report())
    check = findings.check_f4_ddpg_backprop_inflation(result)
    print(check)
    assert check.holds, str(check)


def test_bench_fig4c_td3_transitions(benchmark):
    result = _panel("TD3")
    transitions = benchmark.pedantic(result.transitions_per_iteration, rounds=1, iterations=1)
    check = findings.check_f2_autograph_reduces_transitions(result)
    print()
    print(check)
    assert check.holds, str(check)
    # Eager issues at least an order of magnitude more backend transitions
    # per iteration than Autograph, as in Figure 4c.
    eager = sum(transitions["Tensorflow Eager"].get(op, {}).get("Backend", 0.0)
                for op in ("inference", "backpropagation"))
    autograph = sum(transitions["Tensorflow Autograph"].get(op, {}).get("Backend", 0.0)
                    for op in ("inference", "backpropagation"))
    assert eager > 10 * max(autograph, 1e-9)


def test_bench_fig4d_ddpg_transitions(benchmark):
    td3 = _panel("TD3")
    ddpg = _panel("DDPG")
    benchmark.pedantic(ddpg.transitions_per_iteration, rounds=1, iterations=1)
    check = findings.check_f5_autograph_simulation_python_inflation(ddpg, td3)
    print()
    print(check)
    assert check.holds, str(check)
