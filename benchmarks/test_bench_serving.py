"""Benchmark: the serving tier's overload defences and their acceptance bars.

The serve sweep (``rls-experiment servesweep``) measures the networked
inference tier of :mod:`repro.serving` under open-loop Poisson traffic.  This
benchmark pins the claims the subsystem exists to make, at full scale
(256 clients, 2x measured capacity):

* **Bounded tail under admission control** — with the ``shed-newest`` policy
  the p99 queue delay of *admitted* requests stays within the request
  deadline, however long the trace runs.
* **Unbounded tail without it** — the ``none`` control (admission off,
  window unbounded) admits everything and its p99 queue delay grows with
  trace length: doubling the horizon strictly increases it.  Backlog merely
  moves, it never clears.
* **Determinism** — the same seed and configuration reproduce the rendered
  sweep report byte-for-byte and the server's decision log line-for-line.

Outputs:

* ``results/serve_sweep.txt`` — the rendered sweep table;
* a ``serving`` block merged into ``BENCH_wallclock.json`` (requests/sec of
  the serving harness, goodput, shed rate, tail delays), extending the
  wall-clock perf trajectory tracked per PR.

Set ``SERVING_QUICK=1`` (the CI smoke step does) for a shorter horizon with
the same assertions and client count.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from conftest import save_report
from repro.experiments import DEFAULT_SERVE_KWARGS, run_serve_sweep
from repro.minigo import PolicyValueNet
from repro.serving import (
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    build_slo_report,
    estimate_capacity_rows_per_sec,
    run_serving,
)

import numpy as np

QUICK = os.environ.get("SERVING_QUICK") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The acceptance-bar scenario: >=256 clients at 2x measured capacity.
NUM_CLIENTS = 256
OVERLOAD_MULTIPLIER = 2.0
HORIZON_US = 10_000.0 if QUICK else DEFAULT_SERVE_KWARGS["horizon_us"]
DEADLINE_US = DEFAULT_SERVE_KWARGS["request_deadline_us"]
SEED = 0


def _commit_hash() -> str:
    try:
        return subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def _sweep(horizon_us: float):
    return run_serve_sweep(
        (OVERLOAD_MULTIPLIER,), overloads=("none", "shed-newest"),
        replica_counts=(1,), num_clients=NUM_CLIENTS, horizon_us=horizon_us,
        seed=SEED)


def _logged_run():
    """One shed-newest overload run with the decision log enabled."""
    board = DEFAULT_SERVE_KWARGS["board_size"]
    feature_dim = 3 * board * board

    def make_network():
        return PolicyValueNet(board, hidden=DEFAULT_SERVE_KWARGS["hidden"],
                              rng=np.random.default_rng(SEED))

    capacity = estimate_capacity_rows_per_sec(
        make_network, feature_dim=feature_dim,
        max_batch=DEFAULT_SERVE_KWARGS["max_batch"], seed=SEED)
    server = InferenceServer(
        make_network(),
        max_batch=DEFAULT_SERVE_KWARGS["max_batch"],
        queue_capacity=DEFAULT_SERVE_KWARGS["queue_capacity"],
        overload="shed-newest",
        flush_policy="timeout",
        flush_timeout_us=DEFAULT_SERVE_KWARGS["flush_timeout_us"],
        seed=SEED)
    loadgen = LoadGenerator(
        PoissonProcess(OVERLOAD_MULTIPLIER * capacity), NUM_CLIENTS,
        feature_dim=feature_dim, request_deadline_us=DEADLINE_US, seed=SEED)
    result = run_serving(server, loadgen, 10_000.0)
    return server.decision_log_lines(), build_slo_report(result).format()


def test_bench_serving_overload(benchmark):
    start = time.perf_counter()
    sweep = benchmark.pedantic(lambda: _sweep(HORIZON_US), rounds=1, iterations=1)
    sweep_s = time.perf_counter() - start

    bounded = sweep.point(OVERLOAD_MULTIPLIER, "shed-newest", 1).slo
    control = sweep.point(OVERLOAD_MULTIPLIER, "none", 1).slo

    # --- the tail bar: admission control keeps admitted requests' p99 queue
    # delay inside the request deadline; the no-admission control does not.
    assert bounded.client_queue_delay_us is not None
    bounded_p99 = bounded.client_queue_delay_us[99.0]
    control_p99 = control.client_queue_delay_us[99.0]
    assert bounded_p99 <= DEADLINE_US, (
        f"shed-newest must bound p99 queue delay within the {DEADLINE_US:.0f}us "
        f"deadline at {OVERLOAD_MULTIPLIER}x overload, got {bounded_p99:.0f}us")
    assert control_p99 > DEADLINE_US, (
        f"the no-admission control should blow through the deadline at "
        f"{OVERLOAD_MULTIPLIER}x overload, got p99 {control_p99:.0f}us")
    assert bounded.goodput_per_sec > control.goodput_per_sec, \
        "shedding must convert into goodput: late answers are not answers"

    # --- divergence with trace length: the unbounded backlog keeps growing,
    # the bounded window does not.
    longer = _sweep(2.0 * HORIZON_US)
    longer_control_p99 = longer.point(
        OVERLOAD_MULTIPLIER, "none", 1).slo.client_queue_delay_us[99.0]
    longer_bounded_p99 = longer.point(
        OVERLOAD_MULTIPLIER, "shed-newest", 1).slo.client_queue_delay_us[99.0]
    assert longer_control_p99 > control_p99, (
        f"without admission control p99 queue delay must grow with the trace: "
        f"{control_p99:.0f}us at T vs {longer_control_p99:.0f}us at 2T")
    assert longer_bounded_p99 <= DEADLINE_US, \
        "the bounded window's tail must not grow with the trace"

    # --- determinism: same seed + config => byte-identical report and
    # line-identical decision log.
    assert _sweep(HORIZON_US).report() == sweep.report()
    log_a, report_a = _logged_run()
    log_b, report_b = _logged_run()
    assert log_a == log_b, "the decision log must replay exactly under one seed"
    assert report_a == report_b
    assert any(" shed-queue " in line for line in log_a), \
        "the logged run must actually exercise the overload path"

    # --- perf-trajectory entry: merge a serving block into the wall-clock
    # payload (the wallclock bench preserves it when it rewrites the file).
    total_arrivals = bounded.arrivals + control.arrivals
    path = REPO_ROOT / "BENCH_wallclock.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {"benchmark": "wallclock", "commit": _commit_hash(),
                   "metrics": {}}
    payload["serving"] = {
        "commit": _commit_hash(),
        "quick": QUICK,
        "clients": NUM_CLIENTS,
        "overload_multiplier": OVERLOAD_MULTIPLIER,
        "horizon_us": HORIZON_US,
        "capacity_rows_per_sec": sweep.capacity_rows_per_sec,
        "harness_requests_per_sec": total_arrivals / sweep_s,
        "sweep_wall_s": sweep_s,
        "goodput_per_sec": bounded.goodput_per_sec,
        "shed_fraction": bounded.shed_fraction,
        "p99_queue_delay_us": {"shed-newest": bounded_p99, "none": control_p99},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report = sweep.report()
    print()
    print(report)
    save_report("serve_sweep", report)
