"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at reproduction
scale (a few hundred virtual-time steps per workload) and checks that the
paper's qualitative findings hold on the regenerated data.  Wall-clock
numbers reported by pytest-benchmark measure the harness itself; the
scientific output is the printed report plus the finding assertions.
"""

from __future__ import annotations

from pathlib import Path

#: Step budget per workload used across the figure benchmarks.  Small enough
#: that the full benchmark suite completes in a few minutes, large enough for
#: the breakdown fractions to be stable.
BENCH_TIMESTEPS = 120
FIG11_TIMESTEPS = 80

#: Where regenerated figure/table reports are written (one text file per
#: artifact), so they survive pytest's output capturing.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_report(name: str, text: str) -> None:
    """Persist a regenerated figure/table report under ``results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
