"""Benchmark: wall-clock speed of the harness itself (the perf trajectory).

Every previous benchmark measures *virtual-time* quantities — engine calls,
batch sizes, collection spans.  This one times the **Python harness** that
produces those numbers, pinning the speedup of the three optimized hot paths:

* the incremental-group Go engine + lazy MCTS child positions
  (``repro.sim.go`` / ``repro.minigo.mcts``),
* the heap-driven :class:`~repro.minigo.workers.PoolScheduler` event loop,
* the single-pass worker grouping in
  :func:`~repro.profiler.overlap.compute_overlap`.

The pre-optimization baseline is not a hard-coded number (machine-dependent
and unverifiable) but the *preserved original code*: the reference flood-fill
Go engine (:mod:`repro.sim.go_reference`), eager MCTS child materialization
(``MCTS.eager_child_positions``), and the linear-scan scheduler loop
(``PoolScheduler.default_use_heap = False``).  Both harnesses run the same
8-worker / ``leaf_batch=8`` event-scheduler pool on the same seed; the
acceptance bar is a **>=3x end-to-end wall-clock speedup** with game records
and per-worker virtual clocks **bit-for-bit identical** — fast must also mean
unchanged.

Outputs:

* ``BENCH_wallclock.json`` (repo root) — per-metric numbers plus the commit
  hash, the start of the wall-clock perf trajectory tracked per PR;
* ``results/wallclock_speedups.txt`` — the before/after table.

Set ``WALLCLOCK_QUICK=1`` (the CI smoke step does) for a smaller workload
with the same assertions.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from contextlib import contextmanager
from pathlib import Path

from conftest import save_report
from repro.minigo import mcts as mcts_mod
from repro.minigo import selfplay as selfplay_mod
from repro.minigo.workers import PoolScheduler, SelfPlayPool
from repro.profiler.events import merge_traces
from repro.profiler.overlap import OverlapResult, compute_overlap
from repro.sim.go_reference import ReferenceGoPosition

QUICK = os.environ.get("WALLCLOCK_QUICK") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_WORKERS = 8
LEAF_BATCH = 8
POOL_KWARGS = dict(
    board_size=9,
    num_simulations=16,
    games_per_worker=1,
    max_moves=6 if QUICK else 12,
    hidden=(32, 32),
    seed=0,
    profile=False,
    batched_inference=True,
    leaf_batch=LEAF_BATCH,
    scheduler="event",
)

#: The acceptance bar pinned by ISSUE 5 (measured ~8x on the dev machine).
MIN_END_TO_END_SPEEDUP = 3.0

#: Synthetic worker count / timing repeats for the overlap-throughput metric
#: (the single-pass win grows with worker count, so it is measured wide).
OVERLAP_WORKERS = 8 if QUICK else 32
OVERLAP_REPEATS = 3
#: Per-worker interval floor for the overlap trace: the vectorized sweep's
#: win is per-worker-slice-sized, so each worker's slice is tiled in time
#: until it is at least this dense.
OVERLAP_MIN_INTERVALS_PER_WORKER = 4000
#: Acceptance floor for the vectorized sweep vs the preserved Python loop
#: (measured ~6x at the density above, ~8x on very large slices).
MIN_OVERLAP_VECTOR_SPEEDUP = 5.0


@contextmanager
def pre_optimization_harness():
    """Swap the preserved original implementations in for one run."""
    saved = (selfplay_mod.GoPosition, mcts_mod.MCTS.eager_child_positions,
             PoolScheduler.default_use_heap)
    selfplay_mod.GoPosition = ReferenceGoPosition
    mcts_mod.MCTS.eager_child_positions = True
    PoolScheduler.default_use_heap = False
    try:
        yield
    finally:
        (selfplay_mod.GoPosition, mcts_mod.MCTS.eager_child_positions,
         PoolScheduler.default_use_heap) = saved


def _run_pool(**overrides):
    kwargs = dict(POOL_KWARGS)
    kwargs.update(overrides)
    start = time.perf_counter()
    pool = SelfPlayPool(NUM_WORKERS, **kwargs)
    pool.run()
    return pool, time.perf_counter() - start


def _game_records(pool):
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def _moves(pool) -> int:
    return sum(run.result.moves for run in pool.runs)


def _commit_hash() -> str:
    try:
        return subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              capture_output=True, text=True, check=True,
                              timeout=10).stdout.strip()
    except Exception:
        return "unknown"


def _overlap_metrics():
    """Time the overlap hot path's two optimizations on a wide, dense trace.

    * **single-pass grouping vs per-worker re-filter** — the win is
      O(workers x events) filter work avoided, so it is measured on a
      many-worker trace: one profiled worker shard cloned across
      ``OVERLAP_WORKERS`` synthetic workers.
    * **vectorized sweep vs the preserved Python loop**
      (``_accumulate_worker_loop``) — the win is per worker *slice*, so
      each worker's clone is additionally tiled in time until it holds at
      least ``OVERLAP_MIN_INTERVALS_PER_WORKER`` intervals.  Both sweeps
      must produce byte-identical regions (same key order, same float
      bits), and the speedup must clear ``MIN_OVERLAP_VECTOR_SPEEDUP``.

    Timings take the best of ``OVERLAP_REPEATS`` runs to suppress
    scheduler noise.
    """
    from dataclasses import replace

    from repro.profiler import overlap as overlap_mod
    from repro.profiler.events import EventTrace

    pool, _ = _run_pool(profile=True)
    merged = merge_traces(run.trace for run in pool.runs)
    shard_worker = merged.workers()[0]
    shard_events = [e for e in merged.events if e.worker == shard_worker]
    shard_ops = [op for op in merged.operations if op.worker == shard_worker]
    shard_intervals = len(shard_events) + len(shard_ops)
    density = -(-OVERLAP_MIN_INTERVALS_PER_WORKER // max(shard_intervals, 1))
    shard_span = max(e.end_us for e in shard_events + shard_ops) + 10.0
    wide = EventTrace()
    for index in range(OVERLAP_WORKERS):
        clone = f"overlap_worker_{index:02d}"
        for tile in range(density):
            offset = tile * shard_span
            wide.events.extend(
                replace(e, worker=clone, start_us=e.start_us + offset,
                        end_us=e.end_us + offset) for e in shard_events)
            wide.operations.extend(
                replace(op, worker=clone, start_us=op.start_us + offset,
                        end_us=op.end_us + offset) for op in shard_ops)
    intervals = len(wide.events) + len(wide.operations)
    workers = wide.workers()

    single_pass_s = min(
        _timed(lambda: compute_overlap(wide)) for _ in range(OVERLAP_REPEATS))
    single_pass = compute_overlap(wide)

    # The pre-optimization cost model: one full-trace filter per worker
    # (compute_overlap restricted to one worker scans everything it is fed).
    def refilter():
        return OverlapResult.merge(
            compute_overlap(wide, workers=[worker]) for worker in workers)

    refilter_s = min(_timed(refilter) for _ in range(OVERLAP_REPEATS))
    assert refilter().regions == single_pass.regions, \
        "per-worker re-filtered overlap must stay byte-identical to the single pass"

    # The second preserved baseline: the per-boundary Python sweep
    # (_accumulate_worker_loop).  Timed on pre-grouped per-worker slices so
    # the bar isolates exactly what was vectorized; byte-identity is
    # asserted end to end through compute_overlap.
    assert overlap_mod.USE_VECTORIZED_ACCUMULATE, \
        "the repo must ship with the vectorized sweep on"
    overlap_mod.USE_VECTORIZED_ACCUMULATE = False
    try:
        loop_result = compute_overlap(wide)
    finally:
        overlap_mod.USE_VECTORIZED_ACCUMULATE = True
    assert list(loop_result.regions) == list(single_pass.regions) and all(
        loop_result.regions[key].hex() == single_pass.regions[key].hex()
        for key in loop_result.regions), \
        "vectorized sweep must be byte-identical to the Python loop"

    from collections import defaultdict

    events_by_worker = {w: [e for e in wide.events if e.worker == w] for w in workers}
    ops_by_worker = {w: [op for op in wide.operations if op.worker == w] for w in workers}

    def sweep_all(accumulate):
        for worker in workers:
            accumulate(events_by_worker[worker], ops_by_worker[worker],
                       defaultdict(float))

    vec_sweep_s = min(
        _timed(lambda: sweep_all(overlap_mod._accumulate_worker_vectorized))
        for _ in range(OVERLAP_REPEATS))
    loop_sweep_s = min(
        _timed(lambda: sweep_all(overlap_mod._accumulate_worker_loop))
        for _ in range(OVERLAP_REPEATS))
    vector_speedup = loop_sweep_s / vec_sweep_s if vec_sweep_s > 0 else float("inf")
    assert vector_speedup >= MIN_OVERLAP_VECTOR_SPEEDUP, (
        f"expected >= {MIN_OVERLAP_VECTOR_SPEEDUP}x vectorized overlap sweep on "
        f"{intervals // len(workers)} intervals/worker, got {vector_speedup:.2f}x "
        f"({loop_sweep_s:.3f}s -> {vec_sweep_s:.3f}s)")
    return {
        "trace_intervals": intervals,
        "workers": len(workers),
        "single_pass_s": single_pass_s,
        "per_worker_refilter_s": refilter_s,
        "vec_sweep_s": vec_sweep_s,
        "loop_sweep_s": loop_sweep_s,
        "vector_speedup": vector_speedup,
        "events_per_sec": intervals / vec_sweep_s if vec_sweep_s > 0 else float("inf"),
        "loop_events_per_sec": intervals / loop_sweep_s if loop_sweep_s > 0 else float("inf"),
        "end_to_end_events_per_sec": intervals / single_pass_s if single_pass_s > 0 else float("inf"),
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_bench_wallclock(benchmark):
    # --- pre-optimization baseline: preserved original implementations.
    with pre_optimization_harness():
        baseline_pool, baseline_s = _run_pool()

    # --- optimized harness (what the repo ships today).
    optimized_pool = benchmark.pedantic(lambda: _run_pool(), rounds=1, iterations=1)[0]
    # Re-run outside the benchmark wrapper for a clean wall-clock sample.
    optimized_pool, optimized_s = _run_pool()

    # --- fast must also be unchanged: records, clocks, scheduler decisions.
    assert _game_records(optimized_pool) == _game_records(baseline_pool), \
        "optimized harness must reproduce the pre-optimization game records bit-for-bit"
    assert [run.total_time_us for run in optimized_pool.runs] == \
        [run.total_time_us for run in baseline_pool.runs]
    new_stats, old_stats = optimized_pool.pool_scheduler.stats, baseline_pool.pool_scheduler.stats
    assert (new_stats.steps, new_stats.serves, new_stats.timeout_serves,
            new_stats.eager_serves, new_stats.steps_per_worker) == \
           (old_stats.steps, old_stats.serves, old_stats.timeout_serves,
            old_stats.eager_serves, old_stats.steps_per_worker)
    assert new_stats.heap_pushes > 0 and new_stats.heap_pops > 0
    assert old_stats.heap_pushes == 0  # the baseline really ran the scan loop

    # --- the acceptance bar.
    speedup = baseline_s / optimized_s
    assert speedup >= MIN_END_TO_END_SPEEDUP, (
        f"expected >= {MIN_END_TO_END_SPEEDUP}x end-to-end wall-clock speedup on the "
        f"{NUM_WORKERS}-worker/leaf_batch={LEAF_BATCH} pool run, got {speedup:.2f}x "
        f"({baseline_s:.3f}s -> {optimized_s:.3f}s)")

    # --- per-hot-path throughput metrics.
    moves = _moves(optimized_pool)
    scheduler_events = new_stats.steps + new_stats.serves
    overlap = _overlap_metrics()
    metrics = {
        "end_to_end": {
            "workers": NUM_WORKERS,
            "leaf_batch": LEAF_BATCH,
            "board_size": POOL_KWARGS["board_size"],
            "max_moves": POOL_KWARGS["max_moves"],
            "baseline_s": baseline_s,
            "optimized_s": optimized_s,
            "speedup": speedup,
        },
        "scheduler": {
            "events": scheduler_events,
            "events_per_sec": scheduler_events / optimized_s,
            "baseline_events_per_sec": (old_stats.steps + old_stats.serves) / baseline_s,
            "heap_pushes": new_stats.heap_pushes,
            "heap_pops": new_stats.heap_pops,
            "heap_stale_pops": new_stats.heap_stale_pops,
        },
        "selfplay": {
            "moves": moves,
            "moves_per_sec": moves / optimized_s,
            "baseline_moves_per_sec": _moves(baseline_pool) / baseline_s,
        },
        "overlap": overlap,
    }

    payload = {
        "benchmark": "wallclock",
        "commit": _commit_hash(),
        "quick": QUICK,
        "min_speedup_bar": MIN_END_TO_END_SPEEDUP,
        "metrics": metrics,
    }
    trajectory_path = REPO_ROOT / "BENCH_wallclock.json"
    try:
        # The serving, multiproc and cache benches merge their own blocks
        # into this file; keep them.
        existing = json.loads(trajectory_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        existing = {}
    for block in ("serving", "multiproc", "cache"):
        if block in existing:
            payload[block] = existing[block]
    trajectory_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        ("end-to-end pool run (s)", f"{baseline_s:.3f}", f"{optimized_s:.3f}",
         f"{speedup:.2f}x"),
        ("scheduler events/sec", f"{metrics['scheduler']['baseline_events_per_sec']:,.0f}",
         f"{metrics['scheduler']['events_per_sec']:,.0f}",
         f"{metrics['scheduler']['events_per_sec'] / max(metrics['scheduler']['baseline_events_per_sec'], 1e-12):.2f}x"),
        ("self-play moves/sec", f"{metrics['selfplay']['baseline_moves_per_sec']:,.1f}",
         f"{metrics['selfplay']['moves_per_sec']:,.1f}",
         f"{metrics['selfplay']['moves_per_sec'] / max(metrics['selfplay']['baseline_moves_per_sec'], 1e-12):.2f}x"),
        ("overlap pass (s)", f"{overlap['per_worker_refilter_s']:.4f}",
         f"{overlap['single_pass_s']:.4f}",
         f"{overlap['per_worker_refilter_s'] / max(overlap['single_pass_s'], 1e-12):.2f}x"),
        ("overlap sweep (s)", f"{overlap['loop_sweep_s']:.4f}",
         f"{overlap['vec_sweep_s']:.4f}",
         f"{overlap['vector_speedup']:.2f}x"),
    ]
    lines = [
        "Wall-clock speedups: pre-optimization harness vs optimized harness",
        f"(8 workers, leaf_batch=8, board 9x9, max_moves={POOL_KWARGS['max_moves']}, "
        f"seed 0, quick={QUICK}, commit {payload['commit'][:12]})",
        "",
        f"{'metric':<28} {'before':>14} {'after':>14} {'speedup':>9}",
        "-" * 68,
    ]
    for name, before, after, ratio in rows:
        lines.append(f"{name:<28} {before:>14} {after:>14} {ratio:>9}")
    lines += [
        "",
        f"overlap trace: {overlap['trace_intervals']} intervals across "
        f"{overlap['workers']} workers "
        f"({overlap['events_per_sec']:,.0f} intervals/sec vectorized, "
        f"{overlap['loop_events_per_sec']:,.0f} with the preserved loop; "
        f"both sweeps byte-identical, asserted)",
        "",
        "Game records, per-worker clocks and scheduler decisions are",
        "bit-for-bit identical between the two harnesses (asserted).",
    ]
    report = "\n".join(lines)
    print()
    print(report)
    save_report("wallclock_speedups", report)


# --------------------------------------------------------------------------
# Multiprocess sharded execution (repro.parallel): the scaling trajectory.
# --------------------------------------------------------------------------

#: ``MULTIPROC_QUICK=1`` (the CI smoke step) shrinks the workload and the
#: process grid; ``WALLCLOCK_QUICK=1`` implies it.
MULTIPROC_QUICK = QUICK or os.environ.get("MULTIPROC_QUICK") == "1"
MULTIPROC_PROCESSES = (1, 2) if MULTIPROC_QUICK else (1, 2, 4, 8)
MULTIPROC_WORKERS = 4 if MULTIPROC_QUICK else NUM_WORKERS
MULTIPROC_POOL_KWARGS = dict(
    POOL_KWARGS,
    board_size=5 if MULTIPROC_QUICK else POOL_KWARGS["board_size"],
    num_simulations=8 if MULTIPROC_QUICK else POOL_KWARGS["num_simulations"],
    max_moves=4 if MULTIPROC_QUICK else POOL_KWARGS["max_moves"],
    leaf_batch=4 if MULTIPROC_QUICK else LEAF_BATCH,
)

#: The acceptance bar pinned by ISSUE 8: >= 2x end-to-end wall-clock over the
#: single-process event loop at 8 workers / leaf_batch=8.  Real OS processes
#: cannot beat a serialized loop without cores to run on, so the bar is only
#: *enforced* on >= 8-core machines (and never in quick mode); the scaling
#: table is measured and recorded regardless.
MIN_MULTIPROC_SPEEDUP = 2.0
MULTIPROC_MIN_CORES = 8


def _run_multiproc_pool(**overrides):
    kwargs = dict(MULTIPROC_POOL_KWARGS)
    kwargs.update(overrides)
    start = time.perf_counter()
    pool = SelfPlayPool(MULTIPROC_WORKERS, **kwargs)
    pool.run()
    return pool, time.perf_counter() - start


def _pool_signature(pool):
    stats = pool.pool_scheduler.stats
    return (_game_records(pool),
            [run.total_time_us for run in pool.runs],
            (stats.steps, stats.serves, stats.timeout_serves,
             stats.eager_serves, sorted(stats.steps_per_worker.items())))


def test_bench_multiproc(benchmark):
    # --- the single-process event loop: the baseline every shard count must
    # reproduce bit-for-bit.
    sequential_pool = benchmark.pedantic(
        lambda: _run_multiproc_pool()[0], rounds=1, iterations=1)
    sequential_pool, sequential_s = _run_multiproc_pool()
    reference = _pool_signature(sequential_pool)

    # --- num_processes=1 (inline backend) is the pinned degenerate case.
    inline_pool, _ = _run_multiproc_pool(num_processes=1,
                                         process_backend="inline")
    assert _pool_signature(inline_pool) == reference, \
        "num_processes=1 must reproduce the sequential event loop bit-for-bit"

    # --- the scaling table: real OS processes, every row bit-identical.
    table = []
    for processes in MULTIPROC_PROCESSES:
        pool, wall_s = _run_multiproc_pool(num_processes=processes,
                                           process_backend="process")
        assert _pool_signature(pool) == reference, (
            f"num_processes={processes} diverged from the sequential loop — "
            "game records / clocks / scheduler decisions must be identical")
        table.append({
            "processes": processes,
            "wall_s": wall_s,
            "speedup": sequential_s / wall_s if wall_s > 0 else float("inf"),
        })

    best = max(table, key=lambda row: row["speedup"])
    cores = os.cpu_count() or 1
    bar_enforced = cores >= MULTIPROC_MIN_CORES and not MULTIPROC_QUICK
    if bar_enforced:
        assert best["speedup"] >= MIN_MULTIPROC_SPEEDUP, (
            f"expected >= {MIN_MULTIPROC_SPEEDUP}x wall-clock at "
            f"{MULTIPROC_WORKERS} workers / leaf_batch="
            f"{MULTIPROC_POOL_KWARGS['leaf_batch']} on a {cores}-core machine, "
            f"got {best['speedup']:.2f}x with {best['processes']} processes "
            f"({sequential_s:.3f}s -> {best['wall_s']:.3f}s)")

    # --- perf-trajectory entry: merge a multiproc block into the wall-clock
    # payload (the wallclock bench preserves it when it rewrites the file).
    path = REPO_ROOT / "BENCH_wallclock.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = {"benchmark": "wallclock", "commit": _commit_hash(),
                   "metrics": {}}
    payload["multiproc"] = {
        "commit": _commit_hash(),
        "quick": MULTIPROC_QUICK,
        "cpu_count": cores,
        "workers": MULTIPROC_WORKERS,
        "leaf_batch": MULTIPROC_POOL_KWARGS["leaf_batch"],
        "board_size": MULTIPROC_POOL_KWARGS["board_size"],
        "max_moves": MULTIPROC_POOL_KWARGS["max_moves"],
        "sequential_s": sequential_s,
        "min_speedup_bar": MIN_MULTIPROC_SPEEDUP,
        "bar_enforced": bar_enforced,
        "table": table,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "Multiprocess sharded execution: wall-clock scaling vs the "
        "single-process event loop",
        f"({MULTIPROC_WORKERS} workers, leaf_batch="
        f"{MULTIPROC_POOL_KWARGS['leaf_batch']}, board "
        f"{MULTIPROC_POOL_KWARGS['board_size']}x"
        f"{MULTIPROC_POOL_KWARGS['board_size']}, "
        f"max_moves={MULTIPROC_POOL_KWARGS['max_moves']}, seed 0, "
        f"{cores} cores, quick={MULTIPROC_QUICK}, "
        f"commit {payload['multiproc']['commit'][:12]})",
        "",
        f"{'processes':>10} {'wall s':>10} {'speedup':>9}",
        "-" * 31,
        f"{'(seq)':>10} {sequential_s:>10.3f} {'1.00x':>9}",
    ]
    for row in table:
        lines.append(f"{row['processes']:>10d} {row['wall_s']:>10.3f} "
                     f"{row['speedup']:>8.2f}x")
    lines += [
        "",
        f">= {MIN_MULTIPROC_SPEEDUP}x bar "
        + ("enforced" if bar_enforced else
           f"recorded only (needs >= {MULTIPROC_MIN_CORES} cores and full "
           "mode; this run does not qualify)") + ".",
        "Every row's game records, per-worker clocks and scheduler decisions",
        "are bit-for-bit identical to the sequential event loop (asserted).",
    ]
    report = "\n".join(lines)
    print()
    print(report)
    save_report("multiproc_scaling", report)
