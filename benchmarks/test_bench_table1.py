"""Benchmark: Table 1 — the RL framework configuration matrix."""

from conftest import save_report
from repro.experiments import run_table1, table1


def test_bench_table1(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report = table1.report(rows)
    print()
    print(report)
    save_report("table1", report)
    assert len(rows) == 4
    assert {row.engine_class for row in rows} == {
        "GraphEngine", "AutographEngine", "EagerEngine", "PyTorchEagerEngine"}
