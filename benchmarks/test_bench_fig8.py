"""Benchmark: Figure 8 — Minigo scale-up workload, multi-process view and GPU utilization."""

from conftest import save_report
from repro.experiments import findings, run_fig8
from repro.experiments.fig8 import DEFAULT_MINIGO_CONFIG
from repro.minigo import MinigoConfig

#: 16 parallel self-play workers, as in the paper, at reproduction board size.
BENCH_CONFIG = MinigoConfig(
    num_workers=DEFAULT_MINIGO_CONFIG.num_workers,
    board_size=5,
    num_simulations=6,
    games_per_worker=1,
    max_moves=20,
    sgd_steps=16,
    evaluation_games=2,
    hidden=(64, 64),
)


def test_bench_fig8_minigo_scaleup(benchmark):
    result = benchmark.pedantic(lambda: run_fig8(BENCH_CONFIG), rounds=1, iterations=1)
    print()
    print(result.report())
    save_report("fig8_minigo_scaleup", result.report())
    check = findings.check_f11_misleading_gpu_utilization(result)
    print(check)
    assert check.holds, str(check)
    # 16 self-play workers, each with a tiny GPU-kernel share of its runtime.
    summaries = result.selfplay_summaries()
    assert len(summaries) == BENCH_CONFIG.num_workers
    assert result.max_worker_gpu_sec() < 0.25 * result.max_worker_time_sec()
    # nvidia-smi reports near-saturation despite that.
    assert result.reported_utilization_pct() >= 80.0
