"""Benchmark: event-driven virtual-time pool scheduler vs sequential batching.

Regenerates the scheduler sweep behind the PoolScheduler (true cross-worker
batched inference for the paper's Minigo workload):

* with 8 workers and ``leaf_batch=8`` the event-driven scheduler issues at
  least 2x fewer engine calls than the PR 2 sequential batched path and at
  least half of its batches serve more than one worker (the acceptance
  bars; the measured numbers are far beyond both);
* the event-driven pool at ``leaf_batch=1`` under the ``unbatched`` flush
  policy reproduces the sequential pool's game records move-for-move, so
  the scheduler machinery itself (resumable searches, stepwise game
  drivers, the virtual-time event loop) introduces zero drift.
"""

from conftest import save_report
from repro.experiments.schedsweep import run_sched_sweep
from repro.minigo.workers import SCHEDULER_EVENT, SelfPlayPool

SWEEP_LEAF_BATCHES = (1, 4, 8)
NUM_WORKERS = 8
POOL_KWARGS = dict(
    board_size=5,
    num_simulations=16,
    games_per_worker=1,
    max_moves=10,
    hidden=(32, 32),
    seed=0,
)


def _game_records(pool):
    """Per-worker (features, policy, value) byte records of every move."""
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def test_bench_scheduler_batchsweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_sched_sweep(SWEEP_LEAF_BATCHES, num_workers=NUM_WORKERS, **POOL_KWARGS),
        rounds=1, iterations=1)

    # --- determinism: the event-driven machinery adds zero drift.
    sequential = SelfPlayPool(NUM_WORKERS, profile=False, batched_inference=True,
                              leaf_batch=1, **POOL_KWARGS)
    sequential.run()
    event = SelfPlayPool(NUM_WORKERS, profile=False, batched_inference=True, leaf_batch=1,
                         scheduler="event", flush_policy="unbatched", **POOL_KWARGS)
    event.run()
    assert _game_records(sequential) == _game_records(event), \
        "event-driven pool at leaf_batch=1 must reproduce the sequential game records move-for-move"

    # --- the acceptance bars: >=2x fewer engine calls, >=50% cross-worker batches.
    reduction = sweep.call_reduction(8)
    assert reduction >= 2.0, \
        f"expected >=2x fewer engine calls under the event scheduler at leaf_batch=8, got {reduction:.2f}x"
    assert sweep.raw_call_reduction(8) >= 2.0
    share = sweep.point(SCHEDULER_EVENT, 8).cross_worker_share
    assert share >= 0.5, \
        f"expected >=50% cross-worker batches at 8 workers / leaf_batch=8, got {share:.1%}"
    # The queueing model actually charges waiting time.
    assert sweep.point(SCHEDULER_EVENT, 8).mean_queue_delay_us > 0.0

    report = sweep.report()
    print()
    print(report)
    save_report("scheduler_batchsweep", report)
