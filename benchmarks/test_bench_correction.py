"""Benchmark: overhead-correction locator on a long trace.

The correction pass looks up the innermost active operation for every
overhead marker.  A linear scan per marker makes that O(markers x
operations); the interval-indexed locator keeps it O((markers + operations)
log operations).  This smoke run pins the scaling on a long synthetic trace
so the quadratic scan cannot silently return, and cross-checks the indexed
answers against the obvious linear reference.
"""

import time

from conftest import save_report
from repro.profiler.calibration import CalibrationResult
from repro.profiler.correction import OperationLocator, overhead_by_operation_category
from repro.profiler.events import (
    CATEGORY_OPERATION,
    OVERHEAD_ANNOTATION,
    Event,
    EventTrace,
    OverheadMarker,
)
from repro.profiler.overlap import UNTRACKED

NUM_OPERATIONS = 20_000
NUM_MARKERS = 40_000


def _long_trace() -> EventTrace:
    """Nested operation pairs tiled along a long timeline, plus markers."""
    trace = EventTrace()
    for i in range(NUM_OPERATIONS // 2):
        start = float(i * 10)
        trace.operations.append(Event(CATEGORY_OPERATION, "outer", start, start + 9.0))
        trace.operations.append(Event(CATEGORY_OPERATION, "inner", start + 2.0, start + 7.0))
    span = (NUM_OPERATIONS // 2) * 10.0
    for j in range(NUM_MARKERS):
        trace.markers.append(OverheadMarker(kind=OVERHEAD_ANNOTATION,
                                            time_us=j * span / NUM_MARKERS))
    return trace


def _linear_reference(operations, time_us):
    best = None
    for op in operations:
        if op.start_us <= time_us <= op.end_us:
            if best is None or op.start_us >= best.start_us:
                best = op
    return best.name if best is not None else UNTRACKED


def test_bench_correction_long_trace(benchmark):
    trace = _long_trace()
    calibration = CalibrationResult(annotation_us=1.5)

    t0 = time.perf_counter()
    totals = benchmark.pedantic(
        lambda: overhead_by_operation_category(trace, calibration),
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0

    # Every marker's overhead must land somewhere.
    assert sum(totals.values()) > 0
    total_markers = sum(v for v in totals.values())
    assert abs(total_markers - 1.5 * NUM_MARKERS) < 1e-6

    # Spot-check the indexed locator against the linear reference.
    operations = list(trace.operations)
    locator = OperationLocator(operations)
    for time_us in [0.0, 1.0, 2.0, 4.5, 7.0, 9.0, 9.5, 42.0, 12345.6,
                    (NUM_OPERATIONS // 2) * 10.0 - 0.5, 1e9]:
        assert locator.locate(time_us) == _linear_reference(operations, time_us)

    report = "\n".join([
        "Overhead-correction long-trace smoke",
        f"  operations:        {NUM_OPERATIONS:,}",
        f"  markers:           {NUM_MARKERS:,}",
        f"  correction pass:   {elapsed * 1e3:.1f} ms (interval-indexed locator)",
        f"  overhead located:  {total_markers:,.1f} us across {len(totals)} buckets",
    ])
    print()
    print(report)
    save_report("correction_long_trace", report)
