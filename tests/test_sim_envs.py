"""Tests for the simulators (API contract, dynamics, Go rules)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    BLACK,
    WHITE,
    AirLearningEnv,
    Box,
    Discrete,
    GoBoard,
    GoPosition,
    PongEnv,
    Walker2DEnv,
    available_simulators,
    make,
    space_dim,
)
from repro.sim.registry import SIMULATOR_COMPLEXITY, register
from repro.system import System


# -------------------------------------------------------------------- spaces
def test_box_and_discrete_spaces(rng):
    box = Box(-1.0, 1.0, (3,))
    sample = box.sample(rng)
    assert box.contains(sample)
    assert not box.contains(np.array([2.0, 0.0, 0.0]))
    assert np.all(box.clip(np.array([5.0, -5.0, 0.0])) == np.array([1.0, -1.0, 0.0]))
    disc = Discrete(4)
    assert disc.contains(disc.sample(rng))
    assert not disc.contains(7)
    assert space_dim(box) == 3 and space_dim(disc) == 4


# ------------------------------------------------------------------ registry
def test_registry_contents_and_errors(system):
    assert set(available_simulators()) == set(SIMULATOR_COMPLEXITY)
    with pytest.raises(KeyError):
        make("NotARealSim", system)
    with pytest.raises(ValueError):
        register("Pong", PongEnv)


def test_make_unknown_name_lists_registered_sims_sorted(system):
    with pytest.raises(KeyError) as excinfo:
        make("NotARealSim", system)
    message = str(excinfo.value)
    assert "NotARealSim" in message
    names = available_simulators()
    assert names == sorted(names)
    assert str(names) in message  # the full sorted list, verbatim


@pytest.mark.parametrize("name", sorted(SIMULATOR_COMPLEXITY))
def test_same_seed_reproduces_observation_and_reward_streams(name):
    """Registry-wide determinism: same seed ⇒ identical env streams."""
    def collect(env_seed):
        env = make(name, System.create(seed=0), seed=env_seed)
        rng = np.random.default_rng(123)
        obs = env.reset()
        stream = [obs.tobytes()]
        rewards = []
        for _ in range(12):
            obs, reward, done, _ = env.step(env.action_space.sample(rng))
            stream.append(obs.tobytes())
            rewards.append(reward)
            if done:
                stream.append(env.reset().tobytes())
        return stream, rewards

    assert collect(5) == collect(5)


@pytest.mark.parametrize("name", sorted(SIMULATOR_COMPLEXITY))
def test_env_api_contract(name, system):
    env = make(name, system, seed=3)
    obs = env.reset()
    assert obs.shape == env.observation_space.shape
    assert obs.dtype == np.float32
    for _ in range(10):
        action = env.action_space.sample(env.rng)
        obs, reward, done, info = env.step(action)
        assert obs.shape == env.observation_space.shape
        assert np.all(np.isfinite(obs))
        assert isinstance(reward, float) and np.isfinite(reward)
        assert isinstance(done, bool)
        assert isinstance(info, dict)
        if done:
            obs = env.reset()


def test_step_advances_virtual_clock_by_sim_cost(system):
    env = make("Walker2D", system, seed=0)
    env.reset()
    before = system.clock.now_us
    env.step(np.zeros(env.action_dim, dtype=np.float32))
    elapsed = system.clock.now_us - before
    assert elapsed > system.cost_model.config.sim_step_us["Walker2D"] * 0.8


def test_step_before_reset_raises(system):
    env = make("Pong", system, seed=0)
    with pytest.raises(RuntimeError):
        env.step(0)


def test_airlearning_issues_render_kernels(system):
    env = AirLearningEnv(system, seed=0)
    env.reset()
    for _ in range(3):
        env.step(env.action_space.sample(env.rng))
    render_kernels = [k for k in system.device.kernels() if k.name == "ue4_render"]
    assert len(render_kernels) >= 4  # one for reset + one per step


def test_airlearning_reaching_goal_terminates(system):
    env = AirLearningEnv(system, seed=0)
    env.reset()
    env.goal = env.position + np.array([0.5, 0.0, 0.0], dtype=np.float32)
    _, reward, done, info = env.step(1)  # accelerate toward +x
    assert info["distance_to_goal"] < 1.5
    # either immediately reached or at least moved closer with positive shaping
    assert done or reward > -0.1


# --------------------------------------------------------------------- Pong
def test_pong_scoring_and_termination(system):
    env = PongEnv(system, seed=1, opponent_skill=0.0)
    env.reset()
    total_reward, episodes = 0.0, 0
    for _ in range(3000):
        obs, reward, done, info = env.step(1 if obs_tracks_ball(env) else 2)
        total_reward += reward
        if done:
            episodes += 1
            assert max(info["agent_score"], info["opponent_score"]) >= env.WIN_SCORE or True
            break
    assert total_reward != 0.0  # someone scored within the budget


def obs_tracks_ball(env: PongEnv) -> bool:
    return env._state["ball_y"] > env._state["agent_y"]


def test_pong_rejects_bad_parameters(system):
    with pytest.raises(ValueError):
        PongEnv(system, opponent_skill=1.5)
    env = PongEnv(system, seed=0)
    env.reset()
    with pytest.raises(ValueError):
        env.step(7)


# ---------------------------------------------------------------- locomotion
def test_walker_better_policy_moves_further(system):
    """Coordinated sinusoidal actions move the torso further than doing nothing."""
    def rollout(policy):
        env = Walker2DEnv(System.create(seed=5), seed=5)
        env.reset()
        distance = 0.0
        for t in range(200):
            _, _, done, info = env.step(policy(t))
            distance = info["x_position"]
            if done:
                break
        return distance

    still = rollout(lambda t: np.zeros(6, dtype=np.float32))
    walking = rollout(lambda t: 0.6 * np.sin(0.3 * t + np.arange(6)).astype(np.float32))
    assert abs(walking) > abs(still)


def test_locomotion_unhealthy_terminates():
    env = Walker2DEnv(System.create(seed=0), seed=0)
    env.reset()
    env.dynamics.torso_z = 100.0  # far outside the healthy range
    _, _, done, info = env.step(np.zeros(6, dtype=np.float32))
    assert done and not info["is_healthy"]


def test_observation_dimensions_match_gym():
    system = System.create(seed=0)
    dims = {"Walker2D": (17, 6), "Hopper": (11, 3), "HalfCheetah": (17, 6), "Ant": (111, 8)}
    for name, (obs_dim, act_dim) in dims.items():
        env = make(name, system)
        assert env.observation_dim == obs_dim
        assert env.action_dim == act_dim


# ----------------------------------------------------------------------- Go
def test_go_capture_single_stone():
    board = GoBoard(size=5)
    board.play((1, 1), WHITE)
    for point in [(0, 1), (2, 1), (1, 0)]:
        board.play(point, BLACK)
    captured = board.play((1, 2), BLACK)
    assert captured == [(1, 1)]
    assert board.board[1, 1] == 0


def test_go_suicide_is_illegal():
    board = GoBoard(size=3)
    for point in [(0, 1), (1, 0), (1, 2), (2, 1)]:
        board.play(point, BLACK)
    assert not board.is_legal((1, 1), WHITE)
    assert board.is_legal((1, 1), BLACK)


def test_go_simple_ko_forbidden():
    # Classic ko shape: White captures a single Black stone and Black may not
    # recapture immediately.
    board2 = GoBoard(size=5)
    board2.play((1, 2), BLACK)
    board2.play((0, 3), BLACK)
    board2.play((2, 3), BLACK)
    board2.play((1, 4), BLACK)
    board2.play((0, 2), WHITE)
    board2.play((2, 2), WHITE)
    board2.play((1, 1), WHITE)
    captured = board2.play((1, 3), WHITE)  # captures black (1, 2)
    assert captured == [(1, 2)]
    # Black may not immediately recapture at the ko point.
    assert not board2.is_legal((1, 2), BLACK)


def test_go_area_scoring_counts_territory():
    board = GoBoard(size=5, komi=0.5)
    for col in range(5):
        board.play((2, col), BLACK)
    # Black owns the board: 5 stones + 20 territory - 0.5 komi.
    assert board.area_score() == pytest.approx(24.5)


def test_go_position_game_flow():
    position = GoPosition.initial(size=5, komi=0.5)
    assert position.to_play == BLACK
    move = position.legal_moves()[0]
    nxt = position.play(move)
    assert nxt.to_play == WHITE
    assert nxt.move_count == 1
    passed = nxt.play(None).play(None)
    assert passed.is_over
    assert passed.result() in (-1.0, 1.0)
    features = position.features()
    assert features.shape == (3 * 25,)
    assert position.move_to_index(None) == 25
    assert position.index_to_move(7) == (1, 2)


def test_go_env_plays_full_episode(system):
    env = make("Go", system, seed=2, size=5)
    obs = env.reset()
    done = False
    steps = 0
    while not done and steps < 200:
        obs, reward, done, info = env.step(env.action_space.sample(env.rng))
        steps += 1
    assert done
    assert abs(reward) >= 0.9  # terminal win/loss signal


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_go_board_invariants_random_playout(seed):
    """Property: after any legal playout, stone counts stay consistent with captures."""
    rng = np.random.default_rng(seed)
    position = GoPosition.initial(size=5)
    for _ in range(30):
        if position.is_over:
            break
        moves = position.legal_moves()
        move = moves[rng.integers(0, len(moves))]
        position = position.play(move)
        board = position.board.board
        assert board.shape == (5, 5)
        assert set(np.unique(board)).issubset({-1, 0, 1})
        # No group on the board may have zero liberties.
        for row in range(5):
            for col in range(5):
                if board[row, col] != 0:
                    _, liberties = position.board.group_and_liberties(row, col)
                    assert len(liberties) > 0


# ---------------------------------------------------------------- state_key
@pytest.mark.parametrize("name", sorted(SIMULATOR_COMPLEXITY))
def test_state_key_is_none_or_stable(name):
    """Registry-wide cacheability contract for the evaluation cache.

    Every env must either opt out of caching (``state_key() is None``,
    the :class:`~repro.sim.base.Env` default) or return an integer key
    that is stable across repeated calls without stepping and identical
    under a same-seed replay of the same action sequence — the condition
    for two equal keys to guarantee bitwise-identical observations.
    """
    def collect(env_seed):
        env = make(name, System.create(seed=0), seed=env_seed)
        rng = np.random.default_rng(123)
        env.reset()
        keys = [env.state_key()]
        for _ in range(12):
            _, _, done, _ = env.step(env.action_space.sample(rng))
            assert env.state_key() == env.state_key()  # no step, no drift
            keys.append(env.state_key())
            if done:
                env.reset()
                keys.append(env.state_key())
        return keys

    keys = collect(5)
    assert keys == collect(5)
    assert all(key is None or isinstance(key, int) for key in keys)
    # A key-bearing env must key every state, not just some of them.
    if any(key is not None for key in keys):
        assert all(key is not None for key in keys)
        assert name == "Go"  # the only keyed env today; update when more opt in


def test_go_env_state_key_tracks_position():
    env = make("Go", System.create(seed=0), seed=4, size=5)
    env.reset()
    assert env.state_key() == env.position.transposition_key()
    env.step(0)
    assert env.state_key() == env.position.transposition_key()
