"""Deterministic fault injection and self-healing execution (ISSUE 10).

Three layers of recovery machinery under one seeded adversary:

* the **plan/injector** substrate — a :class:`FaultPlan` is a pure function
  of its seed, the injector partitions it per consumer, and every applied
  fault is a stable replayable log line;
* the **replica pool** — fail-stop crashes at batch boundaries, arrival-order
  re-dispatch of the dead horizon's planned rows, recovery with weight
  re-broadcast, availability accounting;
* the **serving tier** — degraded-mode admission scaled to surviving
  capacity, fault events in the decision log, wire-frame drop/corrupt
  survival;
* the **multiprocess tier** — journal-replay respawn of crashed shard
  processes with bit-identical records, clocks and merged trace stores.

The overriding bar everywhere: an *empty* plan is bit-for-bit free, and a
fixed seed replays every fault history line-identically.
"""

import gc
import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.faults import (
    BROADCAST_FAIL,
    EMPTY_PLAN,
    FRAME_CORRUPT,
    FRAME_DROP,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    REPLICA_CRASH,
    REPLICA_RECOVER,
    REPLICA_SLOW,
    SHARD_CRASH,
)
from repro.minigo import PolicyValueNet
from repro.minigo.workers import SelfPlayPool
from repro.rollout import EnvRolloutPool
from repro.serving import (
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    build_slo_report,
    run_serving,
)

BOARD = 5
FEATURE_DIM = 3 * BOARD * BOARD
SEED = 0


def make_network(seed=SEED):
    return PolicyValueNet(BOARD, (16,), rng=np.random.default_rng(seed))


# ------------------------------------------------------------ plan/injector
def test_fault_plan_sorts_validates_and_renders():
    plan = FaultPlan(events=(
        FaultEvent(500.0, REPLICA_RECOVER, 1),
        FaultEvent(100.0, REPLICA_CRASH, 1),
        FaultEvent(100.0, REPLICA_SLOW, 0, param=2.0, duration_us=50.0),
    ))
    assert [e.kind for e in plan.events] == [
        REPLICA_CRASH, REPLICA_SLOW, REPLICA_RECOVER]  # time, then kind order
    assert not plan.empty and EMPTY_PLAN.empty and FaultPlan().empty
    assert plan.replica_event_times() == (100.0, 100.0, 500.0)
    assert "target=1" in plan.events[0].render()
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(0.0, "meteor-strike")
    with pytest.raises(ValueError, match="non-negative"):
        FaultEvent(-1.0, REPLICA_CRASH, 0)
    with pytest.raises(ValueError, match="slowdown factor"):
        FaultEvent(0.0, REPLICA_SLOW, 0, param=0.5)
    with pytest.raises(ValueError, match="redispatch_latency_us"):
        FaultPlan(redispatch_latency_us=-1.0)


def test_seeded_plan_is_a_pure_function_of_seed():
    kwargs = dict(horizon_us=50_000.0, num_replicas=4, crash_rate_per_sec=80.0,
                  frame_loss_per_sec=40.0, broadcast_fail_per_sec=20.0)
    a = FaultPlan.seeded(123, **kwargs)
    b = FaultPlan.seeded(123, **kwargs)
    assert a.events == b.events and a.seed == 123
    assert a.events != FaultPlan.seeded(124, **kwargs).events
    # Every crash schedules its recovery (unless it lands past the horizon).
    crashes = a.of_kind(REPLICA_CRASH)
    recoveries = a.of_kind(REPLICA_RECOVER)
    assert crashes and len(recoveries) <= len(crashes)
    assert all(0.0 <= e.time_us < 50_000.0 for e in a.events)
    assert all(0 <= e.target < 4 for e in crashes)
    # All rates zero => empty plan.
    assert FaultPlan.seeded(5, horizon_us=1_000.0, num_replicas=2).empty


def test_injector_partitions_the_plan_per_consumer():
    plan = FaultPlan(events=(
        FaultEvent(10.0, REPLICA_CRASH, 0),
        FaultEvent(20.0, FRAME_DROP),
        FaultEvent(30.0, FRAME_CORRUPT),
        FaultEvent(40.0, BROADCAST_FAIL, 1),
        FaultEvent(50.0, REPLICA_RECOVER, 0),
    ))
    injector = FaultInjector(plan)
    assert injector.armed
    # Replica queue pops by due time; frame/broadcast queues are untouched.
    assert [e.kind for e in injector.due_replica_events(10.0)] == [REPLICA_CRASH]
    assert injector.due_replica_events(10.0) == []
    assert [e.kind for e in injector.due_replica_events(60.0)] == [REPLICA_RECOVER]
    assert injector.next_frame_fault(5.0) is None
    assert injector.next_frame_fault(25.0).kind == FRAME_DROP
    assert injector.next_frame_fault(25.0) is None   # corrupt not due yet
    assert injector.next_frame_fault(30.0).kind == FRAME_CORRUPT
    assert injector.take_broadcast_failures(0, 100.0) == []   # wrong replica
    assert [e.kind for e in injector.take_broadcast_failures(1, 100.0)] \
        == [BROADCAST_FAIL]
    injector.record(12.5, "replica-crash", 0, "healthy=1/2")
    assert injector.log == ["12.500 replica-crash target=0 healthy=1/2"]


# ------------------------------------------------------------- replica pool
def test_fail_recover_and_availability_accounting():
    from repro.rollout.inference import InferenceService

    service = InferenceService(make_network(), num_replicas=3)
    injector = FaultInjector(FaultPlan(events=(
        FaultEvent(100.0, REPLICA_CRASH, 1),)))
    service.attach_fault_injector(injector)
    assert service.fail_replica(1, 100.0)
    assert not service.replicas[1].healthy
    assert len(service.healthy_replicas()) == 2
    # Open outage: lost capacity accrues while the replica stays down.
    assert service.capacity_lost_us(300.0) == pytest.approx(200.0)
    assert service.availability(300.0) == pytest.approx(1.0 - 200.0 / 900.0)
    assert service.recover_replica(1, 400.0)
    assert service.replicas[1].healthy
    assert service.replicas[1].down_us == pytest.approx(300.0)
    # Closed outage: availability stops degrading after recovery.
    assert service.capacity_lost_us(1_000.0) == pytest.approx(300.0)
    assert service.stats.replica_crashes == 1
    assert service.stats.replica_recoveries == 1
    # Recovery re-broadcast landed on the replica's horizon.
    assert service.replicas[1].stats.weight_broadcasts == 1
    assert service.replicas[1].free_us > 400.0
    kinds = [line.split(" ", 2)[1] for line in injector.log]
    assert kinds == ["replica-crash", "replica-recover"]


def test_last_healthy_replica_refuses_to_die():
    from repro.rollout.inference import InferenceService

    service = InferenceService(make_network(), num_replicas=2)
    injector = FaultInjector(FaultPlan(events=(
        FaultEvent(10.0, REPLICA_CRASH, 0),)))
    service.attach_fault_injector(injector)
    assert service.fail_replica(0, 10.0)
    assert not service.fail_replica(1, 20.0), "the pool must keep one survivor"
    assert service.replicas[1].healthy
    assert service.stats.replica_crashes == 1
    assert any("crash-skipped" in line for line in injector.log)


def test_broadcast_failure_is_charged_twice():
    from repro.rollout.inference import InferenceService

    plain = InferenceService(make_network(), num_replicas=2)
    faulty = InferenceService(make_network(), num_replicas=2)
    injector = FaultInjector(FaultPlan(events=(
        FaultEvent(0.0, BROADCAST_FAIL, 1),)))
    faulty.attach_fault_injector(injector)
    weights = make_network(seed=9).state_dict()
    span_plain = plain.update_weights(weights)
    span_faulty = faulty.update_weights(make_network(seed=9).state_dict())
    assert faulty.stats.broadcast_retries == 1
    assert plain.stats.broadcast_retries == 0
    assert span_faulty > span_plain, "the retried copy must cost extra time"
    assert faulty.replicas[1].stats.weight_broadcast_us == pytest.approx(
        2.0 * plain.replicas[1].stats.weight_broadcast_us)
    assert any("broadcast-fail" in line for line in injector.log)


# ------------------------------------------------------------- serving tier
SERVE_KW = dict(max_batch=8, queue_capacity=64, overload="shed-newest",
                rate_limit_per_sec=None, flush_policy="timeout",
                flush_timeout_us=300.0, seed=SEED)
HORIZON_US = 8_000.0
RATE = 260_000.0  # ~1.2x the 4-replica fleet's capacity at board 5


def _serve(plan, *, num_replicas=4, degraded=True, keep_log=True, clients=32,
           deadline_us=2_000.0):
    server = InferenceServer(make_network(), num_replicas=num_replicas,
                             keep_decision_log=keep_log, fault_plan=plan,
                             degraded_admission=degraded, **SERVE_KW)
    loadgen = LoadGenerator(PoissonProcess(RATE), clients,
                            feature_dim=FEATURE_DIM,
                            request_deadline_us=deadline_us, seed=SEED)
    result = run_serving(server, loadgen, HORIZON_US)
    return server, build_slo_report(result)


def _crash_plan():
    return FaultPlan(events=(
        FaultEvent(2_000.0, REPLICA_CRASH, 1),
        FaultEvent(6_000.0, REPLICA_RECOVER, 1),
    ))


def test_empty_plan_is_bit_identical_at_the_serving_tier():
    server_none, slo_none = _serve(None)
    server_empty, slo_empty = _serve(FaultPlan())
    assert server_empty.fault_injector is None, \
        "an empty plan must not even build an injector"
    assert server_none.decision_log_lines() == server_empty.decision_log_lines()
    assert slo_none.format() == slo_empty.format()
    assert slo_none.availability == 1.0 and slo_none.degraded_entries == 0


def test_replica_crash_run_loses_nothing_and_logs_the_history():
    server, slo = _serve(_crash_plan())
    assert slo.replica_crashes == 1 and slo.replica_recoveries == 1
    assert slo.redispatched_rows > 0
    # 4000us outage of 1-in-4 replicas over an 8000us horizon.
    assert slo.availability == pytest.approx(1.0 - 4_000.0 / (8_000.0 * 4))
    assert slo.requests - slo.completed - slo.gave_up == 0, \
        "every request must reach a terminal outcome"
    lines = server.decision_log_lines()
    for marker in ("replica-crash", "replica-recover", "redispatch",
                   "degrade", "restore"):
        assert any(marker in line for line in lines), marker
    assert slo.degraded_entries == 1


def test_fault_log_replays_line_identically():
    plan = FaultPlan.seeded(7, horizon_us=HORIZON_US, num_replicas=4,
                            crash_rate_per_sec=250.0, mean_downtime_us=2_000.0,
                            frame_loss_per_sec=125.0)
    server_a, _ = _serve(plan)
    server_b, _ = _serve(plan)
    log_a = server_a.decision_log_lines()
    assert log_a == server_b.decision_log_lines()
    assert any("replica-crash" in line for line in log_a)


def test_degraded_admission_tracks_surviving_capacity():
    server, _ = _serve(_crash_plan())
    # After the run the fleet is whole again: the window is back to full.
    assert server.effective_capacity() == SERVE_KW["queue_capacity"]
    # While one of four replicas was down the window was 3/4 of full.
    degrade_lines = [line for line in server.decision_log_lines()
                     if " degrade " in f" {line} "]
    assert any("window=48" in line and "capacity_scale=0.75" in line
               for line in degrade_lines), degrade_lines
    control, slo_control = _serve(_crash_plan(), degraded=False)
    assert slo_control.degraded_entries == 0
    assert control.effective_capacity() == SERVE_KW["queue_capacity"]
    assert not any("degrade" in line for line in control.decision_log_lines()), \
        "the no-degrade control must never scale admission"


def test_frame_faults_are_survived_and_counted_once():
    plan = FaultPlan(events=(
        FaultEvent(1_000.0, FRAME_DROP),
        FaultEvent(3_000.0, FRAME_CORRUPT),
    ))
    server, slo = _serve(plan)
    assert slo.corrupt_frames == 1, \
        "one corrupted frame is one incident, not one per resync step"
    lines = server.decision_log_lines()
    assert any(FRAME_DROP in line for line in lines)
    assert any(FRAME_CORRUPT in line for line in lines)
    assert any("corrupt-frame" in line for line in lines)
    # The run still completes: corruption never poisons the stream.
    assert slo.completed > 0


def test_replica_slow_fault_stretches_batches():
    slow_plan = FaultPlan(events=(
        FaultEvent(1_000.0, REPLICA_SLOW, 0, param=4.0,
                   duration_us=6_000.0),))
    _, slo_slow = _serve(slow_plan)
    _, slo_fast = _serve(None)
    assert slo_slow.latency_us[99.0] > slo_fast.latency_us[99.0], \
        "a 4x slowdown of one replica must surface in tail latency"


# --------------------------------------------------------- multiprocess tier
ENV_KW = dict(num_workers=4, steps_per_worker=6, seed=3, profile=True)
SP_KW = dict(num_workers=4, board_size=5, num_simulations=8, games_per_worker=1,
             leaf_batch=2, batched_inference=True, scheduler="event", seed=11,
             profile=True)


def _env_signature(pool):
    runs = [(run.worker, run.total_time_us, run.result.steps,
             run.result.episodes, run.result.episode_rewards,
             [(t.obs.tobytes(), np.asarray(t.action).tobytes(), t.reward,
               t.next_obs.tobytes(), t.done) for t in run.result.transitions])
            for run in pool.runs]
    service = pool.inference_service
    return (runs, service.stats.engine_calls, service.stats.rows,
            service.routing_decisions(),
            [replica.free_us for replica in service.replicas])


def _selfplay_signature(pool):
    return [(run.worker, run.total_time_us, run.result.moves,
             run.result.black_wins,
             [(e.features.tobytes(), e.policy_target.tobytes(), e.value_target)
              for e in run.result.examples])
            for run in pool.runs]


def _shard_crash_plan(shard, after_results):
    return FaultPlan(events=(
        FaultEvent(0.0, SHARD_CRASH, shard, param=float(after_results)),))


def test_shard_crash_respawn_is_bit_identical():
    baseline = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                              process_backend="process")
    baseline.run()
    crashed = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                             process_backend="process",
                             fault_plan=_shard_crash_plan(1, 3))
    crashed.run()
    assert _env_signature(crashed) == _env_signature(baseline)
    runner = crashed.parallel_runner
    assert runner.respawns == 1
    assert runner.fault_log[0] == "shard-crash-armed shard=1 after_results=3"
    assert runner.fault_log[1].startswith("shard-respawn shard=1 ")


def test_empty_plan_is_bit_identical_at_the_parallel_tier():
    baseline = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                              process_backend="process")
    baseline.run()
    armed = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                           process_backend="process", fault_plan=FaultPlan())
    armed.run()
    assert _env_signature(armed) == _env_signature(baseline)
    runner = armed.parallel_runner
    assert runner.respawns == 0 and runner.fault_log == []
    # No journaling overhead on the empty plan.
    assert all(channel._journal is None for channel in runner.channels)


@pytest.mark.parametrize("after_results", [1, 2, 3, 99])
def test_shard_crash_at_every_results_boundary(after_results):
    # A 2-worker/3-step run sends each shard 3 results messages; k=99 never
    # fires (the armed counter outlives the run) and must also be identical.
    kw = dict(num_workers=2, steps_per_worker=3, seed=5)
    sequential = EnvRolloutPool("Hopper", **kw)
    sequential.run()
    crashed = EnvRolloutPool("Hopper", **kw, num_processes=2,
                             process_backend="process",
                             fault_plan=_shard_crash_plan(0, after_results))
    crashed.run()
    assert _env_signature(crashed) == _env_signature(sequential)
    expected = 1 if after_results <= 3 else 0
    assert crashed.parallel_runner.respawns == expected


def test_both_shards_crashing_still_merges_identically():
    baseline = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                              process_backend="process")
    baseline.run()
    plan = FaultPlan(events=(
        FaultEvent(0.0, SHARD_CRASH, 0, param=2.0),
        FaultEvent(0.0, SHARD_CRASH, 1, param=4.0),
    ))
    crashed = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                             process_backend="process", fault_plan=plan)
    crashed.run()
    assert _env_signature(crashed) == _env_signature(baseline)
    assert crashed.parallel_runner.respawns == 2


def _store_digest(root):
    """Byte-level digest of every file in a TraceDB store directory."""
    digests = {}
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            digests[str(path.relative_to(root))] = hashlib.sha256(
                path.read_bytes()).hexdigest()
    return digests


def test_selfplay_shard_crash_keeps_trace_store_byte_identical(tmp_path):
    baseline = SelfPlayPool(**SP_KW, trace_dir=str(tmp_path / "base"),
                            num_processes=2, process_backend="process")
    baseline.run()
    crashed = SelfPlayPool(**SP_KW, trace_dir=str(tmp_path / "crash"),
                           num_processes=2, process_backend="process",
                           fault_plan=_shard_crash_plan(1, 2))
    crashed.run()
    assert crashed.parallel_runner.respawns == 1
    assert _selfplay_signature(crashed) == _selfplay_signature(baseline)
    assert _store_digest(tmp_path / "crash") == _store_digest(tmp_path / "base"), \
        "the respawned shard's streamed trace store must merge byte-identically"
