"""Tests for backend primitive ops and the tape autodiff (gradient correctness)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.backend import EagerEngine, Tape, functional as F, use_engine
from repro.backend.autodiff import apply_op, numeric_gradient
from repro.backend.ops import OPS, get_op, unbroadcast
from repro.backend.tensor import Tensor
from repro.system import System


@pytest.fixture
def engine():
    return EagerEngine(System.create(seed=0))


def test_registry_contains_core_ops():
    for name in ["matmul", "addmm", "add", "mul", "tanh", "relu", "softmax", "sum", "mean",
                 "concat", "gather_rows", "clip", "stop_gradient"]:
        assert get_op(name).name == name
    with pytest.raises(KeyError):
        get_op("not_an_op")


def test_unbroadcast_reduces_to_target_shape():
    grad = np.ones((4, 3), dtype=np.float32)
    assert unbroadcast(grad, (3,)).shape == (3,)
    assert unbroadcast(grad, (1, 3)).shape == (1, 3)
    assert np.allclose(unbroadcast(grad, (3,)), 4.0)


def _check_gradient(engine, fn, x, tol=2e-2):
    """Compare the tape gradient of scalar fn(x) against central differences."""
    with use_engine(engine):
        tensor = Tensor(x, requires_grad=True)
        with Tape() as tape:
            loss = fn(tensor)
        grad = tape.gradient(loss, [tensor])[0]

        def numeric(value):
            return fn(Tensor(value)).item()

        expected = numeric_gradient(numeric, x)
    assert np.allclose(grad, expected, atol=tol, rtol=tol), f"max err {np.abs(grad - expected).max()}"


UNARY_CASES = [
    ("tanh", lambda t: F.reduce_sum(F.tanh(t))),
    ("relu", lambda t: F.reduce_sum(F.relu(t))),
    ("sigmoid", lambda t: F.reduce_sum(F.sigmoid(t))),
    ("softplus", lambda t: F.reduce_sum(F.softplus(t))),
    ("square", lambda t: F.reduce_sum(F.square(t))),
    ("exp", lambda t: F.reduce_sum(F.exp(t))),
    ("mean", lambda t: F.reduce_mean(t)),
    ("scale_shift", lambda t: F.reduce_sum(F.scale_shift(t, 2.5, -1.0))),
    ("softmax", lambda t: F.reduce_sum(F.square(F.softmax(t)))),
    ("log_softmax", lambda t: F.reduce_sum(F.square(F.log_softmax(t)))),
    ("abs", lambda t: F.reduce_sum(F.absolute(t))),
    ("neg", lambda t: F.reduce_sum(F.neg(t))),
]


@pytest.mark.parametrize("name,fn", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_gradients_match_numeric(engine, name, fn):
    rng = np.random.default_rng(3)
    x = rng.normal(0.5, 1.0, size=(3, 4)).astype(np.float32)
    _check_gradient(engine, fn, x)


def test_matmul_gradient(engine):
    rng = np.random.default_rng(0)
    b = rng.normal(size=(4, 2)).astype(np.float32)
    _check_gradient(engine, lambda t: F.reduce_sum(F.square(F.matmul(t, Tensor(b)))),
                    rng.normal(size=(3, 4)).astype(np.float32))


def test_addmm_matches_unfused(engine):
    rng = np.random.default_rng(1)
    x, w, bias = (rng.normal(size=s).astype(np.float32) for s in [(5, 3), (3, 2), (2,)])
    with use_engine(engine):
        fused = F.addmm(Tensor(x), Tensor(w), Tensor(bias))
        unfused = F.bias_add(F.matmul(Tensor(x), Tensor(w)), Tensor(bias))
    assert np.allclose(fused.numpy(), unfused.numpy(), atol=1e-5)


def test_gather_rows_and_concat_gradients(engine):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 5)).astype(np.float32)
    indices = [0, 2, 4, 1]
    _check_gradient(engine, lambda t: F.reduce_sum(F.square(F.gather_rows(t, indices))), x)
    y = rng.normal(size=(4, 3)).astype(np.float32)
    _check_gradient(engine, lambda t: F.reduce_sum(F.square(F.concat([t, Tensor(y)], axis=-1))), x)


def test_minimum_maximum_clip_gradients(engine):
    rng = np.random.default_rng(4)
    x = rng.normal(size=(3, 3)).astype(np.float32)
    other = rng.normal(size=(3, 3)).astype(np.float32)
    _check_gradient(engine, lambda t: F.reduce_sum(F.minimum(t, Tensor(other))), x)
    _check_gradient(engine, lambda t: F.reduce_sum(F.maximum(t, Tensor(other))), x)
    _check_gradient(engine, lambda t: F.reduce_sum(F.clip(t, -0.5, 0.5)), x)


def test_stop_gradient_blocks_flow(engine):
    with use_engine(engine):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with Tape() as tape:
            loss = F.reduce_sum(F.mul(F.stop_gradient(x), x))
        grad = tape.gradient(loss, [x])[0]
    # d/dx of stop_grad(x) * x is stop_grad(x) = 1 (not 2x).
    assert np.allclose(grad, 1.0)


def test_gaussian_log_prob_matches_scipy(engine):
    from scipy import stats
    rng = np.random.default_rng(5)
    mean = rng.normal(size=(4, 3)).astype(np.float32)
    log_std = rng.normal(scale=0.3, size=(3,)).astype(np.float32)
    actions = rng.normal(size=(4, 3)).astype(np.float32)
    with use_engine(engine):
        log_prob = F.gaussian_log_prob(Tensor(actions), Tensor(mean), Tensor(log_std)).numpy()
    expected = stats.norm.logpdf(actions, loc=mean, scale=np.exp(log_std)).sum(axis=-1)
    assert np.allclose(log_prob, expected, atol=1e-4)


def test_mse_and_huber_losses(engine):
    with use_engine(engine):
        pred = Tensor(np.array([[1.0], [3.0]], dtype=np.float32))
        target = Tensor(np.array([[0.0], [0.0]], dtype=np.float32))
        assert F.mse_loss(pred, target).item() == pytest.approx(5.0)
        huber = F.huber_loss(pred, target, delta=1.0).item()
    # elementwise huber: 0.5 for |1| and 2.5 for |3| -> mean 1.5
    assert huber == pytest.approx(1.5, rel=1e-3)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=5),
                  elements=st.floats(-3, 3, width=32)))
def test_softmax_rows_sum_to_one(x):
    engine = EagerEngine(System.create(seed=0))
    with use_engine(engine):
        out = F.softmax(Tensor(x)).numpy()
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)
    assert np.all(out >= 0)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(np.float32, (3, 4), elements=st.floats(-5, 5, width=32)),
       hnp.arrays(np.float32, (3, 4), elements=st.floats(-5, 5, width=32)))
def test_add_sub_roundtrip(a, b):
    engine = EagerEngine(System.create(seed=0))
    with use_engine(engine):
        roundtrip = F.sub(F.add(Tensor(a), Tensor(b)), Tensor(b)).numpy()
    assert np.allclose(roundtrip, a, atol=1e-4)


def test_every_registered_op_reports_kernels_consistently():
    """Forward kernels must always be a list of KernelSpec (possibly empty)."""
    rng = np.random.default_rng(0)
    sample_inputs = {
        "matmul": [rng.normal(size=(2, 3)), rng.normal(size=(3, 2))],
        "addmm": [rng.normal(size=(2, 3)), rng.normal(size=(3, 2)), rng.normal(size=(2,))],
        "concat": [rng.normal(size=(2, 2)), rng.normal(size=(2, 2))],
        "gather_rows": [rng.normal(size=(2, 3))],
    }
    sample_attrs = {
        "clip": {"low": -1.0, "high": 1.0},
        "pow_const": {"exponent": 2.0},
        "scale_shift": {"scale": 1.0, "shift": 0.0},
        "reshape": {"shape": (4,)},
        "gather_rows": {"indices": np.array([0, 1])},
        "concat": {"axis": -1},
        "sum": {"axis": None},
        "mean": {"axis": None},
        "reduce_max": {"axis": None},
    }
    for name, op in OPS.items():
        default_inputs = [rng.normal(size=(2, 2)), rng.normal(size=(2, 2))]
        inputs = [np.asarray(x, dtype=np.float32) for x in sample_inputs.get(name, default_inputs)]
        attrs = sample_attrs.get(name, {})
        output = np.asarray(op.forward(inputs, attrs), dtype=np.float32)
        kernels = op.kernels(inputs, output, attrs)
        backward = op.backward_kernels(inputs, output, attrs)
        assert isinstance(kernels, list) and isinstance(backward, list)
        for spec in kernels + backward:
            assert spec.flops >= 0 and spec.bytes_accessed >= 0
