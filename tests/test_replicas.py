"""Tests for the sharded inference service: replicas, routing, broadcasts."""

import numpy as np
import pytest

from repro.backend import GraphEngine
from repro.hw.costmodel import CostModelConfig
from repro.hw.gpu import GPUDevice
from repro.minigo import (
    InferenceService,
    InferenceStats,
    LeastLoadedRouting,
    MinigoConfig,
    MinigoTraining,
    PolicyValueNet,
    RoundRobinRouting,
    SelfPlayPool,
    StickyRouting,
    make_routing_policy,
)
from repro.profiler import multi_process_summary
from repro.system import System

BOARD = 5
NUM_MOVES = BOARD * BOARD + 1

POOL_KWARGS = dict(board_size=BOARD, num_simulations=6, games_per_worker=1,
                   max_moves=8, hidden=(16, 16), seed=3)


def make_network(seed=7):
    return PolicyValueNet(BOARD, (16, 16), rng=np.random.default_rng(seed))


def make_client(service, device, *, worker, seed=0, stream=0):
    system = System.create(seed=seed, device=device, worker=worker)
    system.cuda.default_stream = stream
    engine = GraphEngine(system, flavor="tensorflow")
    return service.connect(system, engine, worker=worker)


def _game_records(pool):
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


# ---------------------------------------------------------------- routing
def test_routing_policy_factory_and_validation():
    assert isinstance(make_routing_policy("round-robin"), RoundRobinRouting)
    assert isinstance(make_routing_policy("least-loaded"), LeastLoadedRouting)
    assert isinstance(make_routing_policy("sticky"), StickyRouting)
    policy = LeastLoadedRouting()
    assert make_routing_policy(policy) is policy   # instances pass through
    with pytest.raises(ValueError):
        make_routing_policy("bogus")
    with pytest.raises(ValueError):
        InferenceService(make_network(), num_replicas=0)
    with pytest.raises(ValueError):
        SelfPlayPool(2, batched_inference=True, num_replicas=0, **POOL_KWARGS)
    with pytest.raises(ValueError):
        SelfPlayPool(2, batched_inference=True, routing="bogus", **POOL_KWARGS)
    with pytest.raises(ValueError):
        # There is no service to shard without batched inference.
        SelfPlayPool(2, num_replicas=2, **POOL_KWARGS)


def test_round_robin_cycles_and_least_loaded_picks_earliest_free():
    service = InferenceService(make_network(), num_replicas=3)
    replicas = service.replicas
    rr = RoundRobinRouting()
    assert [rr.choose(replicas, host_worker="w").index for _ in range(5)] == [0, 1, 2, 0, 1]
    assert rr.decisions == {0: 2, 1: 2, 2: 1}

    ll = LeastLoadedRouting()
    replicas[0].free_us = 300.0
    replicas[1].free_us = 100.0
    replicas[2].free_us = 100.0
    # Earliest-free wins; ties break toward the lowest index.
    assert ll.choose(replicas, host_worker="w").index == 1
    replicas[1].free_us = 500.0
    assert ll.choose(replicas, host_worker="w").index == 2


def test_reused_routing_policy_instance_is_reset_per_service():
    """A policy object reused across services must not carry stale state."""
    policy = StickyRouting()
    first = InferenceService(make_network(), num_replicas=2, routing=policy)
    policy.choose(first.replicas, host_worker="a")
    policy.choose(first.replicas, host_worker="b")
    assert policy.assignments and policy.decisions
    # Adopting the same instance in a new service starts from scratch, so
    # two identical runs route identically and routed counts match calls.
    second = InferenceService(make_network(), num_replicas=2, routing=policy)
    assert second.routing is policy
    assert policy.assignments == {} and policy.decisions == {}
    assert policy.choose(second.replicas, host_worker="z").index == 0


def test_sticky_routing_pins_each_host_to_one_replica():
    service = InferenceService(make_network(), num_replicas=2, routing="sticky")
    replicas = service.replicas
    sticky = service.routing
    first = [sticky.choose(replicas, host_worker=w).index for w in ("a", "b", "c")]
    assert first == [0, 1, 0]          # new hosts assigned round-robin
    again = [sticky.choose(replicas, host_worker=w).index for w in ("c", "a", "b")]
    assert again == [0, 0, 1]          # existing hosts keep their replica
    assert sticky.assignments == {"a": 0, "b": 1, "c": 0}


# ------------------------------------------------------------ service-level
def test_unpinned_service_keeps_kernels_on_the_client_device():
    """Without a primary device, replica 0 executes on each host's own GPU.

    The pre-sharding behaviour of a directly constructed service: inference
    kernels must stay visible on the client's device, not vanish onto a
    hidden internal replica device."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8)
    assert not service.replicas[0].pinned
    client = make_client(service, device, worker="w")
    client.evaluate(np.random.default_rng(0).normal(size=(2, 75)).astype(np.float32))
    assert device.kernels(), "inference kernels must land on the client's device"
    assert not service.replicas[0].device.kernels()
    # With a primary device, replica 0 is pinned to it (and replicas beyond
    # the first are always pinned to their own fresh device).
    pinned = InferenceService(make_network(), num_replicas=2, primary_device=device)
    assert pinned.replicas[0].pinned and pinned.replicas[0].device is device
    assert pinned.replicas[1].pinned


def test_replicas_have_private_devices_and_results_match_solo():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=4, num_replicas=2,
                               primary_device=device)
    assert service.replicas[0].device is device          # replica 0 shares the pool GPU
    assert service.replicas[1].device is not device      # replica 1 brings its own
    assert service.replicas[1].device.name != device.name

    client = make_client(service, device, worker="w")
    features = np.random.default_rng(2).normal(size=(10, 75)).astype(np.float32)
    priors, values = client.evaluate(features)
    assert priors.shape == (10, NUM_MOVES) and values.shape == (10,)
    assert service.stats.engine_calls == 3               # 4 + 4 + 2 rows
    # Round-robin fanned the three chunks across both replicas.
    assert service.routing_decisions() == [2, 1]
    assert [r.stats.engine_calls for r in service.replicas] == [2, 1]
    # Kernels landed on the chosen replica's device.
    assert device.kernels()
    assert service.replicas[1].device.kernels()

    solo = InferenceService(make_network(), max_batch=64)
    solo_client = make_client(solo, GPUDevice(), worker="solo")
    solo_priors, solo_values = solo_client.evaluate(features[:4])
    np.testing.assert_allclose(priors[:4], solo_priors, atol=1e-6)
    np.testing.assert_allclose(values[:4], solo_values, atol=1e-6)


def test_rolled_up_stats_match_the_live_aggregate():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=4, num_replicas=3,
                               routing="least-loaded")
    a = make_client(service, device, worker="a", stream=0)
    b = make_client(service, device, worker="b", seed=1, stream=1)
    rng = np.random.default_rng(4)
    a.submit(rng.normal(size=(6, 75)).astype(np.float32))
    b.system.clock.advance(25.0)
    b.submit(rng.normal(size=(5, 75)).astype(np.float32))
    service.serve_queued(policy="max-batch")

    rollup = service.rolled_up_stats()
    live = service.stats
    assert rollup.engine_calls == live.engine_calls
    assert rollup.rows == live.rows == 11
    assert rollup.cross_worker_batches == live.cross_worker_batches
    assert rollup.rows_by_worker == live.rows_by_worker
    assert rollup.queued_waits == live.queued_waits
    assert rollup.queue_delay_us == pytest.approx(live.queue_delay_us)
    assert rollup.batch_sizes.count == live.batch_sizes.count
    assert rollup.batch_sizes.total_rows == live.batch_sizes.total_rows
    assert rollup.requests == live.requests   # all tickets served


def test_batch_arriving_while_every_replica_is_busy_waits_for_a_horizon():
    """Timeout-policy edge under sharding: all replicas busy at departure."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8, num_replicas=2,
                               routing="least-loaded")
    service.replicas[0].free_us = 40_000.0
    service.replicas[1].free_us = 30_000.0
    client = make_client(service, device, worker="w")
    ticket = client.submit(np.random.default_rng(0).normal(size=(2, 75)).astype(np.float32))

    calls = service.serve_queued(policy="timeout", timeout_us=100.0)
    assert calls == 1 and ticket.done
    # Least-loaded sent the batch to the replica freeing earliest; it still
    # could not start before that horizon, and the wait is charged as delay.
    assert service.routing_decisions() == [0, 1]
    assert client.system.clock.now_us >= 30_000.0
    assert service.stats.max_queue_delay_us >= 30_000.0 - 1e-6
    assert service.replicas[1].free_us >= 30_000.0
    assert service.replicas[0].free_us == 40_000.0   # untouched horizon


def test_timeout_deadline_exactly_at_earliest_pending_arrival():
    """A cutoff equal to the oldest arrival serves that request (inclusive)."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8, num_replicas=2)
    client = make_client(service, device, worker="w")
    client.system.clock.advance(1_234.0)
    ticket = client.submit(np.random.default_rng(1).normal(size=(2, 75)).astype(np.float32))
    arrival = service.earliest_pending_arrival_us()
    assert arrival == pytest.approx(1_234.0)

    # Cutoff strictly before the arrival holds the ticket...
    assert service.serve_queued(policy="timeout", timeout_us=0.0,
                                arrival_cutoff_us=arrival - 1e-6) == 0
    assert not ticket.done and service.pending_tickets == 1
    # ...a cutoff exactly at the arrival (deadline == arrival + 0) serves it,
    # departing at the deadline itself.
    assert service.serve_queued(policy="timeout", timeout_us=0.0,
                                arrival_cutoff_us=arrival) == 1
    assert ticket.done
    assert service.stats.queued_waits == 1
    assert service.stats.max_queue_delay_us == pytest.approx(0.0)


def test_update_weights_broadcasts_to_every_replica():
    service = InferenceService(make_network(seed=7), num_replicas=3)
    device = GPUDevice()
    client = make_client(service, device, worker="w")
    features = np.random.default_rng(3).normal(size=(1, 75)).astype(np.float32)
    before, _ = client.evaluate(features)

    new_weights = make_network(seed=99).state_dict()
    horizons = [replica.free_us for replica in service.replicas]
    span = service.update_weights(new_weights)
    assert span > 0.0
    for replica, old in zip(service.replicas, horizons):
        assert replica.free_us > old                  # cannot serve mid-copy
        assert replica.stats.weight_broadcasts == 1
        assert replica.stats.weight_broadcast_us > 0.0
    assert service.stats.weight_broadcasts == 1
    assert service.stats.weight_broadcast_us == pytest.approx(span)

    after, _ = client.evaluate(features)
    assert not np.allclose(before, after), "new weights must actually load"

    # charge=False is placement only: no horizon movement, no stats.
    uncharged = InferenceService(make_network(seed=7), num_replicas=2)
    assert uncharged.update_weights(new_weights, charge=False) == 0.0
    assert all(replica.free_us == 0.0 for replica in uncharged.replicas)
    assert uncharged.stats.weight_broadcasts == 0


# ------------------------------------------------- empty-service guards
def test_empty_service_stats_are_zero_division_safe():
    stats = InferenceStats()
    assert stats.mean_batch_rows == 0.0
    assert stats.mean_occupancy == 0.0
    assert stats.mean_queue_delay_us == 0.0
    assert stats.cross_worker_share == 0.0
    assert stats.calls_saved == 0

    service = InferenceService(make_network(), max_batch=8, num_replicas=2)
    assert service.flush() == 0
    assert service.serve_queued(policy="max-batch") == 0
    assert service.earliest_pending_arrival_us() is None
    for source in (service.stats, service.rolled_up_stats(),
                   *[replica.stats for replica in service.replicas]):
        assert source.engine_calls == 0
        assert source.mean_occupancy == 0.0
        assert source.mean_queue_delay_us == 0.0
        assert source.cross_worker_share == 0.0
    assert service.replica_utilisation(0.0) == [0.0, 0.0]
    assert service.replica_utilisation(1_000.0) == [0.0, 0.0]
    assert service.routing_decisions() == [0, 0]
    # A capacity-less stats object never divides by its zero capacity.
    assert InferenceStats(rows=8, engine_calls=2).mean_occupancy == 0.0


# --------------------------------------------------- pool-level determinism
@pytest.mark.parametrize("routing", ["round-robin", "least-loaded", "sticky"])
def test_single_replica_any_routing_is_bitwise_identical(routing):
    """The sharding acceptance bar: num_replicas=1 reproduces PR 3 exactly."""
    baseline = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=4,
                            scheduler="event", **POOL_KWARGS)
    baseline.run()
    sharded = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=4,
                           scheduler="event", num_replicas=1, routing=routing,
                           **POOL_KWARGS)
    sharded.run()

    assert _game_records(sharded) == _game_records(baseline)
    assert [run.total_time_us for run in sharded.runs] == \
        [run.total_time_us for run in baseline.runs]
    assert multi_process_summary(sharded.traces()) == multi_process_summary(baseline.traces())
    # All the work really went through replica 0.
    assert sharded.inference_service.routing_decisions() == \
        [sharded.inference_service.stats.engine_calls]
    assert sharded.pool_scheduler.stats.eager_serves == 0


def test_two_replicas_shorten_the_span_on_an_inference_bound_pool():
    cost_config = CostModelConfig(python_op_us=0.001)
    kwargs = dict(board_size=BOARD, num_simulations=16, games_per_worker=1,
                  max_moves=6, hidden=(16, 16), seed=0, profile=False,
                  cost_config=cost_config, batched_inference=True, leaf_batch=8,
                  inference_max_batch=8, scheduler="event")
    single = SelfPlayPool(4, num_replicas=1, **kwargs)
    single.run()
    sharded = SelfPlayPool(4, num_replicas=2, **kwargs)
    sharded.run()

    assert sharded.collection_span_us() < single.collection_span_us()
    service = sharded.inference_service
    assert all(replica.stats.engine_calls > 0 for replica in service.replicas)
    assert sum(service.routing_decisions()) == service.stats.engine_calls
    assert sharded.pool_scheduler.stats.eager_serves > 0, \
        "full batches must be served eagerly while other workers still run"
    span = sharded.collection_span_us()
    assert all(0.0 < util <= 1.0 for util in service.replica_utilisation(span))
    rollup = service.rolled_up_stats()
    assert rollup.engine_calls == service.stats.engine_calls
    assert rollup.rows == service.stats.rows


def test_training_round_threads_replicas_and_broadcasts_weights():
    config = MinigoConfig(num_workers=3, board_size=BOARD, num_simulations=4,
                          games_per_worker=1, max_moves=6, sgd_steps=2,
                          evaluation_games=1, hidden=(16, 16), seed=0,
                          batched_inference=True, leaf_batch=4,
                          scheduler="event", num_replicas=2, routing="least-loaded")
    result = MinigoTraining(config).run_round()

    assert result.selfplay_replica_stats is not None
    assert len(result.selfplay_replica_stats) == 2
    assert sum(rs.engine_calls for rs in result.selfplay_replica_stats) == \
        result.selfplay_inference_stats.engine_calls
    # The accepted-or-not weights were broadcast to both replicas.
    assert result.weight_broadcast_us > 0.0
    # The evaluation phase shares the replica/routing configuration.
    assert result.evaluation_inference_stats is not None
    assert result.evaluation_inference_stats.engine_calls > 0

    # Without batched inference there is nothing to shard or broadcast.
    legacy = MinigoTraining(MinigoConfig(num_workers=1, board_size=BOARD,
                                         num_simulations=2, games_per_worker=1,
                                         max_moves=4, sgd_steps=1, evaluation_games=1,
                                         hidden=(8, 8), seed=0)).run_round()
    assert legacy.selfplay_replica_stats is None
    assert legacy.weight_broadcast_us == 0.0
