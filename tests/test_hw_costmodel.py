"""Tests for the cost model."""

import numpy as np
import pytest

from repro.hw.costmodel import CostModel, CostModelConfig, scaled_sim_costs


@pytest.fixture
def exact_model() -> CostModel:
    return CostModel(CostModelConfig(jitter=0.0))


def test_python_work_scales_with_units(exact_model):
    one = exact_model.python_work(1.0)
    ten = exact_model.python_work(10.0)
    assert ten == pytest.approx(10 * one)


def test_backend_costs_differ_by_engine(exact_model):
    graph = exact_model.backend_call("tensorflow", "graph")
    eager = exact_model.backend_call("tensorflow", "eager")
    torch = exact_model.backend_call("pytorch", "eager")
    assert graph > eager > torch
    assert exact_model.backend_op_dispatch("tensorflow", "eager") > \
        exact_model.backend_op_dispatch("tensorflow", "graph")


def test_unknown_backend_flavor_raises(exact_model):
    with pytest.raises(KeyError):
        exact_model.backend_call("jax", "graph")
    with pytest.raises(KeyError):
        exact_model.backend_op_dispatch("jax", "graph")


def test_autograph_inflation_applies_only_in_autograph(exact_model):
    base = exact_model.backend_op_dispatch("tensorflow", "autograph")
    inflated = exact_model.backend_op_dispatch("tensorflow", "autograph", in_autograph_fn=True)
    assert inflated == pytest.approx(base * exact_model.config.autograph_dispatch_inflation)
    graph = exact_model.backend_op_dispatch("tensorflow", "graph", in_autograph_fn=True)
    assert graph == pytest.approx(exact_model.backend_op_dispatch("tensorflow", "graph"))


def test_kernel_duration_roofline(exact_model):
    compute_bound = exact_model.kernel_duration(flops=1e9, bytes_accessed=0)
    memory_bound = exact_model.kernel_duration(flops=0, bytes_accessed=1e9)
    tiny = exact_model.kernel_duration(flops=1, bytes_accessed=1)
    config = exact_model.config
    assert compute_bound == pytest.approx(config.gpu_kernel_fixed_us + 1e9 / config.gpu_flops_per_us)
    assert memory_bound == pytest.approx(config.gpu_kernel_fixed_us + 1e9 / config.gpu_bytes_per_us)
    assert tiny == pytest.approx(config.gpu_kernel_fixed_us, rel=0.01)


def test_cuda_api_has_default_for_unknown_api(exact_model):
    assert exact_model.cuda_api("cudaSomethingNew") > 0


def test_sim_step_costs_ordered_by_complexity(exact_model):
    pong = exact_model.sim_step("Pong")
    walker = exact_model.sim_step("Walker2D")
    airlearning = exact_model.sim_step("AirLearning")
    assert pong < walker < airlearning
    assert exact_model.sim_reset("Pong") == pytest.approx(pong * exact_model.config.sim_reset_factor)
    with pytest.raises(KeyError):
        exact_model.sim_step("NotASimulator")


def test_interception_overheads(exact_model):
    profiling = exact_model.config.profiling
    assert exact_model.interception_overhead("pyprof") == pytest.approx(profiling.pyprof_interception_us)
    assert exact_model.interception_overhead("cuda") == pytest.approx(profiling.cuda_interception_us)
    assert exact_model.interception_overhead("annotation") == pytest.approx(profiling.annotation_us)
    with pytest.raises(ValueError):
        exact_model.interception_overhead("bogus")


def test_cupti_inflation_differs_per_api(exact_model):
    launch = exact_model.cupti_inflation("cudaLaunchKernel")
    memcpy = exact_model.cupti_inflation("cudaMemcpyAsync")
    assert launch != memcpy


def test_jitter_is_reproducible_per_seed():
    a = CostModel(seed=7)
    b = CostModel(seed=7)
    c = CostModel(seed=8)
    values_a = [a.python_work(5.0) for _ in range(10)]
    values_b = [b.python_work(5.0) for _ in range(10)]
    values_c = [c.python_work(5.0) for _ in range(10)]
    assert values_a == values_b
    assert values_a != values_c


def test_jitter_stays_close_to_base():
    model = CostModel(CostModelConfig(jitter=0.02), seed=3)
    samples = np.array([model.python_work(100.0) for _ in range(200)])
    assert abs(samples.mean() - 90.0) / 90.0 < 0.05  # base is 0.9us/unit * 100


def test_with_overrides_returns_new_model(exact_model):
    modified = exact_model.with_overrides(python_op_us=5.0)
    assert modified.python_work(1.0) == pytest.approx(5.0)
    assert exact_model.python_work(1.0) == pytest.approx(0.9)


def test_scaled_sim_costs():
    scaled = scaled_sim_costs(2.0)
    base = CostModelConfig().sim_step_us
    assert scaled["Pong"] == pytest.approx(2.0 * base["Pong"])
    assert scaled["Walker2D"] == pytest.approx(2.0 * base["Walker2D"])
