"""Tests for execution engines: native-call semantics, layers, optimizers."""

import numpy as np
import pytest

from repro.backend import (
    Adam,
    AutographEngine,
    EagerEngine,
    GraphEngine,
    MLP,
    MPIAdam,
    PyTorchEagerEngine,
    SGD,
    Tape,
    functional as F,
    hard_update,
    soft_update,
    use_engine,
)
from repro.backend.context import clear_engines, current_engine, maybe_current_engine, set_default_engine
from repro.backend.layers import Dense
from repro.backend.tensor import Parameter, Tensor, assign_flat_params, flatten_params, parameter_count
from repro.system import System


# ------------------------------------------------------------------ context
def test_current_engine_requires_activation():
    clear_engines()
    assert maybe_current_engine() is None
    with pytest.raises(RuntimeError):
        current_engine()
    engine = EagerEngine(System.create())
    set_default_engine(engine)
    assert current_engine() is engine


# -------------------------------------------------------------------- eager
def test_eager_each_op_is_a_native_call(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        y = F.relu(F.add(x, x))
    assert engine.native_call_count == 2
    assert engine.op_count == 2
    assert np.allclose(y.numpy(), 2.0)


def test_eager_backward_is_one_native_call(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        net = MLP(4, [8], 2, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1, 4), dtype=np.float32))
        with Tape() as tape:
            loss = F.reduce_mean(F.square(net(x)))
        forward_calls = engine.native_call_count
        tape.gradient(loss, net.parameters())
        assert engine.native_call_count == forward_calls + 1


def test_pytorch_eager_issues_fewer_ops_than_tf_eager():
    tf_system, torch_system = System.create(seed=0), System.create(seed=0)
    tf_engine, torch_engine = EagerEngine(tf_system), PyTorchEagerEngine(torch_system)
    for engine in (tf_engine, torch_engine):
        with use_engine(engine):
            net = MLP(8, [16, 16], 4, rng=np.random.default_rng(0))
            net(Tensor(np.ones((1, 8), dtype=np.float32)))
    assert torch_engine.op_count < tf_engine.op_count
    assert torch_engine.native_call_count < tf_engine.native_call_count
    assert torch_engine.fuses_linear and not tf_engine.fuses_linear


# -------------------------------------------------------------------- graph
def test_graph_function_is_single_native_call(system):
    engine = GraphEngine(system)
    with use_engine(engine):
        net = MLP(4, [8, 8], 2, rng=np.random.default_rng(0))
        forward = engine.function(lambda obs: net(Tensor(obs)).numpy(), name="forward", num_feeds=1)
        out = forward(np.ones((1, 4), dtype=np.float32))
        assert engine.native_call_count == 1
        assert engine.op_count > 1
        forward(np.ones((1, 4), dtype=np.float32))
        assert engine.native_call_count == 2
    assert out.shape == (1, 2)
    assert engine.graphs[0].traced
    assert engine.graphs[0].ops_per_call == engine.op_count // 2


def test_graph_top_level_op_falls_back_to_single_call(system):
    engine = GraphEngine(system)
    with use_engine(engine):
        F.relu(Tensor(np.ones(3, dtype=np.float32)))
    assert engine.native_call_count == 1


# ---------------------------------------------------------------- autograph
def test_autograph_nested_compiled_calls_do_not_add_transitions(system):
    engine = AutographEngine(system)
    with use_engine(engine):
        net = MLP(4, [8], 2, rng=np.random.default_rng(0))
        inner = engine.function(lambda obs: net(Tensor(obs)).numpy(), name="policy")

        def loop(n):
            for _ in range(n):
                inner(np.ones((1, 4), dtype=np.float32))

        outer = engine.function(loop, name="collect")
        outer(5)
    assert engine.native_call_count == 1


def test_autograph_py_function_escapes_to_python(system):
    engine = AutographEngine(system)
    events = []

    class Boundary:
        def enter(self, eng, name):
            events.append(("enter", name))

        def exit(self, eng, name):
            events.append(("exit", name))

    engine.boundary = Boundary()
    with use_engine(engine):
        def body():
            engine.py_function(lambda: events.append(("python", "sim")))

        fn = engine.function(body, name="driver")
        fn()
    kinds = [kind for kind, _ in events]
    assert kinds == ["enter", "exit", "python", "enter", "exit"]


def test_autograph_dispatch_inflation_applies_to_inference_functions(system):
    engine = AutographEngine(system)
    with use_engine(engine):
        net = MLP(4, [8], 2, rng=np.random.default_rng(0))
        plain = engine.function(lambda: net(Tensor(np.ones((1, 4), np.float32))), name="train",
                                inflate_dispatch=False)
        inflated = engine.function(lambda: net(Tensor(np.ones((1, 4), np.float32))), name="infer",
                                   inflate_dispatch=True)
        start = system.clock.now_us
        plain()
        plain_cost = system.clock.now_us - start
        start = system.clock.now_us
        inflated()
        inflated_cost = system.clock.now_us - start
    assert inflated_cost > plain_cost * 1.5


def test_autograph_first_escape_charges_python_once_per_entry(system):
    engine = AutographEngine(system)
    costs = []
    with use_engine(engine):
        def body():
            for _ in range(3):
                start = system.clock.now_us
                engine.py_function(lambda: None)
                costs.append(system.clock.now_us - start)

        fn = engine.function(body, name="driver")
        fn()
    # Only the first escape after entering the function pays the big prologue.
    assert costs[0] > costs[1] * 3
    assert costs[1] == pytest.approx(costs[2], rel=0.5)


# -------------------------------------------------------------------- layers
def test_dense_forward_matches_numpy(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        layer = Dense(3, 2, activation=None, rng=np.random.default_rng(0))
        x = np.ones((4, 3), dtype=np.float32)
        out = layer(Tensor(x)).numpy()
    expected = x @ layer.weight.data + layer.bias.data
    assert np.allclose(out, expected, atol=1e-6)


def test_mlp_parameter_count_and_state_dict(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        net = MLP(4, [8, 8], 2, rng=np.random.default_rng(0))
    expected = 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2
    assert net.num_parameters() == expected
    assert parameter_count(net.parameters()) == expected
    state = net.state_dict()
    other = MLP(4, [8, 8], 2, rng=np.random.default_rng(99))
    other.load_state_dict(state)
    for a, b in zip(net.parameters(), other.parameters()):
        assert np.allclose(a.data, b.data)
    with pytest.raises(ValueError):
        other.load_state_dict(state[:-1])


def test_soft_and_hard_updates(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        source = MLP(3, [4], 2, rng=np.random.default_rng(1))
        target = MLP(3, [4], 2, rng=np.random.default_rng(2))
        original_target = [p.data.copy() for p in target.parameters()]
        soft_update(target, source, tau=0.5)
        for target_param, source_param, original in zip(target.parameters(), source.parameters(), original_target):
            assert np.allclose(target_param.data, 0.5 * original + 0.5 * source_param.data, atol=1e-6)
        hard_update(target, source)
        for target_param, source_param in zip(target.parameters(), source.parameters()):
            assert np.allclose(target_param.data, source_param.data)


def test_soft_update_separate_calls_issue_more_transitions():
    bundled_sys, separate_sys = System.create(seed=0), System.create(seed=0)
    for sys_, separate in ((bundled_sys, False), (separate_sys, True)):
        engine = GraphEngine(sys_)
        with use_engine(engine):
            source = MLP(3, [4], 2, rng=np.random.default_rng(1))
            target = MLP(3, [4], 2, rng=np.random.default_rng(2))
            soft_update(target, source, tau=0.1, separate_calls=separate)
        if separate:
            separate_calls = engine.native_call_count
        else:
            bundled_calls = engine.native_call_count
    assert separate_calls > bundled_calls


# ----------------------------------------------------------------- optimizers
def test_sgd_and_adam_reduce_quadratic_loss(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        for optimizer_cls in (SGD, Adam):
            param = Parameter(np.array([5.0, -3.0], dtype=np.float32))
            optimizer = optimizer_cls([param], lr=0.1)
            for _ in range(200):
                grads = [2.0 * param.data]
                optimizer.step(grads)
            assert np.linalg.norm(param.data) < 0.1


def test_optimizer_validates_gradients(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        param = Parameter(np.zeros((2, 2), dtype=np.float32))
        optimizer = Adam([param], lr=0.1)
        with pytest.raises(ValueError):
            optimizer.step([])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(3, dtype=np.float32)])
    with pytest.raises(ValueError):
        Adam([param], lr=-1.0)


def test_mpi_adam_matches_fused_adam_numerically():
    fused_sys, mpi_sys = System.create(seed=0), System.create(seed=0)
    updates = []
    for sys_, optimizer_cls in ((fused_sys, Adam), (mpi_sys, MPIAdam)):
        engine = GraphEngine(sys_)
        with use_engine(engine):
            param = Parameter(np.array([1.0, 2.0, 3.0], dtype=np.float32))
            optimizer = optimizer_cls([param], lr=0.05)
            for step in range(10):
                optimizer.step([param.data * 0.5 + step * 0.01])
            updates.append(param.data.copy())
    assert np.allclose(updates[0], updates[1], atol=1e-5)


def test_mpi_adam_is_more_expensive_than_fused_adam():
    costs = {}
    for label, optimizer_cls in (("fused", Adam), ("mpi", MPIAdam)):
        sys_ = System.create(seed=0)
        engine = GraphEngine(sys_)
        with use_engine(engine):
            params = [Parameter(np.zeros((256, 256), dtype=np.float32)),
                      Parameter(np.zeros(256, dtype=np.float32))]
            optimizer = optimizer_cls(params, lr=1e-3)
            optimizer.step([np.ones_like(p.data) for p in params])
        costs[label] = sys_.clock.now_us
    assert costs["mpi"] > 2.0 * costs["fused"]


def test_flat_param_helpers():
    params = [Parameter(np.arange(4, dtype=np.float32).reshape(2, 2)),
              Parameter(np.array([9.0], dtype=np.float32))]
    flat = flatten_params(params)
    assert flat.tolist() == [0, 1, 2, 3, 9]
    assign_flat_params(params, np.zeros(5, dtype=np.float32))
    assert np.allclose(params[0].data, 0)
    with pytest.raises(ValueError):
        assign_flat_params(params, np.zeros(6, dtype=np.float32))
