"""Round-trip tests for the legacy trace_store wrappers over TraceDB."""

import json

import pytest

from repro.profiler.events import Event, EventTrace, OverheadMarker
from repro.profiler.trace_store import TraceDumper, TraceReader, load_trace
from repro.tracedb import TraceDB


def make_trace(worker: str, *, num_events: int = 10, phase: str = "default") -> EventTrace:
    trace = EventTrace(metadata={"worker": worker, "total_time_us": float(num_events * 10)})
    for i in range(num_events):
        trace.add_event(Event(category="Backend", name=f"op_{i}",
                              start_us=10.0 * i, end_us=10.0 * i + 5.0,
                              worker=worker, phase=phase))
    trace.add_event(Event(category="Operation", name="step", start_us=0.0,
                          end_us=10.0 * num_events, worker=worker, phase=phase))
    trace.add_marker(OverheadMarker(kind="annotation", time_us=1.0, worker=worker, phase=phase))
    return trace


# ----------------------------------------------------------------- roundtrip
def test_multi_worker_index_merging(tmp_path):
    """Separate dumpers for separate workers merge into one store index."""
    trace_a = make_trace("worker_a", num_events=7)
    trace_b = make_trace("worker_b", num_events=5)
    TraceDumper(str(tmp_path), worker="worker_a").dump(trace_a)
    TraceDumper(str(tmp_path), worker="worker_b").dump(trace_b)

    reader = TraceReader(str(tmp_path))
    assert reader.workers() == ["worker_a", "worker_b"]
    loaded = reader.read_all()
    assert loaded["worker_a"].total_events() == trace_a.total_events()
    assert loaded["worker_b"].total_events() == trace_b.total_events()
    assert loaded["worker_b"].metadata["worker"] == "worker_b"
    # The second dump must not clobber the first worker's entry.
    assert len(loaded["worker_a"].markers) == 1


def test_empty_trace_roundtrip(tmp_path):
    """Dumping an empty trace still registers the worker in the index."""
    chunks = TraceDumper(str(tmp_path), worker="worker_0").dump(EventTrace(metadata={"worker": "worker_0"}))
    assert chunks == []
    reader = TraceReader(str(tmp_path))
    assert reader.workers() == ["worker_0"]
    loaded = reader.read_worker("worker_0")
    assert loaded.total_events() == 0
    assert loaded.markers == []
    assert loaded.metadata["worker"] == "worker_0"


def test_chunk_boundary_splits(tmp_path):
    """chunk_events smaller than the record count produces multiple chunks."""
    trace = make_trace("worker_0", num_events=25)
    dumper = TraceDumper(str(tmp_path), worker="worker_0", chunk_events=8)
    chunks = dumper.dump(trace)
    assert len(chunks) > 1
    # Record counts across chunks add up to the full trace.
    assert sum(c.num_events for c in chunks) == len(trace.events)
    assert sum(c.num_operations for c in chunks) == len(trace.operations)
    assert sum(c.num_markers for c in chunks) == len(trace.markers)
    loaded = load_trace(str(tmp_path))
    assert loaded.total_events() == trace.total_events()
    assert sorted(e.name for e in loaded.events) == sorted(e.name for e in trace.events)


def test_repeat_dump_appends_chunks(tmp_path):
    """A dumper reused for the same worker keeps earlier chunks readable."""
    dumper = TraceDumper(str(tmp_path), worker="worker_0", chunk_events=100)
    dumper.dump(make_trace("worker_0", num_events=4))
    dumper.dump(make_trace("worker_0", num_events=6))
    loaded = load_trace(str(tmp_path))
    # 4 + 6 backend events + 2 operation events.
    assert loaded.total_events() == 12


# -------------------------------------------------------------------- legacy
def test_legacy_store_still_loads(tmp_path):
    """Directories written by the old JSON dump-at-end format still load."""
    trace = make_trace("worker_0", num_events=6)
    chunk_name = "trace_chunk_worker_0_00000.json"
    payload = {
        "worker": "worker_0",
        "events": [e.to_dict() for e in trace.events],
        "operations": [op.to_dict() for op in trace.operations],
        "markers": [m.to_dict() for m in trace.markers],
    }
    (tmp_path / chunk_name).write_text(json.dumps(payload), encoding="utf-8")
    (tmp_path / "rlscope_index.json").write_text(json.dumps({
        "workers": {"worker_0": {"chunks": [chunk_name], "metadata": dict(trace.metadata)}},
    }), encoding="utf-8")

    loaded = load_trace(str(tmp_path))
    assert loaded.total_events() == trace.total_events()
    assert len(loaded.markers) == len(trace.markers)
    assert loaded.metadata["worker"] == "worker_0"
    # Legacy chunks have no index statistics, so queries scan them.
    db = TraceDB(str(tmp_path))
    assert all(meta.legacy for meta in db.chunks())
    assert db.count_events(category="Backend") == 6


def test_reader_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        TraceReader(str(tmp_path / "does_not_exist"))


def test_dumper_validates_chunk_size(tmp_path):
    with pytest.raises(ValueError):
        TraceDumper(str(tmp_path), chunk_events=0)
