"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import EagerEngine, GraphEngine, clear_engines
from repro.hw.costmodel import CostModelConfig
from repro.system import System


@pytest.fixture(autouse=True)
def _clean_engine_stack():
    """Make sure no engine leaks between tests."""
    clear_engines()
    yield
    clear_engines()


@pytest.fixture
def system() -> System:
    return System.create(seed=0)


@pytest.fixture
def deterministic_system() -> System:
    """A system whose cost model has zero jitter (exact timing arithmetic)."""
    return System.create(seed=0, config=CostModelConfig(jitter=0.0))


@pytest.fixture
def eager_engine(system) -> EagerEngine:
    return EagerEngine(system)


@pytest.fixture
def graph_engine(system) -> GraphEngine:
    return GraphEngine(system)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
