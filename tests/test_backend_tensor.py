"""Tests for tensors, parameters, the Tape edge cases, and rl networks."""

import numpy as np
import pytest

from repro.backend import EagerEngine, Tape, functional as F, use_engine
from repro.backend.autodiff import current_tape
from repro.backend.tensor import Parameter, Tensor, as_array
from repro.rl.networks import (
    CategoricalPolicy,
    DeterministicActor,
    GaussianActor,
    QCritic,
    TwinQCritic,
    ValueCritic,
)
from repro.system import System


# -------------------------------------------------------------------- tensors
def test_tensor_construction_and_properties():
    t = Tensor([[1.0, 2.0], [3.0, 4.0]], name="x")
    assert t.shape == (2, 2)
    assert t.ndim == 2
    assert t.size == 4
    assert t.nbytes == 16
    assert t.dtype_is_float32 if hasattr(t, "dtype_is_float32") else t.data.dtype == np.float32
    assert not t.requires_grad
    copy = t.copy()
    copy.data[0, 0] = 99.0
    assert t.data[0, 0] == 1.0
    assert Tensor(5.0).item() == pytest.approx(5.0)


def test_tensor_ids_are_unique():
    ids = {Tensor(0.0).id for _ in range(100)}
    assert len(ids) == 100


def test_as_array_passthrough():
    t = Tensor([1.0, 2.0])
    assert as_array(t) is t.data
    assert as_array([1, 2]).dtype == np.float32


def test_parameter_assign_shape_check():
    p = Parameter(np.zeros((2, 3)), name="w")
    assert p.requires_grad
    p.assign(np.ones((2, 3)))
    assert np.all(p.data == 1.0)
    with pytest.raises(ValueError):
        p.assign(np.ones((3, 2)))


# ----------------------------------------------------------------------- tape
def test_tape_stack_and_watch(system):
    engine = EagerEngine(system)
    assert current_tape() is None
    with use_engine(engine):
        x = Tensor(np.ones(3, dtype=np.float32))  # does not require grad
        with Tape() as tape:
            assert current_tape() is tape
            tape.watch(x)
            y = F.reduce_sum(F.square(x))
        grad = tape.gradient(y, [x])[0]
        assert np.allclose(grad, 2.0)
    assert current_tape() is None


def test_tape_gradient_of_unrelated_source_is_zero(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        x = Parameter(np.ones(2, dtype=np.float32))
        unrelated = Parameter(np.ones(2, dtype=np.float32))
        with Tape() as tape:
            loss = F.reduce_sum(F.square(x))
        grads = tape.gradient(loss, [x, unrelated])
    assert np.allclose(grads[0], 2.0)
    assert np.allclose(grads[1], 0.0)


def test_nested_tapes_record_independently(system):
    engine = EagerEngine(system)
    with use_engine(engine):
        x = Parameter(np.array([2.0], dtype=np.float32))
        with Tape() as outer:
            y = F.square(x)
            with Tape() as inner:
                z = F.square(x)
            inner_grad = inner.gradient(z, [x])[0]
        outer_grad = outer.gradient(y, [x])[0]
    assert inner_grad == pytest.approx(4.0)
    assert outer_grad == pytest.approx(4.0)


# ------------------------------------------------------------------- networks
@pytest.fixture
def net_engine():
    return EagerEngine(System.create(seed=0))


def test_deterministic_actor_bounds_actions(net_engine, rng):
    with use_engine(net_engine):
        actor = DeterministicActor(5, 3, hidden=(16, 16), action_scale=2.0, rng=rng)
        out = actor(Tensor(rng.normal(size=(7, 5)).astype(np.float32))).numpy()
    assert out.shape == (7, 3)
    assert np.all(np.abs(out) <= 2.0 + 1e-5)
    assert len(actor.parameters()) == 6


def test_q_critics_and_value_critic_shapes(net_engine, rng):
    with use_engine(net_engine):
        obs = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        act = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        q = QCritic(6, 2, hidden=(8, 8), rng=rng)
        assert q(obs, act).shape == (4, 1)
        twin = TwinQCritic(6, 2, hidden=(8, 8), rng=rng)
        q1, q2 = twin(obs, act)
        assert q1.shape == q2.shape == (4, 1)
        min_q = twin.min_q(obs, act).numpy()
        assert np.all(min_q <= q1.numpy() + 1e-6) and np.all(min_q <= q2.numpy() + 1e-6)
        v = ValueCritic(6, hidden=(8, 8), rng=rng)
        assert v(obs).shape == (4, 1)


def test_gaussian_actor_log_prob_and_sampling(net_engine, rng):
    with use_engine(net_engine):
        actor = GaussianActor(4, 2, hidden=(8, 8), rng=rng)
        obs = Tensor(rng.normal(size=(5, 4)).astype(np.float32))
        mean, log_std = actor.distribution(obs)
        assert mean.shape == (5, 2) and log_std.shape == (2,)
        assert np.all(log_std.numpy() >= actor.LOG_STD_MIN)
        actions = Tensor(rng.normal(size=(5, 2)).astype(np.float32))
        log_prob = actor.log_prob(obs, actions)
        assert log_prob.shape == (5,)
        sample = actor.sample_numpy(mean.numpy()[0], rng)
        assert sample.shape == (2,)
        # log_std is trainable.
        assert any(p is actor.log_std for p in actor.parameters())


def test_categorical_policy_log_probs_normalised(net_engine, rng):
    with use_engine(net_engine):
        policy = CategoricalPolicy(4, 3, hidden=(8,), rng=rng)
        obs = Tensor(rng.normal(size=(6, 4)).astype(np.float32))
        log_probs = policy.log_probs(obs).numpy()
    assert log_probs.shape == (6, 3)
    assert np.allclose(np.exp(log_probs).sum(axis=-1), 1.0, atol=1e-5)
