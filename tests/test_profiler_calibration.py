"""Tests for calibration, overhead correction, analysis, and trace storage."""

import numpy as np
import pytest

from repro.experiments.common import WorkloadSpec, calibrate_workload, calibration_runner, run_workload
from repro.profiler import (
    CalibrationResult,
    Profiler,
    ProfilerConfig,
    TraceDumper,
    TraceReader,
    analyze,
    load_trace,
    multi_process_summary,
)
from repro.profiler.calibration import CalibrationRun, calibrate
from repro.profiler.correction import (
    corrected_category_breakdown,
    corrected_total_us,
    overhead_by_operation_category,
)
from repro.profiler.events import (
    CATEGORY_CUDA_API,
    CATEGORY_PYTHON,
    OVERHEAD_ANNOTATION,
    OVERHEAD_CUDA_INTERCEPTION,
    OVERHEAD_CUPTI,
    OVERHEAD_PYPROF,
    Event,
    EventTrace,
    OverheadMarker,
)
from repro.hw.costmodel import CostModelConfig

#: A small, fast workload reused by the calibration tests.
SMALL_SPEC = WorkloadSpec(algo="PPO2", simulator="Hopper", total_timesteps=64)


@pytest.fixture(scope="module")
def calibration() -> CalibrationResult:
    return calibrate_workload(SMALL_SPEC)


def test_calibration_recovers_ground_truth_overheads(calibration):
    truth = CostModelConfig().profiling
    assert calibration.pyprof_us == pytest.approx(truth.pyprof_interception_us, rel=0.35)
    assert calibration.annotation_us == pytest.approx(truth.annotation_us, rel=0.35)
    assert calibration.cuda_interception_us == pytest.approx(truth.cuda_interception_us, rel=0.35)
    launch_inflation = calibration.cupti_per_api_us.get("cudaLaunchKernel")
    assert launch_inflation == pytest.approx(truth.cupti_inflation_us["cudaLaunchKernel"], rel=0.35)


def test_calibration_details_record_counts(calibration):
    assert calibration.details["baseline_total_us"] > 0
    assert calibration.details[f"{OVERHEAD_PYPROF}_count"] > 0
    assert calibration.details[f"{OVERHEAD_CUDA_INTERCEPTION}_count"] > 0
    assert calibration.details[f"{OVERHEAD_ANNOTATION}_count"] > 0


def test_overhead_for_marker_dispatch(calibration):
    assert calibration.overhead_for_marker(OverheadMarker(OVERHEAD_PYPROF, 0.0)) == calibration.pyprof_us
    assert calibration.overhead_for_marker(
        OverheadMarker(OVERHEAD_CUPTI, 0.0, api_name="cudaLaunchKernel")
    ) == calibration.cupti_per_api_us["cudaLaunchKernel"]
    with pytest.raises(ValueError):
        calibration.overhead_for_marker(OverheadMarker("bogus", 0.0))


def test_correction_brings_total_close_to_uninstrumented(calibration):
    uninstrumented = run_workload(SMALL_SPEC, profiler_config=ProfilerConfig.uninstrumented())
    instrumented = run_workload(SMALL_SPEC, profiler_config=ProfilerConfig.full())
    assert instrumented.total_time_us > uninstrumented.total_time_us
    corrected = corrected_total_us(instrumented.trace, calibration, total_us=instrumented.total_time_us)
    bias = abs(corrected - uninstrumented.total_time_us) / uninstrumented.total_time_us
    assert bias < 0.16  # the paper's +/-16% bound


def test_ground_truth_calibration_result_construction():
    result = CalibrationResult.from_ground_truth(CostModelConfig())
    assert result.pyprof_us > 0
    assert "cudaLaunchKernel" in result.cupti_per_api_us


def test_calibrate_with_synthetic_runner():
    """Delta calibration arithmetic on a hand-built runner."""
    per_marker = {"pyprof": 2.0, "annotations": 3.0, "cuda_interception": 1.0}
    counts = {"pyprof": 50, "annotations": 10, "cuda_interception": 40}
    kind_of = {"pyprof": OVERHEAD_PYPROF, "annotations": OVERHEAD_ANNOTATION,
               "cuda_interception": OVERHEAD_CUDA_INTERCEPTION}
    base_total = 1_000.0

    def runner(config: ProfilerConfig) -> CalibrationRun:
        total = base_total
        trace = EventTrace()
        for flag, kind in kind_of.items():
            if getattr(config, flag):
                total += per_marker[flag] * counts[flag]
                for i in range(counts[flag]):
                    trace.add_marker(OverheadMarker(kind, float(i)))
        if config.cuda_interception:
            # Average CUDA API durations: 5us alone, 8us with CUPTI enabled.
            duration = 8.0 if config.cupti else 5.0
            for i in range(counts["cuda_interception"]):
                trace.add_event(Event(CATEGORY_CUDA_API, "cudaLaunchKernel",
                                      i * 10.0, i * 10.0 + duration))
            if config.cupti:
                total += 3.0 * counts["cuda_interception"]
        return CalibrationRun(total_time_us=total, trace=trace)

    result = calibrate(runner)
    assert result.pyprof_us == pytest.approx(2.0)
    assert result.annotation_us == pytest.approx(3.0)
    assert result.cuda_interception_us == pytest.approx(1.0)
    assert result.cupti_per_api_us["cudaLaunchKernel"] == pytest.approx(3.0)


# ------------------------------------------------------------------ correction
def test_overhead_by_operation_category_localises_markers():
    trace = EventTrace()
    trace.add_event(Event("Operation", "inference", 0.0, 100.0))
    trace.add_event(Event("Operation", "backpropagation", 100.0, 200.0))
    trace.add_marker(OverheadMarker(OVERHEAD_PYPROF, 50.0))
    trace.add_marker(OverheadMarker(OVERHEAD_CUDA_INTERCEPTION, 150.0, api_name="cudaLaunchKernel"))
    trace.add_marker(OverheadMarker(OVERHEAD_PYPROF, 500.0))  # outside any operation
    calib = CalibrationResult(pyprof_us=2.0, annotation_us=1.0, cuda_interception_us=3.0,
                              cupti_per_api_us={"cudaLaunchKernel": 4.0})
    overheads = overhead_by_operation_category(trace, calib)
    assert overheads[("inference", CATEGORY_PYTHON)] == pytest.approx(2.0)
    assert overheads[("backpropagation", CATEGORY_CUDA_API)] == pytest.approx(3.0)
    assert overheads[("<untracked>", CATEGORY_PYTHON)] == pytest.approx(2.0)


def test_corrected_breakdown_clamps_at_zero():
    breakdown = {"inference": {CATEGORY_PYTHON: 10.0, CATEGORY_CUDA_API: 5.0}}
    overheads = {("inference", CATEGORY_PYTHON): 25.0, ("inference", "Backend"): 3.0,
                 ("other", CATEGORY_PYTHON): 1.0}
    corrected = corrected_category_breakdown(breakdown, overheads)
    assert corrected["inference"][CATEGORY_PYTHON] == 0.0
    assert corrected["inference"][CATEGORY_CUDA_API] == 5.0


def test_corrected_total_never_negative():
    trace = EventTrace(metadata={"total_time_us": 10.0})
    for i in range(100):
        trace.add_marker(OverheadMarker(OVERHEAD_PYPROF, float(i)))
    calib = CalibrationResult(pyprof_us=5.0)
    assert corrected_total_us(trace, calib) == 0.0


# -------------------------------------------------------------------- analysis
def test_analysis_transitions_require_iterations():
    run = run_workload(SMALL_SPEC)
    with pytest.raises(ValueError):
        analyze(run.trace).transitions_per_iteration(None)
    transitions = run.analysis.transitions_per_iteration(SMALL_SPEC.total_timesteps)
    assert transitions["simulation"]["Simulator"] == pytest.approx(1.0, rel=0.3)


def test_multi_process_summary_totals():
    run = run_workload(SMALL_SPEC)
    summaries = multi_process_summary({"worker_0": run.trace})
    assert len(summaries) == 1
    assert summaries[0].total_time_us == pytest.approx(run.total_time_us)
    assert 0 < summaries[0].gpu_time_us < summaries[0].total_time_us


# ----------------------------------------------------------------- trace store
def test_trace_dump_and_reload_roundtrip(tmp_path):
    run = run_workload(SMALL_SPEC)
    dumper = TraceDumper(str(tmp_path), worker="worker_0", chunk_events=500)
    chunks = dumper.dump(run.trace)
    assert len(chunks) >= 1
    reader = TraceReader(str(tmp_path))
    assert reader.workers() == ["worker_0"]
    loaded = reader.read_worker("worker_0")
    assert loaded.total_events() == run.trace.total_events()
    assert len(loaded.markers) == len(run.trace.markers)
    assert load_trace(str(tmp_path)).total_events() == run.trace.total_events()
    # The reloaded trace analyses identically.
    original = analyze(run.trace).category_breakdown_us(corrected=False)
    reloaded = analyze(loaded).category_breakdown_us(corrected=False)
    for op, categories in original.items():
        for category, value in categories.items():
            assert reloaded[op][category] == pytest.approx(value, rel=1e-9)


def test_trace_reader_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        TraceReader(str(tmp_path / "does_not_exist"))


def test_trace_dumper_validates_chunk_size(tmp_path):
    with pytest.raises(ValueError):
        TraceDumper(str(tmp_path), chunk_events=0)


# ------------------------------------------------------- correction locator
def _linear_locate(operations, time_us):
    """The original O(operations) reference scan, kept as the test oracle."""
    from repro.profiler.overlap import UNTRACKED
    best = None
    for op in sorted(operations, key=lambda op: op.start_us):
        if op.start_us <= time_us and op.end_us >= time_us:
            if best is None or op.start_us >= best.start_us:
                best = op
    return best.name if best is not None else UNTRACKED


def test_operation_locator_matches_linear_scan_on_randomized_trace():
    """The interval-indexed locator must answer exactly like the linear scan,
    including at interval boundaries, on nested/overlapping/duplicate ops."""
    import numpy as np

    from repro.profiler.correction import OperationLocator
    from repro.profiler.events import CATEGORY_OPERATION, Event

    rng = np.random.default_rng(42)
    operations = []
    for i in range(200):
        start = float(rng.integers(0, 500))
        duration = float(rng.integers(0, 60))  # includes zero-length ops
        operations.append(Event(CATEGORY_OPERATION, f"op_{i % 7}", start, start + duration))
    # Exact duplicates and shared boundaries exercise the tie-breaking rules.
    operations.extend(operations[:20])

    locator = OperationLocator(operations)
    queries = list(rng.uniform(-10.0, 600.0, size=300))
    for op in operations[:50]:
        queries.extend([op.start_us, op.end_us, op.start_us - 1e-9, op.end_us + 1e-9])
    for time_us in queries:
        assert locator.locate(time_us) == _linear_locate(operations, time_us), time_us


def test_operation_locator_empty_and_single():
    from repro.profiler.correction import OperationLocator
    from repro.profiler.events import CATEGORY_OPERATION, Event
    from repro.profiler.overlap import UNTRACKED

    assert OperationLocator([]).locate(10.0) == UNTRACKED
    locator = OperationLocator([Event(CATEGORY_OPERATION, "only", 5.0, 15.0)])
    assert locator.locate(4.999) == UNTRACKED
    assert locator.locate(5.0) == "only"
    assert locator.locate(10.0) == "only"
    assert locator.locate(15.0) == "only"
    assert locator.locate(15.001) == UNTRACKED
