"""Tests for the System container and framework-adapter execution behaviour."""

import numpy as np
import pytest

from repro.backend import AutographEngine, GraphEngine, MLP, use_engine
from repro.backend.tensor import Tensor
from repro.hw.costmodel import CostModelConfig
from repro.hw.gpu import GPUDevice
from repro.profiler import CATEGORY_BACKEND, CATEGORY_SIMULATOR, Profiler, ProfilerConfig, analyze
from repro.rl import (
    FrameworkAdapter,
    REAGENT,
    STABLE_BASELINES,
    TF_AGENTS_AUTOGRAPH,
    TF_AGENTS_EAGER,
    default_config,
    make_algorithm,
)
from repro.sim import make
from repro.system import System


# -------------------------------------------------------------------- System
def test_system_create_wires_components():
    system = System.create(seed=3, worker="w7")
    assert system.worker == "w7"
    assert system.cuda.worker == "w7"
    assert system.cuda.device is system.device
    assert system.now_us == 0.0
    system.cpu_work(10.0)
    system.crossing()
    assert system.now_us > 0
    assert system.now_sec == pytest.approx(system.now_us / 1e6)


def test_system_cost_config_override():
    config = CostModelConfig(jitter=0.0, python_op_us=5.0)
    system = System.create(config=config)
    system.cpu_work(2.0)
    assert system.now_us == pytest.approx(10.0)


def test_systems_share_device_but_not_clock():
    device = GPUDevice()
    a = System.create(seed=0, device=device, worker="a")
    b = System.create(seed=1, device=device, worker="b")
    a.cpu_work(100.0)
    assert a.now_us > 0 and b.now_us == 0.0
    assert a.device is b.device


# ---------------------------------------------------------- framework adapter
def test_adapter_compile_matches_execution_model():
    graph_adapter = FrameworkAdapter(System.create(), STABLE_BASELINES)
    eager_adapter = FrameworkAdapter(System.create(), TF_AGENTS_EAGER)
    autograph_adapter = FrameworkAdapter(System.create(), TF_AGENTS_AUTOGRAPH)

    def fn():
        return 42

    graph_fn = graph_adapter.compile(fn, kind="update", name="step")
    assert graph_fn() == 42
    assert graph_adapter.engine.native_call_count == 1

    eager_fn = eager_adapter.compile(fn, kind="update", name="step")
    assert eager_fn is fn

    autograph_fn = autograph_adapter.compile(fn, kind="inference", name="policy")
    assert autograph_fn() == 42
    assert autograph_fn.dispatch_inflation > 1.0
    train_fn = autograph_adapter.compile(fn, kind="update", name="train")
    assert train_fn.dispatch_inflation == 1.0


def test_adapter_env_call_escapes_autograph_only_when_native():
    adapter = FrameworkAdapter(System.create(), TF_AGENTS_AUTOGRAPH)
    engine = adapter.engine
    calls = []

    def env_step():
        calls.append(engine.in_native)
        return 1

    # Outside compiled code: a plain call, still "not native".
    adapter.env_call(env_step)
    # Inside compiled code: py_function escape makes the env see non-native state.
    compiled = adapter.compile_collect(lambda: adapter.env_call(env_step))
    compiled()
    assert calls == [False, False]

    graph_adapter = FrameworkAdapter(System.create(), STABLE_BASELINES)
    assert graph_adapter.env_call(lambda: 7) == 7


def test_autograph_collect_attributes_sim_time_to_simulator_category():
    """End to end: with the Autograph driver, simulator time is still Simulator, not Backend."""
    system = System.create(seed=0)
    env = make("Hopper", system, seed=0)
    adapter = FrameworkAdapter(system, TF_AGENTS_AUTOGRAPH)
    profiler = Profiler(system, ProfilerConfig.full())
    profiler.attach(engine=adapter.engine, envs=[env])
    agent = make_algorithm("SAC", env, adapter,
                           config=default_config("SAC", warmup_steps=8, buffer_size=500, train_freq=16,
                                                 gradient_steps=4),
                           profiler=profiler, seed=0)
    agent.train(48)
    analysis = analyze(profiler.finalize(), iterations=48)
    breakdown = analysis.category_breakdown_us()
    assert breakdown["simulation"].get(CATEGORY_SIMULATOR, 0.0) > 0
    # Inference runs in-graph: its time is Backend, and it triggers no
    # per-step Python->Backend transitions.
    transitions = analysis.transitions_per_iteration(48)
    assert transitions.get("inference", {}).get(CATEGORY_BACKEND, 0.0) < 0.2
    assert breakdown["inference"].get(CATEGORY_BACKEND, 0.0) > 0


def test_reagent_adapter_uses_pytorch_engine_for_full_training():
    system = System.create(seed=0)
    env = make("Walker2D", system, seed=0)
    adapter = FrameworkAdapter(system, REAGENT)
    agent = make_algorithm("DDPG", env, adapter,
                           config=default_config("DDPG", warmup_steps=8, buffer_size=500,
                                                 train_freq=16, gradient_steps=8, batch_size=16),
                           seed=0)
    result = agent.train(32)
    assert result.gradient_updates > 0
    assert adapter.engine.flavor == "pytorch"
    # ReAgent never uses the MPI-friendly Adam.
    from repro.backend.optimizers import MPIAdam
    assert not isinstance(agent.actor_optimizer, MPIAdam)


def test_graph_engine_mlp_numerics_identical_across_engines():
    """The execution model changes timing, never numerics."""
    outputs = []
    for adapter_spec in (STABLE_BASELINES, TF_AGENTS_EAGER, REAGENT):
        system = System.create(seed=0)
        adapter = FrameworkAdapter(system, adapter_spec)
        with use_engine(adapter.engine):
            net = MLP(6, [16, 16], 3, rng=np.random.default_rng(42))
            x = np.linspace(-1, 1, 12, dtype=np.float32).reshape(2, 6)
            fn = adapter.compile(lambda obs: net(Tensor(obs)).numpy(), kind="inference",
                                 name="forward", num_feeds=1)
            outputs.append(fn(x))
    assert np.allclose(outputs[0], outputs[1], atol=1e-6)
    assert np.allclose(outputs[0], outputs[2], atol=1e-6)
