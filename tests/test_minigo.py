"""Tests for the Minigo scale-up workload: MCTS, self-play, training round."""

import numpy as np
import pytest

from repro.backend import GraphEngine, use_engine
from repro.hw.nvidia_smi import sample_utilization
from repro.minigo import (
    MCTS,
    MinigoConfig,
    MinigoTraining,
    PolicyValueNet,
    SelfPlayPool,
    SelfPlayWorker,
)
from repro.minigo.selfplay import OP_EXPAND_LEAF, OP_TREE_SEARCH
from repro.profiler import Profiler, ProfilerConfig, multi_process_summary
from repro.sim.go import GoPosition
from repro.system import System


def uniform_evaluator(num_moves):
    def evaluate(features):
        batch = features.shape[0]
        priors = np.full((batch, num_moves), 1.0 / num_moves, dtype=np.float32)
        values = np.zeros(batch, dtype=np.float32)
        return priors, values
    return evaluate


# ----------------------------------------------------------------------- MCTS
def test_mcts_visit_counts_sum_to_num_simulations():
    position = GoPosition.initial(size=5)
    mcts = MCTS(uniform_evaluator(26), num_simulations=20, rng=np.random.default_rng(0))
    root = mcts.search(position)
    assert root.visit_count == 20  # one backup per simulation
    assert sum(child.visit_count for child in root.children.values()) == 20
    policy = mcts.policy_from_visits(root)
    assert policy.shape == (26,)
    assert policy.sum() == pytest.approx(1.0)
    move = mcts.choose_move(root, temperature=1e-6)
    assert move is None or (0 <= move[0] < 5 and 0 <= move[1] < 5)


def test_mcts_prefers_winning_move():
    """With a value function that likes captures, MCTS should visit legal moves unevenly."""
    position = GoPosition.initial(size=5)

    def biased_evaluator(features):
        batch = features.shape[0]
        priors = np.zeros((batch, 26), dtype=np.float32)
        priors[:, 12] = 1.0  # strong prior on the centre point
        values = np.zeros(batch, dtype=np.float32)
        return priors, values

    mcts = MCTS(biased_evaluator, num_simulations=30, exploration_fraction=0.0,
                rng=np.random.default_rng(0))
    root = mcts.search(position, add_noise=False)
    centre_visits = root.children[12].visit_count
    assert centre_visits == max(child.visit_count for child in root.children.values())


def test_mcts_rejects_bad_configuration():
    with pytest.raises(ValueError):
        MCTS(uniform_evaluator(26), num_simulations=0)


def test_mcts_backup_alternates_sign():
    position = GoPosition.initial(size=5)
    mcts = MCTS(uniform_evaluator(26), num_simulations=5, rng=np.random.default_rng(1))
    root = mcts.search(position, add_noise=False)
    # Values propagated from children are negated relative to the child's own perspective.
    for child in root.children.values():
        if child.visit_count > 0:
            assert np.isfinite(child.mean_value)


# ------------------------------------------------------------------- selfplay
def test_selfplay_worker_generates_examples_and_operations():
    system = System.create(seed=0)
    engine = GraphEngine(system)
    profiler = Profiler(system, ProfilerConfig.full())
    profiler.attach(engine=engine)
    network = PolicyValueNet(board_size=5, hidden=(32, 32), rng=np.random.default_rng(0))
    worker = SelfPlayWorker(system, engine, network, profiler=profiler, board_size=5,
                            num_simulations=4, max_moves=10, seed=0)
    result = worker.play_games(1)
    trace = profiler.finalize()
    assert result.games == 1
    assert 0 < result.moves <= 10
    assert len(result.examples) == result.moves
    for example in result.examples:
        assert example.features.shape == (75,)
        assert example.policy_target.shape == (26,)
        assert example.value_target in (-1.0, 1.0)
    op_names = {op.name for op in trace.operations}
    assert {OP_TREE_SEARCH, OP_EXPAND_LEAF} <= op_names


def test_policy_value_net_shapes(system):
    engine = GraphEngine(system)
    with use_engine(engine):
        net = PolicyValueNet(board_size=5, hidden=(16, 16), rng=np.random.default_rng(0))
        from repro.backend.tensor import Tensor
        logits, value = net(Tensor(np.zeros((3, 75), dtype=np.float32)))
    assert logits.shape == (3, 26)
    assert value.shape == (3, 1)
    assert net.num_parameters() > 0


# ----------------------------------------------------------------------- pool
def test_selfplay_pool_shares_one_device():
    pool = SelfPlayPool(num_workers=3, board_size=5, num_simulations=3, games_per_worker=1,
                        max_moves=6, hidden=(16, 16), seed=0)
    runs = pool.run()
    assert len(runs) == 3
    workers_on_device = {activity.worker for activity in pool.device.activity}
    assert workers_on_device == {run.worker for run in runs}
    streams = {activity.stream for activity in pool.device.kernels()}
    assert len(streams) == 3  # one stream (CUDA context) per worker
    assert pool.collection_span_us() > 0
    assert len(pool.all_examples()) > 0


def test_minigo_round_produces_figure8_quantities():
    config = MinigoConfig(num_workers=3, board_size=5, num_simulations=3, games_per_worker=1,
                          max_moves=6, sgd_steps=4, evaluation_games=1, hidden=(16, 16), seed=0)
    training = MinigoTraining(config)
    round_result = training.run_round()

    traces = round_result.traces()
    assert len(traces) == 5  # 3 self-play workers + trainer + evaluation
    summaries = multi_process_summary(traces)
    selfplay = [s for s in summaries if s.worker.startswith("selfplay")]
    assert len(selfplay) == 3
    for summary in selfplay:
        assert summary.gpu_time_us < 0.5 * summary.total_time_us
        assert summary.total_time_us > 0

    util = round_result.utilization(sample_period_us=round_result.worker_runs[0].total_time_us / 10)
    assert 0.0 <= util.reported_utilization_pct <= 100.0
    assert util.true_busy_pct <= util.reported_utilization_pct + 1e-6
    assert round_result.losses, "SGD phase should record losses"
    assert np.isfinite(round_result.losses).all()
    assert round_result.evaluation_games == 1


def test_minigo_candidate_acceptance_updates_weights():
    config = MinigoConfig(num_workers=1, board_size=5, num_simulations=2, games_per_worker=1,
                          max_moves=4, sgd_steps=2, evaluation_games=1, hidden=(8, 8), seed=0,
                          acceptance_threshold=0.0)
    training = MinigoTraining(config)
    before = [w.copy() for w in training.current_weights]
    result = training.run_round()
    assert result.candidate_accepted  # threshold 0 accepts any candidate
    changed = any(not np.allclose(a, b) for a, b in zip(before, training.current_weights))
    assert changed


def test_ucb_selection_is_minimax_correct():
    """The parent must prefer children whose own-perspective value is low.

    total_value is stored from each node's own to-play perspective (backup
    flips sign per ply), so selection has to negate it: a child position
    that is good for the *opponent* (its to_play) must score below one that
    is bad for the opponent.  A sign inversion here makes self-play pile
    visits onto losing moves.
    """
    from repro.minigo.mcts import MCTSNode

    position = GoPosition.initial(size=5)
    parent = MCTSNode(position=position, visit_count=4)
    opponent_winning = MCTSNode(position=position, parent=parent, prior=0.5,
                                visit_count=2, total_value=2.0)
    opponent_losing = MCTSNode(position=position, parent=parent, prior=0.5,
                               visit_count=2, total_value=-2.0)
    assert opponent_losing.ucb_score(1.5) > opponent_winning.ucb_score(1.5)
    # Virtual loss makes an in-flight child strictly less attractive.
    before = opponent_losing.ucb_score(1.5)
    opponent_losing.virtual_loss = 1
    assert opponent_losing.ucb_score(1.5) < before


# ------------------------------------------------------- concurrent evaluation
def _evaluation_wins(*, evaluation_games, batched, cache=False):
    kwargs = {}
    if batched:
        kwargs.update(leaf_batch=1, scheduler="event")
    if cache:
        kwargs.update(transposition=True, cache_capacity=256)
    config = MinigoConfig(num_workers=2, board_size=5, num_simulations=3,
                          games_per_worker=1, max_moves=6, sgd_steps=2,
                          evaluation_games=evaluation_games, hidden=(8, 8),
                          seed=0, profile=False, batched_inference=batched,
                          **kwargs)
    return MinigoTraining(config).run_round().candidate_wins


@pytest.mark.parametrize("evaluation_games,expected_wins",
                         [(1, 0), (2, 1), (4, 2)])
def test_concurrent_evaluation_pins_sequential_win_statistics(
        evaluation_games, expected_wins):
    """All evaluation games now run concurrently under one scheduler; the
    win statistics must be exactly those of the old one-game-at-a-time
    loop (expected values pinned from the sequential implementation).
    Evaluation plays noise-free argmax moves, so neither the interleaving
    nor the evaluation cache may change a single game's outcome.
    """
    assert _evaluation_wins(evaluation_games=evaluation_games,
                            batched=False) == expected_wins
    assert _evaluation_wins(evaluation_games=evaluation_games,
                            batched=True) == expected_wins
    assert _evaluation_wins(evaluation_games=evaluation_games,
                            batched=True, cache=True) == expected_wins
