"""Tests for report formatting, the CLI entry points, and trace events serialisation."""

import json

import numpy as np
import pytest

from repro.experiments.cli import main as experiment_main
from repro.experiments.common import WorkloadSpec, run_workload
from repro.profiler import analyze, report
from repro.profiler.cli import main as prof_main
from repro.profiler.events import Event, EventTrace, OverheadMarker


# -------------------------------------------------------------------- report
def test_format_table_alignment():
    text = report.format_table(["name", "value"], [["a", 1.0], ["long-name", 123456.789]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "123,456.79" in text
    assert len(lines) == 4


@pytest.fixture(scope="module")
def small_analysis():
    run = run_workload(WorkloadSpec(algo="SAC", simulator="Hopper", total_timesteps=96),
                       use_ground_truth_calibration=True)
    return {"SAC/Hopper": run.analysis}


def test_breakdown_and_total_tables(small_analysis):
    text = report.breakdown_table(small_analysis)
    assert "backpropagation" in text and "Simulator" in text
    percent = report.breakdown_table(small_analysis, as_percent=True)
    assert "% of total" in percent
    totals = report.total_time_table(small_analysis)
    assert "total training time" in totals


def test_transitions_and_worker_tables(small_analysis):
    text = report.transitions_table(small_analysis, 96)
    assert "per iteration" in text
    from repro.profiler import multi_process_summary
    analysis = list(small_analysis.values())[0]
    summaries = multi_process_summary({"worker_0": analysis.trace})
    worker_text = report.worker_table(summaries, utilization_pct=100.0, true_busy_pct=1.2)
    assert "nvidia-smi" in worker_text and "1.2" in worker_text


def test_correction_table_format():
    rows = {"PPO2": {"instrumented_sec": 1.2, "corrected_sec": 1.0,
                     "uninstrumented_sec": 1.01, "bias_percent": -1.0}}
    text = report.correction_table(rows)
    assert "uninstrumented" in text and "PPO2" in text


# ---------------------------------------------------------------------- events
def test_event_serialisation_roundtrip():
    event = Event("Backend", "session_run", 1.5, 2.5, worker="w3", phase="p")
    assert Event.from_dict(event.to_dict()) == event
    marker = OverheadMarker("cupti", 3.0, api_name="cudaLaunchKernel", worker="w3")
    assert OverheadMarker.from_dict(marker.to_dict()) == marker
    trace = EventTrace()
    trace.add_event(event)
    trace.add_marker(marker)
    trace.add_event(Event("Operation", "inference", 0.0, 5.0))
    restored = EventTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
    assert restored.events[0] == event
    assert restored.operations[0].name == "inference"
    assert restored.markers[0] == marker


def test_event_validation():
    trace = EventTrace()
    with pytest.raises(ValueError):
        trace.add_event(Event("Python", "x", 10.0, 5.0))
    event = Event("Python", "x", 0.0, 5.0)
    other = Event("GPU", "y", 4.0, 6.0)
    assert event.overlaps(other)
    assert not event.overlaps(Event("GPU", "z", 5.0, 6.0))


# ------------------------------------------------------------------------ CLI
def test_rls_prof_cli_runs(capsys):
    exit_code = prof_main(["--algo", "SAC", "--simulator", "Hopper", "--steps", "96"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "total training time" in output
    assert "backpropagation" in output


def test_rls_prof_cli_uninstrumented_and_trace_dir(tmp_path, capsys):
    exit_code = prof_main(["--algo", "PPO2", "--simulator", "Hopper", "--steps", "32",
                           "--uninstrumented"])
    assert exit_code == 0
    exit_code = prof_main(["--algo", "PPO2", "--simulator", "Hopper", "--steps", "32",
                           "--trace-dir", str(tmp_path / "traces")])
    assert exit_code == 0
    assert (tmp_path / "traces" / "tracedb_index.json").exists()
    assert "trace written" in capsys.readouterr().out


def test_rls_prof_cli_unknown_framework():
    with pytest.raises(SystemExit):
        prof_main(["--framework", "NotAFramework", "--steps", "8"])


def test_rls_experiment_cli_table1(capsys):
    assert experiment_main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "stable-baselines" in output


def test_rls_experiment_cli_fig5(capsys):
    assert experiment_main(["fig5", "--timesteps", "40"]) == 0
    output = capsys.readouterr().out
    assert "Figure 5" in output and "Simulation-bound" in output


def test_experiment_cli_batchsweep(capsys):
    assert experiment_main(["batchsweep", "--leaf-batches", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "Batch-size sweep" in out
    assert "fewer" in out
