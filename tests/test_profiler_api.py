"""Tests for the profiler session: annotations, interception, python-gap tracking."""

import numpy as np
import pytest

from repro.backend import GraphEngine, MLP, use_engine
from repro.backend.tensor import Tensor
from repro.profiler import (
    CATEGORY_BACKEND,
    CATEGORY_CUDA_API,
    CATEGORY_GPU,
    CATEGORY_PYTHON,
    CATEGORY_SIMULATOR,
    Profiler,
    ProfilerConfig,
    analyze,
    merge_traces,
)
from repro.profiler.events import OVERHEAD_ANNOTATION, OVERHEAD_CUDA_INTERCEPTION, OVERHEAD_CUPTI, OVERHEAD_PYPROF
from repro.sim import make
from repro.system import System


def _profiled_session(config=None):
    system = System.create(seed=0)
    engine = GraphEngine(system)
    env = make("Walker2D", system, seed=0)
    profiler = Profiler(system, config or ProfilerConfig.full())
    profiler.attach(engine=engine, envs=[env])
    with use_engine(engine):
        net = MLP(env.observation_dim, [32, 32], env.action_dim, out_activation="tanh",
                  rng=np.random.default_rng(0))
        forward = engine.function(lambda obs: net(Tensor(obs)).numpy(), name="policy", num_feeds=1)
        obs = env.reset()
        profiler.set_phase("data_collection")
        for _ in range(4):
            with profiler.operation("inference"):
                action = forward(obs[None, :])[0]
            with profiler.operation("simulation"):
                obs, _, done, _ = env.step(action)
                if done:
                    obs = env.reset()
    return system, profiler


def test_full_profile_collects_all_categories():
    _, profiler = _profiled_session()
    trace = profiler.finalize()
    categories = {event.category for event in trace.events}
    assert {CATEGORY_PYTHON, CATEGORY_BACKEND, CATEGORY_SIMULATOR, CATEGORY_CUDA_API, CATEGORY_GPU} <= categories
    assert {op.name for op in trace.operations} == {"inference", "simulation"}
    assert all(op.phase == "data_collection" for op in trace.operations)
    kinds = {marker.kind for marker in trace.markers}
    assert {OVERHEAD_ANNOTATION, OVERHEAD_PYPROF, OVERHEAD_CUDA_INTERCEPTION, OVERHEAD_CUPTI} <= kinds


def test_operations_nest_and_scope_correctly():
    _, profiler = _profiled_session()
    trace = profiler.finalize()
    analysis = analyze(trace, iterations=4)
    breakdown = analysis.category_breakdown_us(corrected=False)
    assert CATEGORY_SIMULATOR in breakdown["simulation"]
    assert CATEGORY_SIMULATOR not in breakdown["inference"]
    assert CATEGORY_BACKEND in breakdown["inference"]
    assert breakdown["inference"][CATEGORY_BACKEND] > 0


def test_finalize_is_idempotent_and_records_total_time():
    system, profiler = _profiled_session()
    trace1 = profiler.finalize()
    trace2 = profiler.finalize()
    assert trace1 is trace2
    assert trace1.metadata["total_time_us"] == pytest.approx(system.clock.now_us)


def test_uninstrumented_profiler_records_nothing():
    _, profiler = _profiled_session(ProfilerConfig.uninstrumented())
    trace = profiler.finalize()
    assert trace.events == []
    assert trace.operations == []
    assert trace.markers == []


def test_partial_config_only_pyprof():
    _, profiler = _profiled_session(ProfilerConfig.only(pyprof=True))
    trace = profiler.finalize()
    categories = {event.category for event in trace.events}
    assert CATEGORY_BACKEND in categories
    assert CATEGORY_CUDA_API not in categories
    assert CATEGORY_GPU not in categories
    assert {marker.kind for marker in trace.markers} == {OVERHEAD_PYPROF}
    # No annotations -> no operations and no Python gap events.
    assert trace.operations == []
    assert CATEGORY_PYTHON not in categories


def test_partial_config_cuda_without_cupti():
    _, profiler = _profiled_session(ProfilerConfig.only(cuda_interception=True))
    trace = profiler.finalize()
    categories = {event.category for event in trace.events}
    assert CATEGORY_CUDA_API in categories
    assert CATEGORY_GPU not in categories
    assert {marker.kind for marker in trace.markers} == {OVERHEAD_CUDA_INTERCEPTION}


def test_profiling_inflates_runtime():
    uninstrumented_system, _ = _profiled_session(ProfilerConfig.uninstrumented())
    instrumented_system, _ = _profiled_session(ProfilerConfig.full())
    assert instrumented_system.clock.now_us > uninstrumented_system.clock.now_us


def test_detach_restores_components():
    system, profiler = _profiled_session()
    profiler.finalize()
    assert system.cuda._hooks == []
    assert not system.cuda.cupti.enabled


def test_python_gap_events_only_inside_operations():
    _, profiler = _profiled_session()
    trace = profiler.finalize()
    python_events = trace.events_by_category(CATEGORY_PYTHON)
    assert python_events
    operations = trace.operations
    for event in python_events:
        assert any(op.start_us <= event.start_us and event.end_us <= op.end_us + 1e-6 for op in operations)


def test_merge_traces_combines_workers():
    _, profiler_a = _profiled_session()
    trace_a = profiler_a.finalize()
    _, profiler_b = _profiled_session()
    trace_b = profiler_b.finalize()
    merged = merge_traces([trace_a, trace_b])
    assert merged.total_events() == trace_a.total_events() + trace_b.total_events()


def test_event_trace_queries():
    _, profiler = _profiled_session()
    trace = profiler.finalize()
    assert trace.span_us() > 0
    assert trace.workers() == ["worker_0"]
    counts = trace.marker_counts()
    assert counts[OVERHEAD_ANNOTATION] == 2 * len(trace.operations)
    filtered = trace.filter_worker("worker_0")
    assert filtered.total_events() == trace.total_events()
    assert trace.filter_worker("other").total_events() == 0
