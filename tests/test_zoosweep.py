"""Tests for the zoo sweep experiment (sims x algorithms x workers x replicas)."""

import pytest

from repro.experiments.zoosweep import (
    DEFAULT_ZOO_ALGOS,
    DEFAULT_ZOO_SIMS,
    run_zoo_sweep,
)

QUICK_GRID = dict(sims=("Pong", "Hopper"), algorithms=("DQN", "PPO", "DDPG"),
                  worker_counts=(4,), replica_counts=(1,), steps_per_worker=6)


@pytest.fixture(scope="module")
def quick_sweep():
    return run_zoo_sweep(QUICK_GRID["sims"], **{k: v for k, v in QUICK_GRID.items()
                                                if k != "sims"})


def test_sweep_covers_compatible_cells_and_skips_the_rest(quick_sweep):
    covered = {(p.sim, p.algorithm) for p in quick_sweep.points}
    assert covered == {("Pong", "DQN"), ("Pong", "PPO"),
                       ("Hopper", "PPO"), ("Hopper", "DDPG")}
    skipped = {(sim, algo) for sim, algo, _ in quick_sweep.skipped}
    assert skipped == {("Pong", "DDPG"), ("Hopper", "DQN")}
    for _, _, reason in quick_sweep.skipped:
        assert "action space" in reason


def test_every_cell_batches_across_workers(quick_sweep):
    """The acceptance floors: cross-worker share > 0 and a real engine-call
    reduction vs the unbatched control, in every cell."""
    assert quick_sweep.points
    for point in quick_sweep.points:
        assert point.cross_worker_share > 0.0, point
        assert point.engine_call_reduction > 1.0, point
        assert point.rows == point.steps == point.unbatched_engine_calls
        assert point.mean_batch > 1.0


def test_sweep_is_deterministic(quick_sweep):
    again = run_zoo_sweep(QUICK_GRID["sims"], **{k: v for k, v in QUICK_GRID.items()
                                                 if k != "sims"})
    assert again.report() == quick_sweep.report()


def test_point_lookup(quick_sweep):
    point = quick_sweep.point("Pong", "DQN", 4, 1)
    assert point.sim == "Pong" and point.algorithm == "DQN"
    with pytest.raises(KeyError):
        quick_sweep.point("Pong", "DQN", 99, 1)


def test_sweep_validates_inputs():
    with pytest.raises(ValueError):
        run_zoo_sweep(())
    with pytest.raises(ValueError):
        run_zoo_sweep(("Pong",), algorithms=("NotAnAlgo",))
    with pytest.raises(ValueError):
        run_zoo_sweep(("Pong",), worker_counts=(0,))


def test_defaults_cover_the_roadmap_floor():
    assert len([s for s in DEFAULT_ZOO_SIMS if s != "Go"]) >= 3
    assert len(DEFAULT_ZOO_ALGOS) >= 2


def test_trace_dir_streams_per_cell_tracedbs(tmp_path):
    result = run_zoo_sweep(("Pong",), algorithms=("DQN",), worker_counts=(2,),
                           replica_counts=(1,), steps_per_worker=3,
                           trace_dir=str(tmp_path))
    assert result.points
    cell = tmp_path / "Pong_DQN_w2_r1"
    assert cell.is_dir()
    from repro.tracedb.store import TraceDB
    db = TraceDB(str(cell))
    assert set(db.workers()) == {"rollout_worker_0", "rollout_worker_1"}


def test_zoosweep_cli_quick_writes_report(tmp_path, capsys, monkeypatch):
    from repro.experiments.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["zoosweep", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Zoo sweep" in out
    report = (tmp_path / "results" / "zoo_sweep.txt").read_text()
    assert report.strip() in out
