"""Tests for the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now_us == 0.0


def test_advance_moves_time_forward():
    clock = VirtualClock()
    clock.advance(125.0)
    clock.advance(0.5)
    assert clock.now_us == pytest.approx(125.5)
    assert clock.now_sec == pytest.approx(125.5e-6)


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(start_us=-5.0)


def test_advance_to_moves_forward_only():
    clock = VirtualClock()
    clock.advance_to(100.0)
    assert clock.now_us == 100.0
    clock.advance_to(50.0)  # going backwards is a no-op
    assert clock.now_us == 100.0


def test_observers_see_every_advance():
    clock = VirtualClock()
    seen = []
    clock.add_observer(lambda start, end: seen.append((start, end)))
    clock.advance(10.0)
    clock.advance(5.0)
    assert seen == [(0.0, 10.0), (10.0, 15.0)]
    clock.remove_observer(clock._observers[0])
    clock.advance(1.0)
    assert len(seen) == 2


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_clock_is_monotonic(durations):
    clock = VirtualClock()
    previous = clock.now_us
    for duration in durations:
        clock.advance(duration)
        assert clock.now_us >= previous
        previous = clock.now_us
    assert clock.now_us == pytest.approx(sum(durations), rel=1e-9, abs=1e-6)
