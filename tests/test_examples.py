"""Smoke tests for the example scripts (run with reduced workload sizes)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _import_example(name: str):
    """Load an example module by path without executing its __main__ block."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = runpy.run_path(str(EXAMPLES_DIR / name), run_name="example")
    finally:
        sys.path.pop(0)
    return module


def test_example_files_exist():
    expected = {"quickstart.py", "framework_comparison.py", "algorithm_and_simulator_survey.py",
                "minigo_scaleup.py", "overhead_correction.py"}
    assert expected <= {path.name for path in EXAMPLES_DIR.glob("*.py")}


def test_framework_comparison_example_small(capsys):
    module = _import_example("framework_comparison.py")
    module["main"](48)
    output = capsys.readouterr().out
    assert "fastest configuration" in output
    assert "Figure 4" in output


def test_minigo_scaleup_example_small(capsys):
    module = _import_example("minigo_scaleup.py")
    module["main"](2)
    output = capsys.readouterr().out
    assert "nvidia-smi" in output
    assert "busiest self-play worker" in output


def test_survey_example_small(capsys):
    module = _import_example("algorithm_and_simulator_survey.py")
    # Patch the survey to a subset of simulators to keep the test quick.
    from repro.experiments import fig7
    original = list(fig7.SURVEY_SIMULATORS)
    fig7.SURVEY_SIMULATORS[:] = ["Pong", "Walker2D"]
    try:
        module["main"](48)
    finally:
        fig7.SURVEY_SIMULATORS[:] = original
    output = capsys.readouterr().out
    assert "Part 1" in output and "Part 2" in output
