"""Tests for the batched cross-worker inference service and wave MCTS."""

import numpy as np
import pytest

from repro.backend import GraphEngine
from repro.hw.gpu import GPUDevice
from repro.minigo import (
    MCTS,
    InferenceService,
    PolicyValueNet,
    SelfPlayPool,
)
from repro.minigo.selfplay import OP_EXPAND_LEAF
from repro.profiler.events import Event
from repro.sim.go import GoPosition
from repro.system import System


BOARD = 5
NUM_MOVES = BOARD * BOARD + 1


def make_network(seed=7):
    return PolicyValueNet(BOARD, (16, 16), rng=np.random.default_rng(seed))


def make_client(service, device, *, worker, seed=0, stream=0):
    system = System.create(seed=seed, device=device, worker=worker)
    system.cuda.default_stream = stream
    engine = GraphEngine(system, flavor="tensorflow")
    return service.connect(system, engine, worker=worker)


def uniform_evaluator(features):
    batch = features.shape[0]
    priors = np.full((batch, NUM_MOVES), 1.0 / NUM_MOVES, dtype=np.float32)
    return priors, np.zeros(batch, dtype=np.float32)


# ----------------------------------------------------------------- service
def test_service_coalesces_cross_worker_requests():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=64)
    client_a = make_client(service, device, worker="a", stream=0)
    client_b = make_client(service, device, worker="b", seed=1, stream=1)

    features_a = np.random.default_rng(0).normal(size=(3, 75)).astype(np.float32)
    features_b = np.random.default_rng(1).normal(size=(2, 75)).astype(np.float32)
    ticket_a = client_a.submit(features_a)
    ticket_b = client_b.submit(features_b)
    assert service.pending_rows == 5
    calls = service.flush()

    assert calls == 1, "both workers' rows must ride one batched engine call"
    stats = service.stats
    assert stats.engine_calls == 1
    assert stats.rows == 5
    assert stats.cross_worker_batches == 1
    assert stats.rows_by_worker == {"a": 3, "b": 2}
    assert stats.calls_saved == 4

    # Row results match evaluating each worker's block alone (up to BLAS
    # rounding, which may differ by an ulp across matmul batch shapes;
    # identical shapes — the leaf_batch=1 case — are bitwise identical).
    priors_a, values_a = ticket_a.result()
    priors_b, values_b = ticket_b.result()
    solo = InferenceService(make_network(), max_batch=64)
    solo_client = make_client(solo, GPUDevice(), worker="solo")
    solo_priors, solo_values = solo_client.evaluate(features_a)
    np.testing.assert_allclose(priors_a, solo_priors, atol=1e-6)
    np.testing.assert_allclose(values_a, solo_values, atol=1e-6)
    assert priors_b.shape == (2, NUM_MOVES) and values_b.shape == (2,)

    # Both requesters paid for the batch on their own virtual clocks.
    assert client_a.system.clock.now_us > 0
    assert client_b.system.clock.now_us > 0


def test_service_splits_oversized_requests_across_batches():
    service = InferenceService(make_network(), max_batch=4)
    client = make_client(service, GPUDevice(), worker="big")
    features = np.random.default_rng(2).normal(size=(10, 75)).astype(np.float32)
    metadata = {}
    priors, values = client.evaluate(features, metadata=metadata)

    assert priors.shape == (10, NUM_MOVES) and values.shape == (10,)
    assert service.stats.engine_calls == 3          # 4 + 4 + 2 rows
    assert service.stats.batch_sizes == [4, 4, 2]
    assert metadata["engine_calls"] == 3
    assert metadata["batch_rows"] == 10
    assert metadata["inference_service"] == service.name
    assert metadata["batch_time_us"] > 0


def test_service_rejects_bad_input():
    service = InferenceService(make_network())
    client = make_client(service, GPUDevice(), worker="w")
    with pytest.raises(ValueError):
        client.submit(np.zeros((0, 75), dtype=np.float32))
    with pytest.raises(ValueError):
        InferenceService(make_network(), max_batch=0)


# -------------------------------------------------------------- wave MCTS
def test_wave_search_visit_counts_match_simulation_budget():
    position = GoPosition.initial(size=BOARD)
    for leaf_batch in (1, 4, 16):
        mcts = MCTS(uniform_evaluator, num_simulations=20, leaf_batch=leaf_batch,
                    rng=np.random.default_rng(0))
        root = mcts.search(position)
        assert root.visit_count == 20
        assert sum(child.visit_count for child in root.children.values()) == 20
        # All virtual losses must have been reverted.
        def assert_no_virtual_loss(node):
            assert node.virtual_loss == 0
            for child in node.children.values():
                assert_no_virtual_loss(child)
        assert_no_virtual_loss(root)


def test_wave_search_batches_evaluator_calls():
    calls = []

    def counting_evaluator(features):
        calls.append(features.shape[0])
        return uniform_evaluator(features)

    mcts = MCTS(counting_evaluator, num_simulations=16, leaf_batch=16,
                rng=np.random.default_rng(0))
    mcts.search(GoPosition.initial(size=BOARD))
    assert sum(calls) >= 16             # root + every evaluated leaf
    assert max(calls) > 1               # at least one genuinely batched call
    assert len(calls) < 17              # strictly fewer calls than per-leaf

    mcts_rejects = pytest.raises(ValueError)
    with mcts_rejects:
        MCTS(uniform_evaluator, num_simulations=4, leaf_batch=0)


# -------------------------------------------------- pool-level determinism
POOL_KWARGS = dict(board_size=BOARD, num_simulations=6, games_per_worker=1,
                   max_moves=8, hidden=(16, 16), seed=3)


def _game_records(pool):
    pool.run()
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def test_leaf_batch_one_reproduces_legacy_game_records():
    legacy = _game_records(SelfPlayPool(3, profile=True, **POOL_KWARGS))
    batched = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=1,
                           **POOL_KWARGS)
    assert _game_records(batched) == legacy
    # The batched path really ran through the service, one row per call.
    stats = batched.inference_service.stats
    assert stats.engine_calls == stats.rows > 0


def test_larger_leaf_batch_reduces_engine_calls():
    batched = SelfPlayPool(2, profile=False, batched_inference=True, leaf_batch=6,
                           **POOL_KWARGS)
    records = _game_records(batched)
    stats = batched.inference_service.stats
    assert stats.engine_calls < stats.rows
    assert stats.max_batch_rows > 1
    assert all(records), "every worker still produces games"


def test_batched_pool_records_expand_leaf_attribution_metadata(tmp_path):
    pool = SelfPlayPool(2, profile=True, batched_inference=True, leaf_batch=4,
                        **POOL_KWARGS)
    pool.run()
    tagged = []
    for run in pool.runs:
        for op in run.trace.operations:
            if op.name == OP_EXPAND_LEAF:
                assert op.metadata is not None
                assert op.metadata["inference_service"] == pool.inference_service.name
                assert op.metadata["batch_rows"] >= op.metadata["rows"] >= 1
                assert op.metadata["leaf_batch"] == 4
                tagged.append(op)
    assert tagged, "expand_leaf events must carry batch attribution metadata"
    # Metadata survives the serialisation round-trip, and its absence keeps
    # the on-disk record format unchanged.
    event = tagged[0]
    assert Event.from_dict(event.to_dict()) == event
    bare = Event("Operation", "expand_leaf", 0.0, 1.0)
    assert "metadata" not in bare.to_dict()
