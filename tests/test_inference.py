"""Tests for the batched cross-worker inference service and wave MCTS."""

import numpy as np
import pytest

from repro.backend import GraphEngine
from repro.hw.gpu import GPUDevice
from repro.minigo import (
    MCTS,
    InferenceService,
    PolicyValueNet,
    SelfPlayPool,
)
from repro.minigo.selfplay import OP_EXPAND_LEAF
from repro.profiler.events import Event
from repro.sim.go import GoPosition
from repro.system import System


BOARD = 5
NUM_MOVES = BOARD * BOARD + 1


def make_network(seed=7):
    return PolicyValueNet(BOARD, (16, 16), rng=np.random.default_rng(seed))


def make_client(service, device, *, worker, seed=0, stream=0):
    system = System.create(seed=seed, device=device, worker=worker)
    system.cuda.default_stream = stream
    engine = GraphEngine(system, flavor="tensorflow")
    return service.connect(system, engine, worker=worker)


def uniform_evaluator(features):
    batch = features.shape[0]
    priors = np.full((batch, NUM_MOVES), 1.0 / NUM_MOVES, dtype=np.float32)
    return priors, np.zeros(batch, dtype=np.float32)


# ----------------------------------------------------------------- service
def test_service_coalesces_cross_worker_requests():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=64)
    client_a = make_client(service, device, worker="a", stream=0)
    client_b = make_client(service, device, worker="b", seed=1, stream=1)

    features_a = np.random.default_rng(0).normal(size=(3, 75)).astype(np.float32)
    features_b = np.random.default_rng(1).normal(size=(2, 75)).astype(np.float32)
    ticket_a = client_a.submit(features_a)
    ticket_b = client_b.submit(features_b)
    assert service.pending_rows == 5
    calls = service.flush()

    assert calls == 1, "both workers' rows must ride one batched engine call"
    stats = service.stats
    assert stats.engine_calls == 1
    assert stats.rows == 5
    assert stats.cross_worker_batches == 1
    assert stats.rows_by_worker == {"a": 3, "b": 2}
    assert stats.calls_saved == 4

    # Row results match evaluating each worker's block alone (up to BLAS
    # rounding, which may differ by an ulp across matmul batch shapes;
    # identical shapes — the leaf_batch=1 case — are bitwise identical).
    priors_a, values_a = ticket_a.result()
    priors_b, values_b = ticket_b.result()
    solo = InferenceService(make_network(), max_batch=64)
    solo_client = make_client(solo, GPUDevice(), worker="solo")
    solo_priors, solo_values = solo_client.evaluate(features_a)
    np.testing.assert_allclose(priors_a, solo_priors, atol=1e-6)
    np.testing.assert_allclose(values_a, solo_values, atol=1e-6)
    assert priors_b.shape == (2, NUM_MOVES) and values_b.shape == (2,)

    # Both requesters paid for the batch on their own virtual clocks.
    assert client_a.system.clock.now_us > 0
    assert client_b.system.clock.now_us > 0


def test_service_splits_oversized_requests_across_batches():
    service = InferenceService(make_network(), max_batch=4)
    client = make_client(service, GPUDevice(), worker="big")
    features = np.random.default_rng(2).normal(size=(10, 75)).astype(np.float32)
    metadata = {}
    priors, values = client.evaluate(features, metadata=metadata)

    assert priors.shape == (10, NUM_MOVES) and values.shape == (10,)
    assert service.stats.engine_calls == 3          # 4 + 4 + 2 rows
    assert service.stats.batch_sizes.sample == [4, 4, 2]
    assert service.stats.batch_sizes.count == 3
    assert metadata["engine_calls"] == 3
    assert metadata["batch_rows"] == 10
    assert metadata["inference_service"] == service.name
    assert metadata["batch_time_us"] > 0


def test_service_rejects_bad_input():
    service = InferenceService(make_network())
    client = make_client(service, GPUDevice(), worker="w")
    with pytest.raises(ValueError):
        client.submit(np.zeros((0, 75), dtype=np.float32))
    with pytest.raises(ValueError):
        InferenceService(make_network(), max_batch=0)
    with pytest.raises(ValueError):
        service.serve_queued(policy="bogus")
    with pytest.raises(ValueError):
        service.serve_queued(policy="timeout")   # timeout policy needs timeout_us


def test_batch_size_stats_memory_is_bounded():
    from repro.minigo import BatchSizeStats

    stats = BatchSizeStats(reservoir_size=32)
    for i in range(10_000):
        stats.append(1 + (i % 100))
    assert stats.count == 10_000
    assert sum(stats.counts) == 10_000
    assert len(stats.sample) == 32            # reservoir never grows past capacity
    assert stats.max_rows == 100
    assert 0 < stats.mean <= 100
    # Histogram buckets cover every observation and stay a fixed size.
    assert sum(count for _, _, count in stats.histogram()) == 10_000
    assert len(stats.counts) == len(BatchSizeStats.BUCKET_BOUNDS) + 1
    # Deterministic: same appends, same reservoir.
    other = BatchSizeStats(reservoir_size=32)
    for i in range(10_000):
        other.append(1 + (i % 100))
    assert other.sample == stats.sample


def test_rider_wait_time_is_charged_inside_expand_leaf():
    """Non-host batch riders must not advance their clock as untracked time."""
    from repro.profiler import Profiler, ProfilerConfig

    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=64)
    systems, clients = [], []
    for i, worker in enumerate(("host", "rider")):
        system = System.create(seed=i, device=device, worker=worker)
        system.cuda.default_stream = i
        engine = GraphEngine(system, flavor="tensorflow")
        profiler = Profiler(system, ProfilerConfig.full(), worker=worker)
        profiler.attach(engine=engine)
        clients.append(service.connect(system, engine, worker=worker, profiler=profiler))
        systems.append((system, profiler))

    rng = np.random.default_rng(0)
    clients[0].submit(rng.normal(size=(2, 75)).astype(np.float32))
    clients[1].submit(rng.normal(size=(1, 75)).astype(np.float32))
    service.flush()

    rider_system, rider_profiler = systems[1]
    trace = rider_profiler.finalize()
    rider_ops = [op for op in trace.operations if op.name == OP_EXPAND_LEAF]
    assert rider_ops, "the rider's batch wait must be recorded as an expand_leaf operation"
    op = rider_ops[0]
    assert op.metadata is not None and op.metadata["batch_rider"] is True
    assert op.metadata["batch_clients"] == 2
    # The operation covers (at least) the whole batch time charged to the rider.
    assert op.end_us - op.start_us >= op.metadata["batch_time_us"]
    assert rider_system.clock.now_us >= op.end_us


def test_serve_queued_charges_wait_plus_batch_and_times_out_partial_batches():
    """Queueing model: arrival-order packing, deadlines, wait attribution."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8)
    early = make_client(service, device, worker="early", stream=0)
    late = make_client(service, device, worker="late", seed=1, stream=1)

    rng = np.random.default_rng(3)
    early.submit(rng.normal(size=(2, 75)).astype(np.float32))          # arrives at t=0
    late.system.clock.advance(50_000.0)
    late.submit(rng.normal(size=(2, 75)).astype(np.float32))           # arrives at t=50ms
    calls = service.serve_queued(policy="timeout", timeout_us=1_000.0)

    # The early request's batch departed at its deadline (t=1000), long
    # before the late request arrived; two separate engine calls resulted.
    assert calls == 2
    stats = service.stats
    assert stats.engine_calls == 2
    assert stats.cross_worker_batches == 0
    assert stats.queued_waits == 2
    # The early worker waited out the full timeout before its batch started.
    assert stats.max_queue_delay_us >= 1_000.0
    assert early.system.clock.now_us >= 1_000.0
    # The late worker's batch could not start before the replica freed up
    # *and* its own deadline passed.
    assert late.system.clock.now_us >= 51_000.0
    assert stats.mean_occupancy == pytest.approx(2 / 8)


def test_cutoff_serve_holds_back_partial_batches_still_within_their_deadline():
    """A deadline-triggered serve must not depart a later batch early.

    With a cutoff (the scheduler's timeout trigger), full batches and the
    due partial batch depart, but an overflow partial batch whose own
    deadline lies beyond the cutoff stays queued so it can still gather
    riders."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=4)
    clients = []
    for i in range(3):
        client = make_client(service, device, worker=f"w{i}", seed=i, stream=i)
        client.system.clock.advance(100.0 * i)   # arrivals at t=0, 100, 200
        clients.append(client)

    rng = np.random.default_rng(5)
    tickets = [c.submit(rng.normal(size=(2, 75)).astype(np.float32)) for c in clients]
    calls = service.serve_queued(policy="timeout", timeout_us=500.0,
                                 arrival_cutoff_us=500.0)

    # 6 rows pack as one full 4-row batch (due) plus a 2-row overflow whose
    # deadline (200 + 500) is past the cutoff: only the full batch departs.
    assert calls == 1
    assert tickets[0].done and tickets[1].done
    assert not tickets[2].done
    assert service.pending_tickets == 1
    # A later serve without a cutoff drains the held-back ticket.
    assert service.serve_queued(policy="timeout", timeout_us=500.0) == 1
    assert tickets[2].done


def test_serve_queued_coalesces_across_workers_and_serializes_the_replica():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=4)
    a = make_client(service, device, worker="a", stream=0)
    b = make_client(service, device, worker="b", seed=1, stream=1)

    rng = np.random.default_rng(4)
    ticket_a = a.submit(rng.normal(size=(3, 75)).astype(np.float32))
    b.system.clock.advance(100.0)
    ticket_b = b.submit(rng.normal(size=(3, 75)).astype(np.float32))
    calls = service.serve_queued(policy="max-batch")

    # 6 rows into chunks of 4: the first batch is cross-worker.
    assert calls == 2
    assert service.stats.cross_worker_batches == 1
    assert ticket_a.done and ticket_b.done
    assert ticket_a.priors.shape == (3, NUM_MOVES)
    assert ticket_b.priors.shape == (3, NUM_MOVES)
    # Both workers end at/after the completion of the last batch they rode.
    assert b.system.clock.now_us >= a.system.clock.now_us - 1e-9
    assert service.stats.queue_delay_us > 0.0


# -------------------------------------------------------------- wave MCTS
def test_wave_search_visit_counts_match_simulation_budget():
    position = GoPosition.initial(size=BOARD)
    for leaf_batch in (1, 4, 16):
        mcts = MCTS(uniform_evaluator, num_simulations=20, leaf_batch=leaf_batch,
                    rng=np.random.default_rng(0))
        root = mcts.search(position)
        assert root.visit_count == 20
        assert sum(child.visit_count for child in root.children.values()) == 20
        # All virtual losses must have been reverted.
        def assert_no_virtual_loss(node):
            assert node.virtual_loss == 0
            for child in node.children.values():
                assert_no_virtual_loss(child)
        assert_no_virtual_loss(root)


def test_wave_search_batches_evaluator_calls():
    calls = []

    def counting_evaluator(features):
        calls.append(features.shape[0])
        return uniform_evaluator(features)

    mcts = MCTS(counting_evaluator, num_simulations=16, leaf_batch=16,
                rng=np.random.default_rng(0))
    mcts.search(GoPosition.initial(size=BOARD))
    assert sum(calls) >= 16             # root + every evaluated leaf
    assert max(calls) > 1               # at least one genuinely batched call
    assert len(calls) < 17              # strictly fewer calls than per-leaf

    mcts_rejects = pytest.raises(ValueError)
    with mcts_rejects:
        MCTS(uniform_evaluator, num_simulations=4, leaf_batch=0)


# -------------------------------------------------- pool-level determinism
POOL_KWARGS = dict(board_size=BOARD, num_simulations=6, games_per_worker=1,
                   max_moves=8, hidden=(16, 16), seed=3)


def _game_records(pool):
    pool.run()
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


def test_leaf_batch_one_reproduces_legacy_game_records():
    legacy = _game_records(SelfPlayPool(3, profile=True, **POOL_KWARGS))
    batched = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=1,
                           **POOL_KWARGS)
    assert _game_records(batched) == legacy
    # The batched path really ran through the service, one row per call.
    stats = batched.inference_service.stats
    assert stats.engine_calls == stats.rows > 0


def test_larger_leaf_batch_reduces_engine_calls():
    batched = SelfPlayPool(2, profile=False, batched_inference=True, leaf_batch=6,
                           **POOL_KWARGS)
    records = _game_records(batched)
    stats = batched.inference_service.stats
    assert stats.engine_calls < stats.rows
    assert stats.max_batch_rows > 1
    assert all(records), "every worker still produces games"


def test_batched_pool_records_expand_leaf_attribution_metadata(tmp_path):
    pool = SelfPlayPool(2, profile=True, batched_inference=True, leaf_batch=4,
                        **POOL_KWARGS)
    pool.run()
    tagged = []
    for run in pool.runs:
        for op in run.trace.operations:
            if op.name == OP_EXPAND_LEAF:
                assert op.metadata is not None
                assert op.metadata["inference_service"] == pool.inference_service.name
                assert op.metadata["batch_rows"] >= op.metadata["rows"] >= 1
                assert op.metadata["leaf_batch"] == 4
                tagged.append(op)
    assert tagged, "expand_leaf events must carry batch attribution metadata"
    # Metadata survives the serialisation round-trip, and its absence keeps
    # the on-disk record format unchanged.
    event = tagged[0]
    assert Event.from_dict(event.to_dict()) == event
    bare = Event("Operation", "expand_leaf", 0.0, 1.0)
    assert "metadata" not in bare.to_dict()


def test_idle_service_statistics_never_divide_by_zero():
    """Empty-service guard: every derived stat is defined before any batch."""
    service = InferenceService(make_network(), max_batch=16)
    stats = service.stats
    assert stats.engine_calls == 0
    assert stats.mean_batch_rows == 0.0
    assert stats.mean_occupancy == 0.0
    assert stats.mean_queue_delay_us == 0.0
    assert stats.cross_worker_share == 0.0
    assert service.flush() == 0
    assert service.serve_queued(policy="max-batch") == 0
    assert service.serve_queued(policy="timeout", timeout_us=5.0) == 0
    # Still all zeros after serving an empty queue.
    assert stats.mean_occupancy == 0.0 and stats.cross_worker_share == 0.0


# --------------------------------------------------- queue-delay percentiles
def test_queue_delay_percentiles_empty_service_returns_none():
    service = InferenceService(make_network(), max_batch=8)
    assert service.stats.queue_delay_percentiles() is None
    assert service.stats.queue_delay_percentiles((50.0,)) is None


def test_queue_delay_percentiles_match_observed_delays():
    """Below reservoir capacity the sample is exact, so percentiles are too."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8)
    clients = []
    for i in range(4):
        client = make_client(service, device, worker=f"w{i}", seed=i, stream=i)
        client.system.clock.advance(100.0 * i)   # arrivals at t=0,100,200,300
        clients.append(client)
    rng = np.random.default_rng(9)
    for client in clients:
        client.submit(rng.normal(size=(2, 75)).astype(np.float32))
    service.serve_queued(policy="max-batch")

    sample = service.stats.queue_delay_samples.sample
    assert len(sample) == 4
    stats = service.stats.queue_delay_percentiles()
    assert set(stats) == {50.0, 95.0, 99.0}
    expected = {p: float(np.percentile(sorted(sample), p)) for p in (50.0, 95.0, 99.0)}
    for p, value in expected.items():
        assert stats[p] == pytest.approx(value)
    assert stats[50.0] <= stats[95.0] <= stats[99.0]
    # The max delay in the sample is the stats max (nothing was evicted).
    assert max(sample) == pytest.approx(service.stats.max_queue_delay_us)


def test_queue_delay_reservoir_is_bounded_and_deterministic():
    from repro.minigo.inference import ReservoirSample
    a = ReservoirSample(capacity=32, seed=3)
    b = ReservoirSample(capacity=32, seed=3)
    for value in range(1000):
        a.append(float(value))
        b.append(float(value))
    assert len(a.sample) == 32
    assert a.count == 1000
    assert a.sample == b.sample, "same seed, same stream, same reservoir"


def test_completion_us_metadata_records_batch_end():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8)
    client = make_client(service, device, worker="w0")
    meta = {}
    client.submit(np.random.default_rng(0).normal(size=(2, 75)).astype(np.float32),
                  metadata=meta)
    service.serve_queued(policy="max-batch")
    assert meta["completion_us"] == pytest.approx(client.system.clock.now_us)
    assert meta["completion_us"] >= meta["queue_delay_us"]


# ----------------------------------------------------------------- shedding
def test_drop_pending_partitions_and_keeps_departed_batches():
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=4)
    client = make_client(service, device, worker="w0")
    rng = np.random.default_rng(11)
    tickets = []
    for i in range(3):
        client.system.clock.advance(10.0)
        tickets.append(client.submit(rng.normal(size=(1, 75)).astype(np.float32)))

    victims = {id(tickets[1])}
    dropped = service.drop_pending(lambda t: id(t) in victims)
    assert dropped == [tickets[1]]
    assert service.pending_tickets == 2
    assert service.pending_rows == 2
    # Dropped work never reaches the engine; the rest still serves.
    calls = service.serve_queued(policy="max-batch")
    assert calls == 1
    assert tickets[0].done and tickets[2].done
    assert not tickets[1].done
    assert service.stats.rows == 2
    # A second drop finds nothing: the queue is empty now.
    assert service.drop_pending(lambda t: True) == []


def test_drop_pending_calls_predicate_once_per_ticket():
    """Stateful predicates (drop the first N) must see each ticket once."""
    device = GPUDevice()
    service = InferenceService(make_network(), max_batch=8)
    client = make_client(service, device, worker="w0")
    rng = np.random.default_rng(12)
    for _ in range(5):
        client.submit(rng.normal(size=(1, 75)).astype(np.float32))
    seen = []
    service.drop_pending(lambda t: seen.append(id(t)) is None and len(seen) <= 2)
    assert len(seen) == 5, "one predicate call per pending ticket"
    assert service.pending_tickets == 3
