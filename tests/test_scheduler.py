"""Tests for the event-driven virtual-time pool scheduler and game drivers."""

import numpy as np
import pytest

from repro.minigo import (
    GameDriver,
    MinigoConfig,
    MinigoTraining,
    PoolScheduler,
    SelfPlayPool,
)
from repro.minigo.mcts import MCTS, LeafEvalRequest
from repro.profiler import multi_process_summary
from repro.sim.go import GoPosition

POOL_KWARGS = dict(board_size=5, num_simulations=6, games_per_worker=1,
                   max_moves=8, hidden=(16, 16), seed=3)


def _game_records(pool):
    return [
        [(ex.features.tobytes(), ex.policy_target.tobytes(), ex.value_target)
         for ex in run.result.examples]
        for run in pool.runs
    ]


# ------------------------------------------------------------ search_steps
def test_search_steps_matches_synchronous_search():
    """Driving the generator with the same evaluator reproduces search()."""
    def evaluator(features):
        batch = features.shape[0]
        priors = np.full((batch, 26), 1.0 / 26, dtype=np.float32)
        return priors, np.linspace(-0.5, 0.5, batch, dtype=np.float32)

    position = GoPosition.initial(size=5)
    sync = MCTS(evaluator, num_simulations=12, leaf_batch=4, rng=np.random.default_rng(5))
    sync_root = sync.search(position)

    stepped = MCTS(evaluator, num_simulations=12, leaf_batch=4, rng=np.random.default_rng(5))
    gen = stepped.search_steps(position)
    requests = 0
    try:
        request = next(gen)
        while True:
            assert isinstance(request, LeafEvalRequest)
            assert not request.done
            requests += 1
            request.fulfill(*evaluator(request.features))
            request = gen.send(None)
    except StopIteration as stop:
        stepped_root = stop.value

    assert requests >= 2  # root expansion plus at least one wave
    assert stepped_root.visit_count == sync_root.visit_count

    def visits(node):
        return sorted((index, child.visit_count) for index, child in node.children.items())
    assert visits(stepped_root) == visits(sync_root)


def test_search_steps_rejects_unfulfilled_resume():
    mcts = MCTS(lambda f: (np.full((f.shape[0], 26), 1 / 26), np.zeros(f.shape[0])),
                num_simulations=2)
    gen = mcts.search_steps(GoPosition.initial(size=5))
    next(gen)
    with pytest.raises(RuntimeError):
        gen.send(None)  # resumed without fulfilling the pending request


# ---------------------------------------------------- bit-for-bit determinism
@pytest.mark.parametrize("leaf_batch", [1, 4])
def test_event_unbatched_pool_is_bitwise_identical_to_sequential(leaf_batch):
    """The scheduler machinery itself introduces zero drift.

    Under the ``unbatched`` flush policy every ticket is served on its own
    worker's clock exactly as the sequential pool serves it, so game
    records, per-worker clocks and overlap summaries must all be
    bit-for-bit identical — only the execution order interleaves.
    """
    sequential = SelfPlayPool(3, profile=True, batched_inference=True,
                              leaf_batch=leaf_batch, **POOL_KWARGS)
    sequential.run()
    event = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=leaf_batch,
                         scheduler="event", flush_policy="unbatched", **POOL_KWARGS)
    event.run()

    assert _game_records(event) == _game_records(sequential)
    assert [run.total_time_us for run in event.runs] == \
        [run.total_time_us for run in sequential.runs]
    assert multi_process_summary(event.traces()) == multi_process_summary(sequential.traces())
    # The event pool really ran through the scheduler.
    stats = event.pool_scheduler.stats
    assert stats.steps > 0 and stats.serves > 0


def test_event_scheduler_leaf_batch_one_reproduces_legacy_records():
    """The acceptance bar: event-driven at leaf_batch=1 == legacy sequential."""
    legacy = SelfPlayPool(3, profile=False, **POOL_KWARGS)
    legacy.run()
    event = SelfPlayPool(3, profile=False, batched_inference=True, leaf_batch=1,
                         scheduler="event", flush_policy="unbatched", **POOL_KWARGS)
    event.run()
    assert _game_records(event) == _game_records(legacy)


# ------------------------------------------------------- cross-worker batching
def test_event_scheduler_batches_across_workers():
    sequential = SelfPlayPool(4, profile=False, batched_inference=True, leaf_batch=4,
                              **POOL_KWARGS)
    sequential.run()
    event = SelfPlayPool(4, profile=False, batched_inference=True, leaf_batch=4,
                         scheduler="event", **POOL_KWARGS)
    event.run()

    seq_stats = sequential.inference_service.stats
    ev_stats = event.inference_service.stats
    assert seq_stats.cross_worker_batches == 0, \
        "sequential simulation cannot coalesce across workers"
    assert ev_stats.cross_worker_batches > 0
    assert ev_stats.cross_worker_share >= 0.5
    assert ev_stats.engine_calls < seq_stats.engine_calls / 2
    assert ev_stats.mean_batch_rows > seq_stats.mean_batch_rows
    # The queueing model charged arrival-order waiting time.
    assert ev_stats.queued_waits > 0
    assert ev_stats.mean_queue_delay_us >= 0.0
    assert 0.0 < ev_stats.mean_occupancy <= 1.0


def test_event_scheduler_profiled_run_attributes_wait_inside_operations():
    """Suspended waits land inside the worker's own operation annotations."""
    pool = SelfPlayPool(3, profile=True, batched_inference=True, leaf_batch=4,
                        scheduler="event", **POOL_KWARGS)
    pool.run()
    summaries = multi_process_summary(pool.traces())
    for run, summary in zip(pool.runs, summaries):
        # Everything the worker was charged — including queueing delay and
        # shared batch time — is covered by its recorded events: the trace's
        # span matches the clock, and no negative/overflowed times appear.
        assert summary.total_time_us == pytest.approx(run.total_time_us)
        assert summary.cpu_time_us <= summary.total_time_us + 1e-6
    for run in pool.runs:
        expand_ops = [op for op in run.trace.operations if op.name == "expand_leaf"]
        assert expand_ops
        assert all(op.metadata is not None and op.metadata.get("batch_rows", 0) >= 1
                   for op in expand_ops)
        # At least one wave of this worker rode a cross-worker batch.
        assert any(op.metadata.get("batch_clients", 0) > 1 for op in expand_ops)


# ------------------------------------------------------- heap vs linear scan
def _run_event_pool(use_heap, **overrides):
    from repro.minigo.workers import PoolScheduler
    kwargs = dict(profile=False, batched_inference=True, scheduler="event")
    kwargs.update(overrides)
    saved = PoolScheduler.default_use_heap
    PoolScheduler.default_use_heap = use_heap
    try:
        pool = SelfPlayPool(**kwargs)
        pool.run()
    finally:
        PoolScheduler.default_use_heap = saved
    return pool


@pytest.mark.parametrize("config", [
    dict(num_workers=5, leaf_batch=4),
    dict(num_workers=4, leaf_batch=4, flush_policy="timeout", flush_timeout_us=10.0),
    dict(num_workers=4, leaf_batch=4, num_replicas=2, routing="least-loaded"),
])
def test_heap_scheduler_matches_linear_scan(config):
    """The lazy min-heap makes identical scheduling decisions to the scan.

    Covered paths: the plain all-blocked barrier, timeout deadline serves
    (partial batches departing while others run), and replica-aware eager
    serves.  Game records, per-worker clocks and every *decision* counter
    must be identical; only the heap bookkeeping counters may differ.
    """
    heap_pool = _run_event_pool(True, **config, **POOL_KWARGS)
    scan_pool = _run_event_pool(False, **config, **POOL_KWARGS)

    assert _game_records(heap_pool) == _game_records(scan_pool)
    assert [run.total_time_us for run in heap_pool.runs] == \
        [run.total_time_us for run in scan_pool.runs]
    heap_stats, scan_stats = heap_pool.pool_scheduler.stats, scan_pool.pool_scheduler.stats
    assert (heap_stats.steps, heap_stats.serves, heap_stats.timeout_serves,
            heap_stats.eager_serves, heap_stats.steps_per_worker) == \
           (scan_stats.steps, scan_stats.serves, scan_stats.timeout_serves,
            scan_stats.eager_serves, scan_stats.steps_per_worker)
    # The heap loop actually used the heap; the scan loop never touched it.
    assert heap_stats.heap_pushes > 0
    assert heap_stats.heap_pops >= heap_stats.steps
    assert heap_stats.heap_stale_pops <= heap_stats.heap_pops
    assert scan_stats.heap_pushes == scan_stats.heap_pops == 0
    # Amortized-cost sanity: every pop is funded by a push.
    assert heap_stats.heap_pops <= heap_stats.heap_pushes


# ----------------------------------------------------------------- fairness
def test_no_worker_starves_under_the_event_loop():
    pool = SelfPlayPool(5, profile=False, batched_inference=True, leaf_batch=2,
                        scheduler="event", **POOL_KWARGS)
    pool.run()
    stats = pool.pool_scheduler.stats
    assert set(stats.steps_per_worker) == {run.worker for run in pool.runs}
    assert all(steps > 0 for steps in stats.steps_per_worker.values())
    # The heap-driven loop is the default and really drove this run; its
    # bookkeeping must be self-consistent (each step came off the heap).
    assert stats.heap_pushes > 0
    assert stats.heap_pops >= stats.steps
    # Every worker finished all its games and produced moves.
    for run in pool.runs:
        assert run.result.games == POOL_KWARGS["games_per_worker"]
        assert run.result.moves > 0
        assert run.total_time_us > 0
    # The min-clock policy keeps worker clocks within one wave of each other
    # while running, so final clocks cannot be wildly skewed.
    clocks = [run.total_time_us for run in pool.runs]
    assert max(clocks) < 2 * min(clocks)


def test_timeout_policy_serves_partial_batches_while_others_run():
    pool = SelfPlayPool(4, profile=False, batched_inference=True, leaf_batch=4,
                        scheduler="event", flush_policy="timeout", flush_timeout_us=10.0,
                        **POOL_KWARGS)
    pool.run()
    stats = pool.pool_scheduler.stats
    service_stats = pool.inference_service.stats
    # A 10us deadline is far shorter than a wave of tree-search work, so
    # most batches depart partial, before every worker has blocked.
    assert stats.timeout_serves > 0
    assert service_stats.mean_occupancy < 1.0
    # A generous deadline behaves like max-batch: bigger batches, more
    # queueing delay per request.
    relaxed = SelfPlayPool(4, profile=False, batched_inference=True, leaf_batch=4,
                           scheduler="event", flush_policy="timeout",
                           flush_timeout_us=1e9, **POOL_KWARGS)
    relaxed.run()
    relaxed_stats = relaxed.inference_service.stats
    assert relaxed_stats.mean_batch_rows >= service_stats.mean_batch_rows
    assert relaxed_stats.engine_calls <= service_stats.engine_calls


# ------------------------------------------------------------- configuration
def test_event_scheduler_requires_batched_inference():
    with pytest.raises(ValueError):
        SelfPlayPool(2, scheduler="event", **POOL_KWARGS)
    with pytest.raises(ValueError):
        SelfPlayPool(2, scheduler="bogus", **POOL_KWARGS)
    with pytest.raises(ValueError):
        SelfPlayPool(2, batched_inference=True, scheduler="event",
                     flush_policy="timeout", **POOL_KWARGS)  # missing timeout_us


def test_game_driver_guards_misuse():
    pool = SelfPlayPool(1, profile=False, batched_inference=True, leaf_batch=2,
                        **POOL_KWARGS)
    pool.inference_service = None  # build worker without running
    worker, _ = pool._make_worker(0, None)
    driver = GameDriver(worker, 0)
    assert driver.finished and not driver.blocked
    assert driver.step() is False

    with pytest.raises(ValueError):
        PoolScheduler([], service=None)


# ------------------------------------------------- evaluation phase batching
def test_candidate_evaluation_routes_through_shared_service():
    config = MinigoConfig(num_workers=2, board_size=5, num_simulations=4,
                          games_per_worker=1, max_moves=6, sgd_steps=2,
                          evaluation_games=2, hidden=(16, 16), seed=0,
                          batched_inference=True, leaf_batch=4)
    result = MinigoTraining(config).run_round()

    stats = result.evaluation_inference_stats
    assert stats is not None
    assert stats.engine_calls > 0
    # Waves batch leaf evaluations: far fewer calls than evaluated rows.
    assert stats.engine_calls < stats.rows
    assert stats.mean_batch_rows > 1.0
    # Both sides of the match rode the one shared service.
    assert set(stats.rows_by_worker) == {"evaluation_current", "evaluation_candidate"}
    assert result.selfplay_inference_stats is not None
    assert result.selfplay_inference_stats.engine_calls > 0

    # Without batched inference the evaluation phase reports no stats.
    legacy = MinigoTraining(MinigoConfig(num_workers=1, board_size=5, num_simulations=2,
                                         games_per_worker=1, max_moves=4, sgd_steps=1,
                                         evaluation_games=1, hidden=(8, 8), seed=0))
    legacy_result = legacy.run_round()
    assert legacy_result.evaluation_inference_stats is None
    assert legacy_result.scheduler_stats is None


def test_minigo_round_runs_under_event_scheduler():
    config = MinigoConfig(num_workers=3, board_size=5, num_simulations=4,
                          games_per_worker=1, max_moves=6, sgd_steps=2,
                          evaluation_games=1, hidden=(16, 16), seed=0,
                          batched_inference=True, leaf_batch=4, scheduler="event")
    result = MinigoTraining(config).run_round()
    assert result.scheduler_stats is not None
    assert result.scheduler_stats.steps > 0
    assert result.selfplay_inference_stats.cross_worker_batches > 0
    assert len(result.traces()) == 5  # 3 self-play workers + trainer + evaluation
    assert result.losses


def test_timeout_policy_under_sharding_stays_correct_and_pipelines():
    """Timeout flush + 2 replicas: deadlines, eager serves and full games."""
    pool = SelfPlayPool(4, profile=False, batched_inference=True, leaf_batch=4,
                        scheduler="event", flush_policy="timeout", flush_timeout_us=10.0,
                        num_replicas=2, routing="least-loaded", **POOL_KWARGS)
    pool.run()
    for run in pool.runs:
        assert run.result.games == POOL_KWARGS["games_per_worker"]
        assert run.result.moves > 0
    service = pool.inference_service
    assert all(replica.stats.engine_calls > 0 for replica in service.replicas)
    assert sum(service.routing_decisions()) == service.stats.engine_calls
    # A zero deadline is the extreme edge: every pending batch is due the
    # instant its first request arrives; the pool must still terminate with
    # every ticket served exactly once.
    instant = SelfPlayPool(3, profile=False, batched_inference=True, leaf_batch=4,
                           scheduler="event", flush_policy="timeout",
                           flush_timeout_us=0.0, num_replicas=2, **POOL_KWARGS)
    instant.run()
    stats = instant.inference_service.stats
    assert stats.rows == sum(rs.rows for rs in
                             (r.stats for r in instant.inference_service.replicas))
    assert all(run.result.moves > 0 for run in instant.runs)
