"""Tests for buffers, noise, frameworks, and the RL algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import AutographEngine, EagerEngine, GraphEngine, MPIAdam, PyTorchEagerEngine, Adam
from repro.profiler import Profiler, ProfilerConfig, analyze
from repro.rl import (
    ALGORITHMS,
    FrameworkAdapter,
    GaussianNoise,
    OrnsteinUhlenbeckNoise,
    REAGENT,
    ReplayBuffer,
    RolloutBuffer,
    STABLE_BASELINES,
    TABLE1,
    TF_AGENTS_AUTOGRAPH,
    TF_AGENTS_EAGER,
    default_config,
    default_framework,
    make_algorithm,
    make_engine,
)
from repro.sim import make
from repro.system import System


# -------------------------------------------------------------------- buffers
def test_replay_buffer_fifo_and_sampling(system):
    buffer = ReplayBuffer(capacity=8, obs_dim=3, action_dim=2, system=system, seed=0)
    for i in range(12):
        buffer.add(np.full(3, i, dtype=np.float32), np.zeros(2), float(i), np.full(3, i + 1, dtype=np.float32), False)
    assert len(buffer) == 8
    assert buffer.is_full
    batch = buffer.sample(16)
    assert len(batch) == 16
    # Oldest entries were overwritten: rewards only from the last 8 additions.
    assert batch.rewards.min() >= 4.0
    with pytest.raises(ValueError):
        buffer.sample(0)
    with pytest.raises(ValueError):
        ReplayBuffer(0, 3, 2)


def test_replay_buffer_empty_sample_raises():
    buffer = ReplayBuffer(4, 2, 1)
    with pytest.raises(ValueError):
        buffer.sample(1)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(-10, 10), st.booleans()), min_size=1, max_size=60),
       st.integers(min_value=1, max_value=32))
def test_replay_buffer_size_invariant(entries, capacity):
    buffer = ReplayBuffer(capacity, obs_dim=2, action_dim=1, seed=1)
    for reward, done in entries:
        buffer.add(np.zeros(2), np.zeros(1), reward, np.zeros(2), done)
        assert len(buffer) == min(buffer.capacity, len(buffer))
    assert len(buffer) == min(capacity, len(entries))
    batch = buffer.sample(8)
    # The buffer stores rewards as float32; compare in float32 (rounding a
    # float64 to 4 decimals can disagree with rounding its float32 cast).
    stored_rewards = {np.float32(r) for r, _ in entries}
    assert all(np.float32(r) in stored_rewards for r in batch.rewards)


def test_rollout_buffer_gae_matches_manual_computation():
    buffer = RolloutBuffer(n_steps=4, obs_dim=1, action_dim=1, gamma=0.9, gae_lambda=0.8)
    rewards = [1.0, 0.0, 2.0, 1.0]
    values = [0.5, 0.4, 0.3, 0.2]
    for reward, value in zip(rewards, values):
        buffer.add(np.zeros(1), np.zeros(1), reward, value, 0.0, False)
    rollout = buffer.finish(last_value=0.1)
    # Manual GAE.
    adv = np.zeros(4)
    last = 0.0
    vals = values + [0.1]
    for t in reversed(range(4)):
        delta = rewards[t] + 0.9 * vals[t + 1] - vals[t]
        last = delta + 0.9 * 0.8 * last
        adv[t] = last
    assert np.allclose(rollout.advantages, adv, atol=1e-5)
    assert np.allclose(rollout.returns, adv + np.array(values), atol=1e-5)


def test_rollout_buffer_terminal_cuts_bootstrap():
    buffer = RolloutBuffer(n_steps=2, obs_dim=1, action_dim=1, gamma=0.99, gae_lambda=1.0)
    buffer.add(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0, True)
    buffer.add(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0, False)
    rollout = buffer.finish(last_value=100.0)
    # First step is terminal: no bootstrapping through the episode boundary.
    assert rollout.advantages[0] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        buffer.add(np.zeros(1), np.zeros(1), 0.0, 0.0, 0.0, False)
    buffer.reset()
    with pytest.raises(ValueError):
        buffer.finish(0.0)


# ---------------------------------------------------------------------- noise
def test_noise_processes(rng):
    gaussian = GaussianNoise(3, sigma=0.5, seed=0)
    samples = np.stack([gaussian.sample() for _ in range(500)])
    assert abs(samples.std() - 0.5) < 0.1
    ou = OrnsteinUhlenbeckNoise(2, sigma=0.3, seed=0)
    first = ou.sample()
    second = ou.sample()
    assert first.shape == (2,)
    ou.reset()
    assert np.allclose(ou.state, 0.0)
    with pytest.raises(ValueError):
        GaussianNoise(2, sigma=-1.0)
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckNoise(2, dt=0.0)


# ------------------------------------------------------------------ frameworks
def test_table1_engine_types():
    system = System.create()
    assert isinstance(make_engine(system, STABLE_BASELINES), GraphEngine)
    assert isinstance(make_engine(system, TF_AGENTS_AUTOGRAPH), AutographEngine)
    assert isinstance(make_engine(system, TF_AGENTS_EAGER), EagerEngine)
    assert isinstance(make_engine(system, REAGENT), PyTorchEagerEngine)
    assert len(TABLE1) == 4
    labels = {spec.label for spec in TABLE1}
    assert labels == {"Tensorflow Graph", "Tensorflow Autograph", "Tensorflow Eager", "Pytorch Eager"}


def test_framework_optimizer_selection():
    system = System.create()
    adapter = FrameworkAdapter(system, STABLE_BASELINES)
    from repro.backend.tensor import Parameter
    params = [Parameter(np.zeros(4, dtype=np.float32))]
    assert isinstance(adapter.make_optimizer(params, 1e-3, algo="DDPG"), MPIAdam)
    assert isinstance(adapter.make_optimizer(params, 1e-3, algo="TD3"), Adam)
    assert adapter.separate_target_update_calls("DDPG")
    assert not adapter.separate_target_update_calls("SAC")
    eager_adapter = FrameworkAdapter(system, TF_AGENTS_EAGER)
    assert isinstance(eager_adapter.make_optimizer(params, 1e-3, algo="DDPG"), Adam)


def test_default_config_per_algorithm():
    td3 = default_config("TD3")
    ddpg = default_config("DDPG")
    assert td3.train_freq == 1000 and ddpg.train_freq == 100
    ppo = default_config("PPO2", n_steps=32)
    assert ppo.n_steps == 32
    with pytest.raises(KeyError):
        make_algorithm("NOPE", None, None)


# ------------------------------------------------------------------ algorithms
def _train_briefly(algo_name, env_name="Walker2D", framework_spec=STABLE_BASELINES, steps=96, **overrides):
    system = System.create(seed=0)
    env = make(env_name, system, seed=0)
    framework = FrameworkAdapter(system, framework_spec)
    config = default_config(algo_name, warmup_steps=16, buffer_size=1000, **overrides)
    agent = make_algorithm(algo_name, env, framework, config=config, seed=0)
    result = agent.train(steps)
    return agent, result, system


CONTINUOUS_ALGOS = ["DDPG", "TD3", "SAC", "A2C", "PPO2"]


@pytest.mark.parametrize("algo", CONTINUOUS_ALGOS)
def test_algorithms_train_and_produce_finite_losses(algo):
    agent, result, system = _train_briefly(algo)
    assert result.gradient_updates > 0
    assert result.timesteps == 96
    for name, values in result.losses.items():
        assert all(np.isfinite(values)), f"{algo} {name} has non-finite losses"
    action = agent.predict(agent.env.reset())
    action = np.asarray(action, dtype=np.float32).reshape(-1)
    assert action.shape == (agent.env.action_dim,)
    assert np.all(np.abs(action) <= 1.0 + 1e-5)
    assert system.clock.now_us > 0


def test_dqn_trains_on_discrete_env():
    agent, result, _ = _train_briefly("DQN", env_name="Pong")
    assert result.gradient_updates > 0
    assert isinstance(agent.predict(agent.env.reset()), int)


def test_dqn_rejects_continuous_env():
    system = System.create(seed=0)
    env = make("Walker2D", system)
    with pytest.raises(ValueError):
        make_algorithm("DQN", env, default_framework(system))


def test_on_policy_algorithms_support_discrete_envs():
    agent, result, _ = _train_briefly("PPO2", env_name="Pong", n_steps=32)
    assert result.gradient_updates > 0
    assert isinstance(agent.predict(agent.env.reset()), int)


@pytest.mark.parametrize("spec", TABLE1, ids=lambda s: s.label)
def test_td3_trains_under_every_framework(spec):
    _, result, _ = _train_briefly("TD3", framework_spec=spec, steps=64)
    assert result.gradient_updates > 0


def test_invalid_timesteps_rejected():
    agent, _, _ = _train_briefly("DDPG", steps=32)
    with pytest.raises(ValueError):
        agent.train(0)


def test_dqn_learning_improves_q_loss():
    """On a simple task, DQN's TD loss should not blow up and Q-values stay bounded."""
    agent, result, _ = _train_briefly("DQN", env_name="Pong", steps=256)
    losses = result.losses["q_loss"]
    assert np.mean(losses[-10:]) < 10 * (np.mean(losses[:10]) + 1.0)


def test_profiled_training_scopes_all_three_operations():
    system = System.create(seed=0)
    env = make("Walker2D", system, seed=0)
    framework = FrameworkAdapter(system, STABLE_BASELINES)
    profiler = Profiler(system, ProfilerConfig.full())
    profiler.attach(engine=framework.engine, envs=[env])
    agent = make_algorithm("SAC", env, framework,
                           config=default_config("SAC", warmup_steps=16, buffer_size=500),
                           profiler=profiler, seed=0)
    agent.train(64)
    analysis = analyze(profiler.finalize(), iterations=64)
    breakdown = analysis.category_breakdown_us()
    assert set(breakdown) >= {"inference", "simulation", "backpropagation"}
    assert analysis.gpu_fraction() < 0.5
