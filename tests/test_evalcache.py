"""Tests for the evaluation cache: LRU core, service cache, MCTS table.

Covers the ISSUE-9 cache stack bottom-up: the bounded LRU itself
(eviction order, recency, counters), the weight-versioned service cache
(submit-time hits, in-batch dedupe, staleness by key versioning, stats
roll-up), the MCTS transposition table (decision identity with the table
off, bitwise-identical rows for permuted move orders), and the explicit
rejection of the cache under multiprocess sharding.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import GraphEngine
from repro.hw.gpu import GPUDevice
from repro.minigo import MCTS, InferenceService, PolicyValueNet, SelfPlayPool
from repro.rollout import EnvRolloutPool
from repro.rollout.evalcache import CACHE_SCOPES, EvalCache
from repro.rollout.inference import InferenceStats
from repro.sim.go import GoPosition
from repro.system import System


BOARD = 5
NUM_MOVES = BOARD * BOARD + 1


def make_network(seed=7):
    return PolicyValueNet(BOARD, (16, 16), rng=np.random.default_rng(seed))


def make_client(service, *, worker, seed=0):
    system = System.create(seed=seed, device=GPUDevice(), worker=worker)
    engine = GraphEngine(system, flavor="tensorflow")
    return service.connect(system, engine, worker=worker)


def rowwise_evaluator(num_moves):
    """A per-row deterministic evaluator: output depends only on the row bytes.

    Computed row by row in Python, so results are bitwise identical no
    matter how rows are grouped into batches — the property the bitwise
    decision-identity assertions below rely on (a real matmul may differ by
    an ulp across batch shapes).
    """
    def evaluate(features):
        features = np.asarray(features)
        priors = np.empty((features.shape[0], num_moves), dtype=np.float32)
        values = np.empty(features.shape[0], dtype=np.float32)
        for i, row in enumerate(features):
            rng = np.random.default_rng(zlib.crc32(row.tobytes()))
            raw = rng.random(num_moves).astype(np.float32)
            priors[i] = raw / raw.sum()
            values[i] = np.float32(rng.random() * 2.0 - 1.0)
        return priors, values
    return evaluate


# -------------------------------------------------------------------- LRU
def test_lru_eviction_order_and_counters():
    cache = EvalCache(3)

    def row(v):
        return np.full(4, v, dtype=np.float32), float(v)

    assert cache.put(1, *row(1)) == 0
    assert cache.put(2, *row(2)) == 0
    assert cache.put(3, *row(3)) == 0
    assert cache.keys() == [1, 2, 3]

    # A hit refreshes recency; a peek does not.
    assert cache.get(1) is not None
    assert cache.keys() == [2, 3, 1]
    assert cache.peek(2) is not None
    assert cache.keys() == [2, 3, 1]

    # Inserting beyond capacity evicts the least-recently-used key (2, not
    # 1 — the get above saved it) and reports the eviction to the caller.
    assert cache.put(4, *row(4)) == 1
    assert cache.keys() == [3, 1, 4]
    assert 2 not in cache and 1 in cache

    # Refreshing an existing key moves it to MRU without evicting.
    assert cache.put(3, *row(33)) == 0
    assert cache.keys() == [1, 4, 3]
    assert cache.peek(3)[1] == 33.0

    assert cache.hits == 1 and cache.evictions == 1
    assert cache.get(99) is None
    assert cache.misses == 1
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0 and cache.keys() == []


def test_cache_validation_errors():
    with pytest.raises(ValueError):
        EvalCache(0)
    with pytest.raises(ValueError):
        InferenceService(make_network(), cache_capacity=0)
    with pytest.raises(ValueError, match="cache scope"):
        InferenceService(make_network(), cache_capacity=8, cache_scope="bogus")
    assert CACHE_SCOPES == ("shared", "replica")


# ---------------------------------------------------------- service cache
def test_submit_time_hit_skips_queue_and_is_bitwise_identical():
    service = InferenceService(make_network(), max_batch=16, cache_capacity=8)
    client = make_client(service, worker="a")
    position = GoPosition.initial(BOARD)
    features = position.features()[None, :]
    key = position.transposition_key()

    first = client.submit(features.copy(), metadata={"state_keys": [key]})
    assert not first.done
    service.flush()
    priors_1, values_1 = first.result()

    # Same key again: answered at submit, never enters the queue.
    metadata = {"state_keys": [key]}
    second = client.submit(features.copy(), metadata=metadata)
    assert second.done
    assert service.pending_rows == 0 and service.pending_tickets == 0
    priors_2, values_2 = second.result()
    assert priors_2.tobytes() == priors_1.tobytes()
    assert values_2.tobytes() == values_1.tobytes()
    assert service.stats.cache_hits == 1
    assert metadata["cache_hits"] == 1
    assert service.stats.engine_calls == 1  # the hit ran no engine work


def test_weight_version_bump_makes_stale_hits_impossible():
    service = InferenceService(make_network(), max_batch=16, cache_capacity=8)
    client = make_client(service, worker="a")
    position = GoPosition.initial(BOARD)
    features = position.features()[None, :]
    key = position.transposition_key()

    client.submit(features.copy(), metadata={"state_keys": [key]})
    service.flush()
    warm = client.submit(features.copy(), metadata={"state_keys": [key]})
    assert warm.done and service.stats.cache_hits == 1

    # New weights (bitwise-identical, so any stale hit would be silent):
    # the version bump alone must make the old entry unreachable.
    version = service.weight_version
    service.update_weights(service.network.state_dict(), charge=False)
    assert service.weight_version == version + 1

    cold = client.submit(features.copy(), metadata={"state_keys": [key]})
    assert not cold.done  # no stale hit — the old-version key is unreachable
    service.flush()
    assert service.stats.cache_hits == 1  # unchanged: that was a real miss

    # The same position re-caches under the new version.
    rewarmed = client.submit(features.copy(), metadata={"state_keys": [key]})
    assert rewarmed.done and service.stats.cache_hits == 2


def test_in_batch_dedupe_fans_one_engine_row_out_to_all_riders():
    service = InferenceService(make_network(), max_batch=16, cache_capacity=8)
    client_a = make_client(service, worker="a")
    client_b = make_client(service, worker="b", seed=1)
    position = GoPosition.initial(BOARD)
    features = position.features()[None, :]
    key = position.transposition_key()

    ticket_a = client_a.submit(features.copy(), metadata={"state_keys": [key]})
    ticket_b = client_b.submit(features.copy(), metadata={"state_keys": [key]})
    assert not ticket_a.done and not ticket_b.done
    service.flush()

    priors_a, values_a = ticket_a.result()
    priors_b, values_b = ticket_b.result()
    assert priors_a.tobytes() == priors_b.tobytes()
    assert values_a.tobytes() == values_b.tobytes()
    assert service.stats.dedupe_rows == 1  # b's row rode a's engine row


def test_merge_from_rolls_up_cache_counters():
    total = InferenceStats()
    total.cache_hits, total.dedupe_rows, total.cache_evictions = 3, 2, 1
    replica = InferenceStats()
    replica.cache_hits, replica.dedupe_rows, replica.cache_evictions = 10, 20, 30
    total.merge_from(replica)
    assert total.cache_hits == 13
    assert total.dedupe_rows == 22
    assert total.cache_evictions == 31


# ------------------------------------------------- network token registry
def test_recycled_network_id_never_aliases_cache_entries():
    """A new network at a collected network's address gets a fresh token.

    ``id()`` values are recycled by the allocator, so the registry must
    trust an entry only while its weak reference still points at the same
    network — a recycled address silently reading another model's cached
    rows was the ISSUE-10 satellite bug.
    """
    service = InferenceService(make_network(), max_batch=16, cache_capacity=8)
    net_a, net_b = make_network(seed=1), make_network(seed=2)
    token_a = service._network_token(net_a)
    token_b = service._network_token(net_b)
    assert token_a != token_b

    # Simulate the allocator recycling net_a's address for net_b: the stale
    # registry entry indexes net_b's id() but its weakref points at net_a.
    service._net_tokens[id(net_b)] = service._net_tokens.pop(id(net_a))
    assert service._network_token(net_b) != token_a, \
        "a recycled id() must never inherit another network's cache token"

    # Tokens are stable across repeated lookups of the live network.
    assert service._network_token(net_b) == service._network_token(net_b)


def test_collected_network_purges_registry_without_evicting_successor():
    import gc
    import weakref

    service = InferenceService(make_network(), max_batch=16, cache_capacity=8)
    net = make_network(seed=3)
    addr = id(net)
    service._network_token(net)
    assert addr in service._net_tokens

    del net
    gc.collect()
    assert addr not in service._net_tokens, \
        "a collected network must free its registry slot"

    # The purge callback is token-guarded: if a successor claims the same
    # address before the old network's callback fires, the callback must
    # not evict it.  Capture the *product's* purge closure off the weakref,
    # install a successor entry at the same address, then fire the stale
    # callback by hand.
    old = make_network(seed=4)
    old_token = service._network_token(old)
    old_ref = service._net_tokens[id(old)][1]
    stale_purge = old_ref.__callback__

    successor = make_network(seed=5)
    entry = (old_token + 1, weakref.ref(successor))
    service._net_tokens[id(old)] = entry
    stale_purge(old_ref)
    assert service._net_tokens[id(old)] == entry, \
        "a stale purge callback must not evict the successor's entry"


# -------------------------------------------------- multiprocess rejection
def test_selfplay_pool_rejects_multiprocess_cache():
    with pytest.raises(ValueError, match="cannot be combined with the service evaluation"):
        SelfPlayPool(2, board_size=5, num_simulations=2, games_per_worker=1,
                     batched_inference=True, scheduler="event", leaf_batch=2,
                     cache_capacity=16, num_processes=2, process_backend="inline")


def test_env_pool_rejects_multiprocess_cache():
    with pytest.raises(ValueError, match="cannot be combined with the service evaluation"):
        EnvRolloutPool("Pong", num_workers=2, steps_per_worker=2,
                       cache_capacity=16, num_processes=2,
                       process_backend="inline")


# ------------------------------------------------- MCTS transposition table
TT_BOARD = 3  # small enough that 64 simulations revisit positions in-tree
TT_MOVES = TT_BOARD * TT_BOARD + 1


def _search_signature(transposition, *, leaf_batch):
    mcts = MCTS(rowwise_evaluator(TT_MOVES), num_simulations=64,
                leaf_batch=leaf_batch, rng=np.random.default_rng(5),
                transposition=transposition)
    root = mcts.search(GoPosition.initial(TT_BOARD), add_noise=False)
    policy = mcts.policy_from_visits(root, temperature=1.0)
    move = mcts.choose_move(root, temperature=1e-6)
    return policy.tobytes(), move, mcts.transposition_hits


@pytest.mark.parametrize("leaf_batch", [1, 4])
def test_transposition_table_is_decision_identical(leaf_batch):
    """The table changes where rows come from, never what the search decides."""
    policy_off, move_off, hits_off = _search_signature(False, leaf_batch=leaf_batch)
    policy_on, move_on, hits_on = _search_signature(True, leaf_batch=leaf_batch)
    assert hits_off == 0
    assert hits_on > 0  # the table actually short-circuited re-evaluations
    assert policy_on == policy_off
    assert move_on == move_off


# ------------------------------------------- permuted move orders (property)
def _orthogonally_adjacent(a, b):
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def _pairwise_non_adjacent(points):
    return all(not _orthogonally_adjacent(points[i], points[j])
               for i in range(len(points)) for j in range(i + 1, len(points)))


_POINTS = st.lists(
    st.tuples(st.integers(0, BOARD - 1), st.integers(0, BOARD - 1)),
    min_size=4, max_size=4, unique=True).filter(_pairwise_non_adjacent)


@given(points=_POINTS)
@settings(max_examples=25, deadline=None)
def test_permuted_move_orders_share_cache_rows_bitwise(points):
    """Positions reached via permuted move orders hit the same cache entry.

    Non-adjacent stones never capture, so playing the two black moves (and
    the two white moves) in either order reaches the same position; its
    incremental Zobrist key must be path-independent, and the cached
    (priors, value) row answered for the permuted order must be bitwise
    identical to the row the engine produced for the original order.
    """
    black_1, black_2, white_1, white_2 = points
    start = GoPosition.initial(BOARD)

    def reach(moves):
        position = start
        for move in moves:
            position = position.play(move)
        return position

    via_a = reach([black_1, white_1, black_2, white_2])
    via_b = reach([black_2, white_2, black_1, white_1])
    assert via_a.transposition_key() == via_b.transposition_key()
    assert via_a.features().tobytes() == via_b.features().tobytes()

    evaluate = rowwise_evaluator(NUM_MOVES)
    service = InferenceService(make_network(), max_batch=16, cache_capacity=32,
                               forward=lambda network, features: evaluate(features))
    client = make_client(service, worker="a")

    first = client.submit(via_a.features()[None, :],
                          metadata={"state_keys": [via_a.transposition_key()]})
    service.flush()
    priors_a, values_a = first.result()

    second = client.submit(via_b.features()[None, :],
                           metadata={"state_keys": [via_b.transposition_key()]})
    assert second.done  # the permuted order was answered from cache at submit
    priors_b, values_b = second.result()
    assert priors_b.tobytes() == priors_a.tobytes()
    assert values_b.tobytes() == values_a.tobytes()
    assert service.stats.engine_calls == 1
