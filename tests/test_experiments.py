"""Integration tests: the experiment harness regenerates the paper's figures (small scale)."""

import numpy as np
import pytest

from repro.experiments import (
    Fig4Result,
    WorkloadSpec,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_table1,
    run_workload,
    validate_workload,
)
from repro.experiments import findings, table1
from repro.experiments.fig8 import Fig8Result
from repro.minigo import MinigoConfig
from repro.profiler import ProfilerConfig
from repro.rl.frameworks import STABLE_BASELINES, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER

SMALL_STEPS = 72


# ------------------------------------------------------------------ workloads
def test_run_workload_returns_consistent_analysis():
    run = run_workload(WorkloadSpec(algo="SAC", simulator="Hopper", total_timesteps=SMALL_STEPS),
                       use_ground_truth_calibration=True)
    assert run.total_time_sec > 0
    breakdown = run.analysis.category_breakdown_sec()
    assert {"inference", "simulation", "backpropagation"} <= set(breakdown)
    total_from_breakdown = sum(sum(c.values()) for c in breakdown.values())
    assert total_from_breakdown <= run.total_time_sec * 1.05
    assert run.train_result.gradient_updates > 0


def test_workload_spec_scaling_and_label():
    spec = WorkloadSpec(algo="TD3", simulator="Walker2D", total_timesteps=100)
    assert spec.scaled(0.5).total_timesteps == 50
    assert spec.scaled(0.0).total_timesteps == 16  # floor
    assert "TD3" in spec.label and "Walker2D" in spec.label


def test_same_seed_same_virtual_time():
    spec = WorkloadSpec(algo="PPO2", simulator="Hopper", total_timesteps=SMALL_STEPS)
    a = run_workload(spec, profiler_config=ProfilerConfig.uninstrumented())
    b = run_workload(spec, profiler_config=ProfilerConfig.uninstrumented())
    assert a.total_time_us == pytest.approx(b.total_time_us, rel=1e-9)


# -------------------------------------------------------------------- table 1
def test_table1_rows():
    rows = run_table1()
    assert len(rows) == 4
    assert {row.execution_model for row in rows} == {"Graph", "Autograph", "Eager"}
    assert {row.ml_backend for row in rows} == {"Tensorflow", "Pytorch"}
    text = table1.report(rows)
    assert "stable-baselines" in text and "ReAgent" in text


# -------------------------------------------------------------------- figure 4
@pytest.fixture(scope="module")
def small_fig4_td3() -> Fig4Result:
    return run_fig4("TD3", timesteps=SMALL_STEPS)


@pytest.fixture(scope="module")
def small_fig4_ddpg() -> Fig4Result:
    return run_fig4("DDPG", timesteps=SMALL_STEPS)


def test_fig4_structure(small_fig4_td3):
    assert set(small_fig4_td3.runs) == {"Pytorch Eager", "Tensorflow Autograph",
                                        "Tensorflow Eager", "Tensorflow Graph"}
    totals = small_fig4_td3.total_times_sec()
    assert all(v > 0 for v in totals.values())
    transitions = small_fig4_td3.transitions_per_iteration()
    assert transitions["Tensorflow Graph"]["simulation"]["Simulator"] == pytest.approx(1.0, rel=0.3)
    report = small_fig4_td3.report()
    assert "Figure 4" in report and "Backend" in report


def test_fig4_framework_findings_hold(small_fig4_td3, small_fig4_ddpg):
    checks = findings.check_all(fig4_td3=small_fig4_td3, fig4_ddpg=small_fig4_ddpg)
    for finding_id in ["F.1", "F.2", "F.3", "F.4", "F.6", "F.7", "F.8"]:
        assert checks[finding_id].holds, str(checks[finding_id])


def test_fig4_eager_slowdown_within_paper_range(small_fig4_td3):
    totals = small_fig4_td3.total_times_sec()
    ratio = totals["Tensorflow Eager"] / totals["Tensorflow Graph"]
    assert 1.5 <= ratio <= 8.0  # paper reports 1.9x - 4.8x


# -------------------------------------------------------------------- figure 5
def test_fig5_on_policy_more_simulation_bound():
    result = run_fig5(timesteps=SMALL_STEPS)
    assert result.simulation_fraction("A2C") > result.simulation_fraction("DDPG")
    assert result.simulation_fraction("PPO2") > result.simulation_fraction("SAC")
    checks = findings.check_all(fig5=result)
    assert checks["F.9"].holds, str(checks["F.9"])
    assert checks["F.10"].holds, str(checks["F.10"])
    assert "Figure 5" in result.report()


# -------------------------------------------------------------------- figure 7
def test_fig7_simulation_always_a_bottleneck():
    result = run_fig7(timesteps=SMALL_STEPS, simulators=["AirLearning", "Pong", "Walker2D", "Hopper"])
    check = findings.check_f12_simulation_always_large(result)
    assert check.holds, str(check)
    assert result.simulation_fraction("AirLearning") > result.simulation_fraction("Walker2D")
    assert result.gpu_fraction("Walker2D") < 0.2
    assert "Figure 7" in result.report()


# -------------------------------------------------------------------- figure 8
def test_fig8_utilization_vs_true_gpu_time():
    config = MinigoConfig(num_workers=4, board_size=5, num_simulations=4, games_per_worker=1,
                          max_moves=10, sgd_steps=4, evaluation_games=1, hidden=(32, 32), seed=0)
    result = run_fig8(config)
    assert isinstance(result, Fig8Result)
    check = findings.check_f11_misleading_gpu_utilization(result)
    assert check.holds, str(check)
    assert len(result.selfplay_summaries()) == 4
    assert "Figure 8" in result.report()


# ------------------------------------------------------------------- figure 11
def test_fig11_correction_within_tolerance_single_workload():
    validation = validate_workload(WorkloadSpec(algo="PPO2", simulator="Hopper",
                                                total_timesteps=SMALL_STEPS))
    assert validation.uncorrected_inflation_percent > 0
    assert abs(validation.bias_percent) <= 16.0
    assert validation.corrected_sec <= validation.instrumented_sec


def test_batch_sweep_reports_call_reduction():
    from repro.experiments.batchsweep import run_batch_sweep

    sweep = run_batch_sweep((1, 4), num_workers=2, num_simulations=6,
                            max_moves=6, hidden=(16, 16), seed=0)
    assert [p.leaf_batch for p in sweep.points] == [1, 4]
    base, batched = sweep.points
    assert base.engine_calls == base.rows          # per-leaf baseline
    assert batched.mean_batch_rows > 1.0
    assert sweep.call_reduction(4) > 1.0
    for point in sweep.points:
        assert point.moves > 0 and point.span_us > 0
        assert point.cpu_only_us + point.cpu_gpu_us > 0
    report = sweep.report()
    assert "leaf_batch" in report and "engine calls" in report
