"""Multiprocess sharded execution: bit-identity with the sequential loop.

The contract under test is absolute: ``num_processes=N`` (either backend)
must reproduce the single-process event loop's game records, transitions,
per-worker clocks, scheduler decisions, service stats, routing decisions
and streamed traces bit-for-bit.  The inline backend runs the shard logic
in-process (fast, deterministic CI); a smaller set of tests exercises real
OS processes end-to-end, including the streamed-trace shard merge.
"""

import numpy as np
import pytest

from repro.minigo.workers import SelfPlayPool
from repro.parallel import assign_workers
from repro.rollout import EnvRolloutPool


def _scheduler_signature(pool):
    stats = pool.pool_scheduler.stats
    return (stats.steps, stats.serves, stats.timeout_serves, stats.eager_serves,
            sorted(stats.steps_per_worker.items()))


def _service_signature(pool):
    service = pool.inference_service
    return (service.stats.engine_calls, service.stats.rows,
            service.stats.requests, service.stats.queue_delay_us,
            service.stats.cross_worker_batches, service.stats.max_batch_rows,
            service.routing_decisions(),
            [replica.free_us for replica in service.replicas],
            [replica.busy_us for replica in service.replicas])


def _env_signature(pool):
    runs = [(run.worker, run.total_time_us, run.result.steps,
             run.result.episodes, run.result.episode_rewards,
             [(t.obs.tobytes(), np.asarray(t.action).tobytes(), t.reward,
               t.next_obs.tobytes(), t.done) for t in run.result.transitions])
            for run in pool.runs]
    return (runs, _scheduler_signature(pool), _service_signature(pool))


def _selfplay_signature(pool):
    runs = [(run.worker, run.total_time_us, run.result.moves,
             run.result.black_wins,
             [(e.features.tobytes(), e.policy_target.tobytes(), e.value_target)
              for e in run.result.examples])
            for run in pool.runs]
    return (runs, _scheduler_signature(pool), _service_signature(pool))


def _trace_signature(pool):
    return {run.worker: [(op.name, op.start_us, op.end_us, op.phase, op.metadata)
                         for op in run.trace.operations]
            for run in pool.runs if run.trace is not None}


ENV_KW = dict(num_workers=4, steps_per_worker=6, seed=3, profile=True)
SP_KW = dict(num_workers=4, board_size=5, num_simulations=8, games_per_worker=1,
             leaf_batch=2, batched_inference=True, scheduler="event", seed=11,
             profile=True)


# ------------------------------------------------------------ inline backend
def test_env_pool_inline_matches_sequential():
    sequential = EnvRolloutPool("Pong", **ENV_KW)
    sequential.run()
    sharded = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                             process_backend="inline")
    sharded.run()
    assert _env_signature(sharded) == _env_signature(sequential)
    assert _trace_signature(sharded) == _trace_signature(sequential)


def test_selfplay_pool_inline_matches_sequential_with_replicas():
    # num_replicas=2 exercises the eager full-batch path through the mirror.
    sequential = SelfPlayPool(**SP_KW, num_replicas=2, inference_max_batch=4)
    sequential.run()
    sharded = SelfPlayPool(**SP_KW, num_replicas=2, inference_max_batch=4,
                           num_processes=2, process_backend="inline")
    sharded.run()
    assert _selfplay_signature(sharded) == _selfplay_signature(sequential)
    assert _trace_signature(sharded) == _trace_signature(sequential)


def test_env_pool_inline_matches_sequential_under_timeout_flush():
    kw = dict(num_workers=3, steps_per_worker=5, seed=7,
              flush_policy="timeout", flush_timeout_us=50.0)
    sequential = EnvRolloutPool("Hopper", **kw)
    sequential.run()
    sharded = EnvRolloutPool("Hopper", **kw, num_processes=3,
                             process_backend="inline")
    sharded.run()
    assert _env_signature(sharded) == _env_signature(sequential)


def test_single_process_shard_is_the_sequential_pool():
    # num_processes=1 is the pinned degenerate case: one shard owns everyone.
    sequential = EnvRolloutPool("Pong", **ENV_KW)
    sequential.run()
    one = EnvRolloutPool("Pong", **ENV_KW, num_processes=1,
                         process_backend="inline")
    one.run()
    assert _env_signature(one) == _env_signature(sequential)


# ----------------------------------------------------------- process backend
def test_env_pool_process_backend_matches_sequential():
    sequential = EnvRolloutPool("Pong", **ENV_KW)
    sequential.run()
    sharded = EnvRolloutPool("Pong", **ENV_KW, num_processes=2,
                             process_backend="process")
    sharded.run()
    assert _env_signature(sharded) == _env_signature(sequential)
    assert _trace_signature(sharded) == _trace_signature(sequential)


def test_selfplay_process_backend_matches_sequential():
    sequential = SelfPlayPool(**SP_KW)
    sequential.run()
    sharded = SelfPlayPool(**SP_KW, num_processes=2, process_backend="process")
    sharded.run()
    assert _selfplay_signature(sharded) == _selfplay_signature(sequential)
    assert _trace_signature(sharded) == _trace_signature(sequential)


def test_same_seed_multiprocess_runs_are_identical():
    # Satellite of the explicit (seed, worker_index) stream derivation: two
    # cross-process runs of the same seed agree with each other and with the
    # sequential loop — no process-local RNG state leaks into the records.
    runs = []
    for _ in range(2):
        pool = EnvRolloutPool("Hopper", num_workers=4, steps_per_worker=5,
                              seed=21, num_processes=2,
                              process_backend="process")
        pool.run()
        runs.append(_env_signature(pool))
    sequential = EnvRolloutPool("Hopper", num_workers=4, steps_per_worker=5,
                                seed=21)
    sequential.run()
    assert runs[0] == runs[1] == _env_signature(sequential)


def test_streamed_traces_merge_into_one_store(tmp_path):
    kw = dict(SP_KW)
    sequential = SelfPlayPool(**kw, trace_dir=str(tmp_path / "seq"))
    sequential.run()
    sharded = SelfPlayPool(**kw, trace_dir=str(tmp_path / "par"),
                           num_processes=2, process_backend="process")
    sharded.run()
    db_seq, db_par = sequential.tracedb(), sharded.tracedb()
    assert sorted(db_par.workers()) == sorted(db_seq.workers())
    for worker in db_par.workers():
        for iterate in ("iter_events", "iter_operations"):
            seq_records = [(e.category, e.name, e.start_us, e.end_us, e.metadata)
                           for e in getattr(db_seq, iterate)(worker=worker)]
            par_records = [(e.category, e.name, e.start_us, e.end_us, e.metadata)
                           for e in getattr(db_par, iterate)(worker=worker)]
            assert par_records == seq_records
    # Streaming pools return lightweight runs; the records live in the store.
    assert all(run.trace is None for run in sharded.runs)


def test_snapshots_restore_drivers_on_freshly_respawned_processes():
    """Driver snapshots rebuild mid-run state in brand-new OS processes.

    The first runner advances every driver to its first inference boundary
    and snapshots; a second runner — new processes, no shared state — is
    built from those blobs.  The restored drivers must come up already
    blocked on the *same* submitted ticket (identical feature bytes and
    metadata) with no re-run steps: this is the recovery substrate the
    shard-crash respawn in ``tests/test_faults.py`` stands on.
    """
    from repro.parallel.runner import ParallelRunner
    from repro.parallel.shard import ShardSpec

    pool = EnvRolloutPool("Pong", 2, steps_per_worker=3, seed=0)
    config = pool._child_config()

    def specs(restore=None):
        return [ShardSpec(kind="envrollout", pool_config=config,
                          worker_indices=[windex], restore=restore)
                for windex in (0, 1)]

    runner = ParallelRunner(specs(), backend="process")
    try:
        segments = runner.build()
        blobs = runner.snapshots()
    finally:
        runner.stop()
    assert set(blobs) == {0, 1}

    respawned = ParallelRunner(specs(restore=blobs), backend="process")
    try:
        restored = respawned.build()
    finally:
        respawned.stop()

    for windex in (0, 1):
        fresh, again = segments[windex], restored[windex]
        assert again["records"] == [], \
            "a restored driver re-runs nothing: it resumes at the boundary"
        assert again["finished"] == fresh["finished"]
        assert (fresh["submit"] is None) == (again["submit"] is None)
        if fresh["submit"] is not None:
            features_a, meta_a = fresh["submit"]
            features_b, meta_b = again["submit"]
            assert features_b.tobytes() == features_a.tobytes()
            assert meta_b == meta_a


# ------------------------------------------------------------------ plumbing
def test_assign_workers_stripes_and_caps():
    assert assign_workers(8, 2) == [[0, 2, 4, 6], [1, 3, 5, 7]]
    assert assign_workers(3, 8) == [[0], [1], [2]]
    assert assign_workers(5, 1) == [[0, 1, 2, 3, 4]]


def test_more_processes_than_workers_still_bit_identical():
    sequential = EnvRolloutPool("Pong", num_workers=2, steps_per_worker=4, seed=1)
    sequential.run()
    sharded = EnvRolloutPool("Pong", num_workers=2, steps_per_worker=4, seed=1,
                             num_processes=8, process_backend="inline")
    sharded.run()
    assert _env_signature(sharded) == _env_signature(sequential)


def test_multiprocess_validations():
    with pytest.raises(ValueError, match="num_processes"):
        EnvRolloutPool("Pong", 2, num_processes=0)
    with pytest.raises(ValueError, match="backend"):
        EnvRolloutPool("Pong", 2, num_processes=2, process_backend="threads")
    with pytest.raises(ValueError, match="event scheduler"):
        SelfPlayPool(num_workers=2, batched_inference=True,
                     scheduler="sequential", num_processes=2)
    from repro.rollout.pool import RolloutPolicyNet
    live = RolloutPolicyNet(4, 2, (8,), rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="live objects"):
        EnvRolloutPool("Pong", 2, network=live, num_processes=2)
    from repro.tracedb.writer import StreamingTraceWriter
    with pytest.raises(ValueError, match="store"):
        EnvRolloutPool("Pong", 2, num_processes=2,
                       store=StreamingTraceWriter("/tmp/unused-store-dir"))


def test_shard_timeline_divergence_fails_loudly():
    # Corrupt a shard segment record: the proxy must refuse to merge it.
    from repro.parallel.proxy import ProxyDriver
    from repro.parallel.runner import ParallelRunner
    from repro.parallel.shard import ShardSpec

    pool = EnvRolloutPool("Pong", 2, steps_per_worker=3, seed=0)
    config = pool._child_config()
    spec = ShardSpec(kind="envrollout", pool_config=config, worker_indices=[0, 1])
    runner = ParallelRunner([spec], backend="inline")
    try:
        from functools import partial

        from repro.parallel.proxy import MirrorInferenceService

        service = pool._build_service(
            pool._probe_env(),
            service_factory=partial(MirrorInferenceService, runner=runner))
        segments = runner.build()
        pre, post = segments[0]["records"][0]
        segments[0]["records"][0] = (pre + 1.0, post)
        proxy = ProxyDriver(runner, 0, "rollout_worker_0", service, segments[0])
        with pytest.raises(RuntimeError, match="diverged"):
            proxy.step()
    finally:
        runner.stop()
