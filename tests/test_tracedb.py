"""TraceDB subsystem tests: streaming writes, filtered queries, map-reduce."""

import warnings

import pytest

from repro.minigo.workers import SelfPlayPool, WorkerRun
from repro.minigo.selfplay import SelfPlayResult
from repro.profiler import analyze, analyze_db, multi_process_summary, multi_process_summary_db
from repro.profiler.api import Profiler, ProfilerConfig
from repro.profiler.events import CATEGORY_BACKEND, CATEGORY_GPU, Event, EventTrace
from repro.profiler.overlap import OverlapResult, compute_overlap
from repro.system import System
from repro.tracedb import StreamingTraceWriter, TraceDB, parallel_overlap
from repro.tracedb.cli import main as trace_main


# ------------------------------------------------------------------ fixtures
def run_profiled_session(system: System, *, trace_dir=None, streaming=False,
                         chunk_events=50_000) -> Profiler:
    """Drive a small annotated workload through a profiler and finalize it."""
    profiler = Profiler(system, ProfilerConfig.full(), trace_dir=trace_dir,
                        streaming=streaming, chunk_events=chunk_events)
    profiler.set_phase("data_collection")
    for _ in range(40):
        with profiler.operation("simulation"):
            profiler.on_c_enter()
            start = system.clock.now_us
            system.clock.advance(100.0)
            profiler.record_event(Event(category="Simulator", name="step",
                                        start_us=start, end_us=system.clock.now_us,
                                        worker=profiler.worker, phase=profiler.phase))
            profiler.on_c_exit()
    profiler.set_phase("sgd_updates")
    for _ in range(20):
        with profiler.operation("backpropagation"):
            profiler.on_c_enter()
            start = system.clock.now_us
            system.clock.advance(50.0)
            profiler.record_event(Event(category="Backend", name="session_run",
                                        start_us=start, end_us=system.clock.now_us,
                                        worker=profiler.worker, phase=profiler.phase))
            profiler.on_c_exit()
    profiler.finalize()
    return profiler


# ---------------------------------------------------------------- streaming
def test_streaming_flush_bounds_buffer_and_costs_zero_virtual_time(tmp_path):
    sys_a = System.create(seed=0)
    prof_a = run_profiled_session(sys_a)
    sys_b = System.create(seed=0)
    prof_b = run_profiled_session(sys_b, trace_dir=str(tmp_path), streaming=True,
                                  chunk_events=32)

    # Zero virtual cost: the streamed run's clock matches the in-memory run.
    assert sys_b.clock.now_us == sys_a.clock.now_us
    # Bounded memory: never more than one chunk of records buffered.
    assert prof_b.store.peak_buffered_records() <= 32
    db = prof_b.open_tracedb()
    assert len(db.chunks()) > 1  # flushed incrementally, not one dump at end
    # The streamed store holds exactly the records the in-memory trace holds.
    trace = db.read_worker(prof_b.worker)
    assert trace.total_events() == prof_a.trace.total_events()
    assert len(trace.markers) == len(prof_a.trace.markers)
    assert [e.to_dict() for e in trace.events] == [e.to_dict() for e in prof_a.trace.events]
    assert trace.metadata["total_time_us"] == prof_a.trace.metadata["total_time_us"]


def test_streaming_requires_trace_dir():
    with pytest.raises(ValueError):
        Profiler(System.create(seed=0), streaming=True)


def test_analyze_db_matches_in_memory_analysis(tmp_path):
    sys_a = System.create(seed=0)
    prof_a = run_profiled_session(sys_a)
    sys_b = System.create(seed=0)
    prof_b = run_profiled_session(sys_b, trace_dir=str(tmp_path), streaming=True,
                                  chunk_events=64)
    base = analyze(prof_a.trace)
    from_db = analyze_db(prof_b.open_tracedb())
    assert from_db.category_breakdown_us(corrected=False) == base.category_breakdown_us(corrected=False)
    assert from_db.transition_counts() == base.transition_counts()


# ----------------------------------------------------------------- querying
@pytest.fixture
def populated_store(tmp_path):
    writer = StreamingTraceWriter(str(tmp_path), chunk_events=4)
    for worker in ("w0", "w1"):
        shard = writer.shard(worker)
        for i in range(8):
            phase = "collect" if i < 4 else "train"
            category = CATEGORY_BACKEND if i % 2 == 0 else CATEGORY_GPU
            shard.add_event(Event(category=category, name=f"e{i}",
                                  start_us=100.0 * i, end_us=100.0 * i + 50.0,
                                  worker=worker, phase=phase))
        writer.close_shard(worker, metadata={"worker": worker})
    writer.close()
    return TraceDB(str(tmp_path))


def test_filtered_queries(populated_store):
    db = populated_store
    assert db.workers() == ["w0", "w1"]
    assert db.count_events() == 16
    assert db.count_events(worker="w0") == 8
    assert db.count_events(worker="w0", phase="collect") == 4
    assert db.count_events(category=CATEGORY_GPU) == 8
    assert db.count_events(worker="w1", phase="train", category=CATEGORY_BACKEND) == 2
    # Time-window filter selects overlapping events only.
    window = db.query(worker="w0", start_us=140.0, end_us=260.0)
    assert sorted(e.name for e in window) == ["e1", "e2"]
    # Half-open window semantics: an event ending exactly at start_us is out.
    assert [e.name for e in db.query(worker="w0", start_us=150.0, end_us=260.0)] == ["e2"]
    assert db.query(worker="w0", limit=3) and len(db.query(worker="w0", limit=3)) == 3
    with pytest.raises(KeyError):
        db.count_events(worker="missing")


def test_chunk_skipping_uses_index_statistics(tmp_path):
    writer = StreamingTraceWriter(str(tmp_path), chunk_events=4)
    shard = writer.shard("w0")
    for i in range(16):
        phase = f"phase_{i // 4}"  # each chunk covers exactly one phase
        shard.add_event(Event(category=CATEGORY_BACKEND, name=f"e{i}",
                              start_us=100.0 * i, end_us=100.0 * i + 50.0,
                              worker="w0", phase=phase))
    writer.close_shard("w0")
    writer.close()

    db = TraceDB(str(tmp_path), cache_chunks=1)
    assert len(db.chunks()) == 4
    matches = db.query(phase="phase_2")
    assert [e.name for e in matches] == ["e8", "e9", "e10", "e11"]
    assert db.chunks_loaded == 1  # three of the four chunks were skipped

    db2 = TraceDB(str(tmp_path), cache_chunks=1)
    assert db2.query(start_us=0.0, end_us=350.0) and db2.chunks_loaded == 1


# ---------------------------------------------------------------- map-reduce
def test_overlap_merge_associative_and_matches_single_pass(tmp_path):
    writer = StreamingTraceWriter(str(tmp_path))
    for index, worker in enumerate(("w0", "w1", "w2")):
        shard = writer.shard(worker)
        offset = 37.0 * index
        shard.add_operation(Event(category="Operation", name="step",
                                  start_us=offset, end_us=offset + 500.0,
                                  worker=worker, phase="p"))
        for i in range(20):
            shard.add_event(Event(category=CATEGORY_BACKEND, name="run",
                                  start_us=offset + 25.0 * i, end_us=offset + 25.0 * i + 13.0,
                                  worker=worker, phase="p"))
            if i % 3 == 0:
                shard.add_event(Event(category=CATEGORY_GPU, name="kernel",
                                      start_us=offset + 25.0 * i + 5.0,
                                      end_us=offset + 25.0 * i + 20.0,
                                      worker=worker, phase="p"))
        writer.close_shard(worker)
    writer.close()
    db = TraceDB(str(tmp_path))

    shards = [compute_overlap(db.read_worker(w)) for w in db.workers()]
    merged = OverlapResult.merge(shards)
    left = OverlapResult.merge([OverlapResult.merge(shards[:2]), shards[2]])
    right = OverlapResult.merge([shards[0], OverlapResult.merge(shards[1:])])
    for key, value in merged.regions.items():
        assert left.regions[key] == pytest.approx(value, rel=1e-12)
        assert right.regions[key] == pytest.approx(value, rel=1e-12)

    single = compute_overlap(db.to_event_trace())
    for mode in ("serial", "thread"):
        parallel = parallel_overlap(db, mode=mode)
        # Byte-identical, not merely approximately equal.
        assert parallel.regions == single.regions
        assert parallel.category_breakdown() == single.category_breakdown()


def test_selfplay_pool_streams_per_worker_shards(tmp_path):
    kwargs = dict(board_size=5, num_simulations=2, games_per_worker=1,
                  max_moves=4, hidden=(16, 16), seed=3)
    base_pool = SelfPlayPool(2, **kwargs)
    base_pool.run()
    base_summaries = multi_process_summary(base_pool.traces())

    stream_pool = SelfPlayPool(2, trace_dir=str(tmp_path), **kwargs)
    runs = stream_pool.run()
    assert all(run.trace is None for run in runs)  # traces live in the store
    db = stream_pool.tracedb()
    assert db.workers() == ["selfplay_worker_0", "selfplay_worker_1"]
    db_summaries = multi_process_summary_db(db)
    assert [(s.worker, s.total_time_us, s.cpu_time_us, s.gpu_time_us) for s in db_summaries] == \
           [(s.worker, s.total_time_us, s.cpu_time_us, s.gpu_time_us) for s in base_summaries]
    # A rerun would restart worker clocks at zero and double-count time in
    # the shared shards, so a streaming pool refuses it.
    with pytest.raises(RuntimeError):
        stream_pool.run()


def test_minigo_training_streams_one_store_per_round(tmp_path):
    from repro.minigo import MinigoConfig, MinigoTraining

    cfg = MinigoConfig(num_workers=1, board_size=5, num_simulations=2,
                       games_per_worker=1, max_moves=2, sgd_steps=1,
                       evaluation_games=1, hidden=(8, 8),
                       trace_dir=str(tmp_path))
    training = MinigoTraining(cfg)
    first = training.run_round()
    second = training.run_round()
    assert first.trace_dir == str(tmp_path / "round_000")
    assert second.trace_dir == str(tmp_path / "round_001")
    db_first, db_second = TraceDB(first.trace_dir), TraceDB(second.trace_dir)
    # Every phase streamed into the round's store, and round 2 did not
    # clobber round 1's shards.
    for db in (db_first, db_second):
        assert {"selfplay_worker_0", "trainer", "evaluate_candidate_model"} <= set(db.workers())
        assert db.num_events() > 0


# ----------------------------------------------------------------------- CLI
def test_repro_trace_cli(populated_store, tmp_path, capsys):
    directory = str(populated_store.directory)
    assert trace_main(["summarize", directory, "--overlap"]) == 0
    out = capsys.readouterr().out
    assert "w0" in out and "w1" in out and "map-reduce overlap" in out

    assert trace_main(["query", directory, "--worker", "w0", "--category", "GPU",
                       "--limit", "2"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) == 2 and all('"GPU"' in l for l in lines)

    assert trace_main(["query", directory, "--phase", "train", "--count"]) == 0
    assert capsys.readouterr().out.strip() == "8"

    out_dir = str(tmp_path / "compacted")
    assert trace_main(["compact", directory, "--out", out_dir, "--chunk-events", "64"]) == 0
    assert "compacted" in capsys.readouterr().out
    compacted = TraceDB(out_dir)
    assert compacted.count_events() == 16
    assert len(compacted.chunks()) == 2  # one merged chunk per worker


# -------------------------------------------------------------- satellites
def test_on_c_exit_warns_once_on_underflow():
    profiler = Profiler(System.create(seed=0), ProfilerConfig.full(), worker="w9")
    with pytest.warns(RuntimeWarning, match="w9"):
        profiler.on_c_exit()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second underflow must stay silent
        profiler.on_c_exit()
    # Balanced usage still works and does not warn.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        profiler.on_c_enter()
        profiler.on_c_exit()


def test_worker_run_system_is_optional():
    run = WorkerRun(worker="w0", result=SelfPlayResult(worker="w0", games=0, moves=0),
                    trace=None, total_time_us=0.0)
    assert run.system is None
