"""Tests for the simulated CUDA runtime, CUPTI, and kernel specs."""

import pytest

from repro.cuda.cupti import Cupti
from repro.cuda.kernels import (
    elementwise_kernel,
    gemm_kernel,
    optimizer_kernel,
    reduction_kernel,
    render_kernel,
    tensor_bytes,
)
from repro.hw.costmodel import CostModel, CostModelConfig
from repro.hw.gpu import GPUDevice
from repro.hw.clock import VirtualClock
from repro.cuda.runtime import CudaRuntime
from repro.system import System


# ------------------------------------------------------------------ kernels
def test_gemm_kernel_flops():
    spec = gemm_kernel(64, 32, 16)
    assert spec.flops == pytest.approx(2 * 64 * 32 * 16)
    assert spec.bytes_accessed == pytest.approx(4 * (64 * 16 + 16 * 32 + 64 * 32))


def test_elementwise_and_reduction_kernels():
    ew = elementwise_kernel((8, 4), ops_per_element=2.0)
    assert ew.flops == pytest.approx(64)
    red = reduction_kernel((10, 10))
    assert red.flops == pytest.approx(100)
    opt = optimizer_kernel(1000)
    assert opt.flops == pytest.approx(8000)
    render = render_kernel(64, 64)
    assert render.flops > ew.flops


def test_tensor_bytes_and_scaled():
    assert tensor_bytes((3, 4)) == 48
    assert gemm_kernel(2, 2, 2).scaled(2.0).flops == pytest.approx(2 * 16)


# ------------------------------------------------------------------ runtime
@pytest.fixture
def runtime():
    cost = CostModel(CostModelConfig(jitter=0.0))
    clock = VirtualClock()
    device = GPUDevice(cost_model=cost)
    return CudaRuntime(clock, cost, device)


def test_api_call_advances_clock(runtime):
    before = runtime.clock.now_us
    runtime.launch_kernel(gemm_kernel(8, 8, 8))
    assert runtime.clock.now_us > before
    assert runtime.api_call_counts["cudaLaunchKernel"] == 1
    assert runtime.kernel_launch_count == 1
    assert runtime.total_api_calls == 1


def test_kernel_executes_asynchronously(runtime):
    result = runtime.launch_kernel(gemm_kernel(256, 256, 256))
    # The CPU-side API call returns before the kernel finishes on the device.
    assert runtime.clock.now_us < result.activity.end_us


def test_device_synchronize_blocks_cpu(runtime):
    result = runtime.launch_kernel(gemm_kernel(512, 512, 512))
    runtime.device_synchronize()
    assert runtime.clock.now_us >= result.activity.end_us


def test_stream_synchronize_only_waits_for_copy_stream(runtime):
    kernel = runtime.launch_kernel(gemm_kernel(512, 512, 512))
    runtime.memcpy_async("DtoH", 1024)
    runtime.stream_synchronize()
    # Copy stream drained, but the big kernel on the compute stream may still run.
    assert runtime.clock.now_us < kernel.activity.end_us


def test_default_stream_routes_kernels(runtime):
    runtime.default_stream = 3
    result = runtime.launch_kernel(gemm_kernel(4, 4, 4))
    assert result.activity.stream == 3


def test_memset_and_malloc_and_free(runtime):
    runtime.memset_async(1024)
    runtime.malloc(4096)
    runtime.free()
    assert runtime.api_call_counts["cudaMemsetAsync"] == 1
    assert runtime.api_call_counts["cudaMalloc"] == 1
    assert runtime.api_call_counts["cudaFree"] == 1


def test_cupti_enabled_inflates_api_time_and_records():
    cost = CostModel(CostModelConfig(jitter=0.0))
    base = CudaRuntime(VirtualClock(), cost, GPUDevice(cost_model=cost))
    base.launch_kernel(gemm_kernel(8, 8, 8))
    plain_duration = base.clock.now_us

    cost2 = CostModel(CostModelConfig(jitter=0.0))
    cupti_runtime = CudaRuntime(VirtualClock(), cost2, GPUDevice(cost_model=cost2))
    cupti_runtime.cupti.enable()
    cupti_runtime.launch_kernel(gemm_kernel(8, 8, 8))
    assert cupti_runtime.clock.now_us > plain_duration
    assert len(cupti_runtime.cupti.api_records) == 1
    assert len(cupti_runtime.cupti.kernel_records) == 1


def test_cupti_disabled_records_nothing(runtime):
    runtime.launch_kernel(gemm_kernel(8, 8, 8))
    runtime.memcpy_async("HtoD", 100)
    assert runtime.cupti.api_records == []
    assert runtime.cupti.kernel_records == []
    assert runtime.cupti.memcpy_records == []


def test_hooks_add_overhead_and_get_notified(runtime):
    calls = []

    class Hook:
        def api_overhead_us(self, api_name):
            return 10.0

        def on_api(self, record):
            calls.append(record.api_name)

    hook = Hook()
    runtime.add_hook(hook)
    start = runtime.clock.now_us
    runtime.launch_kernel(gemm_kernel(4, 4, 4))
    duration_with_hook = runtime.clock.now_us - start
    assert calls == ["cudaLaunchKernel"]
    assert duration_with_hook >= 10.0
    runtime.remove_hook(hook)
    runtime.launch_kernel(gemm_kernel(4, 4, 4))
    assert len(calls) == 1


def test_cupti_subscriber_callbacks():
    cupti = Cupti()
    cupti.enable()
    seen = []
    cupti.subscribe_api(lambda record: seen.append(record.api_name))
    cupti.record_api("cudaLaunchKernel", 0.0, 5.0, "worker_0")
    assert seen == ["cudaLaunchKernel"]
    cupti.clear()
    assert cupti.api_records == []


def test_system_wires_shared_device():
    shared = GPUDevice()
    a = System.create(seed=1, device=shared, worker="w0")
    b = System.create(seed=2, device=shared, worker="w1")
    a.cuda.launch_kernel(gemm_kernel(4, 4, 4))
    b.cuda.launch_kernel(gemm_kernel(4, 4, 4))
    workers = {activity.worker for activity in shared.activity}
    assert workers == {"w0", "w1"}
