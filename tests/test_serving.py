"""Tests for the networked serving tier: protocol, admission, overload, determinism."""

import numpy as np
import pytest

from repro.minigo import PolicyValueNet
from repro.minigo.inference import FLUSH_TIMEOUT
from repro.serving import (
    BurstyProcess,
    EvalReply,
    EvalRequest,
    IncompleteFrame,
    InferenceServer,
    LoadGenerator,
    MessageStream,
    PoissonProcess,
    ProtocolError,
    RetryPolicy,
    ServingClient,
    TokenBucket,
    TraceReplay,
    build_slo_report,
    decode_message,
    encode_reply,
    encode_request,
    estimate_capacity_rows_per_sec,
    run_serving,
)

BOARD = 5
FEATURES = 3 * BOARD * BOARD
NUM_MOVES = BOARD * BOARD + 1


def make_network(seed=7):
    return PolicyValueNet(BOARD, (16,), rng=np.random.default_rng(seed))


def make_server(**kwargs):
    defaults = dict(max_batch=8, queue_capacity=64, flush_policy=FLUSH_TIMEOUT,
                    flush_timeout_us=10_000.0, seed=0)
    defaults.update(kwargs)
    return InferenceServer(make_network(), **defaults)


def rows(n=1, seed=0):
    return np.random.default_rng(seed).normal(size=(n, FEATURES)).astype(np.float32)


def request(rid, t=0.0, *, client="c0", n=1, seed=None, deadline=None, meta=None):
    return EvalRequest(request_id=rid, client_id=client,
                       features=rows(n, seed if seed is not None else rid),
                       send_us=t, first_send_us=t, deadline_us=deadline,
                       metadata=meta or {})


def decode_replies(replies):
    return [(decode_message(frame)[0], at) for frame, at in replies]


# ----------------------------------------------------------------- protocol
def test_request_roundtrip_preserves_fields_and_detaches_arrays():
    req = request(3, 42.0, client="alice", n=2, deadline=99.5,
                  meta={"tag": "x", "attempt": 0})
    req.attempt = 2
    frame = encode_request(req)
    decoded, consumed = decode_message(frame)
    assert consumed == len(frame)
    assert isinstance(decoded, EvalRequest)
    assert decoded.key == ("alice", 3)
    assert decoded.attempt == 2
    assert decoded.send_us == 42.0 and decoded.deadline_us == 99.5
    assert decoded.metadata == {"tag": "x", "attempt": 0}
    np.testing.assert_array_equal(decoded.features, req.features)
    # The wire boundary detaches state: mutating the decoded copy can never
    # reach the sender's arrays or metadata (the anti-aliasing guarantee).
    decoded.features[0, 0] += 1.0
    decoded.metadata["tag"] = "mutated"
    assert req.features[0, 0] != decoded.features[0, 0]
    assert req.metadata["tag"] == "x"


def test_decode_twice_yields_independent_messages():
    """Retrying the same frame can never alias the previous attempt."""
    frame = encode_request(request(1, meta={"attempt": 0}))
    first, _ = decode_message(frame)
    second, _ = decode_message(frame)
    first.metadata["queue_delay_us"] = 123.0
    first.features[0, 0] = 7.0
    assert "queue_delay_us" not in second.metadata
    assert second.features[0, 0] != 7.0


def test_reply_roundtrip_ok_and_shed():
    priors = np.full((2, NUM_MOVES), 1.0 / NUM_MOVES, dtype=np.float32)
    values = np.zeros(2, dtype=np.float32)
    ok = EvalReply(request_id=1, client_id="c", status="ok", priors=priors,
                   values=values, queue_delay_us=5.0, completion_us=9.0, replica=1)
    decoded, _ = decode_message(encode_reply(ok))
    assert decoded.ok and decoded.replica == 1
    np.testing.assert_array_equal(decoded.priors, priors)
    np.testing.assert_array_equal(decoded.values, values)

    shed = EvalReply(request_id=2, client_id="c", status="shed-queue",
                     completion_us=4.0, detail="queue full")
    decoded, _ = decode_message(encode_reply(shed))
    assert decoded.shed and decoded.priors is None
    assert decoded.detail == "queue full"


def test_protocol_rejects_malformed_frames():
    frame = encode_request(request(1))
    with pytest.raises(IncompleteFrame):
        decode_message(frame[:5])
    with pytest.raises(IncompleteFrame):
        decode_message(frame[:-1])
    with pytest.raises(ProtocolError):
        decode_message(b"XXXX" + frame[4:])
    with pytest.raises(ProtocolError):
        encode_reply(EvalReply(request_id=1, client_id="c", status="nonsense"))
    with pytest.raises(ProtocolError):
        encode_reply(EvalReply(request_id=1, client_id="c", status="ok"))  # no arrays
    with pytest.raises(ProtocolError):
        encode_request(request(1, n=1).__class__(
            request_id=1, client_id="c", features=np.zeros((0, 4), np.float32)))


def test_message_stream_reassembles_split_and_coalesced_frames():
    frames = [encode_request(request(i, float(i))) for i in range(3)]
    blob = b"".join(frames)
    stream = MessageStream()
    # Byte-by-byte delivery: every frame still comes out exactly once.
    seen = []
    for i in range(len(blob)):
        seen.extend(stream.feed(blob[i:i + 1]))
    assert [m.request_id for m in seen] == [0, 1, 2]
    assert stream.buffered_bytes == 0
    # Coalesced delivery: two and a half frames, then the rest.
    stream = MessageStream()
    cut = len(frames[0]) + len(frames[1]) + 7
    first = stream.feed(blob[:cut])
    assert [m.request_id for m in first] == [0, 1]
    assert stream.buffered_bytes == 7
    second = stream.feed(blob[cut:])
    assert [m.request_id for m in second] == [2]


# ------------------------------------------- malformed frames / resync (fuzz)
def _corrupt_header(frame):
    """Break the frame's JSON header while leaving the magic intact.

    The fixed struct header is 18 bytes (``<4sBBIQ``); flipping the first
    JSON byte guarantees a decode failure without touching the magic.
    """
    return frame[:18] + bytes([frame[18] ^ 0xFF]) + frame[19:]


def test_one_corrupted_frame_costs_exactly_that_frame():
    frames = [encode_request(request(i, float(i))) for i in range(3)]
    blob = frames[0] + _corrupt_header(frames[1]) + frames[2]
    stream = MessageStream()
    seen = stream.feed(blob)
    assert [m.request_id for m in seen] == [0, 2], \
        "the frames around the corruption must still decode"
    assert stream.corrupt_frames == 1
    assert stream.buffered_bytes == 0


def test_magicless_garbage_run_counts_one_incident_across_feeds():
    stream = MessageStream()
    # A garbage run split across feeds is one incident, not one per feed:
    # its bytes are indistinguishable from the tail of a destroyed frame.
    assert stream.feed(b"\x00garbage-without-magic") == []
    assert stream.feed(b"more-garbage\x01\x02\x03") == []
    assert stream.corrupt_frames == 1
    good = encode_request(request(7))
    [message] = stream.feed(good)
    assert message.request_id == 7
    assert stream.corrupt_frames == 1


def test_back_to_back_corrupted_frames_each_count():
    frames = [encode_request(request(i)) for i in range(3)]
    blob = (_corrupt_header(frames[0]) + _corrupt_header(frames[1])
            + frames[2])
    stream = MessageStream()
    seen = stream.feed(blob)
    assert [m.request_id for m in seen] == [2]
    assert stream.corrupt_frames == 2, \
        "each frame whose magic survived is a distinct incident"


def test_resync_survives_byte_at_a_time_delivery():
    frames = [encode_request(request(i, float(i))) for i in range(3)]
    blob = frames[0] + _corrupt_header(frames[1]) + frames[2]
    stream = MessageStream()
    seen = []
    for i in range(len(blob)):
        seen.extend(stream.feed(blob[i:i + 1]))
    assert [m.request_id for m in seen] == [0, 2]
    assert stream.corrupt_frames == 1


def test_stream_fuzz_never_raises_and_never_hoards():
    """Random mutations in random chunkings: feed must never raise, and the
    buffer must never grow past one maximal partial frame."""
    rng = np.random.default_rng(0xF022)
    frames = [encode_request(request(i, float(i), n=1 + i % 3))
              for i in range(6)]
    for _ in range(25):
        blob = bytearray(b"".join(frames))
        for _ in range(rng.integers(1, 6)):
            blob[rng.integers(0, len(blob))] ^= int(rng.integers(1, 256))
        stream = MessageStream()
        offset, decoded = 0, 0
        while offset < len(blob):
            step = int(rng.integers(1, 200))
            decoded += len(stream.feed(bytes(blob[offset:offset + step])))
            offset += step
        assert decoded <= len(frames)
        assert stream.buffered_bytes <= len(blob)


# ------------------------------------------------------------- token bucket
def test_token_bucket_sustains_rate_with_burst():
    bucket = TokenBucket(1_000_000.0, burst=2.0)  # one token per virtual us
    assert bucket.admit(0.0) and bucket.admit(0.0)
    assert not bucket.admit(0.0), "burst exhausted"
    assert bucket.admit(1.0), "one us refills one token"
    assert not bucket.admit(1.0)
    assert bucket.admit(100.0) and bucket.admit(100.0)
    assert not bucket.admit(100.0), "refill is capped at the burst size"
    assert TokenBucket(None).admit(0.0), "disabled bucket admits everything"
    with pytest.raises(ValueError):
        TokenBucket(0.0)


def test_rate_limit_is_per_client():
    server = make_server(rate_limit_per_sec=1_000.0, rate_burst=1.0)
    shed = decode_replies(server.offer(request(0, 0.0, client="spammer"), 0.0))
    assert shed == []  # first request admitted (burst token)
    [(reply, _)] = decode_replies(server.offer(request(1, 1.0, client="spammer"), 1.0))
    assert reply.status == "shed-rate"
    # Another client's bucket is untouched.
    assert server.offer(request(0, 1.0, client="quiet"), 1.0) == []
    assert server.stats.shed_rate == 1 and server.stats.admitted == 2


# ------------------------------------------------------- bounded ingress queue
def test_ingress_queue_sheds_exactly_at_capacity():
    server = make_server(queue_capacity=3, overload="shed-newest")
    for i in range(3):
        assert server.offer(request(i, float(i)), float(i)) == []
    assert server.occupancy(2.0) == 3
    [(reply, at)] = decode_replies(server.offer(request(3, 3.0), 3.0))
    assert reply.status == "shed-queue" and at == 3.0
    assert server.stats.shed_queue == 1 and server.stats.admitted == 3
    # The shed is in the decision log, attributed to the right request.
    assert any(event == "shed-queue" and rid == 3
               for _, event, _, rid, _ in server.decision_log)


def test_window_counts_executing_work_not_just_the_queue():
    """A dispatched batch holds its slots until completion: backlog cannot
    hide on the replica horizon."""
    server = make_server(max_batch=2, queue_capacity=2)
    server.offer(request(0, 0.0), 0.0)
    replies = server.offer(request(1, 1.0), 1.0)   # completes a full batch
    [(reply0, c0), (reply1, c1)] = decode_replies(replies)
    assert reply0.ok and reply1.ok and c0 > 1.0
    assert server.pending_tickets == 0, "the batch left the service queue"
    assert server.occupancy(1.0) == 2, "... but still occupies the window"
    [(shed, _)] = decode_replies(server.offer(request(2, 2.0), 2.0))
    assert shed.status == "shed-queue"
    # Once the batch's completion time passes, the slots free.
    assert server.occupancy(c0) == 0
    assert server.offer(request(3, c0), c0) == []


def test_shed_oldest_evicts_the_oldest_pending_request():
    server = make_server(queue_capacity=3, overload="shed-oldest")
    for i in range(3):
        server.offer(request(i, float(i)), float(i))
    [(reply, _)] = decode_replies(server.offer(request(3, 3.0), 3.0))
    assert reply.status == "shed-queue" and reply.request_id == 0, \
        "the oldest queued request is the victim, not the arrival"
    assert server.stats.admitted == 4
    # The victim's rows never reach the engine.
    drained = decode_replies(server.drain(3.0))
    assert sorted(m.request_id for m, _ in drained) == [1, 2, 3]
    assert all(m.ok for m, _ in drained)


def test_deadline_drop_purges_expired_queued_requests():
    server = make_server(queue_capacity=2, overload="deadline-drop")
    server.offer(request(0, 0.0, deadline=50.0), 0.0)
    server.offer(request(1, 1.0, deadline=5_000.0), 1.0)
    # At t=100 request 0's deadline has passed; the arrival takes its slot.
    replies = decode_replies(server.offer(request(2, 100.0, deadline=5_000.0), 100.0))
    assert [(m.request_id, m.status) for m, _ in replies] == [(0, "shed-deadline")]
    assert server.stats.shed_deadline == 1 and server.stats.admitted == 3


def test_deadline_drop_race_resolves_in_favour_of_the_departed_batch():
    """A request already dispatched in a batch is past the point of no return:
    deadline-drop may only purge *queued* requests."""
    server = make_server(max_batch=2, queue_capacity=2, overload="deadline-drop")
    server.offer(request(0, 0.0, deadline=10.0), 0.0)
    replies = decode_replies(server.offer(request(1, 1.0, deadline=10.0), 1.0))
    assert all(m.ok for m, _ in replies), "the full batch departed and served"
    completion = replies[0][1]
    assert completion > 10.0, "the batch completes after both deadlines"
    # At t=20 both served requests' deadlines are past, but they are
    # executing, not queued: the arrival cannot reclaim their slots.
    [(shed, _)] = decode_replies(server.offer(request(2, 20.0, deadline=30.0), 20.0))
    assert shed.status == "shed-queue"
    assert server.stats.shed_deadline == 0


def test_block_policy_parks_and_unblocks_in_fifo_order():
    server = make_server(max_batch=2, queue_capacity=2, overload="block")
    server.offer(request(0, 0.0), 0.0)
    [(r0, c0), (r1, _)] = decode_replies(server.offer(request(1, 1.0), 1.0))
    assert r0.ok and r1.ok
    # The window is full of executing work: the next two arrivals park.
    assert server.offer(request(2, 2.0), 2.0) == []
    assert server.offer(request(3, 3.0), 3.0) == []
    assert server.stats.blocked == 2 and server.stats.shed == 0
    # The server asks for a timer at the completion that frees the window.
    assert server.next_deadline_us() == pytest.approx(c0)
    replies = decode_replies(server.on_timer(c0))
    assert [m.request_id for m, _ in replies] == [2, 3], \
        "backlog admits FIFO and forms the next batch"
    assert all(m.ok for m, _ in replies)
    assert server.stats.block_time_us == pytest.approx((c0 - 2.0) + (c0 - 3.0))
    unblocks = [rid for _, event, _, rid, _ in server.decision_log if event == "unblock"]
    assert unblocks == [2, 3]


# ------------------------------------------------------------ client retries
def test_retry_backoff_progression_is_capped():
    policy = RetryPolicy(max_attempts=5, base_backoff_us=100.0, multiplier=2.0,
                         cap_us=400.0)
    assert [policy.backoff_us(k) for k in range(4)] == [100.0, 200.0, 400.0, 400.0]

    client = ServingClient("c0", feature_dim=FEATURES, retry=policy, seed=1)
    frame = client.new_request_frame(0.0)
    req, _ = decode_message(frame)
    shed = encode_reply(EvalReply(request_id=req.request_id, client_id="c0",
                                  status="shed-queue"))
    resend_times = []
    now = 0.0
    for _ in range(4):
        action = client.deliver(shed, now)
        assert action is not None
        now, frame = action
        resend_times.append(now)
        sent, _ = decode_message(frame)
        assert sent.attempt == len(resend_times)
        assert sent.first_send_us == 0.0, "retries keep the original send time"
    # 5th shed reply exhausts max_attempts: the request is abandoned.
    assert client.deliver(shed, now) is None
    assert resend_times == [100.0, 300.0, 700.0, 1100.0]
    assert client.stats.retries == 4 and client.stats.gave_up == 1
    assert client.outstanding == 0


def test_retry_storm_under_sustained_overload_stays_bounded():
    """Every shed spawns at most max_attempts-1 retries, then clients give up:
    total sends are bounded even when the server sheds almost everything."""
    retry = RetryPolicy(max_attempts=3, base_backoff_us=50.0, cap_us=200.0)
    server = make_server(max_batch=4, queue_capacity=4, flush_timeout_us=300.0)
    gen = LoadGenerator(PoissonProcess(150_000.0), 16, feature_dim=FEATURES,
                        retry=retry, seed=3)
    result = run_serving(server, gen, 10_000.0)
    report = build_slo_report(result)
    assert report.shed_queue > 0, "the storm must actually overload the window"
    assert report.retries > 0
    assert report.sends <= report.requests * retry.max_attempts
    assert report.gave_up > 0
    assert report.requests == report.completed + report.gave_up, \
        "every request resolves: served or abandoned, none lost"


def _shed_reply_for(client, send_us=0.0):
    frame = client.new_request_frame(send_us)
    req, _ = decode_message(frame)
    return encode_reply(EvalReply(request_id=req.request_id,
                                  client_id=client.client_id,
                                  status="shed-queue"))


def _retry_waits(seed, jitter="decorrelated", retries=3):
    policy = RetryPolicy(max_attempts=retries + 1, base_backoff_us=100.0,
                         cap_us=2_000.0, jitter=jitter)
    client = ServingClient("c0", feature_dim=FEATURES, retry=policy, seed=seed)
    shed = _shed_reply_for(client)
    waits, now = [], 0.0
    for _ in range(retries):
        resend_at, _ = client.deliver(shed, now)
        waits.append(resend_at - now)
        now = resend_at
    return waits


def test_retry_policy_rejects_unknown_jitter_mode():
    with pytest.raises(ValueError, match="unknown jitter mode"):
        RetryPolicy(jitter="bogus")


def test_jitter_is_off_by_default_and_costs_nothing_when_off():
    assert RetryPolicy().jitter == "none"
    client = ServingClient("c0", feature_dim=FEATURES, retry=RetryPolicy(),
                           seed=1)
    assert client._backoff_rng is None, \
        "jitter='none' must not even build the RNG (bit-identity guarantee)"
    # The deterministic ladder is unchanged by the jitter machinery existing.
    assert _retry_waits(1, jitter="none") == [100.0, 200.0, 400.0]


def test_decorrelated_jitter_draws_stay_within_bounds():
    base, cap = 100.0, 2_000.0
    waits = _retry_waits(5, retries=8)
    assert waits[0] == base, \
        "the first wait follows prev=0: uniform(base, base) is exactly base"
    prev = waits[0]
    for wait in waits[1:]:
        assert base <= wait <= min(cap, 3.0 * prev), \
            f"wait {wait} outside [base, min(cap, 3*prev={3 * prev})]"
        prev = wait
    assert any(w != waits[0] for w in waits[1:]), "the draws must actually jitter"


def test_decorrelated_jitter_is_a_pure_function_of_the_seed():
    assert _retry_waits(9) == _retry_waits(9)
    assert _retry_waits(9) != _retry_waits(10), \
        "different client seeds must de-synchronise the retry schedule"


def test_jittered_retry_storm_stays_bounded_and_replays():
    """Jitter de-syncs the fleet without losing the storm's guarantees."""
    def run():
        retry = RetryPolicy(max_attempts=3, base_backoff_us=50.0, cap_us=200.0,
                            jitter="decorrelated")
        server = make_server(max_batch=4, queue_capacity=4, flush_timeout_us=300.0)
        gen = LoadGenerator(PoissonProcess(150_000.0), 16, feature_dim=FEATURES,
                            retry=retry, seed=3)
        return build_slo_report(run_serving(server, gen, 10_000.0))

    report = run()
    assert report.shed_queue > 0 and report.retries > 0
    assert report.sends <= report.requests * 3
    assert report.requests == report.completed + report.gave_up, \
        "every request resolves: served or abandoned, none lost"
    assert report.format() == run().format(), \
        "the jittered fleet must still replay bit-for-bit under one seed"


def test_late_ok_reply_counts_as_timeout_miss():
    client = ServingClient("c0", feature_dim=FEATURES, request_deadline_us=100.0)
    frame = client.new_request_frame(0.0)
    req, _ = decode_message(frame)
    ok = encode_reply(EvalReply(
        request_id=req.request_id, client_id="c0", status="ok",
        priors=np.zeros((1, NUM_MOVES), np.float32),
        values=np.zeros(1, np.float32), completion_us=250.0))
    client.deliver(ok, 250.0)
    assert client.stats.completed == 1
    assert client.stats.late == 1 and client.stats.on_time == 0


# ------------------------------------------------------------- determinism
def test_arrival_processes_are_seed_deterministic():
    for process in (PoissonProcess(50_000.0),
                    BurstyProcess(20_000.0, 200_000.0, mean_calm_us=2_000.0,
                                  mean_burst_us=500.0)):
        a = list(process.arrival_times(20_000.0, np.random.default_rng(5)))
        b = list(process.arrival_times(20_000.0, np.random.default_rng(5)))
        c = list(process.arrival_times(20_000.0, np.random.default_rng(6)))
        assert a == b, f"{process!r} must replay bit-for-bit under one seed"
        assert a != c, f"{process!r} must actually depend on the seed"
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))
    trace = TraceReplay([1.0, 2.0, 5_000.0, 30_000.0])
    assert list(trace.arrival_times(10_000.0, np.random.default_rng(0))) == [
        1.0, 2.0, 5_000.0]
    with pytest.raises(ValueError):
        TraceReplay([5.0, 1.0])


def test_same_seed_same_config_reproduces_decisions_and_report():
    def run(seed):
        server = make_server(max_batch=4, queue_capacity=6, flush_timeout_us=200.0,
                             overload="shed-newest", seed=seed)
        gen = LoadGenerator(BurstyProcess(40_000.0, 300_000.0,
                                          mean_calm_us=3_000.0, mean_burst_us=800.0),
                            32, feature_dim=FEATURES, seed=seed)
        result = run_serving(server, gen, 15_000.0)
        return server, build_slo_report(result).format()

    server_a, report_a = run(11)
    server_b, report_b = run(11)
    assert server_a.decision_log_lines() == server_b.decision_log_lines()
    assert report_a == report_b
    server_c, report_c = run(12)
    assert server_a.decision_log_lines() != server_c.decision_log_lines()
    assert report_a != report_c


def test_capacity_probe_is_deterministic():
    a = estimate_capacity_rows_per_sec(make_network, feature_dim=FEATURES,
                                       max_batch=8, seed=3)
    b = estimate_capacity_rows_per_sec(make_network, feature_dim=FEATURES,
                                       max_batch=8, seed=3)
    assert a == b and a > 0


# --------------------------------------------- PR 4 service equivalence bar
def test_unlimited_server_reproduces_bare_service_stats_exactly():
    """Admission off + unbounded window = the PR 4 service, bit for bit.

    The reference drives a bare InferenceService through the same arrival
    stream with the scheduler idiom the server uses internally (eager
    full-batch serves, deadline-cutoff timeout serves).  Arrivals are sparse
    enough that virtual time never rewinds, so a plain monotonic clock
    reproduces the gateway cursor's timeline exactly.
    """
    from repro.backend import GraphEngine
    from repro.minigo.inference import InferenceService
    from repro.system import System

    seed = 0
    max_batch, timeout_us = 4, 300.0
    arrivals = [0.0, 40.0, 90.0, 130.0,          # a full batch
                5_000.0, 5_050.0,                # a timeout partial
                10_000.0, 10_030.0, 10_060.0, 10_090.0]  # another full batch
    feature_blocks = [rows(1, seed=100 + i) for i in range(len(arrivals))]

    server = InferenceServer(make_network(), max_batch=max_batch,
                             queue_capacity=None, rate_limit_per_sec=None,
                             flush_policy=FLUSH_TIMEOUT, flush_timeout_us=timeout_us,
                             seed=seed, name="equiv")
    for index, (t, features) in enumerate(zip(arrivals, feature_blocks)):
        deadline = server.next_deadline_us()
        if deadline is not None and deadline <= t:
            server.on_timer(deadline)
        server.offer(EvalRequest(request_id=index, client_id="c0",
                                 features=features, send_us=t, first_send_us=t),
                     t)
    server.drain(arrivals[-1])

    # Reference: the same wiring by hand, driven with the same triggers.
    reference_system = System.create(seed=seed + 7777, worker="equiv/gateway")
    reference = InferenceService(make_network(), max_batch=max_batch, name="equiv/service",
                                 primary_device=reference_system.device, seed=seed)
    engine = GraphEngine(reference_system, flavor="tensorflow")
    gateway = reference.connect(reference_system, engine, worker="equiv/gateway")

    def fire_due_timer(now_us):
        earliest = reference.earliest_pending_arrival_us()
        if earliest is not None and earliest + timeout_us <= now_us:
            reference_system.clock.advance_to(earliest + timeout_us)
            reference.serve_queued(policy=FLUSH_TIMEOUT, timeout_us=timeout_us,
                                   arrival_cutoff_us=earliest + timeout_us)

    for index, (t, features) in enumerate(zip(arrivals, feature_blocks)):
        fire_due_timer(t)
        reference_system.clock.advance_to(t)
        gateway.submit(features, metadata={"request_id": index, "client_id": "c0"})
        if reference.pending_rows >= max_batch:
            reference.serve_queued(policy=FLUSH_TIMEOUT, timeout_us=timeout_us,
                                   full_batches_only=True, stable_before_us=t)
    while reference.pending_tickets:
        earliest = reference.earliest_pending_arrival_us()
        reference_system.clock.advance_to(max(earliest + timeout_us, arrivals[-1]))
        reference.serve_queued(policy=FLUSH_TIMEOUT, timeout_us=timeout_us)

    served, expected = server.service.stats, reference.stats
    for field in ("requests", "rows", "engine_calls", "max_batch_rows",
                  "queued_waits", "queue_delay_us", "max_queue_delay_us"):
        assert getattr(served, field) == getattr(expected, field), field
    assert served.rows_by_worker == expected.rows_by_worker
    assert served.queue_delay_samples.sample == expected.queue_delay_samples.sample
    for actual, reference_replica in zip(server.service.replicas, reference.replicas):
        assert actual.free_us == reference_replica.free_us
        assert actual.busy_us == reference_replica.busy_us
        assert actual.stats.engine_calls == reference_replica.stats.engine_calls


# ---------------------------------------------------------------- plumbing
def test_server_rejects_bad_configuration():
    with pytest.raises(ValueError):
        make_server(overload="drop-everything")
    with pytest.raises(ValueError):
        make_server(queue_capacity=0)
    with pytest.raises(ValueError):
        make_server(flush_policy="timeout", flush_timeout_us=None)
    with pytest.raises(ValueError):
        InferenceServer(make_network(), flush_policy="sometimes")


def test_duplicate_inflight_request_is_rejected():
    server = make_server()
    server.offer(request(0, 0.0), 0.0)
    with pytest.raises(ValueError):
        server.offer(request(0, 1.0), 1.0)


def test_served_reply_carries_batch_attribution():
    server = make_server(max_batch=2, num_replicas=2)
    server.offer(request(0, 0.0), 0.0)
    replies = decode_replies(server.offer(request(1, 50.0), 50.0))
    assert len(replies) == 2
    for reply, at in replies:
        assert reply.ok
        assert reply.priors.shape == (1, NUM_MOVES)
        assert reply.values.shape == (1,)
        assert reply.replica == 0
        assert at == reply.completion_us > 50.0
    by_id = {reply.request_id: reply for reply, _ in replies}
    assert by_id[0].queue_delay_us > by_id[1].queue_delay_us, \
        "the earlier arrival waited longer for the batch to fill"


# ------------------------------------------------------ admission-time cache
def keyed_request(rid, t=0.0, *, client="c0", key=7, n=1):
    from repro.serving import key_features
    return EvalRequest(request_id=rid, client_id=client,
                       features=key_features(key, n, FEATURES),
                       send_us=t, first_send_us=t, state_key=key, metadata={})


def test_admission_hit_consumes_no_token_and_no_window_slot():
    """A cache hit is answered before every admission defence.

    With the window full of executing work and the client's token bucket
    empty, a keyed repeat is still answered OK — from the cache, at arrival
    time, on no replica — while a keyless arrival in the same state sheds.
    """
    server = make_server(max_batch=2, queue_capacity=2,
                         rate_limit_per_sec=1.0, rate_burst=2.0,
                         cache_capacity=8)
    server.offer(keyed_request(0, 0.0, key=7), 0.0)
    replies = decode_replies(server.offer(request(1, 1.0), 1.0))
    assert all(reply.ok for reply, _ in replies)  # full batch served; cache warm
    assert server.occupancy(2.0) == 2  # window full until the batch completes
    assert server._buckets["c0"].tokens < 1.0  # both admissions spent tokens

    [(hit, at)] = decode_replies(server.offer(keyed_request(2, 2.0, key=7), 2.0))
    assert hit.ok and hit.detail == "cache" and hit.replica == -1
    assert at == 2.0  # answered at admission, not at a batch completion
    assert server.stats.cache_hits == 1 and server.stats.cache_rows == 1
    assert server.occupancy(2.0) == 2, "the hit occupied no window slot"
    assert server._buckets["c0"].tokens < 1.0, "the hit consumed no token"
    assert server.stats.admitted == 2, "the hit never entered the ingress queue"
    assert any(" cache-hit " in line for line in server.decision_log_lines())

    # Same instant, no key: every defence that the hit bypassed applies.
    [(shed, _)] = decode_replies(server.offer(request(3, 2.0), 2.0))
    assert shed.status == "shed-rate"


def test_state_key_roundtrips_and_keyless_frames_are_unchanged():
    keyed = keyed_request(4, 10.0, key=123)
    decoded, _ = decode_message(encode_request(keyed))
    assert decoded.state_key == 123
    assert decoded.features.tobytes() == keyed.features.tobytes()
    keyless = request(5, 10.0)
    assert keyless.state_key is None
    frame = encode_request(keyless)
    assert b"state_key" not in frame, "keyless frames carry no cache field"
    assert decode_message(frame)[0].state_key is None


def test_keyed_run_decision_log_replays_with_cache_hits():
    def run():
        server = make_server(cache_capacity=32, seed=3)
        generator = LoadGenerator(PoissonProcess(40_000.0), 16,
                                  feature_dim=FEATURES, seed=3, key_space=4)
        run_serving(server, generator, 15_000.0)
        return server

    first, second = run(), run()
    assert first.decision_log_lines() == second.decision_log_lines()
    assert first.stats.cache_hits > 0
    assert any(" cache-hit " in line for line in first.decision_log_lines())
    report = build_slo_report(run_serving(make_server(cache_capacity=32, seed=3),
                                          LoadGenerator(PoissonProcess(40_000.0), 16,
                                                        feature_dim=FEATURES, seed=3,
                                                        key_space=4),
                                          15_000.0))
    assert "cache" in report.format()
