"""Tests for the env-agnostic rollout core (drivers, pool, rl attachment).

The synthetic-driver tests exercise the :class:`StepwiseDriver` contract
with no simulator (and no Go engine) behind it: suspend/resume at
inference boundaries, annotations held open across suspension, and
heap-vs-scan scheduler identity.
"""

import numpy as np
import pytest

from repro.backend.graph import GraphEngine
from repro.hw.gpu import GPUDevice
from repro.profiler.api import Profiler, ProfilerConfig
from repro.rollout import (
    FLUSH_UNBATCHED,
    EnvRolloutDriver,
    EnvRolloutPool,
    InferenceService,
    PoolScheduler,
    StepwiseDriver,
)
from repro.rollout.pool import RolloutPolicyNet
from repro.system import System

FEATURE_DIM = 4


class SyntheticDriver(StepwiseDriver):
    """Compute → submit → suspend → resume, with no env behind it."""

    def __init__(self, system, client, rounds, compute_us, *, profiler=None):
        self.system = system
        self.client = client
        self.rounds = rounds
        self.compute_us = compute_us
        self.profiler = profiler
        self.completed = 0
        self.results = []
        self.submit_times = []
        self._ticket = None
        self._op = None

    @property
    def finished(self):
        return self.completed >= self.rounds

    @property
    def blocked(self):
        return self._ticket is not None and not self._ticket.done

    @property
    def now_us(self):
        return self.system.clock.now_us

    @property
    def worker_name(self):
        return self.system.worker

    def step(self):
        if self.finished:
            return False
        if self.blocked:
            raise RuntimeError("stepped while blocked")
        if self._ticket is not None:
            out, values = self._ticket.result()
            self._ticket = None
            if self._op is not None:
                self._op.__exit__(None, None, None)
                self._op = None
            self.results.append((out.tobytes(), values.tobytes()))
            self.completed += 1
            if self.finished:
                return False
        self.system.clock.advance(self.compute_us)
        if self.profiler is not None:
            self._op = self.profiler.operation("inference")
            self._op.__enter__()
        self.submit_times.append(self.now_us)
        features = np.full((1, FEATURE_DIM), float(self.completed), dtype=np.float32)
        self._ticket = self.client.submit(features)
        return True


def _synthetic_pool(num_workers, rounds, *, compute_us=None, profile=False,
                    use_heap=None, seed=0):
    """num_workers synthetic drivers sharing one service on one device."""
    device = GPUDevice()
    network = RolloutPolicyNet(FEATURE_DIM, 3, (8,),
                               rng=np.random.default_rng(seed + 7))
    service = InferenceService(network, max_batch=num_workers,
                               primary_device=device, seed=seed)
    drivers, profilers = [], []
    for index in range(num_workers):
        system = System.create(seed=seed + index, device=device,
                               worker=f"synth_{index}")
        system.cuda.default_stream = index
        engine = GraphEngine(system, flavor="tensorflow")
        profiler = None
        if profile:
            profiler = Profiler(system, ProfilerConfig.full(),
                                worker=system.worker)
            profiler.attach(engine=engine)
        client = service.connect(system, engine, profiler=profiler)
        us = compute_us[index] if compute_us is not None else 10.0 * (index + 1)
        drivers.append(SyntheticDriver(system, client, rounds, us,
                                       profiler=profiler))
        profilers.append(profiler)
    kwargs = {} if use_heap is None else {"use_heap": use_heap}
    scheduler = PoolScheduler(drivers, service, **kwargs)
    return scheduler, drivers, profilers, service


# ------------------------------------------------------------ driver protocol
def test_stepwise_driver_runnable_derivation():
    class Stub(StepwiseDriver):
        finished = False
        blocked = False

    stub = Stub()
    assert stub.runnable
    stub.blocked = True
    assert not stub.runnable
    stub.blocked, stub.finished = False, True
    assert not stub.runnable


def test_synthetic_driver_suspends_and_resumes():
    scheduler, drivers, _, service = _synthetic_pool(1, rounds=3)
    driver = drivers[0]
    assert driver.step()  # compute + submit
    assert driver.blocked and not driver.finished and not driver.runnable
    frozen = driver.now_us
    with pytest.raises(RuntimeError):
        driver.step()
    assert driver.now_us == frozen  # blocked clocks stand still
    scheduler.run()
    assert driver.finished and driver.completed == 3
    assert len(driver.results) == 3
    assert service.stats.rows == 3


def test_annotation_reopens_across_suspension():
    """The inference op opens before the submit and closes after the serve,
    so its span covers the suspension (queueing delay + batch time)."""
    scheduler, drivers, profilers, _ = _synthetic_pool(2, rounds=2, profile=True)
    scheduler.run()
    for driver, profiler in zip(drivers, profilers):
        trace = profiler.finalize()
        ops = [op for op in trace.operations if op.name == "inference"]
        assert len(ops) == driver.rounds
        for op, submitted in zip(ops, driver.submit_times):
            assert op.start_us <= submitted
            assert op.end_us > submitted  # stayed open across the suspension


def test_heap_and_scan_schedules_identical():
    """The lazy-heap scheduler replays the scan loop's decisions exactly."""
    compute = (7.0, 19.0, 3.0, 11.0)
    runs = {}
    for use_heap in (False, True):
        scheduler, drivers, _, _ = _synthetic_pool(
            4, rounds=5, compute_us=compute, use_heap=use_heap)
        scheduler.run()
        stats = scheduler.stats
        runs[use_heap] = (
            [d.results for d in drivers],
            [d.now_us for d in drivers],
            (stats.steps, stats.serves, stats.steps_per_worker),
        )
        assert (stats.heap_pops > 0) == use_heap
    assert runs[True] == runs[False]


# ------------------------------------------------------------- env rollout
def test_env_rollout_pool_batches_across_workers():
    pool = EnvRolloutPool("Pong", 4, steps_per_worker=6, seed=0)
    pool.run()
    stats = pool.inference_service.stats
    assert pool.total_steps() == 24
    assert stats.rows == 24
    assert stats.engine_calls == 6  # each wave coalesces all four workers
    assert stats.cross_worker_share == 1.0
    for run in pool.runs:
        assert run.result.steps == 6
        assert len(run.result.transitions) == 6


def test_env_rollout_unbatched_control_serves_serially():
    pool = EnvRolloutPool("Pong", 4, steps_per_worker=6, seed=0,
                          flush_policy=FLUSH_UNBATCHED)
    pool.run()
    stats = pool.inference_service.stats
    assert stats.engine_calls == stats.rows == 24
    assert stats.cross_worker_share == 0.0


@pytest.mark.parametrize("sim", ["Pong", "Hopper"])
def test_env_rollout_pool_is_deterministic(sim):
    def signature(pool):
        return [
            [(t.obs.tobytes(), np.asarray(t.action).tobytes(), t.reward,
              t.next_obs.tobytes(), t.done)
             for t in run.result.transitions]
            for run in pool.runs
        ], [run.total_time_us for run in pool.runs]

    first = EnvRolloutPool(sim, 3, steps_per_worker=5, seed=11)
    second = EnvRolloutPool(sim, 3, steps_per_worker=5, seed=11)
    first.run()
    second.run()
    assert signature(first) == signature(second)


def test_env_rollout_profile_traces_inference_and_simulation():
    pool = EnvRolloutPool("Walker2D", 2, steps_per_worker=4, seed=0,
                          profile=True)
    pool.run()
    for run in pool.runs:
        names = {op.name for op in run.trace.operations}
        assert names == {"inference", "simulation"}
        infer_ops = [op for op in run.trace.operations if op.name == "inference"]
        assert len(infer_ops) == 4  # one inference boundary per env step


def test_env_rollout_driver_rejects_step_while_blocked():
    pool = EnvRolloutPool("Pong", 2, steps_per_worker=2, seed=0)
    stacks = [pool._make_worker_stack(i) for i in range(2)]
    service = InferenceService(RolloutPolicyNet(
        stacks[0][2].observation_dim, stacks[0][2].action_dim, (8,),
        rng=np.random.default_rng(3)), primary_device=pool.device)
    system, engine, env, _ = stacks[0]
    client = service.connect(system, engine)
    from repro.rollout.envdriver import SampledDiscretePolicy
    driver = EnvRolloutDriver(env, client, SampledDiscretePolicy(), 2)
    driver.step()
    assert driver.blocked
    with pytest.raises(RuntimeError):
        driver.step()


def test_env_rollout_pool_validates_arguments():
    with pytest.raises(ValueError):
        EnvRolloutPool("Pong", 0)
    with pytest.raises(ValueError):
        EnvRolloutPool("Pong", 2, steps_per_worker=0)
    with pytest.raises(ValueError):
        EnvRolloutPool("Pong", 2, flush_policy="nonsense")
    with pytest.raises(KeyError):
        EnvRolloutPool("NotARealSim", 2).run()


# ------------------------------------------------- minigo rides the same core
def test_minigo_drivers_and_shims_are_the_rollout_core():
    from repro import minigo, rollout
    from repro.minigo.selfplay import GameDriver

    assert issubclass(GameDriver, StepwiseDriver)
    assert minigo.InferenceService is rollout.InferenceService
    assert minigo.PoolScheduler is rollout.PoolScheduler
    from repro.minigo import inference as shim
    from repro.rollout import inference as core
    for name in shim.__all__:
        assert getattr(shim, name) is getattr(core, name)


# --------------------------------------------------------------- rl attachment
def test_collect_replay_routes_dqn_through_service():
    from repro.rl import DQN, collect_replay, default_framework
    from repro.sim import registry

    system = System.create(seed=0)
    env = registry.make("Pong", system, seed=0)
    algo = DQN(env, default_framework(system))
    stats = collect_replay(algo, num_workers=4, steps_per_worker=8)
    assert stats.steps == stats.buffered == len(algo.buffer) == 32
    assert stats.rows == 32
    assert stats.engine_calls == 8
    assert stats.cross_worker_share > 0.0


def test_collect_rollout_fills_on_policy_buffer():
    from repro.rl import PPO2, collect_rollout, default_framework
    from repro.sim import registry

    system = System.create(seed=1)
    env = registry.make("Walker2D", system, seed=0)
    algo = PPO2(env, default_framework(system))
    stats = collect_rollout(algo, num_workers=4)
    assert stats.buffered == len(algo.rollout) == algo.rollout.n_steps
    assert algo.rollout.is_full
    assert stats.cross_worker_share > 0.0
    rollout = algo.rollout.finish(0.0)
    assert np.all(np.isfinite(rollout.values))
    assert np.all(np.isfinite(rollout.log_probs))


def test_collect_replay_continuous_actor():
    from repro.rl import DDPG, collect_replay, default_framework
    from repro.sim import registry

    system = System.create(seed=2)
    env = registry.make("Hopper", system, seed=0)
    algo = DDPG(env, default_framework(system))
    stats = collect_replay(algo, num_workers=3, steps_per_worker=5)
    assert stats.buffered == len(algo.buffer) == 15
    assert stats.cross_worker_share > 0.0


def test_zoo_algorithm_support_matrix():
    from repro.rl import algorithm_supports

    assert algorithm_supports("Pong", "DQN")
    assert not algorithm_supports("Walker2D", "DQN")
    assert not algorithm_supports("Pong", "DDPG")
    assert algorithm_supports("Hopper", "DDPG")
    assert algorithm_supports("Pong", "PPO") and algorithm_supports("Hopper", "PPO")


def test_attach_forward_rejects_unknown_algorithms():
    from repro.rl.zoo import _attach_forward

    with pytest.raises(TypeError):
        _attach_forward(object())


# ---------------------------------------------- driver snapshot / restore
def _env_driver_stack(seed=5, num_steps=6):
    """One Pong worker stack + service, built exactly as the pool would."""
    from repro.rollout.seeding import driver_seed

    pool = EnvRolloutPool("Pong", 1, steps_per_worker=num_steps, seed=seed,
                          profile=True)
    system, engine, env, profiler = pool._make_worker_stack(0)
    service = pool._build_service(env)
    client = service.connect(system, engine, worker=system.worker,
                             profiler=profiler)
    driver = EnvRolloutDriver(env, client, pool._make_policy(env, 0), num_steps,
                              seed=driver_seed(seed, 0), profiler=profiler)
    return driver, service, profiler


def _drive(driver, service, *, stop_after_serves=None):
    """Single-driver event loop; optionally pause while blocked mid-annotation."""
    serves = 0
    while not driver.finished:
        if driver.blocked:
            if stop_after_serves is not None and serves >= stop_after_serves:
                return serves
            service.serve_queued()
            serves += 1
        else:
            driver.step()
    return serves


def _env_signature(driver, profiler):
    trace = profiler.finalize()
    ops = [(op.name, op.start_us, op.end_us, op.phase, op.metadata)
           for op in trace.operations]
    transitions = [(t.obs.tobytes(), np.asarray(t.action).tobytes(), t.reward,
                    t.next_obs.tobytes(), t.done)
                   for t in driver.result.transitions]
    return (transitions, driver.result.steps, driver.result.episode_rewards,
            driver.system.clock.now_us, ops)


def test_env_driver_snapshot_restore_roundtrip_mid_annotation():
    baseline_driver, baseline_service, baseline_profiler = _env_driver_stack()
    _drive(baseline_driver, baseline_service)
    expect = _env_signature(baseline_driver, baseline_profiler)

    first, first_service, _ = _env_driver_stack()
    _drive(first, first_service, stop_after_serves=3)
    assert first.blocked  # suspended mid-`inference` annotation, ticket pending
    snap_us = first.now_us
    blob = first.snapshot()

    # Resume on a completely fresh, identically-seeded stack.
    pool = EnvRolloutPool("Pong", 1, steps_per_worker=6, seed=5, profile=True)
    system, engine, env, profiler = pool._make_worker_stack(0)
    service = pool._build_service(env)
    client = service.connect(system, engine, worker=system.worker,
                             profiler=profiler)
    restored = EnvRolloutDriver.restore(env, client, blob, profiler=profiler)
    assert restored.blocked and restored.now_us == snap_us
    _drive(restored, service)

    got = _env_signature(restored, profiler)
    # The fresh profiler only saw the post-snapshot tail of the run: the
    # reopened annotation plus everything after it.
    tail_ops = [op for op in expect[4] if op[2] > snap_us]
    assert got[4] == tail_ops
    assert got[:4] == expect[:4]


def _game_driver_stack(seed=9):
    """One self-play worker + shared service, built exactly as the pool would."""
    from repro.minigo.selfplay import GameDriver
    from repro.minigo.workers import SelfPlayPool

    pool = SelfPlayPool(num_workers=1, board_size=5, num_simulations=8,
                        games_per_worker=1, leaf_batch=2, batched_inference=True,
                        scheduler="event", seed=seed)
    pool.inference_service = pool._build_service()
    worker, profiler = pool._make_worker(0, None)
    return GameDriver(worker, 1), pool.inference_service, profiler


def _game_signature(driver, profiler):
    trace = profiler.finalize()
    ops = [(op.name, op.start_us, op.end_us, op.phase, op.metadata)
           for op in trace.operations]
    examples = [(e.features.tobytes(), e.policy_target.tobytes(), e.value_target)
                for e in driver.result.examples]
    return (examples, driver.result.moves, driver.result.black_wins,
            driver.worker.system.clock.now_us, ops)


def test_game_driver_snapshot_restore_roundtrip_mid_annotation():
    from repro.minigo.selfplay import GameDriver

    baseline_driver, baseline_service, baseline_profiler = _game_driver_stack()
    _drive(baseline_driver, baseline_service)
    expect = _game_signature(baseline_driver, baseline_profiler)

    first, first_service, _ = _game_driver_stack()
    _drive(first, first_service, stop_after_serves=5)
    assert first.blocked  # mid-move: tree-search + expand_leaf ops both open
    snap_us = first.now_us
    blob = first.snapshot()

    restored_driver, restored_service, profiler = _game_driver_stack()
    restored = GameDriver.restore(restored_driver.worker, blob)
    assert restored.blocked and restored.now_us == snap_us
    # The snapshot's RNG stream is adopted wholesale, and the search tree's
    # generator stays aliased to the worker's (one stream per worker).
    assert restored._mcts.rng is restored.worker.rng
    _drive(restored, restored_service)

    got = _game_signature(restored, profiler)
    tail_ops = [op for op in expect[4] if op[2] > snap_us]
    assert got[4] == tail_ops
    assert got[:4] == expect[:4]


def test_env_driver_snapshot_restores_served_ticket():
    # Snapshot *after* the serve but before the driver consumed the rows:
    # the restored ticket must come back already done, rows intact.
    driver, service, _ = _env_driver_stack()
    _drive(driver, service, stop_after_serves=2)
    service.serve_queued()
    assert driver._ticket is not None and driver._ticket.done
    blob = driver.snapshot()

    pool = EnvRolloutPool("Pong", 1, steps_per_worker=6, seed=5, profile=True)
    system, engine, env, profiler = pool._make_worker_stack(0)
    fresh_service = pool._build_service(env)
    client = fresh_service.connect(system, engine, worker=system.worker,
                                   profiler=profiler)
    restored = EnvRolloutDriver.restore(env, client, blob, profiler=profiler)
    assert restored._ticket is not None and restored._ticket.done
    assert not restored.blocked
    _drive(restored, fresh_service)
    assert restored.finished and restored.result.steps == 6
