"""Tests for the cross-stack event overlap computation (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.profiler.events import (
    CATEGORY_BACKEND,
    CATEGORY_CUDA_API,
    CATEGORY_GPU,
    CATEGORY_OPERATION,
    CATEGORY_PYTHON,
    CATEGORY_SIMULATOR,
    Event,
    EventTrace,
)
from repro.profiler.overlap import (
    RESOURCE_CPU,
    RESOURCE_CPU_GPU,
    RESOURCE_GPU,
    UNTRACKED,
    compute_overlap,
)


def _event(category, start, end, name=None, worker="worker_0"):
    return Event(category=category, name=name or category.lower(), start_us=start, end_us=end, worker=worker)


def paper_figure3_trace() -> EventTrace:
    """The worked example of Figure 3: nested operations with CPU and GPU events.

    mcts_tree_search spans [0, 4000); expand_leaf is nested in [1250, 3800).
    CPU is Python during tree search, Backend during expand_leaf; a GPU kernel
    overlaps part of expand_leaf.
    """
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_OPERATION, 0.0, 4000.0, "mcts_tree_search"))
    trace.add_event(_event(CATEGORY_OPERATION, 1250.0, 3800.0, "expand_leaf"))
    trace.add_event(_event(CATEGORY_PYTHON, 0.0, 1250.0))
    trace.add_event(_event(CATEGORY_BACKEND, 1250.0, 3800.0))
    trace.add_event(_event(CATEGORY_GPU, 2100.0, 3800.0, "sgemm"))
    trace.add_event(_event(CATEGORY_PYTHON, 3800.0, 4000.0))
    return trace


def test_figure3_example_scoping():
    overlap = compute_overlap(paper_figure3_trace())
    breakdown = overlap.full_breakdown()
    # Pure-Python time belongs to the outer operation.
    assert breakdown[("mcts_tree_search", CATEGORY_PYTHON, RESOURCE_CPU)] == pytest.approx(1250.0 + 200.0)
    # Backend-only and Backend+GPU time belongs to the nested operation.
    assert breakdown[("expand_leaf", CATEGORY_BACKEND, RESOURCE_CPU)] == pytest.approx(850.0)
    assert breakdown[("expand_leaf", CATEGORY_BACKEND, RESOURCE_CPU_GPU)] == pytest.approx(1700.0)
    # Total tracked time equals the outer operation's span.
    assert overlap.total_us() == pytest.approx(4000.0)


def test_gpu_time_and_category_times():
    overlap = compute_overlap(paper_figure3_trace())
    assert overlap.gpu_time_us() == pytest.approx(1700.0)
    assert overlap.category_time_us(CATEGORY_PYTHON) == pytest.approx(1450.0)
    assert overlap.category_time_us(CATEGORY_BACKEND) == pytest.approx(2550.0)
    assert overlap.resource_time_us(RESOURCE_CPU_GPU) == pytest.approx(1700.0)
    assert overlap.operations() == ["expand_leaf", "mcts_tree_search"]


def test_cuda_priority_over_backend():
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_OPERATION, 0, 100, "backpropagation"))
    trace.add_event(_event(CATEGORY_BACKEND, 0, 100))
    trace.add_event(_event(CATEGORY_CUDA_API, 20, 50))
    breakdown = compute_overlap(trace).category_breakdown()
    assert breakdown["backpropagation"][CATEGORY_CUDA_API] == pytest.approx(30.0)
    assert breakdown["backpropagation"][CATEGORY_BACKEND] == pytest.approx(70.0)


def test_gpu_only_region_labelled_gpu():
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_OPERATION, 0, 100, "inference"))
    trace.add_event(_event(CATEGORY_BACKEND, 0, 40))
    trace.add_event(_event(CATEGORY_GPU, 60, 90))
    breakdown = compute_overlap(trace).category_breakdown()
    assert breakdown["inference"][CATEGORY_GPU] == pytest.approx(30.0)
    resources = compute_overlap(trace).resource_breakdown()
    assert resources["inference"][RESOURCE_GPU] == pytest.approx(30.0)
    assert resources["inference"][RESOURCE_CPU] == pytest.approx(40.0)


def test_events_outside_operations_are_untracked():
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_SIMULATOR, 0, 50))
    trace.add_event(_event(CATEGORY_OPERATION, 100, 200, "simulation"))
    trace.add_event(_event(CATEGORY_SIMULATOR, 100, 200))
    overlap = compute_overlap(trace)
    assert overlap.total_us(include_untracked=False) == pytest.approx(100.0)
    assert overlap.total_us(include_untracked=True) == pytest.approx(150.0)
    assert (UNTRACKED, frozenset({CATEGORY_SIMULATOR})) in overlap.regions


def test_multi_worker_traces_are_independent():
    trace = EventTrace()
    for worker in ("w0", "w1"):
        trace.add_event(_event(CATEGORY_OPERATION, 0, 100, "inference", worker))
        trace.add_event(_event(CATEGORY_BACKEND, 0, 100, None, worker))
    overlap = compute_overlap(trace)
    # Two workers each contribute 100us of backend time.
    assert overlap.total_us() == pytest.approx(200.0)


def test_empty_trace_gives_empty_result():
    overlap = compute_overlap(EventTrace())
    assert overlap.regions == {}
    assert overlap.total_us() == 0.0
    assert overlap.gpu_time_us() == 0.0


@st.composite
def cpu_gpu_trace(draw):
    """Random trace: one operation covering everything, random CPU/GPU events inside."""
    op_end = draw(st.floats(min_value=100, max_value=10_000))
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_OPERATION, 0.0, op_end, "op"))
    n_events = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_events):
        start = draw(st.floats(min_value=0, max_value=op_end - 1))
        duration = draw(st.floats(min_value=0.1, max_value=op_end - start))
        category = draw(st.sampled_from([CATEGORY_PYTHON, CATEGORY_BACKEND, CATEGORY_SIMULATOR,
                                         CATEGORY_CUDA_API, CATEGORY_GPU]))
        trace.add_event(_event(category, start, start + duration))
    return trace


@settings(max_examples=60, deadline=None)
@given(cpu_gpu_trace())
def test_overlap_invariants(trace):
    """Property: regions are a partition of the covered span of the operation."""
    overlap = compute_overlap(trace)
    total = overlap.total_us()
    op_span = trace.operations[0].duration_us
    # Regions never exceed the covering operation's span and are non-negative.
    assert total <= op_span + 1e-6
    assert all(duration >= 0 for duration in overlap.regions.values())
    # The category breakdown and the resource breakdown both re-partition the
    # same regions, so their totals agree.
    cat_total = sum(sum(c.values()) for c in overlap.category_breakdown(include_untracked=True).values())
    res_total = sum(sum(r.values()) for r in overlap.resource_breakdown(include_untracked=True).values())
    assert cat_total == pytest.approx(res_total, rel=1e-9, abs=1e-6)
    assert cat_total == pytest.approx(total, rel=1e-9, abs=1e-6)
    # GPU time is the sum of GPU-involving resource classes.
    assert overlap.gpu_time_us() == pytest.approx(
        overlap.resource_time_us(RESOURCE_GPU) + overlap.resource_time_us(RESOURCE_CPU_GPU),
        rel=1e-9, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1000), st.floats(1, 500)), min_size=1, max_size=8))
def test_union_of_single_category_equals_interval_union(intervals):
    """With a single CPU category, total tracked time equals the union of the intervals."""
    trace = EventTrace()
    trace.add_event(_event(CATEGORY_OPERATION, 0.0, 2000.0, "op"))
    merged = []
    for start, duration in intervals:
        end = min(start + duration, 2000.0)
        trace.add_event(_event(CATEGORY_PYTHON, start, end))
        merged.append((start, end))
    merged.sort()
    union = 0.0
    current_start, current_end = None, None
    for start, end in merged:
        if current_start is None:
            current_start, current_end = start, end
        elif start <= current_end:
            current_end = max(current_end, end)
        else:
            union += current_end - current_start
            current_start, current_end = start, end
    if current_start is not None:
        union += current_end - current_start
    overlap = compute_overlap(trace)
    assert overlap.total_us() == pytest.approx(union, rel=1e-9, abs=1e-6)


# ------------------------------------------------- duplicate identical annotations
def test_duplicate_identical_operations_keep_innermost_attribution(tmp_path):
    """Two identical annotations active at once must not corrupt eviction.

    ``_accumulate_worker`` used to evict finished operations by dataclass
    equality, which can drop the wrong instance when duplicate identical
    annotations (same name/start/end) are active.  Eviction is now by
    identity; single-pass and map-reduce results must agree bit-for-bit.
    """
    from repro.tracedb import StreamingTraceWriter, TraceDB, parallel_overlap

    trace = EventTrace()
    workers = ("w0", "w1")
    for worker in workers:
        # Two *distinct instances* with identical fields, nested inside each
        # other, plus a later-starting inner operation.
        trace.operations.append(Event(CATEGORY_OPERATION, "step", 0.0, 100.0, worker=worker))
        trace.operations.append(Event(CATEGORY_OPERATION, "step", 0.0, 100.0, worker=worker))
        trace.operations.append(Event(CATEGORY_OPERATION, "inner", 40.0, 60.0, worker=worker))
        trace.events.append(Event(CATEGORY_PYTHON, "python", 0.0, 100.0, worker=worker))

    single = compute_overlap(trace)
    python = frozenset({CATEGORY_PYTHON})
    # [0,40) and [60,100) belong to "step", [40,60) to the innermost "inner".
    assert single.regions[("step", python)] == pytest.approx(80.0 * len(workers))
    assert single.regions[("inner", python)] == pytest.approx(20.0 * len(workers))

    writer = StreamingTraceWriter(str(tmp_path))
    for worker in workers:
        shard = writer.shard(worker)
        for op in trace.operations:
            if op.worker == worker:
                shard.add_operation(op)
        for event in trace.events:
            if event.worker == worker:
                shard.add_event(event)
        writer.close_shard(worker)
    writer.close()
    mapreduce = parallel_overlap(TraceDB(str(tmp_path)))
    assert mapreduce.regions == single.regions  # bit-for-bit, not approx


def test_operation_event_metadata_does_not_change_overlap():
    """Attribution metadata rides on operation events without affecting regions."""
    plain = EventTrace()
    tagged = EventTrace()
    for trace, metadata in ((plain, None), (tagged, {"batch_rows": 16, "rows": 4})):
        trace.add_event(Event(CATEGORY_OPERATION, "expand_leaf", 0.0, 50.0, metadata=metadata))
        trace.add_event(Event(CATEGORY_PYTHON, "python", 0.0, 50.0))
    assert compute_overlap(plain).regions == compute_overlap(tagged).regions


# ------------------------------------------- vectorized sweep byte-identity
def _regions_bits(result):
    """Key order plus exact float bits — stricter than dict equality."""
    return [(operation, tuple(sorted(categories)), duration.hex())
            for (operation, categories), duration in result.regions.items()]


def _compute_with(vectorized: bool, trace, **kwargs):
    from repro.profiler import overlap as overlap_mod

    saved = overlap_mod.USE_VECTORIZED_ACCUMULATE
    overlap_mod.USE_VECTORIZED_ACCUMULATE = vectorized
    try:
        return compute_overlap(trace, **kwargs)
    finally:
        overlap_mod.USE_VECTORIZED_ACCUMULATE = saved


@st.composite
def fuzz_traces(draw):
    """Random multi-worker traces: messy floats, ties, zero-length intervals,
    duplicate operations, improper nesting — everything the sweep must survive."""
    trace = EventTrace()
    point = st.one_of(st.floats(0.0, 500.0, allow_nan=False),
                      st.integers(0, 50).map(float))
    categories = st.sampled_from([CATEGORY_PYTHON, CATEGORY_SIMULATOR,
                                  CATEGORY_BACKEND, CATEGORY_CUDA_API, CATEGORY_GPU])
    for worker in draw(st.sampled_from([("w0",), ("w0", "w1")])):
        for _ in range(draw(st.integers(0, 10))):
            start = draw(point)
            end = start + draw(st.one_of(st.just(0.0), st.floats(0.0, 120.0, allow_nan=False)))
            trace.add_event(Event(draw(categories), "e", start, end, worker=worker))
        for _ in range(draw(st.integers(0, 5))):
            start = draw(point)
            end = start + draw(st.floats(0.0, 200.0, allow_nan=False))
            name = draw(st.sampled_from(["op_a", "op_b", "op_c"]))
            trace.add_event(Event(CATEGORY_OPERATION, name, start, end, worker=worker))
    return trace


@settings(max_examples=120, deadline=None)
@given(trace=fuzz_traces())
def test_vectorized_accumulate_is_byte_identical_to_loop(trace):
    loop = _compute_with(False, trace)
    vectorized = _compute_with(True, trace)
    assert _regions_bits(vectorized) == _regions_bits(loop)


@settings(max_examples=60, deadline=None)
@given(trace=fuzz_traces())
def test_vectorized_per_worker_merge_matches_single_pass(trace):
    """Map-reduce equivalence holds under the vectorized sweep too."""
    from repro.profiler.overlap import OverlapResult

    merged = OverlapResult.merge(
        _compute_with(True, trace, workers=[worker]) for worker in trace.workers())
    assert _regions_bits(merged) == _regions_bits(_compute_with(True, trace))


def test_vectorized_handles_nesting_ties_and_duplicate_ops():
    """Deterministic cover of the tricky cases: same-start ops (trace-order
    tie-break), duplicate identical annotations, op-only segments, and
    improperly nested operations."""
    trace = EventTrace()
    trace.add_event(Event(CATEGORY_OPERATION, "outer", 0.0, 100.0))
    trace.add_event(Event(CATEGORY_OPERATION, "tied", 0.0, 50.0))      # same start as outer
    trace.add_event(Event(CATEGORY_OPERATION, "dup", 10.0, 30.0))
    trace.add_event(Event(CATEGORY_OPERATION, "dup", 10.0, 30.0))      # identical duplicate
    trace.add_event(Event(CATEGORY_OPERATION, "straddle", 40.0, 80.0))  # improper nesting
    trace.add_event(Event(CATEGORY_PYTHON, "python", 0.0, 60.0))
    trace.add_event(Event(CATEGORY_GPU, "kernel", 70.0, 90.0))         # gap 60-70: op-only
    loop = _compute_with(False, trace)
    vectorized = _compute_with(True, trace)
    assert _regions_bits(vectorized) == _regions_bits(loop)
    python = frozenset({CATEGORY_PYTHON})
    assert vectorized.regions[("dup", python)] == pytest.approx(20.0)
    # "tied" starts with "outer" but appears later in trace order, so the
    # tie-break (first of equal starts) hands every segment to "outer".
    assert ("tied", python) not in vectorized.regions
    assert vectorized.regions[("outer", python)] == pytest.approx(10.0 + 10.0)
    assert vectorized.regions[("straddle", python)] == pytest.approx(20.0)
    assert vectorized.regions[("straddle", frozenset({CATEGORY_GPU}))] == pytest.approx(10.0)
    assert vectorized.regions[("outer", frozenset({CATEGORY_GPU}))] == pytest.approx(10.0)  # 80-90
