"""Tests for the simulated GPU device and the nvidia-smi utilization sampler."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.costmodel import CostModel, CostModelConfig
from repro.hw.gpu import GPUDevice
from repro.hw.nvidia_smi import sample_utilization


@pytest.fixture
def device() -> GPUDevice:
    return GPUDevice(cost_model=CostModel(CostModelConfig(jitter=0.0)))


def test_kernel_starts_after_launch_completes(device):
    activity = device.launch_kernel("k", flops=0, bytes_accessed=0, launch_complete_us=100.0)
    assert activity.start_us == pytest.approx(100.0)
    assert activity.end_us > activity.start_us


def test_same_stream_kernels_serialize(device):
    first = device.launch_kernel("k1", flops=1e6, bytes_accessed=0, launch_complete_us=0.0)
    second = device.launch_kernel("k2", flops=1e6, bytes_accessed=0, launch_complete_us=0.0)
    assert second.start_us == pytest.approx(first.end_us)


def test_different_streams_run_concurrently(device):
    first = device.launch_kernel("k1", flops=1e6, bytes_accessed=0, launch_complete_us=0.0, stream=0)
    second = device.launch_kernel("k2", flops=1e6, bytes_accessed=0, launch_complete_us=0.0, stream=1)
    assert second.start_us == pytest.approx(first.start_us)


def test_memcpy_uses_copy_stream(device):
    kernel = device.launch_kernel("k", flops=1e7, bytes_accessed=0, launch_complete_us=0.0)
    copy = device.enqueue_memcpy("HtoD", num_bytes=1e6, launch_complete_us=0.0)
    assert copy.kind == "memcpy"
    assert copy.start_us < kernel.end_us  # not serialized behind the kernel


def test_invalid_memcpy_direction_rejected(device):
    with pytest.raises(ValueError):
        device.enqueue_memcpy("sideways", num_bytes=10, launch_complete_us=0.0)


def test_synchronize_waits_for_device(device):
    activity = device.launch_kernel("k", flops=1e8, bytes_accessed=0, launch_complete_us=0.0)
    assert device.synchronize(now_us=0.0) == pytest.approx(activity.end_us)
    assert device.synchronize(now_us=activity.end_us + 50.0) == pytest.approx(activity.end_us + 50.0)
    assert device.device_free_time() == pytest.approx(activity.end_us)


def test_busy_time_merges_overlapping_intervals(device):
    device.launch_kernel("a", flops=1e6, bytes_accessed=0, launch_complete_us=0.0, stream=0)
    device.launch_kernel("b", flops=1e6, bytes_accessed=0, launch_complete_us=0.0, stream=1)
    single = device.kernels()[0].duration_us
    assert device.busy_time_us() == pytest.approx(single, rel=1e-6)


def test_reset_clears_state(device):
    device.launch_kernel("a", flops=1, bytes_accessed=1, launch_complete_us=0.0)
    device.reset()
    assert device.activity == []
    assert device.device_free_time() == 0.0


@given(st.lists(st.tuples(st.floats(0, 1e5), st.floats(1, 1e7)), min_size=1, max_size=30))
def test_busy_time_never_exceeds_span(launches):
    device = GPUDevice(cost_model=CostModel(CostModelConfig(jitter=0.0)))
    for launch_time, flops in launches:
        device.launch_kernel("k", flops=flops, bytes_accessed=0.0, launch_complete_us=launch_time)
    span = max(a.end_us for a in device.activity) - min(a.start_us for a in device.activity)
    busy = device.busy_time_us()
    assert busy <= span + 1e-6
    assert busy > 0


# --------------------------------------------------------------- nvidia-smi
def test_utilization_saturates_with_tiny_scattered_kernels(device):
    # One 10us kernel every 100ms over 2 seconds of wall-clock.
    for i in range(20):
        device.launch_kernel("tiny", flops=0, bytes_accessed=0, launch_complete_us=i * 100_000.0)
    report = sample_utilization(device, window_start_us=0.0, window_end_us=2_000_000.0,
                                sample_period_us=250_000.0)
    assert report.reported_utilization_pct == pytest.approx(100.0)
    assert report.true_busy_pct < 1.0


def test_utilization_zero_without_kernels(device):
    report = sample_utilization(device, window_start_us=0.0, window_end_us=1_000_000.0)
    assert report.reported_utilization_pct == 0.0
    assert report.true_busy_pct == 0.0


def test_utilization_rejects_bad_period(device):
    with pytest.raises(ValueError):
        sample_utilization(device, sample_period_us=0.0)


def test_utilization_counts_each_period_once(device):
    device.launch_kernel("k", flops=1e9, bytes_accessed=0, launch_complete_us=0.0)
    report = sample_utilization(device, window_start_us=0.0, window_end_us=500_000.0,
                                sample_period_us=100_000.0)
    assert len(report.samples) == 5
    assert sum(s.utilized for s in report.samples) >= 1
