"""Oracle tests: the incremental Go engine vs the preserved reference engine.

The optimized :class:`repro.sim.go.GoBoard` replaces flood-fill-per-query
with incrementally-maintained group/liberty maps and an incremental Zobrist
hash.  These tests pin it against the verbatim pre-optimization
implementation (:mod:`repro.sim.go_reference`):

* hundreds of seeded random 9x9 games with *identical* legal-move sets,
  captures, ko verdicts, board arrays and final scores at every step;
* a hypothesis property test that replays dense random games and checks the
  incremental liberty bookkeeping against a from-scratch flood fill after
  every move — capture cascades included;
* Zobrist consistency (incremental == recomputed, repeats collide);
* determinism of the lazily-materialized MCTS child positions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.go import BLACK, EMPTY, WHITE, GoBoard, GoPosition
from repro.sim.go_reference import ReferenceGoBoard, ReferenceGoPosition

#: The acceptance bar: at least this many full 9x9 oracle games.
ORACLE_GAMES = 200
ORACLE_BOARD_SIZE = 9
#: Chance of passing per move: high enough that games end by double-pass in
#: a few dozen moves (keeping 200 games fast), low enough that boards get
#: crowded and captures/ko fights actually happen.
ORACLE_PASS_PROBABILITY = 0.15


def _random_playout(board_new: GoBoard, board_ref: ReferenceGoBoard,
                    rng: np.random.Generator):
    """Play one full random game on both boards, asserting parity per move."""
    to_play = BLACK
    passes = 0
    moves = 0
    max_moves = 2 * board_new.size * board_new.size
    while passes < 2 and moves < max_moves:
        legal_new = board_new.legal_moves(to_play)
        legal_ref = board_ref.legal_moves(to_play)
        assert legal_new == legal_ref, \
            f"legal-move sets diverged at move {moves}: {set(legal_new) ^ set(legal_ref)}"
        assert board_new.ko_point == board_ref.ko_point, \
            f"ko verdicts diverged at move {moves}"

        board_moves = legal_new[:-1]  # strip the trailing pass
        if not board_moves or rng.random() < ORACLE_PASS_PROBABILITY:
            move = None
        else:
            move = board_moves[rng.integers(0, len(board_moves))]
        captured_new = board_new.play(move, to_play)
        captured_ref = board_ref.play(move, to_play)
        assert sorted(captured_new) == sorted(captured_ref), \
            f"captures diverged at move {moves}"
        assert np.array_equal(board_new.board, board_ref.board)
        passes = passes + 1 if move is None else 0
        moves += 1
        to_play = -to_play
    assert board_new.area_score() == board_ref.area_score()
    assert board_new.zobrist == board_new.zobrist_from_scratch()
    # Group/liberty parity over the final position, stone by stone.
    for row in range(board_new.size):
        for col in range(board_new.size):
            if board_new.board[row, col] != EMPTY:
                assert board_new.group_and_liberties(row, col) == \
                    board_ref.group_and_liberties(row, col)
    return moves


def test_random_game_oracle_200_full_9x9_games():
    """>=200 seeded random 9x9 games: the two engines never disagree."""
    rng = np.random.default_rng(20260728)
    total_moves = 0
    for _ in range(ORACLE_GAMES):
        total_moves += _random_playout(
            GoBoard(ORACLE_BOARD_SIZE), ReferenceGoBoard(ORACLE_BOARD_SIZE), rng)
    assert total_moves > ORACLE_GAMES * 5  # games actually got played


def test_multi_group_capture_cascade_matches_reference():
    """One move capturing several separate groups at once."""
    def setup(board_cls):
        board = board_cls(5)
        for point in [(0, 2), (1, 1), (2, 0)]:
            board.play(point, BLACK)
        for point in [(0, 1), (1, 0)]:
            board.play(point, WHITE)
        return board

    new, ref = setup(GoBoard), setup(ReferenceGoBoard)
    captured_new = new.play((0, 0), BLACK)   # captures both white stones
    captured_ref = ref.play((0, 0), BLACK)
    assert sorted(captured_new) == sorted(captured_ref) == [(0, 1), (1, 0)]
    assert new.ko_point is None  # two captures -> no simple ko
    assert np.array_equal(new.board, ref.board)
    # The capturing group gained the captured points back as liberties.
    _, liberties = new.group_and_liberties(0, 0)
    assert {(0, 1), (1, 0)} <= liberties
    assert new.zobrist == new.zobrist_from_scratch()


def _flood_group(board: np.ndarray, row: int, col: int):
    """From-scratch flood fill: the oracle for the incremental maps."""
    size = board.shape[0]
    color = board[row, col]
    group, liberties = set(), set()
    frontier = [(row, col)]
    while frontier:
        r, c = frontier.pop()
        if (r, c) in group:
            continue
        group.add((r, c))
        for nr, nc in ((r + 1, c), (r - 1, c), (r, c + 1), (r, c - 1)):
            if not (0 <= nr < size and 0 <= nc < size):
                continue
            if board[nr, nc] == EMPTY:
                liberties.add((nr, nc))
            elif board[nr, nc] == color and (nr, nc) not in group:
                frontier.append((nr, nc))
    return group, liberties


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_incremental_liberty_bookkeeping_survives_capture_cascades(seed):
    """Property: after every move of a dense random game, every group's
    incremental (stones, liberties) record equals a from-scratch flood fill.

    The game is played nearly pass-free on a small board, so stones crowd,
    groups merge, and capture cascades (multi-stone and multi-group
    removals) happen constantly — exactly the paths that mutate the
    incremental maps.
    """
    rng = np.random.default_rng(seed)
    board = GoBoard(5)
    to_play = BLACK
    captures_seen = 0
    for _ in range(40):
        moves = board.legal_moves(to_play, include_pass=False)
        if not moves:
            break
        captures_seen += len(board.play(moves[rng.integers(0, len(moves))], to_play))
        # Every stone's group record must match the flood-fill oracle.
        seen = set()
        for row in range(5):
            for col in range(5):
                if board.board[row, col] == EMPTY or (row, col) in seen:
                    continue
                group, liberties = board.group_and_liberties(row, col)
                assert (group, liberties) == _flood_group(board.board, row, col)
                assert all(board.board[p] == board.board[row, col] for p in group)
                assert liberties, "no group on the board may have zero liberties"
                seen |= group
        assert board.zobrist == board.zobrist_from_scratch()
        to_play = -to_play


# ---------------------------------------------------------------- Zobrist
def test_zobrist_incremental_matches_scratch_and_detects_repeats():
    board = GoBoard(5)
    empty_hash = board.zobrist
    board.play((1, 1), BLACK)
    after_stone = board.zobrist
    assert after_stone != empty_hash
    assert after_stone == board.zobrist_from_scratch()

    # Capture removes the stone's key again: surround and take.
    for point in [(0, 1), (2, 1), (1, 0)]:
        board.play(point, WHITE)
    board.play((1, 2), WHITE)  # captures (1, 1)
    assert board.zobrist == board.zobrist_from_scratch()
    assert board.board[1, 1] == EMPTY

    # Re-playing the identical stone layout reproduces the identical hash.
    replay = GoBoard(5)
    for point in [(0, 1), (2, 1), (1, 0), (1, 2)]:
        replay.play(point, WHITE)
    assert replay.zobrist == board.zobrist

    # position_key distinguishes side-to-move and ko state on equal stones.
    assert board.position_key(BLACK) != board.position_key(WHITE)
    assert board.position_key(BLACK, ko_point=(1, 1)) != board.position_key(BLACK)


def test_copy_isolates_incremental_state():
    board = GoBoard(5)
    board.play((2, 2), BLACK)
    fork = board.copy()
    fork.play((2, 3), WHITE)
    fork.play((1, 2), WHITE)
    assert board.board[2, 3] == EMPTY and board.board[1, 2] == EMPTY
    assert board.group_and_liberties(2, 2)[1] == _flood_group(board.board, 2, 2)[1]
    assert fork.group_and_liberties(2, 2)[1] == _flood_group(fork.board, 2, 2)[1]
    assert board.zobrist == board.zobrist_from_scratch()
    assert fork.zobrist == fork.zobrist_from_scratch()


# ----------------------------------------------------- position-level caching
def test_position_caches_are_stable_and_correct():
    position = GoPosition.initial(5)
    reference = ReferenceGoPosition.initial(5)
    assert position.legal_moves() == reference.legal_moves()
    assert position.legal_moves() is position.legal_moves()  # cached
    assert np.array_equal(position.features(), reference.features())
    assert position.features() is position.features()        # cached
    nxt = position.play((2, 2))
    ref_next = reference.play((2, 2))
    assert nxt.legal_moves() == ref_next.legal_moves()
    assert np.array_equal(nxt.features(), ref_next.features())
    assert nxt.transposition_key() != position.transposition_key()
    # index arithmetic parity
    for index in range(26):
        assert position.index_to_move(index) == reference.index_to_move(index)
    for move in position.legal_moves():
        assert position.move_to_index(move) == reference.move_to_index(move)


# ------------------------------------------------------- lazy MCTS positions
def _uniform_evaluator(num_moves):
    def evaluate(features):
        batch = features.shape[0]
        priors = np.full((batch, num_moves), 1.0 / num_moves, dtype=np.float32)
        return priors, np.zeros(batch, dtype=np.float32)
    return evaluate


def test_lazy_child_positions_match_eager_search():
    """Lazy materialization changes no search decision and skips most boards."""
    from repro.minigo.mcts import MCTS

    def run_search():
        mcts = MCTS(_uniform_evaluator(26), num_simulations=24, leaf_batch=4,
                    rng=np.random.default_rng(11))
        return mcts.search(GoPosition.initial(5))

    lazy_root = run_search()
    assert MCTS.eager_child_positions is False
    try:
        MCTS.eager_child_positions = True
        eager_root = run_search()
    finally:
        MCTS.eager_child_positions = False

    def visits(node):
        return sorted((index, child.visit_count) for index, child in node.children.items())
    assert visits(lazy_root) == visits(eager_root)

    # Most children were never visited, so they never built a board...
    materialized = sum(child.has_position for child in lazy_root.children.values())
    assert materialized < len(lazy_root.children)
    assert all(child.has_position for child in eager_root.children.values())
    # ...and materializing one on demand reproduces the eager board exactly.
    index, lazy_child = next((i, c) for i, c in sorted(lazy_root.children.items())
                             if not c.has_position)
    assert np.array_equal(lazy_child.position.board.board,
                          eager_root.children[index].position.board.board)
    assert lazy_child.position.to_play == eager_root.children[index].position.to_play
