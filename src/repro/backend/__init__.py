"""Miniature ML backend: tensors, ops, autodiff, engines, layers, optimizers.

This package plays the role of TensorFlow / PyTorch in the reproduction: it
executes real numpy computations while charging the virtual clock for backend
dispatch, CUDA API calls and GPU kernels, and it exposes the Graph /
Autograph / Eager execution models whose differences drive the paper's
framework study (Section 4.1).
"""

from . import functional
from .autodiff import Tape, apply_op, current_tape, numeric_gradient
from .autograph import AutographEngine
from .context import clear_engines, current_engine, maybe_current_engine, set_default_engine, use_engine
from .eager import EagerEngine, PyTorchEagerEngine
from .engine import BackendEngine, BoundaryListener, CompiledFunction, NULL_BOUNDARY
from .graph import GraphEngine, GraphInfo
from .layers import MLP, Dense, Module, hard_update, soft_update
from .ops import OPS, OpDef, get_op
from .optimizers import SGD, Adam, MPIAdam, Optimizer
from .tensor import Parameter, Tensor, assign_flat_params, flatten_params, parameter_count

__all__ = [
    "functional",
    "Tape",
    "apply_op",
    "current_tape",
    "numeric_gradient",
    "AutographEngine",
    "clear_engines",
    "current_engine",
    "maybe_current_engine",
    "set_default_engine",
    "use_engine",
    "EagerEngine",
    "PyTorchEagerEngine",
    "BackendEngine",
    "BoundaryListener",
    "CompiledFunction",
    "NULL_BOUNDARY",
    "GraphEngine",
    "GraphInfo",
    "MLP",
    "Dense",
    "Module",
    "hard_update",
    "soft_update",
    "OPS",
    "OpDef",
    "get_op",
    "SGD",
    "Adam",
    "MPIAdam",
    "Optimizer",
    "Parameter",
    "Tensor",
    "assign_flat_params",
    "flatten_params",
    "parameter_count",
]
