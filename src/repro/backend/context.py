"""Execution context: which backend engine is "current".

Algorithm code uses the functional API (:mod:`repro.backend.functional`)
without passing an engine around; the framework adapter activates its engine
for the duration of the workload, mirroring how a real script implicitly uses
whichever ML backend it imported.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import BackendEngine

_ENGINE_STACK: List["BackendEngine"] = []


def current_engine() -> "BackendEngine":
    """Return the active engine; raises if none has been activated."""
    if not _ENGINE_STACK:
        raise RuntimeError(
            "no backend engine is active; wrap workload code in `with use_engine(engine):` "
            "or call set_default_engine(engine)"
        )
    return _ENGINE_STACK[-1]


def maybe_current_engine() -> Optional["BackendEngine"]:
    """Return the active engine or ``None``."""
    return _ENGINE_STACK[-1] if _ENGINE_STACK else None


def set_default_engine(engine: "BackendEngine") -> None:
    """Install ``engine`` at the bottom of the stack (replacing any default)."""
    if _ENGINE_STACK:
        _ENGINE_STACK[0] = engine
    else:
        _ENGINE_STACK.append(engine)


def clear_engines() -> None:
    """Remove all active engines (used by tests and workload teardown)."""
    _ENGINE_STACK.clear()


@contextmanager
def use_engine(engine: "BackendEngine") -> Iterator["BackendEngine"]:
    """Activate ``engine`` for the duration of the block."""
    _ENGINE_STACK.append(engine)
    try:
        yield engine
    finally:
        _ENGINE_STACK.pop()
