"""Tape-based reverse-mode automatic differentiation.

The tape records every primitive op applied to :class:`~repro.backend.tensor.Tensor`
values while it is active.  ``Tape.gradient`` walks the records in reverse,
computing vector-Jacobian products numerically and charging the backend
engine for the corresponding gradient ops (dispatch + kernels), inside a
single native call — matching how ``loss.backward()`` /
``GradientTape.gradient`` execute in the real backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .context import current_engine
from .ops import get_op
from .tensor import Tensor

_TAPE_STACK: List["Tape"] = []


def current_tape() -> Optional["Tape"]:
    """The innermost active tape, or None when no tape is recording."""
    return _TAPE_STACK[-1] if _TAPE_STACK else None


@dataclass
class TapeEntry:
    """One recorded op application."""

    op_name: str
    inputs: List[Tensor]
    output: Tensor
    attrs: Mapping[str, object]


class Tape:
    """Records op applications for reverse-mode differentiation."""

    def __init__(self) -> None:
        self.entries: List[TapeEntry] = []
        self._watched: set[int] = set()
        self._produced: set[int] = set()

    # --------------------------------------------------------------- context
    def __enter__(self) -> "Tape":
        _TAPE_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = _TAPE_STACK.pop()
        assert popped is self, "tape stack corrupted"

    # -------------------------------------------------------------- recording
    def watch(self, tensor: Tensor) -> None:
        """Force gradient tracking through ``tensor`` even if it does not require grad."""
        self._watched.add(tensor.id)

    def record(self, op_name: str, inputs: Sequence[Tensor], output: Tensor, attrs: Mapping[str, object]) -> None:
        self.entries.append(TapeEntry(op_name=op_name, inputs=list(inputs), output=output, attrs=attrs))
        self._produced.add(output.id)

    # --------------------------------------------------------------- backward
    def gradient(
        self,
        loss: Tensor,
        sources: Sequence[Tensor],
        *,
        call_name: str = "backward",
    ) -> List[np.ndarray]:
        """Gradients of ``loss`` with respect to each tensor in ``sources``.

        Tensors not on the path from sources to the loss get zero gradients.
        """
        engine = current_engine()
        grads: Dict[int, np.ndarray] = {loss.id: np.ones_like(loss.data)}
        with engine.native_scope(call_name):
            for entry in reversed(self.entries):
                out_grad = grads.get(entry.output.id)
                if out_grad is None:
                    continue
                opdef = get_op(entry.op_name)
                input_arrays = [t.data for t in entry.inputs]
                engine.account_op(
                    f"grad_{entry.op_name}",
                    opdef.backward_kernels(input_arrays, entry.output.data, entry.attrs),
                )
                input_grads = opdef.vjp(input_arrays, entry.output.data, out_grad, entry.attrs)
                for tensor, grad in zip(entry.inputs, input_grads):
                    if grad is None:
                        continue
                    grad = np.asarray(grad, dtype=np.float32)
                    if tensor.id in grads:
                        grads[tensor.id] = grads[tensor.id] + grad
                    else:
                        grads[tensor.id] = grad
        return [grads.get(src.id, np.zeros_like(src.data)) for src in sources]


def apply_op(
    op_name: str,
    inputs: Sequence[Union[Tensor, np.ndarray, float]],
    attrs: Optional[Mapping[str, object]] = None,
    *,
    name: Optional[str] = None,
) -> Tensor:
    """Apply a primitive op to tensors under the current engine (and tape)."""
    engine = current_engine()
    attrs = dict(attrs or {})
    tensors = [value if isinstance(value, Tensor) else Tensor(value) for value in inputs]
    arrays = [t.data for t in tensors]
    output_data = engine.apply(op_name, arrays, attrs)
    requires_grad = any(t.requires_grad for t in tensors) and op_name != "stop_gradient"
    output = Tensor(output_data, requires_grad=requires_grad, name=name)
    tape = current_tape()
    if tape is not None and op_name != "stop_gradient":
        # Record whenever any input is tracked so chained expressions stay connected.
        if any(t.requires_grad or t.id in tape._watched for t in tensors) or any(
            t.id in tape._produced for t in tensors
        ):
            tape.record(op_name, tensors, output, attrs)
    return output


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` (used in tests)."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x.astype(np.float32))
        flat[i] = orig - eps
        lo = fn(x.astype(np.float32))
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad
