"""Autograph execution engine (TensorFlow 2.x ``tf.function``).

Autograph converts Python control flow into in-graph operators, so a single
compiled-function call can cover an entire inner loop (for example tf-agents'
in-graph data-collection driver).  That is what collapses the
Python -> Backend transition count in Figure 4c/4d (finding F.2).

Two empirically-observed TensorFlow behaviours from the paper are modelled
explicitly:

* **F.6 — inference dispatch anomaly.**  Ops executed inside Autograph
  *inference* functions run with inflated backend dispatch time relative to
  Graph mode even though the transition count is lower.  Framework adapters
  mark inference functions with ``inflate_dispatch=True``.
* **F.5 — per-call prologue.**  Each call into a ``tf.function`` pays a
  Python-side prologue (``tf.nest`` flattening, signature matching).  When
  the in-graph data-collection loop is entered every 100 simulator steps
  (DDPG's ``train_freq``) instead of every 1000 (TD3's), that prologue is
  amortized 10x worse and shows up as inflated Python time in simulation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..system import System
from .engine import BackendEngine, CompiledFunction


class AutographEngine(BackendEngine):
    """TensorFlow 2.x Autograph execution (tf-agents style)."""

    kind = "autograph"
    wraps_each_op = False
    fuses_linear = False

    #: Python-side prologue of one tf.function call, in python units.
    CALL_PROLOGUE_UNITS = 45.0
    #: Extra Python marshalling (``tf.nest`` flattening, spec checks) paid the
    #: first time a compiled in-graph loop escapes back to Python after being
    #: (re-)entered.  Amortised over ``train_freq`` simulator steps, this is
    #: the mechanism behind the F.5 simulation-Python inflation.
    PYFUNC_FIRST_ESCAPE_UNITS = 700.0

    def __init__(self, system: System, *, flavor: str = "tensorflow", name: Optional[str] = None) -> None:
        super().__init__(system, flavor=flavor, name=name)
        self._pending_first_escape = False

    def note_function_entry(self) -> None:
        """Called by compiled functions when a tf.function call starts."""
        self._pending_first_escape = True

    def _after_escape_to_python(self) -> None:
        if self._pending_first_escape:
            self._pending_first_escape = False
            self.system.cpu_work(self.PYFUNC_FIRST_ESCAPE_UNITS)

    def function(
        self,
        fn: Callable,
        *,
        name: str = "tf_function",
        inflate_dispatch: bool = False,
        prologue_units: Optional[float] = None,
        **kwargs,
    ) -> CompiledFunction:
        """Wrap ``fn`` as an Autograph-compiled ``tf.function``."""
        del kwargs
        inflation = (
            self.system.cost_model.config.autograph_dispatch_inflation if inflate_dispatch else 1.0
        )
        return CompiledFunction(
            self,
            fn,
            name=name,
            prologue_python_units=self.CALL_PROLOGUE_UNITS if prologue_units is None else prologue_units,
            dispatch_inflation=inflation,
            wrap_native=True,
        )

    def py_function(self, fn: Callable, *args, **kwargs):
        """Call back into Python (and from there into e.g. a simulator).

        Mirrors ``tf.py_function`` / ``EagerPyFunc``: the backend yields the
        native boundary so that the callee's time is not attributed to the
        backend.
        """
        with self.python_escape("py_function"):
            return fn(*args, **kwargs)
