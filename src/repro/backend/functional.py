"""Functional tensor API used by RL algorithm implementations.

Thin wrappers around :func:`repro.backend.autodiff.apply_op` for every
primitive operator, plus a handful of composite helpers (losses, Gaussian
log-probabilities) built from primitives so that their cost is accounted op
by op, exactly like the real backends would.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .autodiff import apply_op
from .tensor import Tensor

TensorLike = Union[Tensor, np.ndarray, float]


# ----------------------------------------------------------------- primitives
def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("matmul", [a, b])


def addmm(x: TensorLike, w: TensorLike, b: TensorLike) -> Tensor:
    """Fused linear layer (PyTorch-style)."""
    return apply_op("addmm", [x, w, b])


def bias_add(x: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("bias_add", [x, b])


def add(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("add", [a, b])


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("sub", [a, b])


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("mul", [a, b])


def div(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("div", [a, b])


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("minimum", [a, b])


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    return apply_op("maximum", [a, b])


def neg(x: TensorLike) -> Tensor:
    return apply_op("neg", [x])


def exp(x: TensorLike) -> Tensor:
    return apply_op("exp", [x])


def log(x: TensorLike) -> Tensor:
    return apply_op("log", [x])


def tanh(x: TensorLike) -> Tensor:
    return apply_op("tanh", [x])


def relu(x: TensorLike) -> Tensor:
    return apply_op("relu", [x])


def sigmoid(x: TensorLike) -> Tensor:
    return apply_op("sigmoid", [x])


def softplus(x: TensorLike) -> Tensor:
    return apply_op("softplus", [x])


def square(x: TensorLike) -> Tensor:
    return apply_op("square", [x])


def sqrt(x: TensorLike) -> Tensor:
    return apply_op("sqrt", [x])


def absolute(x: TensorLike) -> Tensor:
    return apply_op("abs", [x])


def scale_shift(x: TensorLike, scale: float = 1.0, shift: float = 0.0) -> Tensor:
    return apply_op("scale_shift", [x], {"scale": scale, "shift": shift})


def clip(x: TensorLike, low: float, high: float) -> Tensor:
    return apply_op("clip", [x], {"low": low, "high": high})


def pow_const(x: TensorLike, exponent: float) -> Tensor:
    return apply_op("pow_const", [x], {"exponent": exponent})


def reduce_sum(x: TensorLike, axis: Optional[int] = None) -> Tensor:
    return apply_op("sum", [x], {"axis": axis})


def reduce_mean(x: TensorLike, axis: Optional[int] = None) -> Tensor:
    return apply_op("mean", [x], {"axis": axis})


def reduce_max(x: TensorLike, axis: Optional[int] = None) -> Tensor:
    return apply_op("reduce_max", [x], {"axis": axis})


def softmax(x: TensorLike) -> Tensor:
    return apply_op("softmax", [x])


def log_softmax(x: TensorLike) -> Tensor:
    return apply_op("log_softmax", [x])


def reshape(x: TensorLike, shape: Sequence[int]) -> Tensor:
    return apply_op("reshape", [x], {"shape": tuple(shape)})


def concat(tensors: Sequence[TensorLike], axis: int = -1) -> Tensor:
    return apply_op("concat", list(tensors), {"axis": axis})


def gather_rows(x: TensorLike, indices: Sequence[int]) -> Tensor:
    return apply_op("gather_rows", [x], {"indices": np.asarray(indices, dtype=np.int64)})


def stop_gradient(x: TensorLike) -> Tensor:
    return apply_op("stop_gradient", [x])


# ------------------------------------------------------------------ composites
def mse_loss(prediction: TensorLike, target: TensorLike) -> Tensor:
    """Mean squared error."""
    return reduce_mean(square(sub(prediction, target)))


def huber_loss(prediction: TensorLike, target: TensorLike, delta: float = 1.0) -> Tensor:
    """Huber loss, composed from primitives."""
    error = sub(prediction, target)
    abs_error = absolute(error)
    quadratic = clip(abs_error, 0.0, delta)
    linear = sub(abs_error, quadratic)
    return reduce_mean(add(scale_shift(square(quadratic), 0.5), scale_shift(linear, delta)))


LOG_2PI = float(np.log(2.0 * np.pi))


def gaussian_log_prob(actions: TensorLike, mean: TensorLike, log_std: TensorLike) -> Tensor:
    """Log-probability of ``actions`` under a diagonal Gaussian, summed over dims."""
    std = exp(log_std)
    z = div(sub(actions, mean), std)
    per_dim = scale_shift(add(add(square(z), scale_shift(log_std, 2.0)), LOG_2PI), -0.5)
    return reduce_sum(per_dim, axis=-1)


def gaussian_entropy(log_std: TensorLike) -> Tensor:
    """Entropy of a diagonal Gaussian, summed over dims, averaged over batch."""
    per_dim = scale_shift(log_std, 1.0, 0.5 * (LOG_2PI + 1.0))
    return reduce_mean(reduce_sum(per_dim, axis=-1))
