"""Neural-network layers built on the functional API.

The networks used by the paper's workloads are small MLPs (two hidden layers
of a few hundred units), which is itself one of the structural reasons RL is
less GPU-bound than supervised learning (Section 2.2 of the paper).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from .context import current_engine
from .tensor import Parameter, Tensor

Activation = Optional[str]

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "softplus": F.softplus,
}


def _activation_fn(name: Activation) -> Optional[Callable[[Tensor], Tensor]]:
    if name is None or name == "linear":
        return None
    try:
        return _ACTIVATIONS[name]
    except KeyError as exc:
        raise ValueError(f"unknown activation {name!r}") from exc


class Module:
    """Minimal layer base class: parameter collection and state dicts."""

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def state_dict(self) -> List[np.ndarray]:
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(params) != len(state):
            raise ValueError(f"state has {len(state)} arrays but module has {len(params)} parameters")
        for p, value in zip(params, state):
            p.assign(value)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Dense(Module):
    """Fully connected layer ``y = act(x @ W + b)``.

    When the current engine fuses linear layers (PyTorch), the forward pass
    uses one ``addmm`` op; otherwise a ``matmul`` followed by ``bias_add``,
    which is one source of the higher op/transition counts of the TensorFlow
    eager implementation (finding F.3).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: Activation = None,
        name: str = "dense",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-limit, limit, size=(in_features, out_features)), name=f"{name}/W")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}/b")
        self.activation = activation
        self.name = name

    def __call__(self, x: Tensor) -> Tensor:
        engine = current_engine()
        if engine.fuses_linear:
            out = F.addmm(x, self.weight, self.bias)
        else:
            out = F.bias_add(F.matmul(x, self.weight), self.bias)
        act = _activation_fn(self.activation)
        return act(out) if act is not None else out

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class MLP(Module):
    """Multi-layer perceptron with a configurable output activation."""

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        *,
        activation: Activation = "relu",
        out_activation: Activation = None,
        name: str = "mlp",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = [in_features, *hidden_sizes, out_features]
        self.layers: List[Dense] = []
        for i in range(len(sizes) - 1):
            is_last = i == len(sizes) - 2
            self.layers.append(
                Dense(
                    sizes[i],
                    sizes[i + 1],
                    activation=out_activation if is_last else activation,
                    name=f"{name}/dense_{i}",
                    rng=rng,
                )
            )
        self.name = name

    def __call__(self, x: Tensor) -> Tensor:
        out = x
        for layer in self.layers:
            out = layer(out)
        return out

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


def hard_update(target: Module, source: Module) -> None:
    """Copy source parameters into target (no backend cost: initialisation-time)."""
    target.load_state_dict(source.state_dict())


def soft_update(target: Module, source: Module, tau: float, *, separate_calls: bool = False) -> None:
    """Polyak averaging of target networks: ``target = (1 - tau) * target + tau * source``.

    ``separate_calls=True`` reproduces the stable-baselines DDPG behaviour
    called out in finding F.4: each parameter's update is issued as its own
    backend call instead of being bundled into one.
    """
    from ..cuda.kernels import elementwise_kernel  # local import to avoid cycles

    engine = current_engine()
    pairs = list(zip(target.parameters(), source.parameters()))

    def _update(pairs_chunk):
        for target_param, source_param in pairs_chunk:
            engine.account_op("soft_update", [elementwise_kernel(target_param.shape, 3.0, name="axpy")])
            target_param.assign((1.0 - tau) * target_param.data + tau * source_param.data)

    if separate_calls:
        for pair in pairs:
            with engine.native_scope("soft_update"):
                _update([pair])
    else:
        with engine.native_scope("soft_update"):
            _update(pairs)
