"""Graph execution engine (TensorFlow 1.x-style ``session.run``).

In Graph mode the algorithm defines its computations once and then executes
them through ``session.run``-style calls: one Python -> Backend transition
per call, inside which every operator of the (implicit) graph executes.  The
Python side still pays for minibatch sampling and feed-dict construction on
every iteration, which is why Graph-mode workloads show substantial Python
time in the paper (finding F.2).

The reproduction keeps the graph implicit: a compiled function re-runs the
traced Python body inside a single native scope.  A lightweight
:class:`GraphInfo` records the op stream of the first call so tests and the
analysis can inspect op counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..system import System
from .engine import BackendEngine, CompiledFunction


@dataclass
class GraphInfo:
    """Op-count bookkeeping for one compiled graph."""

    name: str
    ops_per_call: int = 0
    traced: bool = False
    op_names: List[str] = field(default_factory=list)


class GraphEngine(BackendEngine):
    """TensorFlow Graph execution (stable-baselines style)."""

    kind = "graph"
    wraps_each_op = False
    fuses_linear = False

    #: Python-side work (in python units) to build a feed dict per call.
    FEED_PREP_UNITS_PER_ARG = 3.0
    FEED_PREP_UNITS_FIXED = 6.0

    def __init__(self, system: System, *, flavor: str = "tensorflow", name: Optional[str] = None) -> None:
        super().__init__(system, flavor=flavor, name=name)
        self.graphs: List[GraphInfo] = []

    def function(self, fn, *, name: str = "session_run", num_feeds: int = 2, **kwargs) -> CompiledFunction:
        """Wrap ``fn`` as a graph executed via ``session.run``."""
        del kwargs
        info = GraphInfo(name=name)
        self.graphs.append(info)
        compiled = _TracingCompiledFunction(
            self,
            fn,
            name=name,
            prologue_python_units=self.FEED_PREP_UNITS_FIXED + self.FEED_PREP_UNITS_PER_ARG * num_feeds,
            dispatch_inflation=1.0,
            wrap_native=True,
            info=info,
        )
        return compiled


class _TracingCompiledFunction(CompiledFunction):
    """Compiled function that records op counts on its first call."""

    def __init__(self, engine: BackendEngine, fn, *, info: GraphInfo, **kwargs) -> None:
        super().__init__(engine, fn, **kwargs)
        self.info = info

    def __call__(self, *args, **kwargs):
        ops_before = self.engine.op_count
        result = super().__call__(*args, **kwargs)
        if not self.info.traced:
            self.info.ops_per_call = self.engine.op_count - ops_before
            self.info.traced = True
        return result
