"""Backend engine base class: the Python <-> ML-backend boundary.

The engine is the piece of the stack that RL-Scope's "Backend" category
measures.  It owns

* the **native boundary** — every Python -> Backend call crosses it, costs
  marshalling time, and is observable by a :class:`BoundaryListener` (the
  profiler's transparent interception attaches here without the engine, or
  user code, changing);
* **operator execution** — each primitive op costs CPU dispatch time and
  launches its kernels through the simulated CUDA runtime, while the numpy
  forward computation produces the real numeric result;
* **compiled functions** — Graph / Autograph execution wraps a Python
  function so that repeated calls execute all ops inside a single native
  call (see :mod:`repro.backend.graph` and :mod:`repro.backend.autograph`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..cuda.kernels import KernelSpec
from ..system import System
from .ops import get_op


class BoundaryListener:
    """Observer of Python <-> Backend boundary crossings (default: no-op)."""

    def enter(self, engine: "BackendEngine", call_name: str) -> None:  # pragma: no cover - trivial
        """Called when Python enters the backend's native code."""

    def exit(self, engine: "BackendEngine", call_name: str) -> None:  # pragma: no cover - trivial
        """Called when the backend's native code returns to Python."""


NULL_BOUNDARY = BoundaryListener()


class BackendEngine:
    """Base class for the Graph / Autograph / Eager execution engines."""

    #: execution-model identifier used for cost lookups ("graph", "autograph", "eager")
    kind: str = "base"
    #: whether each Python-level op call becomes its own native call
    wraps_each_op: bool = False
    #: whether Dense layers should use the fused ``addmm`` op (PyTorch style)
    fuses_linear: bool = False

    def __init__(self, system: System, *, flavor: str = "tensorflow", name: Optional[str] = None) -> None:
        self.system = system
        self.flavor = flavor
        self.name = name or f"{flavor}-{self.kind}"
        self.boundary: BoundaryListener = NULL_BOUNDARY
        self._native_depth = 0
        self._dispatch_inflation_stack: List[float] = []
        # Counters used by tests and by the transitions-per-iteration analysis.
        self.native_call_count = 0
        self.op_count = 0
        self.kernel_launch_count = 0

    # ------------------------------------------------------------- boundary
    @property
    def in_native(self) -> bool:
        return self._native_depth > 0

    @contextmanager
    def native_scope(self, call_name: str) -> Iterator[None]:
        """Enter the backend for one Python -> Backend call.

        Nested scopes do not create new boundary crossings: only the
        outermost scope is a transition, as in the real stack where a
        ``session.run`` internally calling other backend code stays native.
        """
        outermost = self._native_depth == 0
        self._native_depth += 1
        if outermost:
            self.native_call_count += 1
            self.boundary.enter(self, call_name)
            self.system.clock.advance(self.system.cost_model.backend_call(self.flavor, self.kind))
        try:
            yield
        finally:
            self._native_depth -= 1
            if outermost:
                self.boundary.exit(self, call_name)

    @contextmanager
    def python_escape(self, reason: str = "py_function") -> Iterator[None]:
        """Temporarily return to Python from inside a native scope.

        Autograph's in-graph data-collection loop calls the simulator through
        an ``EagerPyFunc``-style bridge: the backend yields control back to
        Python (and from there to the simulator's C library).  The boundary
        listener sees a C -> Python return followed by a Python -> C entry,
        so profilers do not attribute simulator time to the backend.
        """
        if self._native_depth == 0:
            yield
            return
        saved_depth = self._native_depth
        self._native_depth = 0
        self.boundary.exit(self, reason)
        self._after_escape_to_python()
        try:
            yield
        finally:
            self._native_depth = saved_depth
            self.boundary.enter(self, f"{reason}_resume")
            self.system.clock.advance(self.system.cost_model.python_c_crossing())

    def _after_escape_to_python(self) -> None:
        """Hook invoked right after the backend yields control back to Python."""

    # ------------------------------------------------------------- dispatch
    @contextmanager
    def dispatch_inflation(self, factor: float) -> Iterator[None]:
        """Scale per-op dispatch cost inside the block (Autograph anomaly, F.6)."""
        self._dispatch_inflation_stack.append(factor)
        try:
            yield
        finally:
            self._dispatch_inflation_stack.pop()

    def _current_inflation(self) -> float:
        return self._dispatch_inflation_stack[-1] if self._dispatch_inflation_stack else 1.0

    def _account(self, kernels: Sequence[KernelSpec]) -> None:
        """Charge dispatch CPU time and launch the op's kernels."""
        self.op_count += 1
        dispatch = self.system.cost_model.backend_op_dispatch(self.flavor, self.kind)
        inflation = self._current_inflation()
        if inflation != 1.0:
            dispatch *= inflation
        self.system.clock.advance(dispatch)
        for kernel in kernels:
            self.system.cuda.launch_kernel(kernel)
            self.kernel_launch_count += 1

    def execute_op(self, op_name: str, inputs: Sequence[np.ndarray], attrs: Mapping[str, object]) -> np.ndarray:
        """Run one primitive op: numeric forward plus cost accounting."""
        opdef = get_op(op_name)
        output = opdef.forward(inputs, attrs)
        output = np.asarray(output, dtype=np.float32)
        self._account(opdef.kernels(inputs, output, attrs))
        return output

    def account_op(self, op_name: str, kernels: Sequence[KernelSpec]) -> None:
        """Account for an op whose numeric result is computed elsewhere.

        Used for gradient ops (the tape computes VJPs directly) and for fused
        optimizer updates.
        """
        del op_name  # the name is informational; cost depends only on the kernels
        self._account(kernels)

    # ------------------------------------------------------------ op routing
    def apply(self, op_name: str, inputs: Sequence[np.ndarray], attrs: Mapping[str, object]) -> np.ndarray:
        """Execute an op issued from Python-level code.

        Eager engines wrap each top-level op in its own native call;
        graph-style engines only execute ops inside an enclosing native scope
        (a ``session.run`` / compiled function call), and fall back to a
        one-op native call when an op is issued at the top level.
        """
        if self._native_depth == 0:
            with self.native_scope(op_name):
                return self.execute_op(op_name, inputs, attrs)
        return self.execute_op(op_name, inputs, attrs)

    # -------------------------------------------------------------- memcpys
    def copy_to_device(self, num_bytes: float) -> None:
        """Host -> device transfer issued by backend code (inside native scope)."""
        self.system.cuda.memcpy_async("HtoD", num_bytes)

    def copy_to_host(self, num_bytes: float, *, synchronize: bool = True) -> None:
        """Device -> host transfer; synchronous by default (the caller needs the data)."""
        self.system.cuda.memcpy_async("DtoH", num_bytes)
        if synchronize:
            self.system.cuda.stream_synchronize()

    # ------------------------------------------------------------- compiled
    def function(self, fn, *, name: str = "fn", **kwargs) -> "CompiledFunction":
        """Wrap ``fn`` for repeated execution under this engine.

        The base implementation (used by eager engines) simply calls the
        function — every op inside dispatches eagerly.
        """
        del kwargs
        return CompiledFunction(self, fn, name=name, prologue_python_units=0.0, dispatch_inflation=1.0,
                                wrap_native=False)

    def reset_counters(self) -> None:
        self.native_call_count = 0
        self.op_count = 0
        self.kernel_launch_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(flavor={self.flavor!r}, name={self.name!r})"


class CompiledFunction:
    """A Python function bound to an engine-specific execution strategy.

    ``prologue_python_units`` models the Python-side cost of preparing a call
    (feed-dict construction for Graph, ``tf.nest`` flattening and signature
    checks for Autograph).  ``dispatch_inflation`` scales per-op dispatch cost
    inside the call (the Autograph inference anomaly, finding F.6).  When
    ``wrap_native`` is true the whole body runs inside one native call.
    """

    def __init__(
        self,
        engine: BackendEngine,
        fn,
        *,
        name: str,
        prologue_python_units: float,
        dispatch_inflation: float,
        wrap_native: bool,
    ) -> None:
        self.engine = engine
        self.fn = fn
        self.name = name
        self.prologue_python_units = prologue_python_units
        self.dispatch_inflation = dispatch_inflation
        self.wrap_native = wrap_native
        self.call_count = 0

    def __call__(self, *args, **kwargs):
        self.call_count += 1
        if self.prologue_python_units > 0:
            self.engine.system.cpu_work(self.prologue_python_units)
        if not self.wrap_native:
            return self.fn(*args, **kwargs)
        notify_entry = getattr(self.engine, "note_function_entry", None)
        if notify_entry is not None and not self.engine.in_native:
            notify_entry()
        with self.engine.native_scope(self.name):
            with self.engine.dispatch_inflation(self.dispatch_inflation):
                return self.fn(*args, **kwargs)
