"""Eager execution engines (TensorFlow Eager and PyTorch).

Eager mode dispatches every primitive op as its own Python -> Backend call,
which is exactly the behaviour behind findings F.1 and F.3: the number of
backend transitions per iteration explodes relative to Graph / Autograph, and
the per-call overhead of the TensorFlow eager runtime is markedly higher than
PyTorch's, explaining the 2.3x gap between the two Eager implementations.
"""

from __future__ import annotations

from typing import Optional

from ..system import System
from .engine import BackendEngine


class EagerEngine(BackendEngine):
    """TensorFlow 2.x eager execution."""

    kind = "eager"
    wraps_each_op = True
    fuses_linear = False
    #: interpreted-Python dispatcher work per top-level op call (argument
    #: parsing, dtype/shape checks) — part of why eager mode spends so much
    #: time in Python (finding F.1).
    python_units_per_op = 3.0

    def __init__(self, system: System, *, flavor: str = "tensorflow", name: Optional[str] = None) -> None:
        super().__init__(system, flavor=flavor, name=name)

    def apply(self, op_name, inputs, attrs):
        if self._native_depth == 0 and self.python_units_per_op > 0:
            self.system.cpu_work(self.python_units_per_op)
        return super().apply(op_name, inputs, attrs)


class PyTorchEagerEngine(EagerEngine):
    """PyTorch eager execution (ReAgent's backend).

    PyTorch's dispatcher is cheaper per call than TensorFlow's eager runtime
    and its ``addmm`` fuses the matmul and bias add of a linear layer, so an
    identical network issues fewer ops (and thus fewer transitions) per step.
    """

    fuses_linear = True
    python_units_per_op = 1.2

    def __init__(self, system: System, *, name: Optional[str] = None) -> None:
        super().__init__(system, flavor="pytorch", name=name or "pytorch-eager")
