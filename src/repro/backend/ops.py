"""Primitive operator registry for the miniature ML backend.

Each :class:`OpDef` bundles

* ``forward``  — the numpy implementation,
* ``vjp``      — the vector-Jacobian product used by the tape autodiff,
* ``kernels``  — the GPU kernels a real backend would launch for the forward
  op (used by the engines for cost accounting), and
* ``backward_kernels`` — the kernels of the corresponding gradient op.

The numeric results are real (RL algorithms genuinely train); the kernel
lists only drive the virtual cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cuda.kernels import KernelSpec, elementwise_kernel, gemm_kernel, reduction_kernel

Arrays = Sequence[np.ndarray]
Attrs = Mapping[str, object]
ForwardFn = Callable[[Arrays, Attrs], np.ndarray]
VjpFn = Callable[[Arrays, np.ndarray, np.ndarray, Attrs], List[Optional[np.ndarray]]]
KernelsFn = Callable[[Arrays, np.ndarray, Attrs], List[KernelSpec]]


@dataclass(frozen=True)
class OpDef:
    """Definition of one primitive backend operator."""

    name: str
    forward: ForwardFn
    vjp: VjpFn
    kernels: KernelsFn
    backward_kernels: KernelsFn


OPS: Dict[str, OpDef] = {}


def register(op: OpDef) -> OpDef:
    if op.name in OPS:
        raise ValueError(f"op {op.name!r} already registered")
    OPS[op.name] = op
    return op


def get_op(name: str) -> OpDef:
    try:
        return OPS[name]
    except KeyError as exc:
        raise KeyError(f"unknown backend op {name!r}") from exc


# --------------------------------------------------------------------- utils
def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading added dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast (size-1) dimensions.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _ew_kernels(name: str, ops_per_element: float = 1.0) -> KernelsFn:
    def kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
        return [elementwise_kernel(output.shape, ops_per_element=ops_per_element, name=name)]
    return kernels


def _binary_backward_kernels(name: str) -> KernelsFn:
    def kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
        return [elementwise_kernel(inp.shape, ops_per_element=1.0, name=f"grad_{name}") for inp in inputs]
    return kernels


def _unary_backward_kernels(name: str, ops_per_element: float = 1.0) -> KernelsFn:
    def kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
        return [elementwise_kernel(inputs[0].shape, ops_per_element=ops_per_element, name=f"grad_{name}")]
    return kernels


def _no_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    return []


# -------------------------------------------------------------------- matmul
def _matmul_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    a, b = inputs
    return a @ b


def _matmul_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    a, b = inputs
    return [grad @ b.T, a.T @ grad]


def _matmul_dims(a: np.ndarray, b: np.ndarray) -> Tuple[int, int, int]:
    m = int(np.prod(a.shape[:-1])) if a.ndim > 1 else 1
    k = a.shape[-1]
    n = b.shape[-1]
    return m, n, k


def _matmul_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    m, n, k = _matmul_dims(inputs[0], inputs[1])
    return [gemm_kernel(m, n, k, name="sgemm")]


def _matmul_backward_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    m, n, k = _matmul_dims(inputs[0], inputs[1])
    return [gemm_kernel(m, k, n, name="sgemm_dgrad"), gemm_kernel(k, n, m, name="sgemm_wgrad")]


register(OpDef("matmul", _matmul_forward, _matmul_vjp, _matmul_kernels, _matmul_backward_kernels))


# ------------------------------------------------------------ fused linear op
def _addmm_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    x, w, b = inputs
    return x @ w + b


def _addmm_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    x, w, b = inputs
    return [grad @ w.T, x.T @ grad, unbroadcast(grad, b.shape)]


def _addmm_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    m, n, k = _matmul_dims(inputs[0], inputs[1])
    return [gemm_kernel(m, n, k, name="addmm")]


def _addmm_backward_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    m, n, k = _matmul_dims(inputs[0], inputs[1])
    return [
        gemm_kernel(m, k, n, name="addmm_dgrad"),
        gemm_kernel(k, n, m, name="addmm_wgrad"),
        reduction_kernel(output.shape, name="addmm_bgrad"),
    ]


register(OpDef("addmm", _addmm_forward, _addmm_vjp, _addmm_kernels, _addmm_backward_kernels))


# ----------------------------------------------------------------- bias_add
def _bias_add_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    x, b = inputs
    return x + b


def _bias_add_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    x, b = inputs
    return [grad, unbroadcast(grad, b.shape)]


register(OpDef("bias_add", _bias_add_forward, _bias_add_vjp, _ew_kernels("bias_add"), _binary_backward_kernels("bias_add")))


# --------------------------------------------------------- binary elementwise
def _make_binary(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                 vjp: VjpFn, ops_per_element: float = 1.0) -> None:
    def forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
        return fn(inputs[0], inputs[1])
    register(OpDef(name, forward, vjp, _ew_kernels(name, ops_per_element), _binary_backward_kernels(name)))


def _add_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [unbroadcast(grad, inputs[0].shape), unbroadcast(grad, inputs[1].shape)]


def _sub_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [unbroadcast(grad, inputs[0].shape), unbroadcast(-grad, inputs[1].shape)]


def _mul_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    a, b = inputs
    return [unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)]


def _div_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    a, b = inputs
    return [unbroadcast(grad / b, a.shape), unbroadcast(-grad * a / (b * b), b.shape)]


def _minimum_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    a, b = inputs
    mask = (a <= b).astype(np.float32)
    return [unbroadcast(grad * mask, a.shape), unbroadcast(grad * (1.0 - mask), b.shape)]


def _maximum_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    a, b = inputs
    mask = (a >= b).astype(np.float32)
    return [unbroadcast(grad * mask, a.shape), unbroadcast(grad * (1.0 - mask), b.shape)]


_make_binary("add", np.add, _add_vjp)
_make_binary("sub", np.subtract, _sub_vjp)
_make_binary("mul", np.multiply, _mul_vjp)
_make_binary("div", np.divide, _div_vjp, ops_per_element=4.0)
_make_binary("minimum", np.minimum, _minimum_vjp)
_make_binary("maximum", np.maximum, _maximum_vjp)


# ---------------------------------------------------------- unary elementwise
def _make_unary(name: str, fn: Callable[[np.ndarray], np.ndarray],
                grad_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                ops_per_element: float = 1.0) -> None:
    """``grad_fn(x, y)`` returns dy/dx given input x and output y."""

    def forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
        return fn(inputs[0])

    def vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
        return [grad * grad_fn(inputs[0], output)]

    register(OpDef(name, forward, vjp, _ew_kernels(name, ops_per_element),
                   _unary_backward_kernels(name, ops_per_element)))


_make_unary("neg", np.negative, lambda x, y: np.full_like(x, -1.0))
_make_unary("exp", np.exp, lambda x, y: y, ops_per_element=4.0)
_make_unary("log", lambda x: np.log(np.maximum(x, 1e-12)), lambda x, y: 1.0 / np.maximum(x, 1e-12), ops_per_element=4.0)
_make_unary("tanh", np.tanh, lambda x, y: 1.0 - y * y, ops_per_element=6.0)
_make_unary("relu", lambda x: np.maximum(x, 0.0), lambda x, y: (x > 0).astype(np.float32))
_make_unary("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), lambda x, y: y * (1.0 - y), ops_per_element=5.0)
_make_unary("softplus", lambda x: np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0),
            lambda x, y: 1.0 / (1.0 + np.exp(-x)), ops_per_element=6.0)
_make_unary("square", np.square, lambda x, y: 2.0 * x)
_make_unary("sqrt", lambda x: np.sqrt(np.maximum(x, 0.0)), lambda x, y: 0.5 / np.maximum(y, 1e-12), ops_per_element=3.0)
_make_unary("abs", np.abs, lambda x, y: np.sign(x))


# ------------------------------------------------------------------ scaling
def _scale_shift_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    scale = float(attrs.get("scale", 1.0))
    shift = float(attrs.get("shift", 0.0))
    return inputs[0] * scale + shift


def _scale_shift_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [grad * float(attrs.get("scale", 1.0))]


register(OpDef("scale_shift", _scale_shift_forward, _scale_shift_vjp, _ew_kernels("scale_shift"),
               _unary_backward_kernels("scale_shift")))


def _clip_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.clip(inputs[0], float(attrs["low"]), float(attrs["high"]))


def _clip_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    x = inputs[0]
    mask = ((x >= float(attrs["low"])) & (x <= float(attrs["high"]))).astype(np.float32)
    return [grad * mask]


register(OpDef("clip", _clip_forward, _clip_vjp, _ew_kernels("clip"), _unary_backward_kernels("clip")))


def _pow_const_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.power(inputs[0], float(attrs["exponent"]))


def _pow_const_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    p = float(attrs["exponent"])
    return [grad * p * np.power(inputs[0], p - 1.0)]


register(OpDef("pow_const", _pow_const_forward, _pow_const_vjp, _ew_kernels("pow_const", 4.0),
               _unary_backward_kernels("pow_const", 4.0)))


# --------------------------------------------------------------- reductions
def _axis_of(attrs: Attrs) -> Optional[int]:
    axis = attrs.get("axis")
    return None if axis is None else int(axis)  # type: ignore[arg-type]


def _expand_reduced(grad: np.ndarray, input_shape: Tuple[int, ...], axis: Optional[int]) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(grad, input_shape).astype(np.float32)
    grad_expanded = np.expand_dims(grad, axis=axis)
    return np.broadcast_to(grad_expanded, input_shape).astype(np.float32)


def _sum_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.sum(inputs[0], axis=_axis_of(attrs))


def _sum_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [_expand_reduced(np.asarray(grad), inputs[0].shape, _axis_of(attrs))]


def _mean_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.mean(inputs[0], axis=_axis_of(attrs))


def _mean_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    axis = _axis_of(attrs)
    x = inputs[0]
    count = x.size if axis is None else x.shape[axis]
    return [_expand_reduced(np.asarray(grad), x.shape, axis) / float(count)]


def _reduce_kernels(name: str) -> KernelsFn:
    def kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
        return [reduction_kernel(inputs[0].shape, name=name)]
    return kernels


register(OpDef("sum", _sum_forward, _sum_vjp, _reduce_kernels("reduce_sum"), _unary_backward_kernels("sum")))
register(OpDef("mean", _mean_forward, _mean_vjp, _reduce_kernels("reduce_mean"), _unary_backward_kernels("mean")))


def _reduce_max_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.max(inputs[0], axis=_axis_of(attrs))


def _reduce_max_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    axis = _axis_of(attrs)
    x = inputs[0]
    if axis is None:
        mask = (x == output).astype(np.float32)
    else:
        mask = (x == np.expand_dims(output, axis)).astype(np.float32)
    mask /= np.maximum(mask.sum(axis=axis, keepdims=axis is not None), 1.0)
    return [_expand_reduced(np.asarray(grad), x.shape, axis) * mask]


register(OpDef("reduce_max", _reduce_max_forward, _reduce_max_vjp, _reduce_kernels("reduce_max"),
               _unary_backward_kernels("reduce_max")))


# ------------------------------------------------------------------ softmax
def _softmax_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    x = inputs[0]
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


def _softmax_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    s = output
    dot = np.sum(grad * s, axis=-1, keepdims=True)
    return [s * (grad - dot)]


register(OpDef("softmax", _softmax_forward, _softmax_vjp, _ew_kernels("softmax", 8.0),
               _unary_backward_kernels("softmax", 8.0)))


def _log_softmax_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    x = inputs[0]
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


def _log_softmax_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    softmax = np.exp(output)
    return [grad - softmax * np.sum(grad, axis=-1, keepdims=True)]


register(OpDef("log_softmax", _log_softmax_forward, _log_softmax_vjp, _ew_kernels("log_softmax", 8.0),
               _unary_backward_kernels("log_softmax", 8.0)))


# ------------------------------------------------------------ shape plumbing
def _reshape_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return inputs[0].reshape(tuple(attrs["shape"]))  # type: ignore[arg-type]


def _reshape_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [grad.reshape(inputs[0].shape)]


register(OpDef("reshape", _reshape_forward, _reshape_vjp, _no_kernels, _no_kernels))


def _concat_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return np.concatenate(list(inputs), axis=int(attrs.get("axis", -1)))  # type: ignore[arg-type]


def _concat_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    axis = int(attrs.get("axis", -1))  # type: ignore[arg-type]
    sizes = [inp.shape[axis] for inp in inputs]
    splits = np.cumsum(sizes)[:-1]
    return list(np.split(grad, splits, axis=axis))


def _concat_kernels(inputs: Arrays, output: np.ndarray, attrs: Attrs) -> List[KernelSpec]:
    return [elementwise_kernel(output.shape, ops_per_element=0.5, name="concat")]


register(OpDef("concat", _concat_forward, _concat_vjp, _concat_kernels, _concat_kernels))


def _gather_rows_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    x = inputs[0]
    indices = np.asarray(attrs["indices"], dtype=np.int64)  # type: ignore[arg-type]
    return x[np.arange(x.shape[0]), indices]


def _gather_rows_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    x = inputs[0]
    indices = np.asarray(attrs["indices"], dtype=np.int64)  # type: ignore[arg-type]
    full = np.zeros_like(x)
    full[np.arange(x.shape[0]), indices] = grad
    return [full]


register(OpDef("gather_rows", _gather_rows_forward, _gather_rows_vjp, _ew_kernels("gather_rows", 0.5),
               _unary_backward_kernels("gather_rows", 0.5)))


def _stop_gradient_forward(inputs: Arrays, attrs: Attrs) -> np.ndarray:
    return inputs[0]


def _stop_gradient_vjp(inputs: Arrays, output: np.ndarray, grad: np.ndarray, attrs: Attrs) -> List[Optional[np.ndarray]]:
    return [None]


register(OpDef("stop_gradient", _stop_gradient_forward, _stop_gradient_vjp, _no_kernels, _no_kernels))
