"""Optimizers for the miniature backend.

Two implementations of Adam matter for the paper:

* :class:`Adam` — the "fused" GPU implementation every modern backend
  provides: one update kernel per parameter tensor, applied inside a single
  backend call.
* :class:`MPIAdam` — stable-baselines' MPI-friendly Adam, which flattens the
  gradients, copies them to the host, performs the Adam update in Python, and
  writes the result back to the device.  During single-node training this is
  pure overhead: extra CUDA memcpys, extra backend calls and extra Python
  time — the root cause of the 3.7x backpropagation inflation in DDPG Graph
  (finding F.4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..cuda.kernels import optimizer_kernel, tensor_bytes
from .context import current_engine
from .tensor import Parameter


class Optimizer:
    """Base class: holds the parameter list and per-parameter state."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        self.lr = float(lr)
        self.step_count = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        raise NotImplementedError

    def _check_grads(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError(f"got {len(grads)} gradients for {len(self.params)} parameters")
        for param, grad in zip(self.params, grads):
            if np.asarray(grad).shape != param.shape:
                raise ValueError(f"gradient shape {np.asarray(grad).shape} != parameter shape {param.shape}")


class SGD(Optimizer):
    """Plain (optionally momentum) SGD with a fused device update."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check_grads(grads)
        engine = current_engine()
        self.step_count += 1
        with engine.native_scope("sgd_step"):
            for param, grad in zip(self.params, grads):
                engine.account_op("sgd_update", [optimizer_kernel(param.size, name="sgd_update")])
                grad = np.asarray(grad, dtype=np.float32)
                if self.momentum > 0:
                    vel = self._velocity.setdefault(param.id, np.zeros_like(param.data))
                    vel *= self.momentum
                    vel += grad
                    update = vel
                else:
                    update = grad
                param.assign(param.data - self.lr * update)


class Adam(Optimizer):
    """Fused Adam: one device kernel per parameter tensor, one backend call."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _adam_update(self, param: Parameter, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        m = self._m.setdefault(param.id, np.zeros_like(param.data))
        v = self._v.setdefault(param.id, np.zeros_like(param.data))
        m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
        v[...] = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** self.step_count)
        v_hat = v / (1.0 - self.beta2 ** self.step_count)
        param.assign(param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps))

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check_grads(grads)
        engine = current_engine()
        self.step_count += 1
        with engine.native_scope("adam_step"):
            for param, grad in zip(self.params, grads):
                engine.account_op("adam_update", [optimizer_kernel(param.size, name="adam_update")])
                self._adam_update(param, grad)


class MPIAdam(Adam):
    """stable-baselines' MPI-friendly Adam (GPU-unfriendly; see finding F.4).

    Per step it issues:

    1. a ``get_flat``-style backend call that copies the flattened gradients
       (and parameters) from device to host,
    2. the Adam moment update in interpreted Python on the host, and
    3. a ``set_from_flat`` backend call that copies the updated parameters
       back to the device and scatters them into the individual variables.
    """

    #: python units of work per 1000 scalar parameters for the host-side update
    PYTHON_UNITS_PER_KPARAM = 14.0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        self._check_grads(grads)
        engine = current_engine()
        system = engine.system
        self.step_count += 1
        total_bytes = float(sum(tensor_bytes(p.shape) for p in self.params))

        # (1) Fetch flat gradients + parameters to the host, one transfer per
        #     variable (get_flat gathers each variable separately).
        with engine.native_scope("mpi_adam_get_flat"):
            for param in self.params:
                # Flatten/gather each variable into the flat vector, then copy
                # its gradient and value to the host.
                engine.account_op("flatten_var", [optimizer_kernel(param.size, name="flatten_var")])
                engine.copy_to_host(float(tensor_bytes(param.shape)), synchronize=False)  # gradient
                engine.copy_to_host(float(tensor_bytes(param.shape)))                     # value
        for param in self.params:
            param.host_copy = param.data.copy()

        # (2) Host-side Adam update in Python.
        total_params = sum(p.size for p in self.params)
        system.cpu_work(self.PYTHON_UNITS_PER_KPARAM * total_params / 1000.0)
        for param, grad in zip(self.params, grads):
            self._adam_update(param, grad)

        # (3) Push the updated flat parameter vector back to the device and
        #     scatter it into each variable.
        del total_bytes
        with engine.native_scope("mpi_adam_set_from_flat"):
            for param in self.params:
                engine.copy_to_device(float(tensor_bytes(param.shape)))
                engine.account_op("assign", [optimizer_kernel(param.size, name="assign_flat")])
