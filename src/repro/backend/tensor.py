"""Tensors and parameters for the miniature ML backend.

A :class:`Tensor` wraps a float32 numpy array plus the bookkeeping needed by
the tape-based autodiff in :mod:`repro.backend.autodiff`.  A
:class:`Parameter` is a trainable tensor owned by a layer; it additionally
tracks a (virtual) device-resident copy so that optimizers that shuttle
weights between host and device (the MPI-friendly Adam of finding F.4) have
something to copy.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

_tensor_ids = itertools.count()


def as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float32 numpy array (Tensors pass their data through)."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float32)


class Tensor:
    """A float32 array with an identity usable as an autodiff graph node."""

    __slots__ = ("data", "requires_grad", "name", "id")

    def __init__(self, data: ArrayLike, *, requires_grad: bool = False, name: Optional[str] = None) -> None:
        # as_array already yields a float32 ndarray; re-coercing it walked
        # every tensor's data a second time on the engine hot path.
        self.data = as_array(data)
        self.requires_grad = bool(requires_grad)
        self.name = name
        self.id = next(_tensor_ids)

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data.item())

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"tensor_{self.id}"
        return f"Tensor({label}, shape={self.shape}, requires_grad={self.requires_grad})"


class Parameter(Tensor):
    """A trainable tensor.

    Parameters live on the (virtual) GPU; ``host_copy`` holds the most recent
    host-side snapshot made by optimizers that update weights on the CPU.
    """

    __slots__ = ("host_copy",)

    def __init__(self, data: ArrayLike, *, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        self.host_copy: Optional[np.ndarray] = None

    def assign(self, value: ArrayLike) -> None:
        """Overwrite the parameter value in place (keeps shape)."""
        new = as_array(value)
        if new.shape != self.data.shape:
            raise ValueError(f"cannot assign shape {new.shape} to parameter of shape {self.data.shape}")
        self.data = new.astype(np.float32)


def parameter_count(params: Iterable[Parameter]) -> int:
    """Total number of scalar parameters."""
    return sum(p.size for p in params)


def flatten_params(params: Iterable[Parameter]) -> np.ndarray:
    """Concatenate parameter values into one flat vector (for tests/checkpoints)."""
    arrays = [p.data.reshape(-1) for p in params]
    if not arrays:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate(arrays)


def assign_flat_params(params: Sequence[Parameter], flat: np.ndarray) -> None:
    """Inverse of :func:`flatten_params`."""
    offset = 0
    for p in params:
        n = p.size
        p.assign(flat[offset:offset + n].reshape(p.shape))
        offset += n
    if offset != flat.size:
        raise ValueError(f"flat vector has {flat.size} entries but parameters need {offset}")
