"""Open-loop traffic for the serving tier.

The self-play harness is *closed-loop*: a worker submits its next leaf only
after the previous evaluation returns, so load self-throttles and the
service can never be overrun.  Production traffic is **open-loop** — users
do not wait for each other — which is exactly the regime where admission
control matters: arrivals keep coming at the offered rate no matter how far
behind the server falls.

Three arrival processes, all deterministic under a seeded generator:

* :class:`PoissonProcess` — memoryless arrivals at a fixed rate; the
  classic steady-state model.
* :class:`BurstyProcess` — a two-state Markov-modulated Poisson process
  (calm rate / burst rate with exponentially distributed dwell times); the
  model for flash crowds and synchronized clients.  State switches use the
  memorylessness of the exponential: when a sampled gap crosses the dwell
  boundary the process jumps to the boundary, flips state, and resamples —
  an exact MMPP simulation, not an approximation.
* :class:`TraceReplay` — replay explicit arrival timestamps (recorded or
  adversarially constructed), for reproducing a specific incident.

:class:`LoadGenerator` owns a fleet of :class:`ServingClient`\\ s and deals
each arrival to a client chosen uniformly at random (an arrival backs a new
request only if that client is used; clients are cheap, make many).  It
yields ``(time_us, client)`` pairs for the event loop to drive.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .client import RetryPolicy, ServingClient


class ArrivalProcess:
    """Yields arrival times (virtual µs) up to a horizon."""

    def arrival_times(self, horizon_us: float,
                      rng: np.random.Generator) -> Iterator[float]:
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_sec``."""

    def __init__(self, rate_per_sec: float) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        self.rate_per_sec = rate_per_sec

    def arrival_times(self, horizon_us: float,
                      rng: np.random.Generator) -> Iterator[float]:
        mean_gap_us = 1e6 / self.rate_per_sec
        t = 0.0
        while True:
            t += rng.exponential(mean_gap_us)
            if t >= horizon_us:
                return
            yield t

    def __repr__(self) -> str:
        return f"PoissonProcess(rate_per_sec={self.rate_per_sec})"


class BurstyProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm <-> burst)."""

    def __init__(self, calm_rate_per_sec: float, burst_rate_per_sec: float, *,
                 mean_calm_us: float = 50_000.0,
                 mean_burst_us: float = 10_000.0) -> None:
        if calm_rate_per_sec <= 0 or burst_rate_per_sec <= 0:
            raise ValueError("rates must be positive")
        if mean_calm_us <= 0 or mean_burst_us <= 0:
            raise ValueError("dwell times must be positive")
        self.calm_rate_per_sec = calm_rate_per_sec
        self.burst_rate_per_sec = burst_rate_per_sec
        self.mean_calm_us = mean_calm_us
        self.mean_burst_us = mean_burst_us

    def arrival_times(self, horizon_us: float,
                      rng: np.random.Generator) -> Iterator[float]:
        mean_gaps = (1e6 / self.calm_rate_per_sec, 1e6 / self.burst_rate_per_sec)
        dwells = (self.mean_calm_us, self.mean_burst_us)
        state = 0  # start calm
        t = 0.0
        state_end = rng.exponential(dwells[state])
        while t < horizon_us:
            gap = rng.exponential(mean_gaps[state])
            if t + gap >= state_end:
                # Jump to the boundary and resample in the new state: valid
                # because exponential gaps are memoryless.
                t = state_end
                state = 1 - state
                state_end = t + rng.exponential(dwells[state])
                continue
            t += gap
            if t >= horizon_us:
                return
            yield t

    def __repr__(self) -> str:
        return (f"BurstyProcess(calm={self.calm_rate_per_sec}, "
                f"burst={self.burst_rate_per_sec})")


class TraceReplay(ArrivalProcess):
    """Replay an explicit, sorted list of arrival times."""

    def __init__(self, times_us: Sequence[float]) -> None:
        times = [float(t) for t in times_us]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be non-decreasing")
        self.times_us = times

    def arrival_times(self, horizon_us: float,
                      rng: np.random.Generator) -> Iterator[float]:
        for t in self.times_us:
            if t >= horizon_us:
                return
            yield t

    def __repr__(self) -> str:
        return f"TraceReplay({len(self.times_us)} arrivals)"


class LoadGenerator:
    """A fleet of synthetic clients fed by one arrival process.

    Arrivals are generated open-loop over ``[0, horizon_us)`` and dealt to
    clients uniformly at random.  Everything is derived from ``seed``: the
    arrival stream, the client choice per arrival, and each client's
    feature rows — so a fixed seed reproduces the exact same offered load.
    """

    def __init__(self, process: ArrivalProcess, num_clients: int, *,
                 feature_dim: int, rows_per_request: int = 1,
                 retry: RetryPolicy = RetryPolicy(),
                 request_deadline_us: Optional[float] = None,
                 key_space: Optional[int] = None,
                 seed: int = 0) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.process = process
        self.seed = seed
        self._arrival_rng = np.random.default_rng(seed)
        self._deal_rng = np.random.default_rng(seed + 1)
        self.clients: List[ServingClient] = [
            ServingClient(f"client_{index:04d}", feature_dim=feature_dim,
                          rows_per_request=rows_per_request, retry=retry,
                          request_deadline_us=request_deadline_us,
                          key_space=key_space,
                          seed=seed + 100 + index)
            for index in range(num_clients)
        ]

    def arrivals(self, horizon_us: float) -> Iterator[Tuple[float, ServingClient]]:
        """Yield ``(time_us, client)`` for every arrival before the horizon."""
        for t in self.process.arrival_times(horizon_us, self._arrival_rng):
            client = self.clients[int(self._deal_rng.integers(len(self.clients)))]
            yield t, client

    def close(self) -> None:
        for client in self.clients:
            client.close()
