"""The serving event loop: arrivals, frames, timers — one heap, virtual time.

``run_serving`` drives an :class:`~repro.serving.server.InferenceServer`
with a :class:`~repro.serving.loadgen.LoadGenerator` the same way the PR 5
pool scheduler drives self-play workers: a single min-heap of timestamped
events, popped in ``(time, sequence)`` order so ties break deterministically
and the whole run is a pure function of the configuration and seeds.

Event kinds:

* ``arrive`` — the load generator emits an arrival; the chosen client opens
  a request and its frame goes on the wire.  The *next* arrival is pushed
  lazily, so a million-arrival trace costs O(1) heap space for arrivals.
* ``send`` — a request frame reaches the server (after ``wire_latency_us``).
  The server's admission verdict may produce immediate shed replies and/or
  served batches; every reply frame is scheduled back toward its client.
* ``timer`` — a partial-batch flush deadline fires.  Timers are scheduled
  optimistically after every server interaction and the server ignores the
  stale ones, so no timer bookkeeping is needed here.
* ``reply`` — a reply frame reaches its client, which may schedule a
  backoff retry (a future ``send``).

When the heap runs dry the server drains: held partial batches and the
blocked backlog serve out, and their replies are delivered directly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..faults.plan import FRAME_CORRUPT, FRAME_DROP
from .client import ServingClient
from .loadgen import LoadGenerator
from .protocol import EvalReply, decode_message
from .server import InferenceServer

_ARRIVE = 0
_SEND = 1
_TIMER = 2
_REPLY = 3


@dataclass
class ServingRunResult:
    """Everything a report needs about one completed serving run."""

    server: InferenceServer
    loadgen: LoadGenerator
    horizon_us: float      #: arrival horizon (arrivals stop here; drain continues)
    end_us: float          #: virtual time of the last delivered reply
    events: int            #: heap events processed


def run_serving(server: InferenceServer, loadgen: LoadGenerator,
                horizon_us: float, *, wire_latency_us: float = 0.0
                ) -> ServingRunResult:
    """Run open-loop load against a server until the trace drains."""
    if horizon_us <= 0:
        raise ValueError("horizon_us must be positive")
    if wire_latency_us < 0:
        raise ValueError("wire_latency_us must be non-negative")
    clients: Dict[str, ServingClient] = {
        client.client_id: client for client in loadgen.clients}
    heap: List[Tuple[float, int, int, object]] = []
    tiebreak = itertools.count()

    def push(time_us: float, kind: int, payload: object) -> None:
        heapq.heappush(heap, (time_us, next(tiebreak), kind, payload))

    def push_replies(replies: List[Tuple[bytes, float]]) -> None:
        for frame, at_us in replies:
            push(at_us + wire_latency_us, _REPLY, frame)

    # Each distinct deadline is scheduled once: without the dedupe set, every
    # send would re-push the same deadline and every fired duplicate would
    # re-push the next one, multiplying timers by the chain length.
    scheduled_timers: set = set()

    def push_timer() -> None:
        deadline = server.next_deadline_us()
        if deadline is not None and deadline not in scheduled_timers:
            scheduled_timers.add(deadline)
            push(deadline, _TIMER, None)

    arrivals = loadgen.arrivals(horizon_us)
    first = next(arrivals, None)
    if first is not None:
        push(first[0], _ARRIVE, first[1])

    # Replica fault times become timer events so crashes and recoveries
    # apply on schedule even while the server is idle.  Frame faults are
    # consumed below, at _SEND, where the wire actually carries a frame.
    injector = server.fault_injector
    if injector is not None:
        for fault_us in injector.plan.replica_event_times():
            if fault_us not in scheduled_timers:
                scheduled_timers.add(fault_us)
                push(fault_us, _TIMER, None)

    end_us = 0.0
    events = 0
    while heap:
        now_us, _, kind, payload = heapq.heappop(heap)
        end_us = max(end_us, now_us)
        events += 1
        if kind == _ARRIVE:
            client = payload
            assert isinstance(client, ServingClient)
            push(now_us + wire_latency_us, _SEND, client.new_request_frame(now_us))
            upcoming = next(arrivals, None)
            if upcoming is not None:
                push(upcoming[0], _ARRIVE, upcoming[1])
        elif kind == _SEND:
            assert isinstance(payload, bytes)
            frame = payload
            if injector is not None:
                fault = injector.next_frame_fault(now_us)
                if fault is not None and fault.kind == FRAME_DROP:
                    injector.record(now_us, FRAME_DROP,
                                    detail=f"bytes={len(frame)}")
                    continue  # the frame never reaches the server
                if fault is not None and fault.kind == FRAME_CORRUPT:
                    # Flip the version byte: the magic stays intact, so the
                    # server's stream rejects the frame cleanly and resyncs.
                    injector.record(now_us, FRAME_CORRUPT,
                                    detail=f"bytes={len(frame)}")
                    frame = frame[:4] + bytes([frame[4] ^ 0xFF]) + frame[5:]
            push_replies(server.receive(frame, now_us))
            push_timer()
        elif kind == _TIMER:
            scheduled_timers.discard(now_us)
            push_replies(server.on_timer(now_us))
            push_timer()
        else:  # _REPLY
            assert isinstance(payload, bytes)
            message, _ = decode_message(payload)
            assert isinstance(message, EvalReply)
            retry = clients[message.client_id].deliver(payload, now_us)
            if retry is not None:
                resend_us, frame = retry
                push(resend_us + wire_latency_us, _SEND, frame)

    # Arrivals exhausted and every timer fired: serve out held partials and
    # the blocked backlog.  Drain replies are all OK (nothing sheds while
    # draining) so they cannot schedule retries.
    for frame, at_us in server.drain(end_us):
        message, _ = decode_message(frame)
        assert isinstance(message, EvalReply) and message.ok
        delivered_us = at_us + wire_latency_us
        end_us = max(end_us, delivered_us)
        events += 1
        clients[message.client_id].deliver(frame, delivered_us)
    loadgen.close()
    return ServingRunResult(server=server, loadgen=loadgen,
                            horizon_us=horizon_us, end_us=end_us, events=events)
