"""Serving clients: timeouts, capped exponential-backoff retry, accounting.

A :class:`ServingClient` is one remote caller of the inference tier.  It
builds request frames (fresh feature rows and a **fresh metadata dict** per
attempt — the aliasing discipline the wire boundary enforces), decodes reply
frames, and reacts to overload: a shed reply is retried after a capped
exponential backoff until :class:`RetryPolicy.max_attempts` is exhausted,
and an OK reply that lands after the request's deadline is counted as a
timeout miss (delivered too late to be goodput).

Clients are deliberately lightweight — a load generator drives thousands of
them — and fully deterministic: each owns a seeded RNG for its feature rows,
and backoff is a pure function of the attempt number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .protocol import (
    STATUS_SHED_DEADLINE,
    STATUS_SHED_QUEUE,
    STATUS_SHED_RATE,
    EvalReply,
    EvalRequest,
    MessageStream,
    encode_request,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for shed replies.

    Attempt ``k`` (0-based retry index) waits ``base_backoff_us *
    multiplier**k``, clamped to ``cap_us``.  ``max_attempts`` counts *sends*:
    with the default 4, a request is sent at most once plus three retries.

    ``jitter="decorrelated"`` replaces the deterministic ladder with
    decorrelated jitter (Amazon Architecture-blog style): each wait is drawn
    uniformly from ``[base, 3 * previous_wait]`` and capped, using a
    dedicated per-client seeded RNG — so a fleet of clients shed by the same
    fault stops retrying in lock-step and stops re-spiking the ingress
    window, while any single client's schedule stays a pure function of its
    seed.  Off by default: ``jitter="none"`` is bit-identical to the
    pre-jitter policy.
    """

    max_attempts: int = 4
    base_backoff_us: float = 100.0
    multiplier: float = 2.0
    cap_us: float = 2_000.0
    jitter: str = "none"   #: "none" | "decorrelated"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must allow at least the first send")
        if self.base_backoff_us < 0 or self.cap_us < 0 or self.multiplier < 1.0:
            raise ValueError("backoff parameters must be non-negative (multiplier >= 1)")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}; "
                             "expected 'none' or 'decorrelated'")

    def backoff_us(self, retry_index: int) -> float:
        """Virtual-time wait before retry number ``retry_index`` (0-based)."""
        return min(self.base_backoff_us * self.multiplier ** retry_index, self.cap_us)

    def jittered_backoff_us(self, prev_backoff_us: float,
                            rng: np.random.Generator) -> float:
        """One decorrelated-jitter wait following ``prev_backoff_us``."""
        base = self.base_backoff_us
        high = max(base, 3.0 * prev_backoff_us)
        return min(self.cap_us, float(rng.uniform(base, high)))


#: A retry policy that never retries (the no-defence baseline).
NO_RETRY = RetryPolicy(max_attempts=1)

#: Seed base of the per-key feature generators (see :func:`key_features`).
_KEY_FEATURE_SEED = 0x5EED_CAFE

#: Seed offset of the per-client backoff-jitter RNG: a dedicated stream, so
#: arming jitter never perturbs the feature/key draws (and vice versa).
_JITTER_SEED = 0x0FF5_E7


def key_features(state_key: int, rows: int, feature_dim: int) -> np.ndarray:
    """The canonical feature rows of one state key.

    A pure function of ``(state_key, rows, feature_dim)`` — every client
    that queries a key sends these exact bytes, which is what makes the
    key a truthful cache identity: equal keys imply equal features imply
    equal (priors, values) under any fixed weight version.
    """
    rng = np.random.default_rng(_KEY_FEATURE_SEED + state_key)
    return rng.normal(size=(rows, feature_dim)).astype(np.float32)


@dataclass
class ClientStats:
    """Per-client request accounting (aggregated across clients by slo.py)."""

    requests: int = 0        #: distinct requests issued (retries not counted)
    sends: int = 0           #: frames sent (requests + retries)
    completed: int = 0       #: OK replies received
    on_time: int = 0         #: OK replies within the request deadline
    late: int = 0            #: OK replies after the deadline (timeout misses)
    retries: int = 0         #: resends triggered by shed replies
    gave_up: int = 0         #: requests abandoned after max_attempts
    shed_replies: Dict[str, int] = field(default_factory=dict)  #: by status
    latency_us: List[float] = field(default_factory=list)  #: first send -> OK reply
    queue_delay_us: List[float] = field(default_factory=list)  #: server-reported

    @property
    def outstanding_closed(self) -> int:
        return self.completed + self.gave_up


class _Pending:
    """One request awaiting its reply (survives across retries)."""

    __slots__ = ("features", "first_send_us", "deadline_us", "attempts",
                 "state_key", "prev_backoff_us")

    def __init__(self, features: np.ndarray, first_send_us: float,
                 deadline_us: Optional[float],
                 state_key: Optional[int] = None) -> None:
        self.features = features
        self.first_send_us = first_send_us
        self.deadline_us = deadline_us
        self.attempts = 1  #: sends so far
        self.state_key = state_key  #: carried verbatim across retries
        self.prev_backoff_us = 0.0  #: last wait (decorrelated-jitter state)

    def request(self, client_id: str, request_id: int, send_us: float) -> EvalRequest:
        return EvalRequest(
            request_id=request_id, client_id=client_id, features=self.features,
            attempt=self.attempts - 1, send_us=send_us,
            first_send_us=self.first_send_us, deadline_us=self.deadline_us,
            # A fresh dict per attempt: tagging one attempt can never alias
            # another (see InferenceService.submit's sharing contract).
            metadata={"attempt": self.attempts - 1},
            state_key=self.state_key)


class ServingClient:
    """One synthetic remote caller of an :class:`~repro.serving.server.InferenceServer`."""

    def __init__(self, client_id: str, *, feature_dim: int,
                 rows_per_request: int = 1,
                 retry: RetryPolicy = RetryPolicy(),
                 request_deadline_us: Optional[float] = None,
                 key_space: Optional[int] = None,
                 seed: int = 0) -> None:
        """``key_space`` switches the client from fresh random feature rows
        per request to a keyed workload: each request draws a state key
        uniformly from ``range(key_space)`` and derives its feature rows
        *from the key alone* (a per-key seeded generator, identical across
        clients), so two requests with one key are bitwise-identical — the
        contract the server's admission cache requires.  Smaller spaces mean
        hotter repeats.  ``None`` (default) keeps the uncacheable stream.
        """
        if feature_dim <= 0 or rows_per_request <= 0:
            raise ValueError("feature_dim and rows_per_request must be positive")
        if key_space is not None and key_space <= 0:
            raise ValueError("key_space must be positive (or None for keyless rows)")
        self.client_id = client_id
        self.feature_dim = feature_dim
        self.rows_per_request = rows_per_request
        self.retry = retry
        self.request_deadline_us = request_deadline_us
        self.key_space = key_space
        self.stats = ClientStats()
        self._rng = np.random.default_rng(seed)
        # Jitter draws come from their own stream so the request features
        # stay bit-identical whether or not jitter is armed.
        self._backoff_rng = (np.random.default_rng(_JITTER_SEED + seed)
                             if retry.jitter != "none" else None)
        self._stream = MessageStream()
        self._pending: Dict[int, _Pending] = {}
        self._next_request_id = 0

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def new_request_frame(self, now_us: float) -> bytes:
        """Open a new request at ``now_us``; returns its wire frame."""
        request_id = self._next_request_id
        self._next_request_id += 1
        state_key: Optional[int] = None
        if self.key_space is not None:
            state_key = int(self._rng.integers(self.key_space))
            features = key_features(state_key, self.rows_per_request,
                                    self.feature_dim)
        else:
            features = self._rng.normal(
                size=(self.rows_per_request, self.feature_dim)).astype(np.float32)
        deadline = (None if self.request_deadline_us is None
                    else now_us + self.request_deadline_us)
        pending = _Pending(features, now_us, deadline, state_key)
        self._pending[request_id] = pending
        self.stats.requests += 1
        self.stats.sends += 1
        return encode_request(pending.request(self.client_id, request_id, now_us))

    def deliver(self, data: bytes, now_us: float) -> Optional[Tuple[float, bytes]]:
        """Feed reply bytes arriving at ``now_us``.

        Returns ``(resend_time_us, request_frame)`` when a shed reply
        triggers a retry, else ``None``.  At most one retry can result
        because the event loop delivers one reply frame per call (the stream
        still reassembles, so chunked delivery is tolerated).
        """
        resend: Optional[Tuple[float, bytes]] = None
        for message in self._stream.feed(data):
            if not isinstance(message, EvalReply):
                raise ValueError("clients accept reply frames only")
            action = self._on_reply(message, now_us)
            if action is not None:
                assert resend is None, "one reply frame per deliver call"
                resend = action
        return resend

    def _on_reply(self, reply: EvalReply, now_us: float
                  ) -> Optional[Tuple[float, bytes]]:
        pending = self._pending.get(reply.request_id)
        if pending is None:
            raise ValueError(f"reply for unknown request {reply.key}")
        if reply.ok:
            del self._pending[reply.request_id]
            self.stats.completed += 1
            self.stats.latency_us.append(now_us - pending.first_send_us)
            self.stats.queue_delay_us.append(reply.queue_delay_us)
            if pending.deadline_us is not None and now_us > pending.deadline_us:
                self.stats.late += 1
            else:
                self.stats.on_time += 1
            return None
        self.stats.shed_replies[reply.status] = (
            self.stats.shed_replies.get(reply.status, 0) + 1)
        if pending.attempts >= self.retry.max_attempts:
            del self._pending[reply.request_id]
            self.stats.gave_up += 1
            return None
        if self._backoff_rng is not None:
            backoff = self.retry.jittered_backoff_us(pending.prev_backoff_us,
                                                     self._backoff_rng)
        else:
            backoff = self.retry.backoff_us(pending.attempts - 1)
        pending.prev_backoff_us = backoff
        resend_us = now_us + backoff
        if pending.deadline_us is not None and resend_us > pending.deadline_us:
            # The retry could not land inside the deadline anyway.
            del self._pending[reply.request_id]
            self.stats.gave_up += 1
            return None
        pending.attempts += 1
        self.stats.retries += 1
        self.stats.sends += 1
        frame = encode_request(pending.request(self.client_id, reply.request_id,
                                               resend_us))
        return resend_us, frame

    def close(self) -> None:
        """Abandon whatever is still outstanding (end of run)."""
        self.stats.gave_up += len(self._pending)
        self._pending.clear()
