"""SLO accounting for serving runs.

Turns the three stats sources of a run — per-client
:class:`~repro.serving.client.ClientStats` (end-to-end latency, retries,
timeout misses), the server's
:class:`~repro.serving.server.ServerStats` (admission decisions), and the
underlying service's :class:`~repro.minigo.inference.InferenceStats`
(reservoir-sampled queue delays, batch shapes) — into the numbers an SLO
states: p50/p95/p99 latency and queue delay, shed/timeout/retry rates, and
goodput (requests completed *within their deadline* per virtual second).

The text rendering is deliberately stable — fixed field order, fixed
``%.1f``/``%.4f`` formatting — because the determinism bar compares report
files byte-for-byte across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .simulation import ServingRunResult

DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def percentiles(values: Sequence[float],
                points: Sequence[float] = DEFAULT_PERCENTILES
                ) -> Optional[Dict[float, float]]:
    """``{p: value}`` over ``values``; None when there are no samples."""
    if len(values) == 0:
        return None
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    return {float(p): float(np.percentile(ordered, p)) for p in points}


def _format_percentiles(stats: Optional[Dict[float, float]]) -> str:
    if stats is None:
        return "n/a"
    return " ".join(f"p{p:g}={stats[p]:.1f}" for p in sorted(stats))


@dataclass
class SLOReport:
    """Aggregated SLO view of one serving run."""

    label: str
    horizon_us: float
    end_us: float
    events: int
    # offered load (client side)
    requests: int = 0
    sends: int = 0
    completed: int = 0
    on_time: int = 0
    late: int = 0
    retries: int = 0
    gave_up: int = 0
    # defences (server side)
    arrivals: int = 0
    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0
    shed_deadline: int = 0
    blocked: int = 0
    block_time_us: float = 0.0
    serve_calls: int = 0
    timeout_serves: int = 0
    peak_queue_tickets: int = 0
    rows_served: int = 0
    cache_hits: int = 0
    cache_rows: int = 0
    cache_evictions: int = 0
    # faults (injected) and recovery
    corrupt_frames: int = 0
    replica_crashes: int = 0
    replica_recoveries: int = 0
    redispatches: int = 0
    redispatched_rows: int = 0
    degraded_entries: int = 0
    availability: float = 1.0  #: fraction of replica capacity up over the horizon
    # distributions (µs)
    latency_us: Optional[Dict[float, float]] = None
    client_queue_delay_us: Optional[Dict[float, float]] = None
    service_queue_delay_us: Optional[Dict[float, float]] = None
    mean_batch_rows: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------- derived
    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue + self.shed_deadline

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def timeout_fraction(self) -> float:
        """OK-but-late replies as a fraction of completed requests."""
        return self.late / self.completed if self.completed else 0.0

    @property
    def retry_fraction(self) -> float:
        return self.retries / self.requests if self.requests else 0.0

    @property
    def cache_hit_fraction(self) -> float:
        """Arrivals answered at admission from the evaluation cache."""
        return self.cache_hits / self.arrivals if self.arrivals else 0.0

    @property
    def offered_rate_per_sec(self) -> float:
        return self.requests * 1e6 / self.horizon_us if self.horizon_us else 0.0

    @property
    def goodput_per_sec(self) -> float:
        """Requests completed within deadline, per virtual second of trace."""
        return self.on_time * 1e6 / self.horizon_us if self.horizon_us else 0.0

    # ----------------------------------------------------------- rendering
    def lines(self) -> List[str]:
        return [
            f"[{self.label}] horizon={self.horizon_us / 1e6:.4f}s "
            f"end={self.end_us / 1e6:.4f}s events={self.events}",
            f"  offered   {self.requests} req ({self.offered_rate_per_sec:.1f}/s) "
            f"sends={self.sends} retries={self.retries} "
            f"(retry rate {self.retry_fraction:.4f})",
            f"  outcome   completed={self.completed} on_time={self.on_time} "
            f"late={self.late} (timeout rate {self.timeout_fraction:.4f}) "
            f"gave_up={self.gave_up}",
            f"  goodput   {self.goodput_per_sec:.1f} req/s "
            f"rows_served={self.rows_served} mean_batch={self.mean_batch_rows:.2f}",
            f"  shedding  rate={self.shed_rate} queue={self.shed_queue} "
            f"deadline={self.shed_deadline} "
            f"(shed rate {self.shed_fraction:.4f} of {self.arrivals} arrivals)",
            f"  backpressure blocked={self.blocked} "
            f"block_time_us={self.block_time_us:.1f} "
            f"peak_queue={self.peak_queue_tickets}",
            f"  serves    calls={self.serve_calls} timeout_serves={self.timeout_serves}",
            f"  cache     hits={self.cache_hits} rows={self.cache_rows} "
            f"evictions={self.cache_evictions} "
            f"(hit rate {self.cache_hit_fraction:.4f} of arrivals)",
            f"  faults    crashes={self.replica_crashes} "
            f"recoveries={self.replica_recoveries} "
            f"redispatched_rows={self.redispatched_rows} "
            f"corrupt_frames={self.corrupt_frames} "
            f"degraded={self.degraded_entries} "
            f"availability={self.availability:.4f}",
            f"  latency_us        {_format_percentiles(self.latency_us)}",
            f"  queue_delay_us    {_format_percentiles(self.client_queue_delay_us)} (client)",
            f"  service_delay_us  {_format_percentiles(self.service_queue_delay_us)} (reservoir)",
        ]

    def format(self) -> str:
        return "\n".join(self.lines())


def build_slo_report(result: ServingRunResult, *, label: str = "run",
                     points: Sequence[float] = DEFAULT_PERCENTILES) -> SLOReport:
    """Aggregate one finished run into an :class:`SLOReport`."""
    server = result.server
    stats = server.stats
    latency: List[float] = []
    queue_delay: List[float] = []
    report = SLOReport(label=label, horizon_us=result.horizon_us,
                       end_us=result.end_us, events=result.events)
    for client in result.loadgen.clients:
        cs = client.stats
        report.requests += cs.requests
        report.sends += cs.sends
        report.completed += cs.completed
        report.on_time += cs.on_time
        report.late += cs.late
        report.retries += cs.retries
        report.gave_up += cs.gave_up
        latency.extend(cs.latency_us)
        queue_delay.extend(cs.queue_delay_us)
    report.arrivals = stats.arrivals
    report.admitted = stats.admitted
    report.shed_rate = stats.shed_rate
    report.shed_queue = stats.shed_queue
    report.shed_deadline = stats.shed_deadline
    report.blocked = stats.blocked
    report.block_time_us = stats.block_time_us
    report.serve_calls = stats.serve_calls
    report.timeout_serves = stats.timeout_serves
    report.peak_queue_tickets = stats.peak_queue_tickets
    report.rows_served = stats.rows_served
    report.cache_hits = stats.cache_hits
    report.cache_rows = stats.cache_rows
    report.cache_evictions = stats.cache_evictions
    report.corrupt_frames = stats.corrupt_frames
    report.degraded_entries = stats.degraded_entries
    service_stats = server.service.stats
    report.replica_crashes = service_stats.replica_crashes
    report.replica_recoveries = service_stats.replica_recoveries
    report.redispatches = service_stats.redispatches
    report.redispatched_rows = service_stats.redispatched_rows
    report.availability = server.service.availability(result.horizon_us)
    report.latency_us = percentiles(latency, points)
    report.client_queue_delay_us = percentiles(queue_delay, points)
    report.service_queue_delay_us = server.service.stats.queue_delay_percentiles(points)
    report.mean_batch_rows = server.service.stats.mean_batch_rows
    return report
