"""Wire protocol of the networked inference tier.

The serving split promotes :class:`~repro.minigo.inference.InferenceService`
from an in-process object to a client/server boundary: requests and replies
cross it as **framed byte messages**, exactly as they would cross a socket.
The simulation stays in virtual time — no real network I/O happens — but
every request is genuinely serialized by the client and deserialized by the
server (and vice versa for replies), so the protocol layer is exercised on
the hot path, message framing over a byte stream is testable with real
split/coalesced reads, and client and server can never share mutable state
by accident: a decode always builds fresh arrays and a fresh metadata dict.
That last property is load-bearing — ticket metadata is shared by reference
with the in-process service (see :meth:`InferenceService.submit`), so the
wire decode is what guarantees a retried request can never alias the
attribution of its previous attempt.

Frame layout (little-endian)::

    magic   4s   b"RLSV"
    version B    PROTOCOL_VERSION
    type    B    MSG_REQUEST | MSG_REPLY
    header  I    length of the JSON header in bytes
    payload Q    length of the raw array payload in bytes
    ---- header: UTF-8 JSON (scalar fields + array dtypes/shapes)
    ---- payload: raw C-order array bytes, arrays concatenated in header order

Requests carry a client id, a per-client request id, a retry attempt
counter, the client's send time, an optional absolute deadline and a block
of feature rows.  Replies carry a :data:`STATUS_OK` result (priors/values
rows plus queueing attribution) or a shed/error status the client can react
to (retry with backoff, or give up).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

MAGIC = b"RLSV"
PROTOCOL_VERSION = 1

MSG_REQUEST = 1
MSG_REPLY = 2

_HEADER_STRUCT = struct.Struct("<4sBBIQ")

#: Sanity caps on the declared lengths.  A corrupted length field under an
#: intact magic would otherwise read as an :class:`IncompleteFrame` and
#: stall the stream forever waiting for gigabytes that never come.
MAX_HEADER_BYTES = 1 << 20    # 1 MiB of JSON header
MAX_PAYLOAD_BYTES = 1 << 28   # 256 MiB of array payload

#: Reply statuses.  Everything except OK is an overload signal the client
#: may retry; the status names the defence that fired.
STATUS_OK = "ok"                      #: served; priors/values attached
STATUS_SHED_RATE = "shed-rate"        #: per-client token bucket denied admission
STATUS_SHED_QUEUE = "shed-queue"      #: bounded ingress queue was full
STATUS_SHED_DEADLINE = "shed-deadline"  #: request expired in the ingress queue
STATUSES = (STATUS_OK, STATUS_SHED_RATE, STATUS_SHED_QUEUE, STATUS_SHED_DEADLINE)
SHED_STATUSES = (STATUS_SHED_RATE, STATUS_SHED_QUEUE, STATUS_SHED_DEADLINE)


@dataclass
class EvalRequest:
    """One client -> server evaluation request."""

    request_id: int               #: unique per client (stable across retries)
    client_id: str
    features: np.ndarray          #: float32 [rows, feature_dim]
    attempt: int = 0              #: retry attempt (0 = first send)
    send_us: float = 0.0          #: client virtual clock at (this) send
    first_send_us: float = 0.0    #: client virtual clock at the first send
    deadline_us: Optional[float] = None  #: absolute; None = no deadline
    metadata: Dict = field(default_factory=dict)
    #: stable hash of the queried state (see ``Env.state_key``); lets the
    #: server answer repeats from its admission cache.  None = uncacheable.
    state_key: Optional[int] = None

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def key(self) -> Tuple[str, int]:
        """(client_id, request_id): the reply-routing key."""
        return (self.client_id, self.request_id)


@dataclass
class EvalReply:
    """One server -> client reply."""

    request_id: int
    client_id: str
    status: str
    priors: Optional[np.ndarray] = None   #: float32 [rows, num_moves] when OK
    values: Optional[np.ndarray] = None   #: float32 [rows] when OK
    queue_delay_us: float = 0.0           #: arrival -> batch-start delay
    completion_us: float = 0.0            #: virtual time the reply left the server
    replica: int = -1                     #: serving replica index (-1 when shed)
    detail: str = ""                      #: human-readable shed/error context

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        return self.status in SHED_STATUSES

    @property
    def key(self) -> Tuple[str, int]:
        return (self.client_id, self.request_id)


def _pack(msg_type: int, header: Dict, arrays: List[np.ndarray]) -> bytes:
    blobs = [np.ascontiguousarray(a).tobytes() for a in arrays]
    payload = b"".join(blobs)
    header = dict(header)
    header["arrays"] = [
        {"dtype": str(np.ascontiguousarray(a).dtype), "shape": list(a.shape)}
        for a in arrays
    ]
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER_STRUCT.pack(MAGIC, PROTOCOL_VERSION, msg_type,
                               len(header_bytes), len(payload)) + header_bytes + payload


def _unpack_arrays(header: Dict, payload: bytes) -> List[np.ndarray]:
    arrays = []
    offset = 0
    for spec in header.get("arrays", []):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        # .copy() detaches from the frame buffer: decoded arrays are fresh,
        # writable, and share no memory with the sender's arrays.
        arrays.append(np.frombuffer(payload, dtype=dtype, count=int(np.prod(shape)),
                                    offset=offset).reshape(shape).copy())
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(f"payload length mismatch: consumed {offset} of {len(payload)} bytes")
    return arrays


class ProtocolError(ValueError):
    """A malformed, truncated or version-incompatible frame."""


def encode_request(request: EvalRequest) -> bytes:
    """Serialize a request into one wire frame."""
    features = np.asarray(request.features, dtype=np.float32)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ProtocolError(f"expected non-empty [rows, features] array, got shape {features.shape}")
    header = {
        "request_id": request.request_id,
        "client_id": request.client_id,
        "attempt": request.attempt,
        "send_us": request.send_us,
        "first_send_us": request.first_send_us,
        "deadline_us": request.deadline_us,
        "metadata": request.metadata,
    }
    if request.state_key is not None:
        # Only keyed requests carry the field: keyless frames stay
        # byte-identical to the pre-cache protocol.
        header["state_key"] = request.state_key
    return _pack(MSG_REQUEST, header, [features])


def encode_reply(reply: EvalReply) -> bytes:
    """Serialize a reply into one wire frame."""
    if reply.status not in STATUSES:
        raise ProtocolError(f"unknown reply status {reply.status!r}")
    arrays: List[np.ndarray] = []
    if reply.status == STATUS_OK:
        if reply.priors is None or reply.values is None:
            raise ProtocolError("an OK reply must carry priors and values")
        arrays = [np.asarray(reply.priors, dtype=np.float32),
                  np.asarray(reply.values, dtype=np.float32)]
    header = {
        "request_id": reply.request_id,
        "client_id": reply.client_id,
        "status": reply.status,
        "queue_delay_us": reply.queue_delay_us,
        "completion_us": reply.completion_us,
        "replica": reply.replica,
        "detail": reply.detail,
    }
    return _pack(MSG_REPLY, header, arrays)


def decode_message(data: bytes) -> Tuple[Union[EvalRequest, EvalReply], int]:
    """Decode one frame from the head of ``data``.

    Returns ``(message, bytes_consumed)``.  Raises :class:`ProtocolError` on
    a malformed frame and :class:`IncompleteFrame` when ``data`` holds only a
    prefix of a frame (a stream reader should wait for more bytes).
    """
    if len(data) < _HEADER_STRUCT.size:
        raise IncompleteFrame(_HEADER_STRUCT.size - len(data))
    magic, version, msg_type, header_len, payload_len = _HEADER_STRUCT.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header length {header_len} exceeds cap")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"declared payload length {payload_len} exceeds cap")
    total = _HEADER_STRUCT.size + header_len + payload_len
    if len(data) < total:
        raise IncompleteFrame(total - len(data))
    header_bytes = data[_HEADER_STRUCT.size:_HEADER_STRUCT.size + header_len]
    payload = data[_HEADER_STRUCT.size + header_len:total]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    try:
        return _decode_fields(msg_type, header, payload), total
    except ProtocolError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        # A corrupted header can parse as JSON yet carry the wrong shape —
        # missing keys, bad dtypes, non-numeric fields.  Every such frame is
        # malformed, never a crash: stream readers resynchronize past it.
        raise ProtocolError(f"bad frame content: {exc!r}") from exc


def _decode_fields(msg_type: int, header: Dict, payload: bytes
                   ) -> Union["EvalRequest", "EvalReply"]:
    arrays = _unpack_arrays(header, payload)
    if msg_type == MSG_REQUEST:
        if len(arrays) != 1:
            raise ProtocolError(f"a request frame carries one array, got {len(arrays)}")
        message: Union[EvalRequest, EvalReply] = EvalRequest(
            request_id=int(header["request_id"]),
            client_id=str(header["client_id"]),
            features=arrays[0],
            attempt=int(header["attempt"]),
            send_us=float(header["send_us"]),
            first_send_us=float(header["first_send_us"]),
            deadline_us=None if header["deadline_us"] is None else float(header["deadline_us"]),
            metadata=dict(header["metadata"]),
            state_key=(None if header.get("state_key") is None
                       else int(header["state_key"])),
        )
    elif msg_type == MSG_REPLY:
        status = str(header["status"])
        if status not in STATUSES:
            raise ProtocolError(f"unknown reply status {status!r}")
        if status == STATUS_OK and len(arrays) != 2:
            raise ProtocolError(f"an OK reply carries two arrays, got {len(arrays)}")
        message = EvalReply(
            request_id=int(header["request_id"]),
            client_id=str(header["client_id"]),
            status=status,
            priors=arrays[0] if arrays else None,
            values=arrays[1] if len(arrays) > 1 else None,
            queue_delay_us=float(header["queue_delay_us"]),
            completion_us=float(header["completion_us"]),
            replica=int(header["replica"]),
            detail=str(header["detail"]),
        )
    else:
        raise ProtocolError(f"unknown message type {msg_type}")
    return message


class IncompleteFrame(Exception):
    """Raised by :func:`decode_message` when more bytes are needed."""

    def __init__(self, missing: int) -> None:
        super().__init__(f"frame incomplete: at least {missing} more bytes needed")
        self.missing = missing


class MessageStream:
    """Reassembles frames from an arbitrarily-chunked byte stream.

    A TCP connection delivers bytes, not messages: one ``recv`` may hold half
    a frame or three frames and a tail.  ``feed`` buffers incoming chunks and
    returns every complete message, in order, leaving any trailing partial
    frame buffered for the next feed.

    A malformed frame (corrupt magic, bad version, mangled header …) no
    longer poisons the stream: the reader counts it in ``corrupt_frames``,
    scans forward to the next occurrence of the magic bytes, and resumes
    decoding there — so one corrupted frame costs exactly that frame, not
    every frame after it.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Corruption incidents skipped by the resynchronization scan: a
        #: frame whose magic survived but whose content is invalid counts
        #: one, and a contiguous run of magic-less garbage counts one (its
        #: bytes are indistinguishable from the tail of the frame whose
        #: header was destroyed).
        self.corrupt_frames = 0
        self._skipping = False  #: inside a garbage run already counted

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Union[EvalRequest, EvalReply]]:
        self._buffer.extend(data)
        messages: List[Union[EvalRequest, EvalReply]] = []
        view = bytes(self._buffer)
        offset = 0
        while offset < len(view):
            try:
                message, consumed = decode_message(view[offset:])
            except IncompleteFrame:
                break
            except ProtocolError:
                at_magic = view[offset:offset + len(MAGIC)] == MAGIC
                if at_magic or not self._skipping:
                    self.corrupt_frames += 1
                self._skipping = True
                resync = view.find(MAGIC, offset + 1)
                if resync == -1:
                    # No further magic: drop everything but a possible
                    # partial-magic tail and wait for more bytes.
                    offset = max(offset + 1, len(view) - (len(MAGIC) - 1))
                    break
                offset = resync
                continue
            self._skipping = False
            messages.append(message)
            offset += consumed
        if offset:
            del self._buffer[:offset]
        return messages
