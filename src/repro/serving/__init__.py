"""repro.serving: the networked inference tier.

A message-based serving layer over :mod:`repro.minigo.inference`: a framed
wire protocol, a virtual-time server with per-client admission control and a
bounded ingress queue (block / shed-newest / shed-oldest / deadline-drop),
retrying clients, open-loop traffic models (Poisson / bursty MMPP / trace
replay), a deterministic event loop, and SLO reporting.  See the README's
"Networked serving" section for the tour.
"""

from .client import NO_RETRY, ClientStats, RetryPolicy, ServingClient, key_features
from .loadgen import (
    ArrivalProcess,
    BurstyProcess,
    LoadGenerator,
    PoissonProcess,
    TraceReplay,
)
from .protocol import (
    MSG_REPLY,
    MSG_REQUEST,
    PROTOCOL_VERSION,
    SHED_STATUSES,
    STATUS_OK,
    STATUS_SHED_DEADLINE,
    STATUS_SHED_QUEUE,
    STATUS_SHED_RATE,
    STATUSES,
    EvalReply,
    EvalRequest,
    IncompleteFrame,
    MessageStream,
    ProtocolError,
    decode_message,
    encode_reply,
    encode_request,
)
from .server import (
    OVERLOAD_BLOCK,
    OVERLOAD_DEADLINE_DROP,
    OVERLOAD_POLICIES,
    OVERLOAD_SHED_NEWEST,
    OVERLOAD_SHED_OLDEST,
    InferenceServer,
    ServerStats,
    TokenBucket,
    estimate_capacity_rows_per_sec,
)
from .simulation import ServingRunResult, run_serving
from .slo import DEFAULT_PERCENTILES, SLOReport, build_slo_report, percentiles

__all__ = [
    "ArrivalProcess",
    "BurstyProcess",
    "ClientStats",
    "DEFAULT_PERCENTILES",
    "EvalReply",
    "EvalRequest",
    "IncompleteFrame",
    "InferenceServer",
    "LoadGenerator",
    "MessageStream",
    "MSG_REPLY",
    "MSG_REQUEST",
    "NO_RETRY",
    "OVERLOAD_BLOCK",
    "OVERLOAD_DEADLINE_DROP",
    "OVERLOAD_POLICIES",
    "OVERLOAD_SHED_NEWEST",
    "OVERLOAD_SHED_OLDEST",
    "PoissonProcess",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RetryPolicy",
    "ServerStats",
    "ServingClient",
    "ServingRunResult",
    "SHED_STATUSES",
    "SLOReport",
    "STATUS_OK",
    "STATUS_SHED_DEADLINE",
    "STATUS_SHED_QUEUE",
    "STATUS_SHED_RATE",
    "STATUSES",
    "TokenBucket",
    "TraceReplay",
    "build_slo_report",
    "decode_message",
    "encode_reply",
    "encode_request",
    "estimate_capacity_rows_per_sec",
    "key_features",
    "percentiles",
    "run_serving",
]
