"""Virtual-time inference server: admission control, bounded ingress, shedding.

:class:`InferenceServer` is the serving tier between remote clients and the
sharded :class:`~repro.minigo.inference.InferenceService`.  It consumes
framed :class:`~repro.serving.protocol.EvalRequest` messages and defends the
replica pool with three mechanisms a production inference frontend needs and
the in-process pool never did:

* **Per-client admission control** — a token bucket per client id
  (``rate_limit_per_sec`` requests sustained, ``rate_burst`` burst).  A
  denied request is answered immediately with :data:`STATUS_SHED_RATE`.
* **A bounded ingress queue** — at most ``queue_capacity`` admitted
  requests may be *incomplete* (waiting for a batch slot or executing on a
  replica).  The bound is a concurrency window, not just a buffer size: a
  full batch dispatched onto a busy replica's horizon still occupies its
  slots until its completion time, so backlog can never hide on the replica
  queue — overload always surfaces at admission, where the configurable
  policy decides who loses:

  - :data:`OVERLOAD_BLOCK` — backpressure: the request waits *outside* the
    queue (its latency grows, nothing is dropped);
  - :data:`OVERLOAD_SHED_NEWEST` — the arriving request is dropped;
  - :data:`OVERLOAD_SHED_OLDEST` — the oldest queued request is dropped to
    admit the new one (fresh work is worth more than stale work);
  - :data:`OVERLOAD_DEADLINE_DROP` — queued requests whose deadline already
    passed are purged first; only if none expired does the arrival shed.

* **Batched serving on the replica pool** — admitted requests enter the
  *service's* arrival-order queue and depart under the PR 3 flush policies
  (full batches serve immediately; under ``timeout`` a partial batch departs
  at ``first arrival + flush_timeout_us``), start at ``max(departure,
  replica free)`` under the PR 4 routing policy, and complete on the replica
  horizon.  With admission disabled (``rate_limit_per_sec=None``) and the
  queue unbounded (``queue_capacity=None``) the server adds **zero**
  perturbation: the underlying service sees exactly the submissions and
  serve calls the PR 4 scheduler idiom would issue, so its
  :class:`~repro.minigo.inference.InferenceStats` reproduce exactly.

Everything runs in virtual time under seed control.  The server's clock is a
**cursor**: the event loop seeks it to each event's virtual time, batches
execute on it (sampling durations from the gateway's cost model RNG), and
replica horizons carry the serialization — so the whole tier is
deterministic: same seed + same config ⇒ identical decision log, identical
stats, identical replies.

Every externally visible choice the server makes is appended to
:attr:`InferenceServer.decision_log` — the reproducibility artifact the
determinism bar compares byte-for-byte.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..backend.graph import GraphEngine
from ..cuda.runtime import CudaRuntime
from ..hw.clock import VirtualClock
from ..hw.costmodel import CostModel, CostModelConfig
from ..hw.gpu import GPUDevice
from ..minigo.inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
    InferenceService,
    InferenceTicket,
    ROUTING_ROUND_ROBIN,
    RoutingPolicy,
)
from ..faults.plan import FaultInjector, FaultPlan
from ..rollout.evalcache import EvalCache
from ..system import System
from .protocol import (
    STATUS_OK,
    STATUS_SHED_DEADLINE,
    STATUS_SHED_QUEUE,
    STATUS_SHED_RATE,
    EvalReply,
    EvalRequest,
    MessageStream,
    encode_reply,
)

#: Overload policies for the bounded ingress queue.
OVERLOAD_BLOCK = "block"
OVERLOAD_SHED_NEWEST = "shed-newest"
OVERLOAD_SHED_OLDEST = "shed-oldest"
OVERLOAD_DEADLINE_DROP = "deadline-drop"
OVERLOAD_POLICIES = (OVERLOAD_BLOCK, OVERLOAD_SHED_NEWEST,
                     OVERLOAD_SHED_OLDEST, OVERLOAD_DEADLINE_DROP)


class _CursorClock(VirtualClock):
    """A virtual clock the server event loop can *seek*.

    The gateway executes every batch, so after serving at event time ``t``
    its clock sits at that batch's end — possibly past the next arrival.
    Real timelines live on the replica horizons and in per-request
    timestamps; the gateway clock is only the cursor batches are executed
    against, so seeking it back to the next event's time is safe and is what
    lets batches on different replicas overlap instead of serializing
    through one host clock.
    """

    __slots__ = ()

    def seek(self, time_us: float) -> None:
        self._now_us = float(time_us)


class TokenBucket:
    """Token-bucket rate limiter in virtual time.

    Sustains ``rate_per_sec`` admissions per virtual second with bursts of up
    to ``burst`` back-to-back requests.  ``rate_per_sec=None`` disables
    limiting (every request admitted).
    """

    def __init__(self, rate_per_sec: Optional[float], burst: float = 1.0) -> None:
        if rate_per_sec is not None and rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive (or None to disable)")
        if burst < 1.0:
            raise ValueError("burst must allow at least one request")
        self.rate_per_sec = rate_per_sec
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_us = 0.0
        self._base_rate = rate_per_sec  #: configured rate before degraded scaling

    def rescale(self, scale: float) -> None:
        """Scale the sustained rate to ``scale`` of the configured rate.

        Degraded-mode hook: tokens already accrued are kept (the bucket only
        refills more slowly), and ``scale=1.0`` restores the configured rate
        exactly.  A no-op for unlimited buckets.
        """
        if self._base_rate is None:
            return
        self.rate_per_sec = self._base_rate * scale

    def admit(self, now_us: float) -> bool:
        if self.rate_per_sec is None:
            return True
        elapsed_us = max(now_us - self._last_us, 0.0)
        self._last_us = max(now_us, self._last_us)
        self.tokens = min(self.burst, self.tokens + elapsed_us * self.rate_per_sec / 1e6)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class ServerStats:
    """Counters describing one server run (admission + queueing decisions)."""

    arrivals: int = 0          #: request frames received (retries included)
    admitted: int = 0          #: requests that entered the ingress queue
    served: int = 0            #: OK replies produced
    shed_rate: int = 0         #: denied by the per-client token bucket
    shed_queue: int = 0        #: dropped because the ingress queue was full
    shed_deadline: int = 0     #: purged from the queue past their deadline
    blocked: int = 0           #: arrivals parked outside a full queue (block policy)
    block_time_us: float = 0.0  #: total virtual time spent parked
    serve_calls: int = 0       #: serve_queued invocations that issued calls
    timeout_serves: int = 0    #: serves triggered by a partial-batch deadline
    peak_queue_tickets: int = 0  #: high-water mark of the ingress queue
    peak_backlog: int = 0      #: high-water mark of the blocked backlog
    rows_served: int = 0       #: feature rows in batch-served OK replies
    cache_hits: int = 0        #: OK replies answered at admission from the cache
    cache_rows: int = 0        #: feature rows in cache-hit replies
    cache_evictions: int = 0   #: admission-cache LRU evictions
    corrupt_frames: int = 0    #: malformed wire frames skipped by stream resync
    degraded_entries: int = 0  #: transitions into degraded (reduced-capacity) mode

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue + self.shed_deadline

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def cache_hit_fraction(self) -> float:
        return self.cache_hits / self.arrivals if self.arrivals else 0.0


class _Inflight:
    """Book-keeping for one admitted request awaiting its batch."""

    __slots__ = ("request", "ticket", "admitted_us", "arrived_us")

    def __init__(self, request: EvalRequest, ticket: InferenceTicket,
                 admitted_us: float, arrived_us: float) -> None:
        self.request = request
        self.ticket = ticket
        self.admitted_us = admitted_us  #: when it entered the service queue
        self.arrived_us = arrived_us    #: when its frame reached the server


class InferenceServer:
    """Message-based serving tier over a sharded :class:`InferenceService`.

    All requests are multiplexed through one *gateway* client of the
    underlying service (the frontend process); per-remote-client accounting
    happens here, keyed by the wire ``client_id``.  Interactions return
    ``(reply_frame_bytes, delivery_time_us)`` pairs: shed replies deliver at
    the event's own time, served replies at their batch's completion time.
    """

    def __init__(self, network, *,
                 max_batch: int = 8,
                 queue_capacity: Optional[int] = 64,
                 overload: str = OVERLOAD_SHED_NEWEST,
                 rate_limit_per_sec: Optional[float] = None,
                 rate_burst: float = 4.0,
                 flush_policy: str = FLUSH_TIMEOUT,
                 flush_timeout_us: Optional[float] = 200.0,
                 num_replicas: int = 1,
                 routing: Union[str, RoutingPolicy] = ROUTING_ROUND_ROBIN,
                 cost_config: Optional[CostModelConfig] = None,
                 seed: int = 0,
                 name: str = "inference_server",
                 keep_decision_log: bool = True,
                 cache_capacity: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 degraded_admission: bool = True) -> None:
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(f"unknown overload policy {overload!r}; "
                             f"expected one of {OVERLOAD_POLICIES}")
        if queue_capacity is not None and queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive (or None for unbounded)")
        if flush_policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {flush_policy!r}; "
                             f"expected one of {FLUSH_POLICIES}")
        if flush_policy != FLUSH_TIMEOUT:
            flush_timeout_us = None
        elif flush_timeout_us is None or flush_timeout_us < 0:
            raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        self.name = name
        self.overload = overload
        self.queue_capacity = queue_capacity
        self.rate_limit_per_sec = rate_limit_per_sec
        self.rate_burst = rate_burst
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        # The gateway: the frontend's own "process" — a cursor clock, its own
        # cost-model RNG (samples batch durations) and engine.  Mirrors
        # System.create, with the seekable clock swapped in.
        cost_model = CostModel(cost_config, seed=seed + 7777)
        #: the serving tier's primary GPU (replica 0); further replicas get
        #: their own devices inside the service, exactly as in PR 4.
        self.device = GPUDevice(cost_model=cost_model)
        self.service = InferenceService(
            network, max_batch=max_batch, name=f"{name}/service",
            num_replicas=num_replicas, routing=routing,
            primary_device=self.device, cost_config=cost_config, seed=seed)
        clock = _CursorClock()
        cuda = CudaRuntime(clock, cost_model, self.device, worker=f"{name}/gateway")
        self._gateway_system = System(clock=clock, cost_model=cost_model,
                                      device=self.device, cuda=cuda,
                                      worker=f"{name}/gateway")
        self._clock = clock
        engine = GraphEngine(self._gateway_system, flavor="tensorflow")
        self.gateway = self.service.connect(self._gateway_system, engine,
                                            worker=f"{name}/gateway")
        #: admission-time evaluation cache, keyed on (service weight version,
        #: request state_key).  A hit is answered before the token bucket and
        #: the concurrency window — it consumes neither.  None = disabled,
        #: and the server's decisions are bit-for-bit those of a cacheless one.
        self.eval_cache = (EvalCache(cache_capacity)
                           if cache_capacity is not None else None)
        self.stats = ServerStats()
        self.decision_log: List[Tuple[float, str, str, int, str]] = []
        self._keep_log = keep_decision_log
        #: the fault injector, or None for a fault-free run.  An *empty*
        #: plan also maps to None: every fault hook below early-outs, so the
        #: server is bit-for-bit the pre-fault-injection one.
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None and not fault_plan.empty:
            self.fault_injector = FaultInjector(fault_plan)
            self.service.attach_fault_injector(self.fault_injector)
        #: when True (default), losing replica capacity tightens admission:
        #: the ingress window and every token bucket scale by the surviving
        #: capacity fraction.  False keeps full-capacity admission during
        #: faults — the no-degrade control arm of the fault sweep.
        self.degraded_admission = degraded_admission
        self._capacity_scale = 1.0
        self._fault_log_cursor = 0
        self._stream = MessageStream()
        self._stream_corrupt_seen = 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[Tuple[str, int], _Inflight] = {}
        self._backlog: Deque[EvalRequest] = deque()  #: block-policy waiting room
        #: completion times of dispatched-but-not-finished requests: a min
        #: heap so occupancy checks pop finished entries lazily.  Dispatched
        #: work holds its queue slots until completion (see class docstring).
        self._in_service: List[float] = []

    # ------------------------------------------------------------- plumbing
    @property
    def max_batch(self) -> int:
        return self.service.max_batch

    @property
    def pending_tickets(self) -> int:
        return self.service.pending_tickets

    def _log(self, time_us: float, event: str, client_id: str, request_id: int,
             detail: str = "") -> None:
        if self._keep_log:
            self.decision_log.append((time_us, event, client_id, request_id, detail))

    def decision_log_lines(self) -> List[str]:
        """The decision log as stable text lines (byte-comparable)."""
        return [f"{t:.3f} {event} {client}#{rid}" + (f" {detail}" if detail else "")
                for t, event, client, rid, detail in self.decision_log]

    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate_limit_per_sec, self.rate_burst)
            if self._capacity_scale < 1.0:
                bucket.rescale(self._capacity_scale)
            self._buckets[client_id] = bucket
        return bucket

    def occupancy(self, now_us: float) -> int:
        """Admitted requests still incomplete at ``now_us`` (queued + executing)."""
        while self._in_service and self._in_service[0] <= now_us:
            heapq.heappop(self._in_service)
        return self.service.pending_tickets + len(self._in_service)

    def effective_capacity(self) -> Optional[int]:
        """The ingress window after degraded-mode scaling (None if unbounded).

        Under degraded admission the window shrinks proportionally to the
        surviving replica capacity — with half the replicas down, admitting a
        full window would double per-replica queueing and blow latency SLOs;
        shedding the excess at admission keeps the survivors' latency flat.
        Never shrinks below one slot.
        """
        if self.queue_capacity is None:
            return None
        if self._capacity_scale >= 1.0:
            return self.queue_capacity
        return max(1, int(round(self.queue_capacity * self._capacity_scale)))

    def _has_space(self, now_us: float) -> bool:
        capacity = self.effective_capacity()
        return capacity is None or self.occupancy(now_us) < capacity

    # ---------------------------------------------------------------- faults
    def _sync_faults(self, now_us: float) -> None:
        """Apply due replica faults, refresh degraded mode, surface the log."""
        if self.fault_injector is None:
            return
        self.service.apply_due_faults(now_us)
        self._refresh_degraded(now_us)
        self._drain_fault_log()

    def _refresh_degraded(self, now_us: float) -> None:
        """Re-derive the capacity scale from current replica health."""
        if not self.degraded_admission:
            return
        replicas = self.service.replicas
        healthy = sum(1 for replica in replicas if replica.healthy)
        scale = healthy / len(replicas)
        if scale == self._capacity_scale:
            return
        entering = scale < self._capacity_scale
        self._capacity_scale = scale
        for bucket in self._buckets.values():
            bucket.rescale(scale)
        if entering:
            self.stats.degraded_entries += 1
        event = "degrade" if entering else "restore"
        if self.fault_injector is not None:
            self.fault_injector.record(
                now_us, event,
                detail=f"capacity_scale={scale:g} window={self.effective_capacity()}")

    def _drain_fault_log(self) -> None:
        """Append new fault-injector log lines to the decision log.

        Injector lines are ``"{time:.3f} {kind}[ target=N][ detail]"``; they
        enter the decision log under the reserved client id ``"-"`` so
        :meth:`decision_log_lines` renders them alongside admission events
        and the determinism bar covers fault decisions too.
        """
        injector = self.fault_injector
        if injector is None or not self._keep_log:
            return
        while self._fault_log_cursor < len(injector.log):
            line = injector.log[self._fault_log_cursor]
            self._fault_log_cursor += 1
            parts = line.split(" ", 2)
            time_us = float(parts[0])
            detail = parts[2] if len(parts) > 2 else ""
            self.decision_log.append((time_us, parts[1], "-", 0, detail))

    def _shed_reply(self, request: EvalRequest, status: str, now_us: float,
                    detail: str = "") -> Tuple[bytes, float]:
        reply = EvalReply(request_id=request.request_id, client_id=request.client_id,
                          status=status, completion_us=now_us, detail=detail)
        return encode_reply(reply), now_us

    # ------------------------------------------------------------ admission
    def receive(self, frame: bytes, now_us: float) -> List[Tuple[bytes, float]]:
        """Handle request bytes arriving at virtual time ``now_us``.

        Returns ``(reply_frame, delivery_time_us)`` pairs: an immediate shed
        reply, and/or OK replies for any batches the arrival caused to serve
        (its own full batch, or freed backlog admissions).

        Frames flow through a resynchronizing :class:`MessageStream`: a
        malformed frame is skipped to the next magic marker and counted in
        :attr:`ServerStats.corrupt_frames` rather than wedging the server
        (chunked/coalesced delivery is likewise tolerated).
        """
        messages = self._stream.feed(frame)
        corrupt = self._stream.corrupt_frames - self._stream_corrupt_seen
        if corrupt:
            self._stream_corrupt_seen = self._stream.corrupt_frames
            self.stats.corrupt_frames += corrupt
            self._log(now_us, "corrupt-frame", "-", 0, f"frames={corrupt}")
        replies: List[Tuple[bytes, float]] = []
        for message in messages:
            if not isinstance(message, EvalRequest):
                raise ValueError("the server accepts request frames only")
            replies.extend(self.offer(message, now_us))
        return replies

    def offer(self, request: EvalRequest, now_us: float) -> List[Tuple[bytes, float]]:
        """Admission-control one decoded request (see :meth:`receive`)."""
        self._sync_faults(now_us)
        self.stats.arrivals += 1
        self._log(now_us, "arrive", request.client_id, request.request_id,
                  f"attempt={request.attempt} rows={request.num_rows}")
        if request.key in self._inflight:
            raise ValueError(f"duplicate in-flight request {request.key}")
        hit = self._admission_hit(request, now_us)
        if hit is not None:
            return [hit]
        if not self._bucket(request.client_id).admit(now_us):
            self.stats.shed_rate += 1
            self._log(now_us, STATUS_SHED_RATE, request.client_id, request.request_id)
            return [self._shed_reply(request, STATUS_SHED_RATE, now_us,
                                     detail="token bucket empty")]
        replies: List[Tuple[bytes, float]] = []
        if not self._has_space(now_us):
            if self._apply_overload_policy(request, now_us, replies):
                return replies
            if self.overload == OVERLOAD_BLOCK:
                # Parked in the backlog; it enters the queue when a serve
                # frees space (see _pump).
                replies.extend(self._pump(now_us))
                return replies
            # shed-oldest / deadline-drop freed a slot for this arrival.
        self._enqueue(request, now_us, now_us)
        replies.extend(self._pump(now_us))
        return replies

    def _admission_hit(self, request: EvalRequest,
                       now_us: float) -> Optional[Tuple[bytes, float]]:
        """Answer a keyed repeat from the cache, before any defence spends.

        A hit bypasses the token bucket and the concurrency window: the
        reply is built at admission time from the cached priors/values, so
        under overload every hit is one request that can neither be shed
        nor occupy a window slot.  Logged as its own decision-log event.
        """
        if self.eval_cache is None or request.state_key is None:
            return None
        entry = self.eval_cache.get((self.service.weight_version, request.state_key))
        if entry is None:
            return None
        priors, values = entry
        if priors.shape[0] != request.num_rows:
            return None  # same key but a different row block: not our entry
        self.stats.cache_hits += 1
        self.stats.cache_rows += request.num_rows
        self._log(now_us, "cache-hit", request.client_id, request.request_id,
                  f"key={request.state_key} version={self.service.weight_version}")
        reply = EvalReply(request_id=request.request_id,
                          client_id=request.client_id,
                          status=STATUS_OK, priors=priors, values=values,
                          queue_delay_us=0.0, completion_us=now_us,
                          replica=-1, detail="cache")
        return encode_reply(reply), now_us

    def _apply_overload_policy(self, request: EvalRequest, now_us: float,
                               replies: List[Tuple[bytes, float]]) -> bool:
        """Resolve a full ingress queue.  Returns True when ``request`` sheds."""
        if self.overload == OVERLOAD_BLOCK:
            self.stats.blocked += 1
            self.stats.peak_backlog = max(self.stats.peak_backlog, len(self._backlog) + 1)
            self._backlog.append(request)
            self._log(now_us, "block", request.client_id, request.request_id,
                      f"backlog={len(self._backlog)}")
            return False
        if self.overload == OVERLOAD_SHED_OLDEST:
            victim = self._oldest_pending()
            if victim is not None:
                self._drop([victim], STATUS_SHED_QUEUE, now_us, replies,
                           detail="evicted for newer arrival")
                return False  # space freed; the arrival is admitted
            # Nothing evictable (queue drained between check and policy):
            # fall through to shedding the newcomer.
        if self.overload == OVERLOAD_DEADLINE_DROP:
            expired = [entry for entry in self._inflight.values()
                       if not entry.ticket.done
                       and entry.request.deadline_us is not None
                       and entry.request.deadline_us < now_us]
            if expired:
                self._drop(expired, STATUS_SHED_DEADLINE, now_us, replies)
                if self._has_space(now_us):
                    return False
        # shed-newest (and the fallbacks above): the arrival is dropped.
        self.stats.shed_queue += 1
        self._log(now_us, STATUS_SHED_QUEUE, request.client_id, request.request_id,
                  f"policy={self.overload}")
        replies.append(self._shed_reply(request, STATUS_SHED_QUEUE, now_us,
                                        detail=f"queue full ({self.overload})"))
        return True

    def _oldest_pending(self) -> Optional[_Inflight]:
        """The earliest-admitted request still waiting in the service queue."""
        for entry in self._inflight.values():  # insertion == admission order
            if not entry.ticket.done:
                return entry
        return None

    def _drop(self, entries: List[_Inflight], status: str, now_us: float,
              replies: List[Tuple[bytes, float]], detail: str = "") -> None:
        """Shed queued entries: pull their tickets, log, and reply."""
        doomed = {id(entry.ticket) for entry in entries}
        dropped = self.service.drop_pending(lambda t: id(t) in doomed)
        assert len(dropped) == len(entries), "shed requests must still be pending"
        for entry in entries:
            del self._inflight[entry.request.key]
            if status == STATUS_SHED_DEADLINE:
                self.stats.shed_deadline += 1
            else:
                self.stats.shed_queue += 1
            self._log(now_us, status, entry.request.client_id,
                      entry.request.request_id, detail)
            replies.append(self._shed_reply(entry.request, status, now_us, detail=detail))

    def _enqueue(self, request: EvalRequest, now_us: float, arrived_us: float) -> None:
        """Move an admitted request into the service's arrival-order queue."""
        self._clock.seek(now_us)
        metadata = dict(request.metadata)
        metadata["request_id"] = request.request_id
        metadata["client_id"] = request.client_id
        ticket = self.gateway.submit(request.features, metadata=metadata)
        self._inflight[request.key] = _Inflight(request, ticket, now_us, arrived_us)
        self.stats.admitted += 1
        self.stats.peak_queue_tickets = max(self.stats.peak_queue_tickets,
                                            self.service.pending_tickets)
        self._log(now_us, "admit", request.client_id, request.request_id,
                  f"queue={self.service.pending_tickets}")

    # -------------------------------------------------------------- serving
    def _serve_full(self, now_us: float) -> int:
        """Serve whatever is due *now*: full batches (or everything, unbatched)."""
        if self.service.pending_tickets == 0:
            return 0
        if self.flush_policy == FLUSH_UNBATCHED:
            self._clock.seek(now_us)
            return self.service.serve_queued(policy=FLUSH_UNBATCHED)
        if self.service.pending_rows < self.service.max_batch:
            return 0
        self._clock.seek(now_us)
        return self.service.serve_queued(
            policy=self.flush_policy, timeout_us=self.flush_timeout_us,
            full_batches_only=True, stable_before_us=now_us)

    def _pump(self, now_us: float) -> List[Tuple[bytes, float]]:
        """Serve due batches, deliver replies, refill from the backlog."""
        replies: List[Tuple[bytes, float]] = []
        progress = True
        while progress:
            progress = False
            calls = self._serve_full(now_us)
            if calls:
                self.stats.serve_calls += 1
                progress = True
            replies.extend(self._collect())
            while self._backlog and self._has_space(now_us):
                request = self._backlog.popleft()
                self.stats.block_time_us += now_us - request.send_us
                self._log(now_us, "unblock", request.client_id, request.request_id,
                          f"waited={now_us - request.send_us:.1f}us")
                self._enqueue(request, now_us, request.send_us)
                progress = True
        if self.fault_injector is not None:
            # Serving may have consumed crash events (redispatch path):
            # refresh degraded state and surface what the injector logged.
            self._refresh_degraded(now_us)
            self._drain_fault_log()
        return replies

    def _collect(self) -> List[Tuple[bytes, float]]:
        """Build OK reply frames for every ticket its batch completed."""
        done = [entry for entry in self._inflight.values() if entry.ticket.done]
        replies: List[Tuple[bytes, float]] = []
        for entry in done:
            del self._inflight[entry.request.key]
            ticket, request = entry.ticket, entry.request
            meta = ticket.metadata or {}
            completion_us = float(meta.get("completion_us", 0.0))
            reply = EvalReply(
                request_id=request.request_id,
                client_id=request.client_id,
                status=STATUS_OK,
                priors=ticket.priors,
                values=ticket.values,
                queue_delay_us=float(meta.get("queue_delay_us", 0.0)),
                completion_us=completion_us,
                replica=int(meta.get("replica", -1)),
            )
            self.stats.served += 1
            self.stats.rows_served += ticket.num_rows
            if self.eval_cache is not None and request.state_key is not None:
                # Copies detach the cached rows from the batch output the
                # ticket slices are views into (and from later mutation).
                self.stats.cache_evictions += self.eval_cache.put(
                    (self.service.weight_version, request.state_key),
                    np.array(ticket.priors, copy=True),
                    np.array(ticket.values, copy=True))
            heapq.heappush(self._in_service, completion_us)
            self._log(completion_us, "serve", request.client_id, request.request_id,
                      f"delay={reply.queue_delay_us:.1f}us replica={reply.replica}")
            replies.append((encode_reply(reply), completion_us))
        return replies

    # ---------------------------------------------------------- timer hooks
    def _flush_deadline_us(self) -> Optional[float]:
        """When the oldest pending partial batch times out (None if never)."""
        if self.flush_policy != FLUSH_TIMEOUT:
            return None
        earliest = self.service.earliest_pending_arrival_us()
        if earliest is None:
            return None
        return earliest + self.flush_timeout_us

    def next_deadline_us(self) -> Optional[float]:
        """The next virtual time the server needs a timer event (None if never).

        Either a partial-batch flush deadline, or — when blocked requests
        wait on a full window — the earliest in-service completion, which
        frees a slot for the backlog head.
        """
        candidates = []
        flush = self._flush_deadline_us()
        if flush is not None:
            candidates.append(flush)
        if self._backlog and self._in_service:
            candidates.append(self._in_service[0])
        return min(candidates) if candidates else None

    def on_timer(self, now_us: float) -> List[Tuple[bytes, float]]:
        """Fire a timer event: flush a due partial batch, refill the backlog.

        Stale timers (the deadline moved because the batch already served or
        gathered more riders; the slot was taken by a newer serve) degrade
        to a no-op pump, so the event loop may over-schedule timers freely.
        """
        self._sync_faults(now_us)
        replies: List[Tuple[bytes, float]] = []
        deadline = self._flush_deadline_us()
        if deadline is not None and now_us >= deadline:
            self._clock.seek(now_us)
            calls = self.service.serve_queued(policy=self.flush_policy,
                                              timeout_us=self.flush_timeout_us,
                                              arrival_cutoff_us=deadline)
            if calls:
                self.stats.serve_calls += 1
                self.stats.timeout_serves += 1
            replies.extend(self._collect())
        replies.extend(self._pump(now_us))
        return replies

    def drain(self, now_us: float) -> List[Tuple[bytes, float]]:
        """Serve everything still queued or blocked after arrivals stop.

        The server keeps running past the load generator's horizon: held
        partial batches depart at their flush deadlines (``timeout`` policy)
        or immediately (other policies), and the blocked backlog is admitted
        as completions free window slots — virtual time advances to each
        completion as needed.  Returns the remaining replies.
        """
        self._sync_faults(now_us)
        replies: List[Tuple[bytes, float]] = []
        now = now_us
        guard = 0
        while self.service.pending_tickets or self._backlog:
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - defensive
                raise RuntimeError("drain did not converge")
            before = len(replies)
            deadline = self._flush_deadline_us()
            if deadline is not None:
                now = max(now, deadline)
                replies.extend(self.on_timer(now))
                if len(replies) > before:
                    continue
            if self.service.pending_tickets:
                # No flush deadline applies (max-batch/unbatched policy):
                # flush the held partials right away.
                self._clock.seek(now)
                if self.service.serve_queued(policy=self.flush_policy,
                                             timeout_us=self.flush_timeout_us):
                    self.stats.serve_calls += 1
                replies.extend(self._collect())
            replies.extend(self._pump(now))
            if self._backlog and not self._has_space(now) and self._in_service:
                # The window is full of executing work: jump to the next
                # completion so a slot frees for the backlog head.
                now = max(now, self._in_service[0])
        return replies


def estimate_capacity_rows_per_sec(network_factory, *, feature_dim: int,
                                   max_batch: int = 8,
                                   cost_config: Optional[CostModelConfig] = None,
                                   seed: int = 0, probes: int = 8) -> float:
    """Measure one replica's serving capacity in feature rows per virtual second.

    Runs ``probes`` full batches through a throwaway single-replica service
    and reads the mean batch time off the replica horizon.  Deterministic
    given the seed, so sweeps can express arrival rates as multiples of
    capacity ("2x overload") without hard-coding cost-model numbers.
    """
    if probes <= 0:
        raise ValueError("probes must be positive")
    server = InferenceServer(network_factory(), max_batch=max_batch,
                             queue_capacity=None, rate_limit_per_sec=None,
                             flush_policy=FLUSH_MAX_BATCH,
                             cost_config=cost_config, seed=seed,
                             name="capacity_probe", keep_decision_log=False)
    rng = np.random.default_rng(seed + 13)
    now = 0.0
    for index in range(probes):
        features = rng.normal(size=(max_batch, feature_dim)).astype(np.float32)
        request = EvalRequest(request_id=index, client_id="probe",
                              features=features, send_us=now, first_send_us=now)
        server.offer(request, now)
        now = server.service.replicas[0].free_us
    replica = server.service.replicas[0]
    assert replica.stats.engine_calls == probes
    mean_batch_us = replica.busy_us / probes
    return max_batch * 1e6 / mean_batch_us
