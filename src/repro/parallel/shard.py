"""Child-process side of the multiprocess pool: one shard of worker stacks.

A :class:`WorkerShard` owns a subset of a pool's workers inside one OS
process.  It rebuilds those workers from a picklable :class:`ShardSpec`
(pool constructor kwargs + owned worker indices) — every per-worker RNG
stream is derived explicitly from ``(seed, worker_index)`` (see
:mod:`repro.rollout.seeding`), so a stack built here is bit-identical to
the one the single-process pool would have built.

Between inference serves the shard advances each owned driver on its own —
:meth:`run_segment` steps a driver until it suspends at an inference
boundary and records every step's virtual-clock interval.  The parent
replays those records through real :class:`~repro.parallel.proxy.ProxyDriver`
objects, so the unchanged :class:`~repro.rollout.scheduler.PoolScheduler`
makes exactly the sequential run's decisions.  The shard also executes the
engine calls of every batch *hosted* by one of its workers
(:meth:`execute`): kernels charge the host worker's own cost model and
streams, keeping the merged device timeline identical to the sequential
run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ShardSpec:
    """Everything one shard process needs to rebuild its workers.

    ``pool_config`` holds the owning pool's constructor kwargs (without the
    multiprocess parameters); it must be picklable — pools with closure-based
    ``policy_factory``/``forward`` callables cannot run multiprocess.
    """

    kind: str                       #: "selfplay" | "envrollout"
    pool_config: dict
    worker_indices: List[int]       #: global worker indices owned by this shard
    weights: Optional[list] = field(default=None, repr=False)
    #: optional windex → snapshot blob: drivers listed here are rebuilt from
    #: their snapshot (mid-run recovery) instead of starting fresh.
    restore: Optional[Dict[int, bytes]] = field(default=None, repr=False)


class WorkerShard:
    """One process's batch of fully-built worker stacks and their drivers."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.drivers: Dict[int, object] = {}
        self.systems: Dict[int, object] = {}
        self.host_clients: Dict[int, object] = {}
        self.profilers: Dict[int, object] = {}
        self.tickets: Dict[int, object] = {}
        if spec.kind == "selfplay":
            self._build_selfplay(spec)
        elif spec.kind == "envrollout":
            self._build_envrollout(spec)
        else:
            raise ValueError(f"unknown shard kind {spec.kind!r}")

    # ---------------------------------------------------------------- build
    def _build_selfplay(self, spec: ShardSpec) -> None:
        from ..minigo.selfplay import GameDriver
        from ..minigo.workers import SelfPlayPool

        pool = SelfPlayPool(**spec.pool_config)
        self.pool = pool
        service = pool._build_service()
        if spec.weights is not None:
            service.update_weights(spec.weights, charge=False)
        pool.inference_service = service
        self.service = service
        for windex in spec.worker_indices:
            worker, profiler = pool._make_worker(windex, spec.weights)
            if spec.restore is not None and windex in spec.restore:
                driver = GameDriver.restore(worker, spec.restore[windex])
            else:
                driver = GameDriver(worker, pool.games_per_worker)
            self.drivers[windex] = driver
            self.systems[windex] = worker.system
            self.host_clients[windex] = worker._client
            self.profilers[windex] = profiler

    def _build_envrollout(self, spec: ShardSpec) -> None:
        from ..rollout.envdriver import EnvRolloutDriver
        from ..rollout.pool import EnvRolloutPool
        from ..rollout.seeding import driver_seed

        pool = EnvRolloutPool(**spec.pool_config)
        self.pool = pool
        stacks = {windex: pool._make_worker_stack(windex)
                  for windex in spec.worker_indices}
        probe_env = stacks[spec.worker_indices[0]][2]
        service = pool._build_service(probe_env)
        pool.inference_service = service
        self.service = service
        for windex in spec.worker_indices:
            system, engine, env, profiler = stacks[windex]
            client = service.connect(system, engine, worker=system.worker,
                                     profiler=profiler)
            if spec.restore is not None and windex in spec.restore:
                driver = EnvRolloutDriver.restore(env, client,
                                                  spec.restore[windex],
                                                  profiler=profiler)
            else:
                policy = pool._make_policy(env, windex)
                driver = EnvRolloutDriver(
                    env, client, policy, pool.steps_per_worker,
                    seed=driver_seed(pool.seed, windex), profiler=profiler,
                    collect_transitions=pool.collect_transitions)
            self.drivers[windex] = driver
            self.systems[windex] = system
            self.host_clients[windex] = client
            self.profilers[windex] = profiler

    # ------------------------------------------------------------- segments
    def build(self) -> Dict[int, dict]:
        """Run every owned driver's initial segment (worker-index order)."""
        return {windex: self.run_segment(windex)
                for windex in self.spec.worker_indices}

    def run_segment(self, windex: int) -> dict:
        """Advance one driver until it blocks (or finishes), recording steps.

        Each record is the step's ``(pre, post)`` virtual-clock pair; the
        parent's proxy replays the ``post`` values and asserts the ``pre``
        values match its own mirror clock, so any timeline divergence fails
        loudly instead of silently corrupting the merge.  When the segment
        ends at an inference boundary the submitted ticket's features and
        metadata ride along; the local service queue is drained (the parent
        mirror owns all queueing and batching decisions).
        """
        driver = self.drivers[windex]
        records: List[tuple] = []
        while driver.runnable:
            pre = driver.now_us
            driver.step()
            records.append((pre, driver.now_us))
            if driver.blocked:
                break
        submit = None
        if driver.blocked:
            ticket = driver._ticket
            self.tickets[windex] = ticket
            self.service._take_pending()
            submit = (ticket.features, ticket.metadata)
        return {"records": records, "submit": submit, "finished": driver.finished}

    def deliver_results(self, windex: int, priors: np.ndarray, values: np.ndarray,
                        metadata: Optional[dict], end_us: float) -> dict:
        """Fulfil a worker's served ticket and run its next segment.

        ``metadata`` is the parent-side dict after the serve (queue delay and
        batch attribution filled in); the local ticket's dict is rewritten to
        those exact contents *in insertion order*, so the annotation snapshot
        taken when the driver closes its operation is byte-identical to the
        sequential run's.  ``end_us`` is the worker's clock after the serve.
        """
        ticket = self.tickets.pop(windex)
        if metadata is not None and ticket.metadata is not None:
            ticket.metadata.clear()
            ticket.metadata.update(metadata)
        self.systems[windex].clock.advance_to(end_us)
        ticket.priors = priors
        ticket.values = values
        return self.run_segment(windex)

    # -------------------------------------------------------------- serving
    def execute(self, windex: int, replica_index: int, features: np.ndarray,
                start_us: float):
        """Run one batched engine call hosted by owned worker ``windex``.

        The parent already advanced the batch's virtual departure to
        ``start_us`` (``max(depart, replica.free_us)``); the host worker is
        blocked at its arrival time, so ``advance_to`` lands its clock on
        exactly the sequential value.  The call itself goes through the
        *real* ``InferenceService._execute`` on the shard's local service —
        same compiled-function cache, same device redirect, same kernel
        charges from the host's own cost model.
        """
        from ..rollout.inference import InferenceTicket

        host = self.host_clients[windex]
        host.system.clock.advance_to(start_us)
        ticket = InferenceTicket(host, features, None)
        replica = self.service.replicas[replica_index]
        priors, values, _ = self.service._execute(
            host, [(ticket, 0, ticket.num_rows)], replica)
        return priors, values, host.system.clock.now_us

    # ------------------------------------------------------------- finalize
    def finalize(self) -> Dict[int, dict]:
        """Finalize owned profilers and return per-worker results.

        When the pool streams traces, each shard closes its own writer —
        shard index merges are read-modify-write, so the parent serializes
        finalize calls across shards and closes its own (workerless) writer
        last.
        """
        out: Dict[int, dict] = {}
        for windex in self.spec.worker_indices:
            profiler = self.profilers[windex]
            trace = profiler.finalize() if profiler is not None else None
            if self.pool.streaming:
                trace = None  # the trace lives in the store's shard
            out[windex] = {"result": self.drivers[windex].result,
                           "total_time_us": self.systems[windex].clock.now_us,
                           "trace": trace}
        if self.pool.streaming and self.pool._owns_store:
            self.pool._store.close()
        return out


def handle_message(state, msg: tuple) -> tuple:
    """Dispatch one parent request to the shard; shared by both backends."""
    tag = msg[0]
    if tag == "build":
        state.shard = WorkerShard(msg[1])
        return ("built", state.shard.build())
    if tag == "results":
        _, windex, priors, values, metadata, end_us = msg
        segment = state.shard.deliver_results(windex, priors, values, metadata, end_us)
        return ("seg", windex, segment)
    if tag == "exec":
        _, exec_id, windex, replica_index, features, start_us = msg
        priors, values, end_us = state.shard.execute(windex, replica_index,
                                                     features, start_us)
        return ("exec", exec_id, priors, values, end_us)
    if tag == "snap":
        shard = state.shard
        return ("snapped", {windex: shard.drivers[windex].snapshot()
                            for windex in shard.spec.worker_indices})
    if tag == "finalize":
        return ("final", state.shard.finalize())
    raise ValueError(f"unknown shard message {tag!r}")


def shard_main(conn) -> None:
    """Entry point of a shard process: serve parent requests until ``stop``.

    ``("arm", n)`` schedules an injected fail-stop: the process dies via
    ``os._exit`` on its ``n``-th subsequent ``results`` message, *before*
    touching any state or replying — the batch-boundary fail-stop model.  A
    respawned process is never re-armed (the parent arms only at startup),
    so journal replay runs the same message past the crash point.
    """
    import traceback

    class _State:
        shard = None

    state = _State()
    crash_after_results: Optional[int] = None
    results_seen = 0
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg[0] == "stop":
            break
        if msg[0] == "arm":
            crash_after_results = int(msg[1])
            results_seen = 0
            conn.send(("armed",))
            continue
        if msg[0] == "results" and crash_after_results is not None:
            results_seen += 1
            if results_seen == crash_after_results:
                import os
                os._exit(1)  # fail-stop: no reply, no partial state
        try:
            conn.send(handle_message(state, msg))
        except BaseException as exc:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
            break
    conn.close()
