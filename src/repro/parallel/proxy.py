"""Parent-side mirror of the pool: proxy drivers over a mirror service.

The parent process runs the *real*, unchanged
:class:`~repro.rollout.scheduler.PoolScheduler` — same heap, same eager
path, same timeout logic — but over :class:`ProxyDriver` objects that
replay the virtual-clock records their shard processes produced, and a
:class:`MirrorInferenceService` whose only override ships each batch's
engine call to the shard owning the host worker.  Everything that makes a
schedule a schedule — arrival order, batch planning, routing, replica
horizons, queue-delay stats, metadata attribution — runs in the parent on
the real service code, so the merged run's scheduler stats, service stats
and per-worker timelines are bit-for-bit those of the single-process pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..rollout.driver import StepwiseDriver
from ..rollout.inference import InferenceService
from ..system import System

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import ParallelRunner


class ProxyDriver(StepwiseDriver):
    """Replays one remote worker's stepwise timeline for the scheduler.

    The shard advances the real driver in *segments* (run until blocked on
    inference); each segment ships the per-step ``(pre, post)`` clock pairs
    plus the features/metadata of the ticket it submitted.  The proxy
    consumes exactly one record per ``step()`` — so scheduler step counts
    and interleaving decisions match the sequential run event for event —
    and submits the real ticket to the mirror service when it consumes the
    segment's final record, at the same virtual arrival instant.  Each
    ``pre`` is asserted against the mirror clock: a diverging shard fails
    loudly instead of silently corrupting the merged timeline.
    """

    def __init__(self, runner: "ParallelRunner", windex: int, name: str,
                 service: InferenceService, segment: dict) -> None:
        self.runner = runner
        self.windex = windex
        self._name = name
        # The mirror system only lends the worker a clock (and its name) —
        # no engine ever runs on it, so its cost-model stream is never drawn.
        system = System.create(seed=0, worker=name)
        self.client = service.connect(system, None, worker=name)
        if isinstance(service, MirrorInferenceService):
            service.register_host(self.client, windex)
        self._records: List[Tuple[float, float]] = []
        self._cursor = 0
        self._submit: Optional[tuple] = None
        self._final = False
        self._ticket = None
        self.dispatched = False  #: served results already sent to the shard
        self._load(segment)

    def _load(self, segment: dict) -> None:
        self._records = segment["records"]
        self._cursor = 0
        self._submit = segment["submit"]
        self._final = segment["finished"]

    # ------------------------------------------------------------- protocol
    @property
    def finished(self) -> bool:
        return (self._final and self._cursor >= len(self._records)
                and self._ticket is None)

    @property
    def blocked(self) -> bool:
        return self._ticket is not None and not self._ticket.done

    @property
    def now_us(self) -> float:
        return self.client.system.clock.now_us

    @property
    def worker_name(self) -> str:
        return self._name

    def step(self) -> bool:
        if self._ticket is not None:
            # The ticket was served (results already dispatched to the
            # shard by the mirror); pick up the next segment it produced.
            segment = self.runner.collect_segment(self.windex)
            self._ticket = None
            self.dispatched = False
            self._load(segment)
        pre, post = self._records[self._cursor]
        clock = self.client.system.clock
        if pre != clock.now_us:
            raise RuntimeError(
                f"shard timeline diverged for {self._name!r}: segment record "
                f"starts at {pre}us but the merged clock is at {clock.now_us}us")
        clock.advance_to(post)
        self._cursor += 1
        if self._cursor == len(self._records) and self._submit is not None:
            features, metadata = self._submit
            self._submit = None
            self._ticket = self.client.submit(features, metadata=metadata)
        return not self.finished


class MirrorInferenceService(InferenceService):
    """The shared service, with engine calls shipped to the host's shard.

    Planning, routing, replica ``free_us`` horizons, queue-delay accounting
    and metadata scatter all run here, on the inherited code paths.  Only
    :meth:`_execute` is replaced: the shard owning the batch's host worker
    runs the real engine call (host cost model, host streams, replica
    device redirect) and reports the host clock's absolute end — the mirror
    advances to it, so float arithmetic happens exactly once, shard-side.
    """

    def __init__(self, network, *, runner: "ParallelRunner", **kwargs) -> None:
        super().__init__(network, **kwargs)
        self._runner = runner
        self._host_windex = {}

    def register_host(self, client, windex: int) -> None:
        self._host_windex[id(client)] = windex

    def _execute(self, host, chunk, replica):
        features = np.concatenate([t.features[lo:hi] for t, lo, hi in chunk], axis=0)
        start_us = host.system.clock.now_us
        windex = self._host_windex[id(host)]
        priors, values, end_us = self._runner.execute(
            windex, replica.index, features, start_us)
        host.system.clock.advance_to(end_us)
        return priors, values, end_us - start_us

    def serve_queued(self, **kwargs) -> int:
        calls = super().serve_queued(**kwargs)
        # Ship every newly-served ticket's rows back to its shard now (and
        # only now): batches of one serve can share riders, so results only
        # become final once the whole serve has scattered.
        self._runner.dispatch_completed()
        return calls
