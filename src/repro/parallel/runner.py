"""Parent-side orchestration of shard processes (or their inline stand-in).

The runner owns one message channel per shard.  All traffic is strictly
serial per channel and every request gets exactly one reply, so the only
buffering needed parent-side is for ``seg`` replies that arrive while the
parent is waiting on an ``exec`` round-trip (results of a previous serve
are still draining out of the child's FIFO).

Backends:

* ``process`` — each shard is a daemon OS process over a
  ``multiprocessing`` pipe (fork where available, spawn otherwise).  The
  shards advance their drivers' segments concurrently, which is the entire
  wall-clock win: tree search, env stepping and cost-model sampling — the
  dominant interpreter work — run on ``num_processes`` cores while the
  parent only merges timelines and plans batches.
* ``inline`` — the shard lives in the parent process and replies are
  computed synchronously at send time.  Used for CI and debugging; the
  build spec still takes a pickle round-trip so picklability bugs and
  state-isolation bugs surface identically to the process backend.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, List, Optional, Sequence

from ..faults.plan import FaultPlan
from .shard import ShardSpec, handle_message, shard_main


class _InlineChannel:
    """In-process shard: send computes the reply immediately."""

    def __init__(self, spec: ShardSpec) -> None:
        class _State:
            shard = None

        self._state = _State()
        # Pickle round-trip for parity with the process backend: the child
        # must be buildable from the serialized spec alone.
        self._spec = pickle.loads(pickle.dumps(spec))
        self._replies: List[tuple] = []

    def send(self, msg: tuple) -> None:
        if msg[0] == "stop":
            return
        if msg[0] == "build":
            msg = ("build", self._spec)
        self._replies.append(handle_message(self._state, msg))

    def recv(self) -> tuple:
        return self._replies.pop(0)

    def close(self) -> None:
        self._state.shard = None


class _ProcessChannel:
    """One shard process behind a duplex pipe; strictly serial FIFO.

    With replay enabled (fault-injection runs), the channel journals every
    request it sends and counts the replies already consumed.  A dead child
    — detected as ``EOFError`` on recv or a broken pipe on send — is then
    **respawned and replayed**: the journal is resent in order, the first
    ``consumed`` replies are discarded, and the interrupted call resumes.
    Shards are pure functions of their build spec and message sequence, so
    the replayed child reconstructs exactly the state the dead one held —
    records, clocks and trace shards come out bit-identical.
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._journal: Optional[List[tuple]] = None
        self._consumed = 0
        self._on_respawn = None
        self._spawn()

    def _spawn(self) -> None:
        self._conn, child_conn = self._ctx.Pipe()
        self._proc = self._ctx.Process(target=shard_main, args=(child_conn,),
                                       daemon=True)
        self._proc.start()
        child_conn.close()

    def enable_replay(self, on_respawn=None) -> None:
        """Start journalling traffic for crash recovery (fault runs only)."""
        self._journal = []
        self._consumed = 0
        self._on_respawn = on_respawn

    def arm(self, crash_after_results: int) -> None:
        """Tell the child to fail-stop on its n-th ``results`` message.

        Bypasses the journal and the consumed-reply count on purpose: a
        respawned child must never be re-armed, or it would crash again at
        the same point forever.
        """
        self._conn.send(("arm", int(crash_after_results)))
        reply = self._conn.recv()
        assert reply == ("armed",), reply

    def send(self, msg: tuple) -> None:
        if self._journal is not None:
            self._journal.append(msg)
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError):
            if self._journal is None:
                raise
            # The child died before this message landed; the journal already
            # holds it, so the replay delivers it to the fresh child.
            self._respawn_and_replay()

    def recv(self) -> tuple:
        while True:
            try:
                reply = self._conn.recv()
            except (EOFError, ConnectionResetError):
                if self._journal is None:
                    raise RuntimeError("shard process exited without replying")
                self._respawn_and_replay()
                continue
            if reply[0] == "error":
                raise RuntimeError(f"shard process failed:\n{reply[1]}")
            self._consumed += 1
            return reply

    def _respawn_and_replay(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._proc.join(timeout=30)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5)
        self._spawn()
        # Resend the journal, draining already-consumed replies as they
        # become available so neither pipe direction can fill and deadlock.
        discarded = 0
        for msg in self._journal:
            self._conn.send(msg)
            while discarded < self._consumed and self._conn.poll():
                discarded += self._discard_one()
        while discarded < self._consumed:
            discarded += self._discard_one()
        if self._on_respawn is not None:
            self._on_respawn(len(self._journal), self._consumed)

    def _discard_one(self) -> int:
        reply = self._conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard replay failed:\n{reply[1]}")
        return 1

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=30)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5)


BACKENDS = ("process", "inline")


def assign_workers(num_workers: int, num_processes: int) -> List[List[int]]:
    """Stripe worker indices over processes (worker ``i`` → process ``i % P``).

    Striping balances shards when workers have index-correlated workloads
    and keeps the assignment independent of worker count changes elsewhere.
    """
    num_processes = max(1, min(num_processes, num_workers))
    return [[index for index in range(num_workers) if index % num_processes == p]
            for p in range(num_processes)]


class ParallelRunner:
    """Routes mirror-service traffic to the shard owning each worker."""

    def __init__(self, specs: Sequence[ShardSpec], *, backend: str = "process",
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown parallel backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.backend = backend
        self.specs = list(specs)
        if backend == "inline":
            self.channels = [_InlineChannel(spec) for spec in self.specs]
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            self.channels = [_ProcessChannel(ctx) for _ in self.specs]
        #: replayable record of every injected shard fault and recovery
        self.fault_log: List[str] = []
        self.respawns = 0
        if (fault_plan is not None and not fault_plan.empty
                and backend == "process"):
            # Journal all traffic so a dead shard can be respawned and
            # replayed; arm the planned crashes (k-th results message).
            crashes = fault_plan.shard_crashes()
            for index, channel in enumerate(self.channels):
                channel.enable_replay(
                    on_respawn=lambda replayed, discarded, index=index:
                        self._record_respawn(index, replayed, discarded))
                crash_after = crashes.get(index)
                if crash_after:
                    channel.arm(crash_after)
                    self.fault_log.append(
                        f"shard-crash-armed shard={index} "
                        f"after_results={crash_after}")
        self._chan_of: Dict[int, object] = {}
        for channel, spec in zip(self.channels, self.specs):
            for windex in spec.worker_indices:
                self._chan_of[windex] = channel
        self.proxies: List[object] = []
        self._seg_buffer: Dict[int, dict] = {}
        self._exec_seq = 0

    def _record_respawn(self, index: int, replayed: int, discarded: int) -> None:
        self.respawns += 1
        self.fault_log.append(f"shard-respawn shard={index} replayed={replayed} "
                              f"discarded={discarded}")

    # ----------------------------------------------------------------- setup
    def attach(self, proxies: Sequence[object]) -> None:
        """Register the proxy drivers (for result dispatch after serves)."""
        self.proxies = sorted(proxies, key=lambda proxy: proxy.windex)

    def build(self) -> Dict[int, dict]:
        """Build every shard and collect all initial segments.

        The build request goes out to every channel before any reply is
        awaited, so shard processes construct their worker stacks — and run
        their first segments — concurrently.
        """
        for channel, spec in zip(self.channels, self.specs):
            channel.send(("build", spec))
        segments: Dict[int, dict] = {}
        for channel in self.channels:
            _, built = channel.recv()
            segments.update(built)
        return segments

    # --------------------------------------------------------------- serving
    def execute(self, windex: int, replica_index: int, features, start_us: float):
        """Blocking engine-call round-trip on the host worker's shard."""
        channel = self._chan_of[windex]
        self._exec_seq += 1
        channel.send(("exec", self._exec_seq, windex, replica_index,
                      features, start_us))
        while True:
            reply = channel.recv()
            if reply[0] == "seg":
                # A previous serve's results were still draining through the
                # child's FIFO; keep its reply for collect_segment.
                self._seg_buffer[reply[1]] = reply[2]
                continue
            _, _, priors, values, end_us = reply
            return priors, values, end_us

    def dispatch_completed(self) -> None:
        """Send every newly-served ticket's rows to its shard, fire-and-forget.

        Called by the mirror service after each serve.  Worker-index order
        keeps the per-child message sequence deterministic; the ``seg``
        replies are collected lazily when the scheduler next steps each
        proxy, so shards resume computing their next segments while the
        parent keeps scheduling.
        """
        for proxy in self.proxies:
            ticket = proxy._ticket
            if ticket is None or not ticket.done or proxy.dispatched:
                continue
            proxy.dispatched = True
            metadata = dict(ticket.metadata) if ticket.metadata is not None else None
            self._chan_of[proxy.windex].send(
                ("results", proxy.windex, ticket.priors, ticket.values,
                 metadata, proxy.client.system.clock.now_us))

    def collect_segment(self, windex: int) -> dict:
        """The next segment of ``windex`` (its results were already sent)."""
        if windex in self._seg_buffer:
            return self._seg_buffer.pop(windex)
        channel = self._chan_of[windex]
        while True:
            reply = channel.recv()
            if reply[0] != "seg":
                raise RuntimeError(f"expected a segment reply, got {reply[0]!r}")
            if reply[1] == windex:
                return reply[2]
            self._seg_buffer[reply[1]] = reply[2]

    def snapshots(self) -> Dict[int, bytes]:
        """Snapshot every shard's drivers (windex → resumable state blob).

        Valid whenever all drivers sit at a segment boundary (blocked or
        finished).  The blobs feed :attr:`ShardSpec.restore` so a freshly
        respawned process can rebuild its drivers mid-run — the driver-level
        recovery substrate under the journal-replay transport.
        """
        for channel in self.channels:
            channel.send(("snap",))
        blobs: Dict[int, bytes] = {}
        for channel in self.channels:
            while True:
                reply = channel.recv()
                if reply[0] == "seg":
                    self._seg_buffer[reply[1]] = reply[2]
                    continue
                if reply[0] != "snapped":
                    raise RuntimeError(f"expected a snapshot reply, got {reply[0]!r}")
                blobs.update(reply[1])
                break
        return blobs

    # -------------------------------------------------------------- teardown
    def finalize(self) -> Dict[int, dict]:
        """Finalize every shard *serially* and merge per-worker results.

        Serial on purpose: in streaming mode each shard's finalize merges
        its trace shards into the store index read-modify-write, so two
        shards must never write the index concurrently.
        """
        finals: Dict[int, dict] = {}
        for channel in self.channels:
            channel.send(("finalize",))
            _, shard_finals = channel.recv()
            finals.update(shard_finals)
        return finals

    def stop(self) -> None:
        for channel in self.channels:
            channel.close()
