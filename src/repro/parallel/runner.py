"""Parent-side orchestration of shard processes (or their inline stand-in).

The runner owns one message channel per shard.  All traffic is strictly
serial per channel and every request gets exactly one reply, so the only
buffering needed parent-side is for ``seg`` replies that arrive while the
parent is waiting on an ``exec`` round-trip (results of a previous serve
are still draining out of the child's FIFO).

Backends:

* ``process`` — each shard is a daemon OS process over a
  ``multiprocessing`` pipe (fork where available, spawn otherwise).  The
  shards advance their drivers' segments concurrently, which is the entire
  wall-clock win: tree search, env stepping and cost-model sampling — the
  dominant interpreter work — run on ``num_processes`` cores while the
  parent only merges timelines and plans batches.
* ``inline`` — the shard lives in the parent process and replies are
  computed synchronously at send time.  Used for CI and debugging; the
  build spec still takes a pickle round-trip so picklability bugs and
  state-isolation bugs surface identically to the process backend.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, List, Optional, Sequence

from .shard import ShardSpec, handle_message, shard_main


class _InlineChannel:
    """In-process shard: send computes the reply immediately."""

    def __init__(self, spec: ShardSpec) -> None:
        class _State:
            shard = None

        self._state = _State()
        # Pickle round-trip for parity with the process backend: the child
        # must be buildable from the serialized spec alone.
        self._spec = pickle.loads(pickle.dumps(spec))
        self._replies: List[tuple] = []

    def send(self, msg: tuple) -> None:
        if msg[0] == "stop":
            return
        if msg[0] == "build":
            msg = ("build", self._spec)
        self._replies.append(handle_message(self._state, msg))

    def recv(self) -> tuple:
        return self._replies.pop(0)

    def close(self) -> None:
        self._state.shard = None


class _ProcessChannel:
    """One shard process behind a duplex pipe; strictly serial FIFO."""

    def __init__(self, ctx) -> None:
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(target=shard_main, args=(child_conn,), daemon=True)
        self._proc.start()
        child_conn.close()

    def send(self, msg: tuple) -> None:
        self._conn.send(msg)

    def recv(self) -> tuple:
        try:
            reply = self._conn.recv()
        except EOFError:
            raise RuntimeError("shard process exited without replying")
        if reply[0] == "error":
            raise RuntimeError(f"shard process failed:\n{reply[1]}")
        return reply

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=30)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5)


BACKENDS = ("process", "inline")


def assign_workers(num_workers: int, num_processes: int) -> List[List[int]]:
    """Stripe worker indices over processes (worker ``i`` → process ``i % P``).

    Striping balances shards when workers have index-correlated workloads
    and keeps the assignment independent of worker count changes elsewhere.
    """
    num_processes = max(1, min(num_processes, num_workers))
    return [[index for index in range(num_workers) if index % num_processes == p]
            for p in range(num_processes)]


class ParallelRunner:
    """Routes mirror-service traffic to the shard owning each worker."""

    def __init__(self, specs: Sequence[ShardSpec], *, backend: str = "process") -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown parallel backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.backend = backend
        self.specs = list(specs)
        if backend == "inline":
            self.channels = [_InlineChannel(spec) for spec in self.specs]
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            self.channels = [_ProcessChannel(ctx) for _ in self.specs]
        self._chan_of: Dict[int, object] = {}
        for channel, spec in zip(self.channels, self.specs):
            for windex in spec.worker_indices:
                self._chan_of[windex] = channel
        self.proxies: List[object] = []
        self._seg_buffer: Dict[int, dict] = {}
        self._exec_seq = 0

    # ----------------------------------------------------------------- setup
    def attach(self, proxies: Sequence[object]) -> None:
        """Register the proxy drivers (for result dispatch after serves)."""
        self.proxies = sorted(proxies, key=lambda proxy: proxy.windex)

    def build(self) -> Dict[int, dict]:
        """Build every shard and collect all initial segments.

        The build request goes out to every channel before any reply is
        awaited, so shard processes construct their worker stacks — and run
        their first segments — concurrently.
        """
        for channel, spec in zip(self.channels, self.specs):
            channel.send(("build", spec))
        segments: Dict[int, dict] = {}
        for channel in self.channels:
            _, built = channel.recv()
            segments.update(built)
        return segments

    # --------------------------------------------------------------- serving
    def execute(self, windex: int, replica_index: int, features, start_us: float):
        """Blocking engine-call round-trip on the host worker's shard."""
        channel = self._chan_of[windex]
        self._exec_seq += 1
        channel.send(("exec", self._exec_seq, windex, replica_index,
                      features, start_us))
        while True:
            reply = channel.recv()
            if reply[0] == "seg":
                # A previous serve's results were still draining through the
                # child's FIFO; keep its reply for collect_segment.
                self._seg_buffer[reply[1]] = reply[2]
                continue
            _, _, priors, values, end_us = reply
            return priors, values, end_us

    def dispatch_completed(self) -> None:
        """Send every newly-served ticket's rows to its shard, fire-and-forget.

        Called by the mirror service after each serve.  Worker-index order
        keeps the per-child message sequence deterministic; the ``seg``
        replies are collected lazily when the scheduler next steps each
        proxy, so shards resume computing their next segments while the
        parent keeps scheduling.
        """
        for proxy in self.proxies:
            ticket = proxy._ticket
            if ticket is None or not ticket.done or proxy.dispatched:
                continue
            proxy.dispatched = True
            metadata = dict(ticket.metadata) if ticket.metadata is not None else None
            self._chan_of[proxy.windex].send(
                ("results", proxy.windex, ticket.priors, ticket.values,
                 metadata, proxy.client.system.clock.now_us))

    def collect_segment(self, windex: int) -> dict:
        """The next segment of ``windex`` (its results were already sent)."""
        if windex in self._seg_buffer:
            return self._seg_buffer.pop(windex)
        channel = self._chan_of[windex]
        while True:
            reply = channel.recv()
            if reply[0] != "seg":
                raise RuntimeError(f"expected a segment reply, got {reply[0]!r}")
            if reply[1] == windex:
                return reply[2]
            self._seg_buffer[reply[1]] = reply[2]

    # -------------------------------------------------------------- teardown
    def finalize(self) -> Dict[int, dict]:
        """Finalize every shard *serially* and merge per-worker results.

        Serial on purpose: in streaming mode each shard's finalize merges
        its trace shards into the store index read-modify-write, so two
        shards must never write the index concurrently.
        """
        finals: Dict[int, dict] = {}
        for channel in self.channels:
            channel.send(("finalize",))
            _, shard_finals = channel.recv()
            finals.update(shard_finals)
        return finals

    def stop(self) -> None:
        for channel in self.channels:
            channel.close()
