"""Multiprocess sharded rollout execution with virtual-timeline merge.

The pools in :mod:`repro.minigo.workers` and :mod:`repro.rollout.pool`
simulate ``num_workers`` parallel worker "processes" inside one interpreter
— faithful, but serialized on one core.  This package runs the same
simulation on real OS processes without changing a single scheduling or
timing decision:

* each shard process (:mod:`~repro.parallel.shard`) owns a subset of fully
  built worker stacks and advances their drivers independently between
  inference serves;
* the parent (:mod:`~repro.parallel.proxy`, :mod:`~repro.parallel.runner`)
  replays the shards' per-step clock records through proxy drivers under
  the real :class:`~repro.rollout.scheduler.PoolScheduler` and the real
  batch-planning/routing/stats code, shipping only the batched engine
  calls back to the host worker's shard.

``num_processes=1`` (or the ``inline`` backend) reproduces the sequential
event loop bit-for-bit — game records, per-worker clocks, scheduler
decisions, service stats; ``num_processes=N`` changes nothing but the
wall-clock. Enabled via ``SelfPlayPool(..., num_processes=N)`` and
``EnvRolloutPool(..., num_processes=N)``.
"""

from .proxy import MirrorInferenceService, ProxyDriver
from .runner import BACKENDS, ParallelRunner, assign_workers
from .shard import ShardSpec, WorkerShard

__all__ = [
    "BACKENDS",
    "MirrorInferenceService",
    "ParallelRunner",
    "ProxyDriver",
    "ShardSpec",
    "WorkerShard",
    "assign_workers",
]
