"""Bounded LRU cache of per-position network evaluations.

:class:`EvalCache` backs the service-side evaluation cache of
:class:`~repro.rollout.inference.InferenceService`: one entry per unique
``(weight_version, network, position_key)`` holding the network's output
row for that position.  Staleness is handled by *versioned keys* rather
than explicit flush — ``update_weights`` bumps a monotonic counter that is
part of every key, so entries written under old weights simply stop being
reachable and age out of the LRU ring (the classic staleness-accounting
problem, solved without a synchronized invalidation pass).

The cache is deliberately dumb: a plain ``OrderedDict`` in LRU order with
hit/miss/eviction counters.  All policy — what goes into a key, which rows
are eligible, shared vs per-replica scope — lives in the service.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

#: Cache scopes understood by :class:`~repro.rollout.inference.InferenceService`.
CACHE_SHARED = "shared"    #: one cache for the whole service (hits possible at submit)
CACHE_REPLICA = "replica"  #: one cache per replica, consulted after routing
CACHE_SCOPES = (CACHE_SHARED, CACHE_REPLICA)

#: A cached evaluation: one output row (owned copy) plus its scalar value.
CachedRow = Tuple[np.ndarray, float]


class EvalCache:
    """Bounded LRU mapping position keys to evaluated (priors_row, value).

    ``get`` refreshes recency on a hit; ``put`` inserts (or refreshes) an
    entry and evicts the least-recently-used entries beyond ``capacity``,
    returning how many were evicted so the caller can keep its own
    eviction counters.  Both are O(1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, CachedRow]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[CachedRow]:
        """Look up ``key``; a hit moves it to most-recently-used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Hashable) -> Optional[CachedRow]:
        """Look up ``key`` without touching recency or hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: Hashable, priors_row: np.ndarray, value: float) -> int:
        """Insert (or refresh) an entry; returns the number of evictions."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = (priors_row, value)
            return 0
        self._entries[key] = (priors_row, value)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def keys(self):
        """Current keys, least- to most-recently-used (for tests/debugging)."""
        return list(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EvalCache(capacity={self.capacity}, size={len(self._entries)}, "
                f"hits={self.hits}, evictions={self.evictions})")
