"""Explicit per-worker RNG stream derivation: one place, process-safe.

Every random stream a pool creates is derived from ``(seed, worker_index)``
with a fixed per-stream base offset — never from process-local global state
or construction order — so a worker's streams are bit-identical no matter
which OS process builds its stack.  The multiprocess execution layer
(:mod:`repro.parallel`) relies on this: each shard process rebuilds only the
workers it owns, in its own order, and still reproduces the single-process
pool's records and clocks exactly.

The constants pin the stream layout the benchmarks' determinism bars were
recorded against; changing them changes every pinned record/clock in
``benchmarks/``.
"""

from __future__ import annotations

#: ``System.create`` seed (cost-model jitter stream) for worker *i*.
SYSTEM_STREAM_BASE = 100
#: Worker-level action/move RNG for worker *i* (also the env seed in pools).
WORKER_STREAM_BASE = 1000
#: Rollout-driver action stream for worker *i* (also fed to policy factories).
DRIVER_STREAM_BASE = 5000
#: Shared network initialisation (one stream per pool, not per worker).
NETWORK_STREAM_OFFSET = 7
#: Inference-service replica systems (one stream per replica).
REPLICA_STREAM_BASE = 9001


def system_seed(seed: int, worker_index: int) -> int:
    """Cost-model jitter stream for worker ``worker_index``'s ``System``."""
    return int(seed) + SYSTEM_STREAM_BASE + int(worker_index)


def worker_seed(seed: int, worker_index: int) -> int:
    """Worker action/move RNG stream (and env seed) for ``worker_index``."""
    return int(seed) + WORKER_STREAM_BASE + int(worker_index)


def driver_seed(seed: int, worker_index: int) -> int:
    """Rollout-driver action stream for ``worker_index``."""
    return int(seed) + DRIVER_STREAM_BASE + int(worker_index)


def network_seed(seed: int) -> int:
    """Initialisation stream of the pool's shared network."""
    return int(seed) + NETWORK_STREAM_OFFSET


def replica_seed(seed: int, replica_index: int) -> int:
    """Replica-system stream for inference replica ``replica_index``."""
    return int(seed) + REPLICA_STREAM_BASE + int(replica_index)
