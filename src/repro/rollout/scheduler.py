"""Virtual-time pool scheduler: interleaves stepwise drivers over one service.

Extracted unchanged from the Minigo worker pool (``repro.minigo.workers``)
when the stepwise-driver machinery became env-agnostic: the scheduler only
ever needed the :class:`~repro.rollout.driver.StepwiseDriver` contract —
``finished``/``blocked``/``runnable``/``now_us``/``worker_name``/``step()``
— so it now accepts any driver (Go self-play, env rollouts, synthetic test
drivers) over any shared :class:`~repro.rollout.inference.InferenceService`.
Minigo pools keep importing it from its old home; schedules, stats and
game records are bit-for-bit those of the pre-refactor scheduler.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .driver import StepwiseDriver
    from .inference import InferenceService

from .inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
)


@dataclass
class SchedulerStats:
    """Counters describing one event-driven scheduling run.

    The heap counters are zero under the legacy linear-scan loop
    (``use_heap=False``), which lets tests assert both that the heap is
    actually exercised and that every scheduling *decision* counter
    (``steps``, ``serves``, ``timeout_serves``, ``eager_serves``,
    ``steps_per_worker``) is identical between the two loops.
    """

    steps: int = 0            #: driver steps executed
    serves: int = 0           #: times the service queue was served
    timeout_serves: int = 0   #: serves triggered by a partial-batch deadline
    eager_serves: int = 0     #: full-batch serves issued while workers still ran
    steps_per_worker: Dict[str, int] = field(default_factory=dict)
    # Heap bookkeeping (heap-driven loop only).
    heap_pushes: int = 0      #: (clock, index) entries pushed
    heap_pops: int = 0        #: entries popped (valid and stale)
    heap_stale_pops: int = 0  #: popped entries invalidated by a newer clock


class PoolScheduler:
    """Virtual-time event loop interleaving stepwise drivers at step granularity.

    The scheduler repeatedly picks the runnable driver with the smallest
    virtual clock and advances it one step (one MCTS wave, one env
    transition, one move commit).  A driver that submits an evaluation
    request suspends; once every unfinished driver is blocked on inference
    the scheduler serves the shared service under its flush policy, which
    batches the pending requests of many workers into shared engine calls
    and un-blocks everyone whose ticket was served.  Under the ``timeout``
    policy a pending partial batch is additionally served as soon as
    virtual time passes its deadline (first arrival + ``flush_timeout_us``),
    even while other workers are still runnable — the latency/throughput
    knob of a real batching server.

    The scheduler is replica-aware: with more than one model replica it no
    longer waits for every worker to block.  As soon as a *full* batch is
    pending (``max_batch`` rows of one network — it can never gather more
    riders), it is served eagerly so a free replica can start it while the
    remaining workers keep running; its riders un-block and overlap their
    next requests with other replicas' in-flight batches.  With a single
    replica the eager path is disabled, so single-replica runs reproduce
    the all-blocked barrier schedule bit-for-bit.

    **Event-loop cost.**  By default the runnable driver with the minimum
    clock comes off a lazy min-heap of ``(now_us, index)`` entries: a
    driver is (re-)pushed whenever it becomes runnable or its clock
    advances, and entries superseded by a newer push are discarded on pop
    (invalidate-on-advance) — O(log workers) per event instead of the
    original rebuild-the-runnable-list-and-``min()`` scan, which cost
    O(workers) *per event* and dominated interpreter time at high worker
    counts.  The legacy scan loop is kept behind ``use_heap=False`` (or the
    :attr:`default_use_heap` class switch) as the pinned pre-optimization
    baseline; both loops produce identical schedules, stats and game
    records (``tests/test_scheduler.py``).
    """

    #: Default for ``use_heap`` — the wall-clock benchmark flips this to
    #: time the pre-optimization linear-scan loop without threading a knob
    #: through every pool constructor.
    default_use_heap: bool = True

    def __init__(self, drivers: Sequence["StepwiseDriver"], service: "InferenceService", *,
                 flush_policy: str = FLUSH_MAX_BATCH,
                 flush_timeout_us: Optional[float] = None,
                 use_heap: Optional[bool] = None) -> None:
        if not drivers:
            raise ValueError("scheduler needs at least one driver")
        if flush_policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {flush_policy!r}; expected one of {FLUSH_POLICIES}")
        if flush_policy == FLUSH_TIMEOUT and (flush_timeout_us is None or flush_timeout_us < 0):
            raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        self.drivers = list(drivers)
        self.service = service
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        self.use_heap = self.default_use_heap if use_heap is None else use_heap
        self.stats = SchedulerStats()
        # Signature of the pending queue after a fruitless eager attempt
        # plus the virtual time at which retrying could first succeed (the
        # earliest held full batch's departure), so the planner is not
        # re-run every step while nothing changed.
        self._stale_eager_signature: Optional[Tuple[int, int]] = None
        self._eager_retry_at_us: Optional[float] = None

    def _serve(self, *, arrival_cutoff_us: Optional[float] = None) -> int:
        self.stats.serves += 1
        return self.service.serve_queued(policy=self.flush_policy,
                                         timeout_us=self.flush_timeout_us,
                                         arrival_cutoff_us=arrival_cutoff_us)

    def _pending_deadline_us(self) -> Optional[float]:
        if self.flush_policy != FLUSH_TIMEOUT:
            return None
        earliest = self.service.earliest_pending_arrival_us()
        if earliest is None:
            return None
        return earliest + self.flush_timeout_us

    def _try_eager_serve(self, stable_before_us: float) -> bool:
        """Serve pending *full* batches on the replica pool, if any.

        Only meaningful with several replicas (a single replica reproduces
        the all-blocked barrier schedule) and under a batching flush policy.
        ``stable_before_us`` is the smallest runnable worker clock: only
        batches departing at or before it are safe to serve — a later-
        departing batch could still be reordered behind a future submission
        in global arrival order.  Returns True when at least one batch was
        served — workers may have un-blocked, so the caller must recompute
        the runnable set.
        """
        if self.service.num_replicas <= 1 or self.flush_policy == FLUSH_UNBATCHED:
            return False
        if self.service.pending_rows < self.service.max_batch:
            return False
        signature = (self.service.pending_tickets, self.service.pending_rows)
        if signature == self._stale_eager_signature and (
                self._eager_retry_at_us is None
                or stable_before_us < self._eager_retry_at_us):
            # Same queue as the last fruitless attempt, and virtual time has
            # not yet reached the earliest held batch's departure (if any):
            # re-planning cannot serve anything new.
            return False
        calls = self.service.serve_queued(policy=self.flush_policy,
                                          timeout_us=self.flush_timeout_us,
                                          full_batches_only=True,
                                          stable_before_us=stable_before_us)
        if calls:
            self.stats.serves += 1
            self.stats.eager_serves += 1
            self._stale_eager_signature = None
            self._eager_retry_at_us = None
            return True
        # Nothing was due: rows spread across networks, deadline-split
        # partials, or full batches departing past the stability horizon.
        # Remember the queue shape (and when a held full batch becomes due)
        # so the planner is not re-run until something can change.
        self._stale_eager_signature = signature
        self._eager_retry_at_us = self.service.last_undue_full_depart_us
        return False

    def run(self) -> SchedulerStats:
        """Drive every worker to completion; returns scheduling stats."""
        if self.use_heap:
            return self._run_heap()
        return self._run_scan()

    def _step(self, driver: "StepwiseDriver") -> None:
        self.stats.steps += 1
        worker = driver.worker_name
        self.stats.steps_per_worker[worker] = self.stats.steps_per_worker.get(worker, 0) + 1
        driver.step()

    def _run_heap(self) -> SchedulerStats:
        """Heap-driven event loop: O(log workers) per event.

        The heap holds ``(now_us, index)`` entries; ``queued_key[index]``
        remembers the clock of a driver's most recent push.  A popped entry
        whose clock no longer matches was superseded by a later push
        (invalidate-on-advance) and is discarded.  Drivers are pushed when
        they become runnable — at the start, after a step that leaves them
        runnable, and after any serve (only a serve can un-block a driver;
        blocked drivers' clocks never move, so a sweep over the drivers per
        *serve* keeps the heap complete without touching it per event).
        Ties pop the lowest index first — exactly the driver ``min()``
        returned in the linear scan, so schedules are identical.
        """
        stats = self.stats
        drivers = self.drivers
        heap: List[Tuple[float, int]] = []
        queued_key: List[Optional[float]] = [None] * len(drivers)

        def push(index: int) -> None:
            key = drivers[index].now_us
            if queued_key[index] != key:
                queued_key[index] = key
                heapq.heappush(heap, (key, index))
                stats.heap_pushes += 1

        def push_runnable() -> None:
            for index, driver in enumerate(drivers):
                if driver.runnable:
                    push(index)

        push_runnable()
        while True:
            nxt: Optional["StepwiseDriver"] = None
            index = -1
            while heap:
                key, candidate = heapq.heappop(heap)
                stats.heap_pops += 1
                if queued_key[candidate] != key:
                    # Superseded by a newer push for this driver.
                    stats.heap_stale_pops += 1
                    continue
                queued_key[candidate] = None
                driver = drivers[candidate]
                if driver.now_us != key or not driver.runnable:
                    # Defensive: state changed without a re-push.  A driver
                    # that is still runnable must not fall out of the heap —
                    # losing it would starve the worker (or deadlock).
                    stats.heap_stale_pops += 1
                    if driver.runnable:
                        push(candidate)
                    continue
                nxt, index = driver, candidate
                break
            if nxt is None:
                if self.service.pending_tickets:
                    # Everyone is blocked at an inference boundary: this is
                    # the virtual instant at which one engine call can serve
                    # every pending request.
                    self._serve()
                    push_runnable()
                    continue
                if all(driver.finished for driver in drivers):
                    return stats
                raise RuntimeError("scheduler deadlock: unfinished workers but "
                                   "nothing runnable and nothing pending")
            if self._try_eager_serve(nxt.now_us):
                # nxt was not stepped; it and any just-unblocked riders go
                # back into the heap before the next pick.
                push(index)
                push_runnable()
                continue
            deadline = self._pending_deadline_us()
            if deadline is not None and nxt.now_us >= deadline:
                # The oldest pending batch times out before the next worker
                # would act: depart it partial, serving only requests that
                # arrived by the deadline (later ones wait for more riders).
                self.stats.timeout_serves += 1
                self._serve(arrival_cutoff_us=deadline)
                push(index)
                push_runnable()
                continue
            self._step(nxt)
            if nxt.runnable:
                push(index)

    def _run_scan(self) -> SchedulerStats:
        """Original linear-scan loop: rebuilds the runnable list per event.

        O(workers) per event; preserved as the pinned pre-optimization
        baseline for the wall-clock benchmark and as the oracle the heap
        loop's schedules are asserted against.
        """
        while True:
            runnable = [driver for driver in self.drivers if driver.runnable]
            if not runnable:
                if self.service.pending_tickets:
                    self._serve()
                    continue
                if all(driver.finished for driver in self.drivers):
                    return self.stats
                raise RuntimeError("scheduler deadlock: unfinished workers but "
                                   "nothing runnable and nothing pending")
            nxt = min(runnable, key=lambda driver: driver.now_us)
            if self._try_eager_serve(nxt.now_us):
                continue
            deadline = self._pending_deadline_us()
            if deadline is not None and nxt.now_us >= deadline:
                self.stats.timeout_serves += 1
                self._serve(arrival_cutoff_us=deadline)
                continue
            self._step(nxt)
