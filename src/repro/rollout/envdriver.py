"""Stepwise rollout driver for any registered simulator.

:class:`EnvRolloutDriver` runs one worker's gym-style environment
(``repro.sim``) as a :class:`~repro.rollout.driver.StepwiseDriver`: every
env step needs one policy evaluation, which the driver *submits* to the
shared batched :class:`~repro.rollout.inference.InferenceService` instead
of evaluating in place — then suspends with its ``inference`` annotation
held open until the scheduler serves the batch.  Interleaved across many
workers by the :class:`~repro.rollout.scheduler.PoolScheduler`, the
per-step evaluations of a whole worker fleet coalesce into shared engine
calls, exactly the way the Minigo self-play leaves do — this is the
vectorized DQN/PPO-style collection loop of the workload zoo.

One ``step()`` is one schedulable unit:

* first step — reset the env (inside a ``simulation`` operation) and
  submit the initial observation; suspend.
* every later step — take the served policy row, pick an action through
  the driver's :class:`ActionPolicy`, advance the env one transition
  (inside a ``simulation`` operation), record the transition, and submit
  the next observation; suspend.  When the step budget is exhausted the
  driver finishes instead of submitting.

The policy rows come back as ``(out, value)`` pairs under the service's
``forward`` contract: discrete actors receive softmax probabilities
(sampled or argmax'd), continuous actors receive raw action rows to which
exploration noise is added (the env clips to its action space).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..backend.context import use_engine
from .driver import StepwiseDriver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiler.api import Profiler
    from ..sim.base import Env
    from .inference import InferenceClient, InferenceTicket

#: Operation annotation names — aligned with the serial collection loops in
#: ``repro.rl.base`` so overlap breakdowns group the same way either path.
OP_INFERENCE = "inference"
OP_SIMULATION = "simulation"
PHASE_DATA_COLLECTION = "data_collection"


@dataclass
class Transition:
    """One recorded env transition (the replay/rollout buffer row)."""

    obs: np.ndarray
    action: object
    reward: float
    next_obs: np.ndarray
    done: bool


@dataclass
class EnvRolloutResult:
    """Output of one rollout driver: counters plus the recorded transitions."""

    worker: str
    steps: int = 0
    episodes: int = 0
    episode_rewards: List[float] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)


class ActionPolicy:
    """Maps one served policy row to an action (pure Python, no engine calls).

    ``out_row``/``value_row`` are this driver's slice of the service batch;
    ``rng`` is the driver's private generator (one stream per worker, so
    schedules don't perturb other workers' action draws); ``timestep`` is
    the driver's running step count (for schedules like epsilon decay).
    """

    def __call__(self, out_row: np.ndarray, value_row: float, *,
                 rng: np.random.Generator, env: "Env", timestep: int):
        raise NotImplementedError


class SampledDiscretePolicy(ActionPolicy):
    """PPO/A2C-style categorical sampling from softmax probabilities."""

    def __call__(self, out_row, value_row, *, rng, env, timestep):
        probs = np.asarray(out_row, dtype=np.float64)
        probs = probs / probs.sum()
        return int(rng.choice(probs.shape[0], p=probs))


class EpsilonGreedyPolicy(ActionPolicy):
    """DQN-style argmax with linearly decaying exploration.

    Works on the softmax rows the default service forward returns because
    ``argmax(softmax(q)) == argmax(q)``.
    """

    def __init__(self, epsilon_start: float = 1.0, epsilon_end: float = 0.05,
                 decay_steps: int = 200) -> None:
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.decay_steps = max(1, decay_steps)

    def epsilon(self, timestep: int) -> float:
        frac = min(timestep / self.decay_steps, 1.0)
        return self.epsilon_start + (self.epsilon_end - self.epsilon_start) * frac

    def __call__(self, out_row, value_row, *, rng, env, timestep):
        if rng.random() < self.epsilon(timestep):
            return int(rng.integers(env.action_dim))
        return int(np.argmax(out_row))


class GaussianNoisePolicy(ActionPolicy):
    """DDPG/TD3-style continuous control: actor output plus exploration noise.

    The raw action row (a tanh-bounded actor mean under the zoo's
    continuous forward) gets additive gaussian noise; the env clips the
    result to its action space.
    """

    def __init__(self, noise_scale: float = 0.1) -> None:
        self.noise_scale = noise_scale

    def __call__(self, out_row, value_row, *, rng, env, timestep):
        action = np.asarray(out_row, dtype=np.float32)
        if self.noise_scale > 0:
            action = action + self.noise_scale * rng.standard_normal(action.shape).astype(np.float32)
        return action


class EnvRolloutDriver(StepwiseDriver):
    """One worker's env rollout as a resumable, scheduler-interleavable unit."""

    def __init__(self, env: "Env", client: "InferenceClient", policy: ActionPolicy,
                 num_steps: int, *, seed: int = 0,
                 profiler: Optional["Profiler"] = None,
                 collect_transitions: bool = True) -> None:
        self.env = env
        self.system = env.system
        self.client = client
        self.engine = client.engine
        self.policy = policy
        self.num_steps = num_steps
        self.rng = np.random.default_rng(seed)
        self.profiler = profiler
        self.collect_transitions = collect_transitions
        self.result = EnvRolloutResult(worker=self.system.worker)
        self.steps = 0  #: scheduler steps (boundary count), not env steps
        self._obs: Optional[np.ndarray] = None
        self._ticket: Optional["InferenceTicket"] = None
        self._infer_op = None
        self._episode_reward = 0.0
        self._finished = num_steps <= 0
        if profiler is not None:
            profiler.set_phase(PHASE_DATA_COLLECTION)

    # ------------------------------------------------------------- scheduling
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def blocked(self) -> bool:
        """Suspended at an inference boundary, ticket not yet served."""
        return self._ticket is not None and not self._ticket.done

    @property
    def now_us(self) -> float:
        return self.system.clock.now_us

    @property
    def worker_name(self) -> str:
        return self.system.worker

    def step(self) -> bool:
        """Advance by one unit of work; returns False once the budget is spent."""
        if self._finished:
            return False
        if self.blocked:
            raise RuntimeError(f"stepped driver of {self.system.worker!r} "
                               "while it is blocked on inference")
        self.steps += 1
        with use_engine(self.engine):
            if self._ticket is not None:
                self._resume()
            else:
                self._begin()
        return not self._finished

    # ------------------------------------------------------------ persistence
    def snapshot(self) -> bytes:
        """Pickle the driver's resumable state, pending ticket included.

        Valid whenever the driver is between steps (runnable, finished, or
        blocked mid-annotation).  Captures the env's own state (everything
        but its live ``system``/``boundary`` attachments), the driver and
        env RNG streams, the virtual clock, the cost-model jitter stream and
        the profiler's open-operation stack, so :meth:`restore` on a fresh
        worker stack resumes bit-for-bit.
        """
        pending = None
        if self._ticket is not None:
            ticket = self._ticket
            pending = {"features": ticket.features, "metadata": ticket.metadata,
                       "done": ticket.done, "priors": ticket.priors,
                       "values": ticket.values}
        profiler = self.profiler
        prof_state = None
        if profiler is not None:
            prof_state = {
                "names_starts": list(zip(profiler._operation_names,
                                         profiler._operation_starts)),
                "python_resume_us": profiler._python_resume_us,
                "phase": profiler.phase,
            }
        env_state = {key: value for key, value in self.env.__dict__.items()
                     if key not in ("system", "boundary")}
        state = {
            "num_steps": self.num_steps,
            "collect_transitions": self.collect_transitions,
            "result": self.result,
            "steps": self.steps,
            "obs": self._obs,
            "episode_reward": self._episode_reward,
            "finished": self._finished,
            "rng": self.rng,
            "policy": self.policy,
            "env_state": env_state,
            "pending": pending,
            "clock_us": self.system.clock.now_us,
            "cost_rng_state": self.system.cost_model._rng.bit_generator.state,
            "profiler": prof_state,
            "infer_open": self._infer_op is not None,
        }
        import pickle
        return pickle.dumps(state)

    @classmethod
    def restore(cls, env: "Env", client: "InferenceClient", blob: bytes, *,
                profiler: Optional["Profiler"] = None) -> "EnvRolloutDriver":
        """Rebuild a snapshotted driver on a freshly-built env/client stack."""
        import pickle
        state = pickle.loads(blob)
        driver = cls.__new__(cls)
        driver.env = env
        driver.system = env.system
        driver.client = client
        driver.engine = client.engine
        driver.policy = state["policy"]
        driver.num_steps = state["num_steps"]
        driver.rng = state["rng"]
        driver.profiler = profiler
        driver.collect_transitions = state["collect_transitions"]
        driver.result = state["result"]
        driver.steps = state["steps"]
        driver._obs = state["obs"]
        driver._ticket = None
        driver._infer_op = None
        driver._episode_reward = state["episode_reward"]
        driver._finished = state["finished"]
        env.__dict__.update(state["env_state"])
        driver.system.clock.advance_to(state["clock_us"])
        driver.system.cost_model._rng.bit_generator.state = state["cost_rng_state"]
        prof_state = state["profiler"]
        pending = state["pending"]
        if profiler is not None and prof_state is not None:
            profiler.set_phase(prof_state["phase"])
            if state["infer_open"] and prof_state["names_starts"]:
                name, start = prof_state["names_starts"][-1]
                driver._infer_op = profiler.reopen_operation(
                    name, start, metadata=pending["metadata"] if pending else None)
                driver._infer_op.__enter__()
            profiler._python_resume_us = prof_state["python_resume_us"]
        if pending is not None:
            driver._ticket = client.submit(pending["features"],
                                           metadata=pending["metadata"])
            if pending["done"]:
                driver._ticket.priors = pending["priors"]
                driver._ticket.values = pending["values"]
        return driver

    # -------------------------------------------------------------- internals
    def _sim_op(self):
        if self.profiler is None:
            from contextlib import nullcontext
            return nullcontext()
        return self.profiler.operation(OP_SIMULATION)

    def _begin(self) -> None:
        with self._sim_op():
            self._obs = self.env.reset()
        self._submit()

    def _submit(self) -> None:
        """Queue this worker's next policy evaluation and suspend.

        The ``inference`` annotation opens *before* the submit and stays
        open across the suspension: the queueing delay and batch time the
        service later charges this worker land inside it, and the metadata
        dict (held by reference) receives the serving batch's attribution.
        """
        metadata = None
        if self.profiler is not None:
            metadata = {"rows": 1, "env": self.env.sim_id}
            self._infer_op = self.profiler.operation(OP_INFERENCE, metadata=metadata)
            self._infer_op.__enter__()
        if self.client.service.cache_enabled:
            key = self.env.state_key()
            if key is not None:
                metadata = metadata if metadata is not None else {}
                metadata["state_keys"] = [key]
        features = np.asarray(self._obs, dtype=np.float32).reshape(1, -1)
        self._ticket = self.client.submit(features, metadata=metadata)

    def _close_inference_op(self) -> None:
        if self._infer_op is not None:
            self._infer_op.__exit__(None, None, None)
            self._infer_op = None

    def _resume(self) -> None:
        out, values = self._ticket.result()
        self._ticket = None
        self._close_inference_op()
        action = self.policy(out[0], float(values[0]), rng=self.rng,
                             env=self.env, timestep=self.result.steps)
        with self._sim_op():
            next_obs, reward, done, _ = self.env.step(action)
        if self.collect_transitions:
            self.result.transitions.append(Transition(
                obs=self._obs, action=action, reward=reward,
                next_obs=next_obs, done=done))
        self.result.steps += 1
        self._episode_reward += reward
        if done:
            self.result.episodes += 1
            self.result.episode_rewards.append(self._episode_reward)
            self._episode_reward = 0.0
            if self.result.steps < self.num_steps:
                with self._sim_op():
                    next_obs = self.env.reset()
        self._obs = next_obs
        if self.result.steps >= self.num_steps:
            self._finished = True
            return
        self._submit()
