"""The stepwise-driver protocol: the unit of work the pool scheduler interleaves.

A *stepwise driver* is a resumable workload running on its own virtual
timeline: it advances in discrete steps (one MCTS wave, one env transition,
one move commit) and *suspends* whenever it submits work to the shared
batched :class:`~repro.rollout.inference.InferenceService` — leaving its
ticket pending, its profiler annotations open across the wait, and its
virtual clock frozen until the service's batch completes and advances it.
The :class:`~repro.rollout.scheduler.PoolScheduler` interleaves many such
drivers in virtual-time order, which is what lets one engine call batch
requests from many workers at the same virtual instant.

The contract (every property must be cheap — the scheduler reads them once
or twice per event):

* ``finished`` — the driver has no more work; ``step()`` must not be called.
* ``blocked`` — the driver submitted an inference request and its ticket is
  still pending; it cannot advance until the service serves it.
* ``runnable`` — neither finished nor blocked: ``step()`` may be called.
* ``now_us`` — the driver's virtual clock.  It must only move while the
  driver runs or while the service charges it for a served batch; the
  scheduler's min-clock pick and the heap's invalidate-on-advance both rely
  on blocked drivers' clocks standing still.
* ``worker_name`` — stable identifier used for per-worker scheduling stats.
* ``step()`` — advance one unit of work; returns ``True`` while unfinished.
  A step that submits to the service leaves the driver ``blocked``; any
  profiler annotation opened before the submit stays open so the batch
  wait is attributed to the operation that caused it.

:class:`~repro.minigo.selfplay.GameDriver` (MCTS self-play) and
:class:`~repro.rollout.envdriver.EnvRolloutDriver` (any registered
simulator behind a policy network) are the two production drivers; the
test suite ships a minimal synthetic driver exercising the protocol with
no Go dependency.
"""

from __future__ import annotations


class StepwiseDriver:
    """Base class / protocol for schedulable stepwise workloads.

    Subclasses implement ``finished``, ``blocked``, ``now_us``,
    ``worker_name`` and ``step()``; ``runnable`` is derived.  The scheduler
    only depends on these five members, so any object providing them duck-
    types as a driver — subclassing is documentation plus the shared
    ``runnable`` definition, not a hard requirement.
    """

    @property
    def finished(self) -> bool:
        raise NotImplementedError

    @property
    def blocked(self) -> bool:
        raise NotImplementedError

    @property
    def runnable(self) -> bool:
        return not self.finished and not self.blocked

    @property
    def now_us(self) -> float:
        raise NotImplementedError

    @property
    def worker_name(self) -> str:
        raise NotImplementedError

    def step(self) -> bool:
        """Advance one unit of work; returns ``True`` while unfinished."""
        raise NotImplementedError
