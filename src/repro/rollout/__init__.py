"""Env-agnostic rollout core: stepwise drivers, the virtual-time pool scheduler,
and the batched/sharded inference service they share.

Extracted from the Minigo workload (PRs 2–5) so every simulator in
``repro.sim.registry`` and every algorithm in ``repro.rl`` can ride the
same scaled data-collection path: drivers suspend at inference boundaries,
the scheduler interleaves them in virtual-time order, and the shared
service batches their policy evaluations across workers and replicas.
"""

from .driver import StepwiseDriver
from .envdriver import (
    OP_INFERENCE,
    OP_SIMULATION,
    PHASE_DATA_COLLECTION,
    ActionPolicy,
    EnvRolloutDriver,
    EnvRolloutResult,
    EpsilonGreedyPolicy,
    GaussianNoisePolicy,
    SampledDiscretePolicy,
    Transition,
)
from .inference import (
    EVALUATE_FUNCTION_NAME,
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    FLUSH_UNBATCHED,
    ROUTING_LEAST_LOADED,
    ROUTING_POLICIES,
    ROUTING_ROUND_ROBIN,
    ROUTING_STICKY,
    BatchSizeStats,
    InferenceClient,
    InferenceService,
    InferenceStats,
    InferenceTicket,
    LeastLoadedRouting,
    ModelReplica,
    ReservoirSample,
    RoundRobinRouting,
    RoutingPolicy,
    StickyRouting,
    make_routing_policy,
)
from .pool import EnvRolloutPool, RolloutWorkerRun
from .scheduler import PoolScheduler, SchedulerStats

__all__ = [
    "StepwiseDriver",
    "OP_INFERENCE",
    "OP_SIMULATION",
    "PHASE_DATA_COLLECTION",
    "ActionPolicy",
    "EnvRolloutDriver",
    "EnvRolloutResult",
    "EpsilonGreedyPolicy",
    "GaussianNoisePolicy",
    "SampledDiscretePolicy",
    "Transition",
    "EVALUATE_FUNCTION_NAME",
    "FLUSH_MAX_BATCH",
    "FLUSH_POLICIES",
    "FLUSH_TIMEOUT",
    "FLUSH_UNBATCHED",
    "ROUTING_LEAST_LOADED",
    "ROUTING_POLICIES",
    "ROUTING_ROUND_ROBIN",
    "ROUTING_STICKY",
    "BatchSizeStats",
    "InferenceClient",
    "InferenceService",
    "InferenceStats",
    "InferenceTicket",
    "LeastLoadedRouting",
    "ModelReplica",
    "ReservoirSample",
    "RoundRobinRouting",
    "RoutingPolicy",
    "StickyRouting",
    "make_routing_policy",
    "EnvRolloutPool",
    "RolloutWorkerRun",
    "PoolScheduler",
    "SchedulerStats",
]
