"""Batched cross-worker inference service (env-agnostic rollout core).

Born as the Minigo self-play batcher and now shared by every stepwise
driver — Go self-play, the :class:`~repro.rollout.envdriver.EnvRolloutDriver`
zoo workloads, and the networked serving tier.  The module keeps its
original ``expand_leaf`` defaults so Minigo timelines stay bit-for-bit
identical; other workloads pass ``function_name=``/``forward=`` to rename
the compiled evaluator and replace the softmax policy/value head with their
own network contract.

The paper's self-play workload spends its accelerator time in ``expand_leaf``
— per-leaf, batch-size-1 network evaluations issued independently by every
MCTS worker.  Each evaluation pays the full Python -> Backend transition,
kernel-launch and feed-preparation cost for a single board position, so the
GPU runs tiny kernels back to back while the CPU spends most of its time in
dispatch: exactly the hardware-underutilizing pattern RL-Scope's breakdowns
expose (finding F.11).

:class:`InferenceService` fixes the shape of that work.  Self-play workers
submit leaf-evaluation requests (a block of feature rows each) to a shared
service holding a pool of :class:`ModelReplica`\\ s; the service coalesces
everything pending into batched network calls of up to ``max_batch`` rows,
routes each batch to a replica under a pluggable :class:`RoutingPolicy`,
scatters the resulting policy/value rows back to the requesting workers, and
charges each waiting worker's virtual clock for the batch it rode in.

Sharding: each :class:`ModelReplica` is pinned to its own
:class:`~repro.system.System` (its own :class:`~repro.hw.gpu.GPUDevice`,
cost model, and virtual horizon) and caches its own compiled evaluation
functions — adding a replica models adding an inference GPU.  Replica 0 may
share the workload's primary device (the single-GPU configuration every
other phase contends for); further replicas get fresh devices.  Batches are
still *planned* in global arrival order — so ``num_replicas=1`` under any
routing policy reproduces the single-service timelines bit-for-bit — but
each planned batch *starts* at ``max(departure, chosen replica free time)``:
with several replicas, batches fan out and overlap instead of serializing
through one ``free_us`` horizon.  Weight updates propagate to every replica
with a virtual-time broadcast cost (:meth:`InferenceService.update_weights`).

Two serving paths exist:

* :meth:`InferenceService.flush` — the synchronous path used by workers that
  evaluate in place: everything pending is served *now* on the host worker's
  clock, and non-host riders are charged the batch time (inside their own
  ``expand_leaf`` annotation when they carry a profiler).
* :meth:`InferenceService.serve_queued` — the event-driven path used by the
  :class:`~repro.rollout.scheduler.PoolScheduler`: requests are packed in
  **arrival order** under an explicit flush policy (``max-batch`` departs a
  batch when it is full, ``timeout`` additionally departs a partial batch
  ``timeout_us`` after its first request arrived, ``unbatched`` serves each
  ticket alone — the bit-for-bit determinism baseline), each batch starts at
  ``max(departure time, replica free time)``, and every participant is
  charged its own queueing delay *plus* the batch time instead of batch time
  only.

Attribution: every request can carry a metadata dict which the service fills
with the serving batch shape (``batch_rows``, ``batch_clients``,
``batch_time_us``, ``engine_calls``, ``replica`` and under the queueing
model ``queue_delay_us``).  Workers attach that dict to their
``expand_leaf`` operation events, so the profiler can attribute shared
batched time back to the requesting workers without changing any overlap
quantity — operation-event metadata takes no part in
``compute_overlap``/``parallel_overlap``.
"""

from __future__ import annotations

import weakref
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import functional as F
from ..backend.context import use_engine
from ..backend.engine import BackendEngine, CompiledFunction
from ..backend.tensor import Tensor
from ..cuda.kernels import FLOAT_BYTES
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..system import System
from .evalcache import CACHE_REPLICA, CACHE_SCOPES, CACHE_SHARED, CachedRow, EvalCache

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..profiler.api import Profiler

#: Compiled-function name used for batched evaluations; matches the legacy
#: per-worker evaluator so cost-model lookups and trace names stay stable.
EVALUATE_FUNCTION_NAME = "expand_leaf"

#: Flush policies understood by :meth:`InferenceService.serve_queued`.
FLUSH_UNBATCHED = "unbatched"    #: one ticket per engine call, no queueing
FLUSH_MAX_BATCH = "max-batch"    #: depart when full (or when serving triggers)
FLUSH_TIMEOUT = "timeout"        #: like max-batch, plus a partial-batch deadline
FLUSH_POLICIES = (FLUSH_UNBATCHED, FLUSH_MAX_BATCH, FLUSH_TIMEOUT)

#: Routing policies understood by :func:`make_routing_policy`.
ROUTING_ROUND_ROBIN = "round-robin"    #: cycle through replicas per batch
ROUTING_LEAST_LOADED = "least-loaded"  #: earliest-free replica per batch
ROUTING_STICKY = "sticky"              #: pin each host worker to one replica
ROUTING_POLICIES = (ROUTING_ROUND_ROBIN, ROUTING_LEAST_LOADED, ROUTING_STICKY)


class BatchSizeStats:
    """Bounded summary of per-call batch sizes.

    Long runs issue one engine call per batch, so an unbounded list of sizes
    grows linearly with virtual time.  This keeps a fixed-size power-of-two
    histogram plus a fixed-capacity uniform reservoir sample (Vitter's
    algorithm R with a private, deterministic RNG), so memory stays constant
    no matter how many calls the service makes.
    """

    #: histogram bucket upper bounds: [1], (1,2], (2,4], ... (512,1024], (1024,inf)
    BUCKET_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, reservoir_size: int = 256, seed: int = 0) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self.counts = [0] * (len(self.BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_rows = 0
        self.max_rows = 0
        self._reservoir: List[int] = []
        self._rng = np.random.default_rng(seed)

    def append(self, rows: int) -> None:
        self.count += 1
        self.total_rows += rows
        self.max_rows = max(self.max_rows, rows)
        self.counts[bisect_right(self.BUCKET_BOUNDS, rows - 1)] += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(rows)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = rows

    def merge_counts_from(self, other: "BatchSizeStats") -> None:
        """Fold another summary's exact counters in (histogram, totals).

        The reservoir is *not* merged — two uniform samples cannot be
        combined into one without the original streams — so a merged
        summary's :attr:`sample` stays that of the accumulating side.
        """
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.total_rows += other.total_rows
        self.max_rows = max(self.max_rows, other.max_rows)

    @property
    def mean(self) -> float:
        return self.total_rows / self.count if self.count else 0.0

    @property
    def sample(self) -> List[int]:
        """The reservoir: a uniform sample of all observed batch sizes."""
        return list(self._reservoir)

    def histogram(self) -> List[Tuple[int, Optional[int], int]]:
        """Non-empty buckets as ``(lo_exclusive, hi_inclusive | None, count)``."""
        buckets = []
        lo = 0
        for i, hi in enumerate(self.BUCKET_BOUNDS):
            if self.counts[i]:
                buckets.append((lo, hi, self.counts[i]))
            lo = hi
        if self.counts[-1]:
            buckets.append((lo, None, self.counts[-1]))
        return buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchSizeStats(count={self.count}, mean={self.mean:.2f}, "
                f"max={self.max_rows})")


class ReservoirSample:
    """Fixed-capacity uniform sample of a float stream (Vitter's algorithm R).

    Used for queue-delay percentiles: a long serving run measures one delay
    per ticket, so the raw stream grows without bound while the reservoir
    stays a constant-memory uniform sample of it.  The RNG is private and
    deterministic, so two runs with identical delay streams keep identical
    samples.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self._values: List[float] = []
        self._rng = np.random.default_rng(seed)

    def append(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            slot = int(self._rng.integers(0, self.count))
            if slot < self.capacity:
                self._values[slot] = value

    def merge_counts_from(self, other: "ReservoirSample") -> None:
        """Fold another reservoir's observation count in.

        As with :meth:`BatchSizeStats.merge_counts_from`, two uniform samples
        cannot be combined without the original streams, so a merged
        reservoir's :attr:`sample` stays that of the accumulating side.
        """
        self.count += other.count

    @property
    def sample(self) -> List[float]:
        return list(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReservoirSample(count={self.count}, kept={len(self._values)})"


@dataclass
class InferenceStats:
    """Counters describing the batching behaviour of one service or replica."""

    requests: int = 0            #: submitted tickets
    rows: int = 0                #: total feature rows evaluated
    engine_calls: int = 0        #: batched network calls issued
    max_batch_rows: int = 0      #: largest single batch
    cross_worker_batches: int = 0  #: batches serving more than one worker
    capacity: int = 0            #: the service's max_batch (occupancy denominator)
    rows_by_worker: Dict[str, int] = field(default_factory=dict)
    batch_sizes: BatchSizeStats = field(default_factory=BatchSizeStats)
    # Queueing model (serve_queued only): arrival -> batch-start delays.
    queued_waits: int = 0        #: ticket/batch participations measured
    queue_delay_us: float = 0.0  #: total arrival -> batch-start delay
    max_queue_delay_us: float = 0.0
    #: bounded uniform sample of per-ticket queue delays (percentile source)
    queue_delay_samples: ReservoirSample = field(default_factory=ReservoirSample)
    # Weight propagation (sharded services broadcast to every replica).
    weight_broadcasts: int = 0        #: update_weights calls charged
    weight_broadcast_us: float = 0.0  #: total virtual broadcast time
    # Evaluation cache (cache-enabled services only; all zero when disabled).
    cache_hits: int = 0          #: rows answered from the LRU cache, no engine work
    dedupe_rows: int = 0         #: duplicate in-batch rows folded into one engine row
    cache_evictions: int = 0     #: LRU entries evicted by inserts
    # Fault handling (fault-injected services only; all zero when no plan).
    replica_crashes: int = 0     #: fail-stop replica deaths applied
    replica_recoveries: int = 0  #: replicas brought back (weights re-broadcast)
    redispatches: int = 0        #: batches re-planned off a dying replica
    redispatched_rows: int = 0   #: rows those batches carried
    broadcast_retries: int = 0   #: failed weight copies charged twice

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.engine_calls if self.engine_calls else 0.0

    @property
    def calls_saved(self) -> int:
        """Engine calls avoided versus the per-leaf (one call per row) path."""
        return self.rows - self.engine_calls

    @property
    def mean_occupancy(self) -> float:
        """Mean batch fill as a fraction of the service's capacity.

        Zero-batch safe: an idle service (no engine calls, or an unset
        capacity) reports 0.0 instead of dividing by zero.
        """
        if not self.capacity or not self.engine_calls:
            return 0.0
        return self.mean_batch_rows / self.capacity

    @property
    def mean_queue_delay_us(self) -> float:
        """Mean arrival -> batch-start delay (0.0 when nothing queued yet)."""
        return self.queue_delay_us / self.queued_waits if self.queued_waits else 0.0

    def queue_delay_percentiles(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
                                ) -> Optional[Dict[float, float]]:
        """Queue-delay percentiles (µs) from the bounded delay reservoir.

        Returns ``{percentile: delay_us}`` for each requested percentile
        (defaults p50/p95/p99), computed over the uniform
        :class:`ReservoirSample` of per-ticket arrival -> batch-start delays.
        Empty-service guard: returns ``None`` when no queued wait has been
        measured yet (an idle service, or one only ever served through the
        synchronous :meth:`InferenceService.flush` path, which does not model
        queueing delay).
        """
        values = self.queue_delay_samples.sample
        if not values:
            return None
        ordered = np.sort(np.asarray(values, dtype=np.float64))
        return {float(p): float(np.percentile(ordered, p)) for p in percentiles}

    @property
    def cross_worker_share(self) -> float:
        """Fraction of engine calls that served more than one worker.

        Zero-batch safe: 0.0 before the first engine call.
        """
        return self.cross_worker_batches / self.engine_calls if self.engine_calls else 0.0

    def merge_from(self, other: "InferenceStats") -> None:
        """Fold another stats object's counters into this one (roll-up).

        Sums the additive counters, maxes the extrema, and merges the exact
        batch-size histogram; the bounded reservoir sample is not merged
        (see :meth:`BatchSizeStats.merge_counts_from`).
        """
        self.requests += other.requests
        self.rows += other.rows
        self.engine_calls += other.engine_calls
        self.max_batch_rows = max(self.max_batch_rows, other.max_batch_rows)
        self.cross_worker_batches += other.cross_worker_batches
        self.capacity = max(self.capacity, other.capacity)
        for worker, rows in other.rows_by_worker.items():
            self.rows_by_worker[worker] = self.rows_by_worker.get(worker, 0) + rows
        self.batch_sizes.merge_counts_from(other.batch_sizes)
        self.queued_waits += other.queued_waits
        self.queue_delay_us += other.queue_delay_us
        self.max_queue_delay_us = max(self.max_queue_delay_us, other.max_queue_delay_us)
        self.queue_delay_samples.merge_counts_from(other.queue_delay_samples)
        self.weight_broadcasts += other.weight_broadcasts
        self.weight_broadcast_us += other.weight_broadcast_us
        self.cache_hits += other.cache_hits
        self.dedupe_rows += other.dedupe_rows
        self.cache_evictions += other.cache_evictions
        self.replica_crashes += other.replica_crashes
        self.replica_recoveries += other.replica_recoveries
        self.redispatches += other.redispatches
        self.redispatched_rows += other.redispatched_rows
        self.broadcast_retries += other.broadcast_retries


# --------------------------------------------------------------- routing
class RoutingPolicy:
    """Chooses which :class:`ModelReplica` serves each batch.

    Policies are pluggable: pass an instance (or a name from
    :data:`ROUTING_POLICIES`) to :class:`InferenceService`.  Every decision
    is counted per replica index in :attr:`decisions`, so routing imbalance
    is visible in sweep reports.  With a single replica every policy
    degenerates to "always replica 0" — which is why ``num_replicas=1``
    reproduces single-service runs bit-for-bit under any routing policy.
    """

    name = "base"

    def __init__(self) -> None:
        self.decisions: Dict[int, int] = {}

    def reset(self) -> None:
        """Clear all routing state.

        Called by :class:`InferenceService` when it adopts a policy, so a
        policy instance reused across services (e.g. a pool re-run) starts
        every run from the same state — run-to-run reproducibility depends
        on it.  Subclasses with extra state must extend this.
        """
        self.decisions = {}

    def select(self, replicas: Sequence["ModelReplica"], *, host_worker: str,
               depart_us: float) -> int:
        """Return the index of the replica that should serve this batch."""
        raise NotImplementedError

    def choose(self, replicas: Sequence["ModelReplica"], *, host_worker: str,
               depart_us: float = 0.0) -> "ModelReplica":
        index = self.select(replicas, host_worker=host_worker, depart_us=depart_us)
        self.decisions[index] = self.decisions.get(index, 0) + 1
        return replicas[index]


class RoundRobinRouting(RoutingPolicy):
    """Cycle through replicas one batch at a time (load-oblivious)."""

    name = ROUTING_ROUND_ROBIN

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def reset(self) -> None:
        super().reset()
        self._next = 0

    def select(self, replicas, *, host_worker, depart_us):
        index = self._next % len(replicas)
        self._next = (self._next + 1) % len(replicas)
        return index


class LeastLoadedRouting(RoutingPolicy):
    """Send each batch to the replica whose horizon frees earliest.

    Ties break toward the lowest replica index, so the policy is
    deterministic under identical arrival streams.
    """

    name = ROUTING_LEAST_LOADED

    def select(self, replicas, *, host_worker, depart_us):
        return min(range(len(replicas)), key=lambda i: (replicas[i].free_us, i))


class StickyRouting(RoutingPolicy):
    """Pin each batch-hosting worker to one replica (cache affinity).

    The first time a worker hosts a batch it is assigned the next replica
    round-robin; afterwards all batches it hosts go to the same replica, the
    configuration used for KV/feature-cache affinity experiments.  Riders
    coalesced into the batch follow the host's replica.
    """

    name = ROUTING_STICKY

    def __init__(self) -> None:
        super().__init__()
        self.assignments: Dict[str, int] = {}
        self._next = 0

    def reset(self) -> None:
        super().reset()
        self.assignments = {}
        self._next = 0

    def select(self, replicas, *, host_worker, depart_us):
        index = self.assignments.get(host_worker)
        if index is None or index >= len(replicas):
            index = self._next % len(replicas)
            self._next = (self._next + 1) % len(replicas)
            self.assignments[host_worker] = index
        return index


def make_routing_policy(routing: Union[str, RoutingPolicy]) -> RoutingPolicy:
    """Build a routing policy from a name (or pass an instance through)."""
    if isinstance(routing, RoutingPolicy):
        return routing
    if routing == ROUTING_ROUND_ROBIN:
        return RoundRobinRouting()
    if routing == ROUTING_LEAST_LOADED:
        return LeastLoadedRouting()
    if routing == ROUTING_STICKY:
        return StickyRouting()
    raise ValueError(f"unknown routing policy {routing!r}; expected one of {ROUTING_POLICIES}")


class ModelReplica:
    """One model replica pinned to its own device/system.

    A replica bundles everything one inference GPU owns: a
    :class:`~repro.system.System` (virtual clock, cost model, CUDA runtime
    and :class:`~repro.hw.gpu.GPUDevice`), a private compiled-function cache
    (the model as loaded on *this* GPU), its own ``free_us`` horizon (the
    virtual time at which its last queued batch completes), and its own
    :class:`InferenceStats`.  Batches execute on the *host worker's* engine
    and clock — the CPU-side dispatch belongs to the requesting process —
    but their kernels land on the replica's device and their serialization
    point is the replica's horizon.
    """

    def __init__(self, index: int, name: str, system: System, *,
                 capacity: int, pinned: bool = True) -> None:
        self.index = index
        self.name = name
        self.system = system
        #: False only for a replica 0 with no primary device: its batches
        #: execute on each host worker's own device (the pre-sharding
        #: behaviour of a directly constructed service) instead of being
        #: redirected to this replica's device.
        self.pinned = pinned
        self.free_us = 0.0           #: horizon: when the last queued batch ends
        self.busy_us = 0.0           #: total virtual time spent serving batches
        #: False while the replica is fail-stopped by an injected fault; an
        #: unhealthy replica takes no traffic until it recovers (and current
        #: weights are re-broadcast onto its horizon first).
        self.healthy = True
        self.slow_factor = 1.0       #: >1 while an injected slowdown is active
        self.slow_until_us = 0.0     #: virtual end of the active slowdown
        self.down_us = 0.0           #: accumulated down-time over closed outages
        self.down_since_us: Optional[float] = None  #: start of the open outage
        self.stats = InferenceStats(capacity=capacity)
        #: set by a cache-enabled service running with ``cache_scope="replica"``
        self.eval_cache: Optional[EvalCache] = None
        self._compiled: Dict[Tuple[int, int], Tuple[CompiledFunction, object]] = {}

    @property
    def device(self) -> GPUDevice:
        return self.system.device

    def compiled_for(self, engine: BackendEngine, network, forward,
                     function_name: str = EVALUATE_FUNCTION_NAME) -> CompiledFunction:
        """This replica's compiled evaluator for (engine, network).

        Keyed by (id(engine), id(network)): safe because the cache entry
        holds strong references to both, so a cached id can never be
        recycled while the entry exists.  Each replica keeps its own cache —
        the compiled program loaded on its own GPU.
        """
        key = (id(engine), id(network))
        entry = self._compiled.get(key)
        if entry is None:
            compiled = engine.function(
                lambda features: forward(network, features),
                name=function_name, num_feeds=1)
            entry = (compiled, network)
            self._compiled[key] = entry
        return entry[0]

    def utilisation(self, span_us: float) -> float:
        """Fraction of ``span_us`` this replica spent serving batches."""
        return self.busy_us / span_us if span_us > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ModelReplica({self.name!r}, free_us={self.free_us:.1f}, "
                f"calls={self.stats.engine_calls})")


class InferenceTicket:
    """Handle for one submitted evaluation request."""

    def __init__(self, client: "InferenceClient", features: np.ndarray,
                 metadata: Optional[dict], *, arrival_us: float = 0.0, seq: int = 0) -> None:
        self.client = client
        self.features = features
        self.metadata = metadata
        self.arrival_us = arrival_us   #: submitting worker's clock at submit
        self.seq = seq                 #: service-wide submission order
        #: per-row position keys (``metadata["state_keys"]``) captured at
        #: submit on cache-enabled services; None entries bypass the cache
        self.state_keys: Optional[List[Optional[int]]] = None
        self.priors: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    @property
    def done(self) -> bool:
        return self.priors is not None

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (priors, values) rows for this request; flushes if pending."""
        if not self.done:
            self.client.service.flush()
        assert self.priors is not None and self.values is not None
        return self.priors, self.values


class InferenceClient:
    """One worker's connection to the shared service.

    The client remembers the worker's system (whose clock pays for batch
    latency), engine (on which batches hosted by this client execute), and
    optionally the network its rows must be evaluated with (candidate
    evaluation serves two models from one queue; rows of different networks
    never share a matmul) and the worker's profiler (so rider wait time can
    be charged inside an ``expand_leaf`` annotation instead of showing up as
    untracked time).
    """

    def __init__(self, service: "InferenceService", system: System,
                 engine: BackendEngine, worker: str, *,
                 network=None, profiler: Optional["Profiler"] = None) -> None:
        self.service = service
        self.system = system
        self.engine = engine
        self.worker = worker
        self.network = network if network is not None else service.network
        self.profiler = profiler

    def submit(self, features: np.ndarray, *, metadata: Optional[dict] = None) -> InferenceTicket:
        return self.service.submit(self, features, metadata=metadata)

    def evaluate(self, features: np.ndarray, *, metadata: Optional[dict] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous evaluation: submit, flush the queue, return our rows."""
        ticket = self.submit(features, metadata=metadata)
        self.service.flush()
        return ticket.result()


class InferenceService:
    """Coalesces leaf-evaluation requests from many workers into batched calls.

    The service owns ``num_replicas`` :class:`ModelReplica`\\ s sharing one
    logical model (``network``; a client may override the network, e.g. the
    candidate model during evaluation — batches never mix rows of different
    networks).  Requests queue up via :meth:`submit`; :meth:`flush` serves
    everything synchronously on the host worker's clock, while
    :meth:`serve_queued` applies the arrival-order queueing model used by
    the event-driven pool scheduler.  Each batch is routed to a replica by
    the service's :class:`RoutingPolicy`; per-replica stats roll up into the
    service-level :attr:`stats`.
    """

    def __init__(self, network, *, max_batch: int = 64, name: str = "inference_service",
                 num_replicas: int = 1, routing: Union[str, RoutingPolicy] = ROUTING_ROUND_ROBIN,
                 primary_device: Optional[GPUDevice] = None,
                 cost_config: Optional[CostModelConfig] = None, seed: int = 0,
                 function_name: str = EVALUATE_FUNCTION_NAME,
                 forward=None, cache_capacity: Optional[int] = None,
                 cache_scope: str = CACHE_SHARED) -> None:
        """``primary_device`` pins replica 0 to an existing device (the GPU
        the rest of the workload shares); further replicas always get fresh
        devices of their own.  ``cost_config``/``seed`` parameterize the
        replica systems' cost models (used for the weight-broadcast cost —
        batch durations are always sampled from the *host worker's* model,
        so adding replicas never perturbs single-replica timelines).

        ``function_name`` names the compiled batched evaluator (cost-model
        lookups, trace events and rider annotations all carry it); it
        defaults to the Minigo ``expand_leaf``.  ``forward`` replaces the
        default policy/value head: a callable ``(network, features) ->
        (out_rows, value_rows)`` mapping a [rows, features] array to a
        [rows, K] output array plus a [rows] value array.  The default
        calls ``network(Tensor(features))`` and softmaxes the logits —
        the Minigo/discrete-policy contract.

        ``cache_capacity`` enables the service-side evaluation cache: a
        bounded LRU of network outputs keyed by ``(weight_version,
        network, position_key)``, fed by per-row ``metadata["state_keys"]``
        at submit.  Cached rows skip the engine entirely, duplicate rows
        within one batch run once and fan out to all riders, and
        ``update_weights`` bumps :attr:`weight_version` so stale entries
        become unreachable without an explicit flush.  ``cache_scope``
        picks one shared cache for the service (hits can then answer a
        whole ticket at submit) or one private cache per replica
        (consulted only after routing — the cache-affinity configuration
        for the sticky policy).  ``cache_capacity=None`` (the default)
        disables every cache code path."""
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if cache_scope not in CACHE_SCOPES:
            raise ValueError(f"unknown cache scope {cache_scope!r}; "
                             f"expected one of {CACHE_SCOPES}")
        if cache_capacity is not None and cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive (or None to disable)")
        self.network = network
        self.max_batch = max_batch
        self.name = name
        self.function_name = function_name
        if forward is not None:
            # Shadow the default method with the caller's plain callable;
            # both are invoked as ``self._forward(network, features)``.
            self._forward = forward
        self.routing = make_routing_policy(routing)
        # Adopting a policy resets it: a reused instance (e.g. a pool re-run
        # passing the same object) must not carry decisions or cursor state
        # from a previous service into this one.
        self.routing.reset()
        self.cache_capacity = cache_capacity
        self.cache_scope = cache_scope
        #: monotonic weight generation; part of every cache key, so entries
        #: written under old weights become unreachable after update_weights
        self.weight_version = 0
        self.eval_cache: Optional[EvalCache] = None
        if cache_capacity is not None and cache_scope == CACHE_SHARED:
            self.eval_cache = EvalCache(cache_capacity)
        # Cache keys embed a per-service *registration token*, not
        # ``id(network)``: an id can be recycled the moment a network is
        # garbage collected, at which point a new network allocated at the
        # same address would silently read another model's cached rows.
        # Tokens are handed out monotonically in first-submission order
        # (deterministic) and tracked through weak references, so a
        # collected network frees its slot without pinning the model alive.
        self._net_tokens: Dict[int, Tuple[int, weakref.ref]] = {}
        self._next_net_token = 0
        #: armed by :meth:`attach_fault_injector`; None keeps every serving
        #: path on its fault-free fast path, bit-identical to a build
        #: without fault support.
        self.fault_injector = None
        self._broadcast_bytes: Optional[float] = None
        self.stats = InferenceStats(capacity=max_batch)
        self._pending: List[InferenceTicket] = []
        self._seq = 0
        # O(1) queue summaries: the event-driven scheduler reads pending_rows
        # (the eager-serve memo) and the earliest arrival (the timeout
        # deadline) once per *event*, so both are maintained incrementally
        # instead of re-scanned — submissions update them in place, serves
        # mark the arrival cache dirty for a lazy recompute.
        self._pending_rows = 0
        self._earliest_arrival_us: Optional[float] = None
        self._earliest_arrival_dirty = False
        #: After a full-batches-only serve: earliest departure among the full
        #: batches held back as not yet stable (None when none were).  Lets
        #: the scheduler skip eager re-plans until virtual time reaches it.
        self.last_undue_full_depart_us: Optional[float] = None
        from .seeding import replica_seed
        self.replicas: List[ModelReplica] = []
        for index in range(num_replicas):
            replica_name = f"{name}/replica_{index}"
            pinned = True
            if index == 0:
                # Replica 0 lives on the workload's primary GPU.  Without an
                # explicit primary device it stays unpinned: batches execute
                # on each host worker's own device, exactly as the
                # pre-sharding single-replica service did.
                system = System.create(seed=replica_seed(seed, 0), config=cost_config,
                                       device=primary_device, worker=replica_name)
                pinned = primary_device is not None
            else:
                system = System.create(seed=replica_seed(seed, index), config=cost_config,
                                       worker=replica_name)
                system.device.name = f"{system.device.name}/{replica_name}"
            self.replicas.append(ModelReplica(index, replica_name, system,
                                              capacity=max_batch, pinned=pinned))
        if cache_capacity is not None and cache_scope == CACHE_REPLICA:
            for replica in self.replicas:
                replica.eval_cache = EvalCache(cache_capacity)

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def cache_enabled(self) -> bool:
        return self.cache_capacity is not None

    # ---------------------------------------------------------------- clients
    def connect(self, system: System, engine: BackendEngine,
                *, worker: Optional[str] = None, network=None,
                profiler: Optional["Profiler"] = None) -> InferenceClient:
        """Register a worker; returns its client handle."""
        return InferenceClient(self, system, engine, worker or system.worker,
                               network=network, profiler=profiler)

    def _forward(self, network, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        logits, value = network(Tensor(features))
        priors = F.softmax(logits)
        return priors.numpy(), value.numpy().reshape(-1)

    # ---------------------------------------------------------------- weights
    def update_weights(self, weights, *, charge: bool = True) -> float:
        """Load new weights into the model and broadcast them to every replica.

        Models the weight push after a training round: each replica receives
        the full parameter set over its host link, charged at its cost
        model's memcpy rate, starting as soon as its horizon is free.  The
        broadcast advances every replica's ``free_us`` (a replica cannot
        serve batches mid-copy) and returns the virtual broadcast span —
        first copy start to last copy end.  ``charge=False`` performs the
        load only (initial model placement before the clocks start).
        """
        self.network.load_state_dict(weights)
        # New weight generation: every cache key embeds the version, so all
        # entries written under the old weights are now unreachable (they age
        # out of the LRU ring instead of being flushed synchronously).
        self.weight_version += 1
        if not charge:
            return 0.0
        arrays = weights.values() if hasattr(weights, "values") else weights
        num_bytes = float(sum(FLOAT_BYTES * np.asarray(w).size for w in arrays))
        self._broadcast_bytes = num_bytes
        injector = self.fault_injector
        begin_us = min(replica.free_us for replica in self.replicas)
        end_us = begin_us
        for replica in self.replicas:
            if injector is not None and not replica.healthy:
                # A dead replica misses the push; recovery re-broadcasts the
                # then-current weights before it takes traffic again.
                injector.record(begin_us, "broadcast-skipped", replica.index,
                                "replica down; weights land on recovery")
                continue
            copy_us = replica.system.cost_model.memcpy_duration(num_bytes)
            replica.free_us += copy_us
            replica.stats.weight_broadcasts += 1
            replica.stats.weight_broadcast_us += copy_us
            if injector is not None:
                for event in injector.take_broadcast_failures(
                        replica.index, replica.free_us):
                    # The failed copy is retried back to back: charged twice.
                    replica.free_us += copy_us
                    replica.stats.weight_broadcast_us += copy_us
                    self.stats.broadcast_retries += 1
                    replica.stats.broadcast_retries += 1
                    injector.record(event.time_us, "broadcast-fail", replica.index,
                                    f"copy retried ({copy_us:.3f}us)")
            end_us = max(end_us, replica.free_us)
        span_us = end_us - begin_us
        self.stats.weight_broadcasts += 1
        self.stats.weight_broadcast_us += span_us
        return span_us

    # ---------------------------------------------------------------- faults
    def attach_fault_injector(self, injector) -> None:
        """Arm fault injection: replica events from the injector's plan are
        applied as virtual time reaches them (see :meth:`apply_due_faults`),
        batches route around unhealthy replicas, and batches planned onto a
        horizon that dies before they start re-dispatch onto the survivors.
        Never attached (the default) keeps every path fault-free and
        bit-identical."""
        self.fault_injector = injector

    def healthy_replicas(self) -> List[ModelReplica]:
        return [replica for replica in self.replicas if replica.healthy]

    def capacity_lost_us(self, until_us: float) -> float:
        """Replica-microseconds of capacity lost to outages up to ``until_us``.

        Sums every closed outage plus the elapsed part of any still-open one
        (a replica down at ``until_us`` contributes only the span it has
        actually been down for).
        """
        lost = 0.0
        for replica in self.replicas:
            lost += replica.down_us
            if replica.down_since_us is not None:
                lost += max(0.0, until_us - replica.down_since_us)
        return lost

    def availability(self, until_us: float) -> float:
        """Fraction of pool capacity that was up over ``[0, until_us]``."""
        if until_us <= 0.0:
            return 1.0
        total = until_us * len(self.replicas)
        return 1.0 - self.capacity_lost_us(until_us) / total

    def apply_due_faults(self, now_us: float) -> None:
        """Apply every replica-pool fault scheduled at or before ``now_us``."""
        injector = self.fault_injector
        if injector is None:
            return
        for event in injector.due_replica_events(now_us):
            self._apply_fault(event)

    def _apply_fault(self, event) -> None:
        from ..faults.plan import REPLICA_CRASH, REPLICA_RECOVER, REPLICA_SLOW
        if event.kind == REPLICA_CRASH:
            self.fail_replica(event.target, event.time_us)
        elif event.kind == REPLICA_RECOVER:
            self.recover_replica(event.target, event.time_us)
        elif event.kind == REPLICA_SLOW:
            self.slow_replica(event.target, event.time_us, event.param,
                              event.duration_us)

    def fail_replica(self, index: int, now_us: float) -> bool:
        """Fail-stop a replica at a batch boundary.

        The last healthy replica refuses to die (logged as ``crash-skipped``)
        so the pool always makes progress; queued work is untouched — the
        global arrival-order queue holds it, and planning simply never routes
        to an unhealthy replica — while work already planned onto the dead
        horizon re-dispatches via :meth:`_route_around_crashes`.
        """
        replica = self.replicas[index]
        injector = self.fault_injector
        if not replica.healthy:
            return False
        if sum(1 for r in self.replicas if r.healthy) <= 1:
            if injector is not None:
                injector.record(now_us, "crash-skipped", index,
                                "last healthy replica")
            return False
        replica.healthy = False
        replica.down_since_us = now_us
        self.stats.replica_crashes += 1
        replica.stats.replica_crashes += 1
        if injector is not None:
            healthy = sum(1 for r in self.replicas if r.healthy)
            injector.record(now_us, "replica-crash", index,
                            f"healthy={healthy}/{len(self.replicas)}")
        return True

    def recover_replica(self, index: int, now_us: float) -> bool:
        """Bring a dead replica back: re-broadcast current weights onto its
        horizon (charged at its memcpy rate), then let it take traffic."""
        replica = self.replicas[index]
        injector = self.fault_injector
        if replica.healthy:
            if injector is not None:
                injector.record(now_us, "recover-skipped", index, "already healthy")
            return False
        replica.healthy = True
        if replica.down_since_us is not None:
            replica.down_us += max(0.0, now_us - replica.down_since_us)
            replica.down_since_us = None
        replica.free_us = max(replica.free_us, now_us)
        copy_us = 0.0
        num_bytes = self._weight_footprint_bytes()
        if num_bytes > 0.0:
            copy_us = replica.system.cost_model.memcpy_duration(num_bytes)
            replica.free_us += copy_us
            replica.stats.weight_broadcasts += 1
            replica.stats.weight_broadcast_us += copy_us
        self.stats.replica_recoveries += 1
        replica.stats.replica_recoveries += 1
        if injector is not None:
            healthy = sum(1 for r in self.replicas if r.healthy)
            injector.record(now_us, "replica-recover", index,
                            f"rebroadcast_us={copy_us:.3f} "
                            f"healthy={healthy}/{len(self.replicas)}")
        return True

    def slow_replica(self, index: int, now_us: float, factor: float,
                     duration_us: float) -> None:
        """Degrade a replica: batches starting inside the span run
        ``factor``x longer (extra time charged on the host clock)."""
        replica = self.replicas[index]
        replica.slow_factor = factor
        replica.slow_until_us = now_us + duration_us
        if self.fault_injector is not None:
            self.fault_injector.record(now_us, "replica-slow", index,
                                       f"factor={factor:g} until={replica.slow_until_us:.3f}")

    def _weight_footprint_bytes(self) -> float:
        """Bytes one replica receives in a weight (re-)broadcast."""
        if self._broadcast_bytes is None:
            try:
                state = self.network.state_dict()
            except AttributeError:
                self._broadcast_bytes = 0.0
            else:
                arrays = state.values() if hasattr(state, "values") else state
                self._broadcast_bytes = float(
                    sum(FLOAT_BYTES * np.asarray(w).size for w in arrays))
        return self._broadcast_bytes

    def _route_around_crashes(self, host_worker: str, depart_us: float,
                              rows: int) -> Tuple[ModelReplica, float]:
        """Route a planned batch, re-dispatching off replicas that die first.

        The routing policy picks among the healthy replicas (the full pool
        when all are healthy, so the fault-free decision stream is
        unchanged).  If the chosen replica's next scheduled event is a crash
        landing at or before the batch's start on its horizon, these rows
        are exactly the dead replica's queued/in-flight work: the crash is
        applied now, a ``redispatch`` decision is logged, the re-dispatch
        latency is charged onto a new departure, and routing repeats over
        the survivors.  Batches are planned in global arrival order, so
        re-dispatches replay in arrival order too.
        """
        injector = self.fault_injector
        while True:
            healthy = [r for r in self.replicas if r.healthy]
            if len(healthy) == len(self.replicas):
                replica = self.routing.choose(self.replicas, host_worker=host_worker,
                                              depart_us=depart_us)
            else:
                index = self.routing.select(healthy, host_worker=host_worker,
                                            depart_us=depart_us)
                replica = healthy[index]
                self.routing.decisions[replica.index] = (
                    self.routing.decisions.get(replica.index, 0) + 1)
            start_us = max(depart_us, replica.free_us)
            crash = injector.peek_crash(replica.index, start_us)
            if crash is None:
                return replica, depart_us
            injector.consume(crash)
            if self.fail_replica(crash.target, crash.time_us):
                self.stats.redispatches += 1
                self.stats.redispatched_rows += rows
                depart_us = max(depart_us, crash.time_us) + self.plan_redispatch_latency_us
                injector.record(crash.time_us, "redispatch", crash.target,
                                f"rows={rows} new_depart={depart_us:.3f}")

    @property
    def plan_redispatch_latency_us(self) -> float:
        injector = self.fault_injector
        return injector.plan.redispatch_latency_us if injector is not None else 0.0

    # ----------------------------------------------------------------- queue
    def submit(self, client: InferenceClient, features: np.ndarray,
               *, metadata: Optional[dict] = None) -> InferenceTicket:
        """Queue a block of feature rows for batched evaluation.

        ``metadata`` is held **by reference**, intentionally: the service
        writes batch attribution (``batch_rows``, ``queue_delay_us``,
        ``completion_us``, ...) into the *caller's* dict so an open profiler
        annotation created before the submit observes the attribution of the
        batch that eventually serves it.  The flip side of that contract is
        that a dict must never be shared between submissions — two tickets
        writing into one dict alias each other's attribution.  Callers that
        re-issue work (e.g. the serving tier's retry path) must pass a fresh
        dict per submission; :mod:`repro.serving.protocol` enforces this
        structurally by rebuilding the metadata dict at every wire decode.

        On a cache-enabled service, ``metadata["state_keys"]`` (one
        optional position key per feature row) makes the rows cacheable.
        With the shared cache scope, a ticket whose rows *all* hit is
        fulfilled right here — it never enters the queue and its caller
        sees ``ticket.done`` immediately.
        """
        features = np.asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError(f"expected a non-empty [rows, features] array, got shape {features.shape}")
        ticket = InferenceTicket(client, features, metadata,
                                 arrival_us=client.system.clock.now_us, seq=self._seq)
        self._seq += 1
        self.stats.requests += 1
        if self.cache_capacity is not None:
            ticket.state_keys = self._extract_state_keys(metadata, ticket.num_rows)
            if ticket.state_keys is not None:
                self._network_token(client.network)
                if self._fulfil_at_submit(ticket):
                    return ticket
        self._pending.append(ticket)
        self._pending_rows += ticket.num_rows
        if not self._earliest_arrival_dirty:
            if self._earliest_arrival_us is None or ticket.arrival_us < self._earliest_arrival_us:
                self._earliest_arrival_us = ticket.arrival_us
        return ticket

    @staticmethod
    def _extract_state_keys(metadata: Optional[dict], num_rows: int
                            ) -> Optional[List[Optional[int]]]:
        """Capture per-row position keys from the submission metadata."""
        if metadata is None:
            return None
        keys = metadata.get("state_keys")
        if keys is None:
            return None
        keys = list(keys)
        if len(keys) != num_rows:
            raise ValueError(f"metadata['state_keys'] has {len(keys)} entries "
                             f"for {num_rows} feature rows")
        return keys

    def _network_token(self, network) -> int:
        """The stable per-service token identifying ``network`` in cache keys.

        ``id(network)`` only indexes the registry; an entry is trusted iff
        its weak reference still points at *this* network, so a new network
        allocated at a recycled id gets a fresh token (and therefore fresh
        cache keys) instead of inheriting the dead model's entries.  A
        collected network's registry slot is purged by its weakref callback,
        guarded so it never evicts a successor that already claimed the id.
        """
        addr = id(network)
        entry = self._net_tokens.get(addr)
        if entry is not None and entry[1]() is network:
            return entry[0]
        token = self._next_net_token
        self._next_net_token += 1

        def purge(ref, *, addr=addr, token=token, registry=self._net_tokens):
            current = registry.get(addr)
            if current is not None and current[0] == token:
                del registry[addr]

        self._net_tokens[addr] = (token, weakref.ref(network, purge))
        return token

    def _cache_key(self, client: InferenceClient, state_key: Optional[int]
                   ) -> Optional[Tuple[int, int, int]]:
        """Full cache key for one row: (weight generation, network, position)."""
        if state_key is None:
            return None
        return (self.weight_version, self._network_token(client.network), state_key)

    def _cache_for(self, replica: ModelReplica) -> Optional[EvalCache]:
        if self.cache_capacity is None:
            return None
        return self.eval_cache if self.cache_scope == CACHE_SHARED else replica.eval_cache

    def _fulfil_at_submit(self, ticket: InferenceTicket) -> bool:
        """Answer a whole ticket from the shared cache, skipping the queue.

        Only the shared scope can do this (per-replica caches are consulted
        after routing), and only when *every* row hits — partial hits wait
        for batch planning, where :meth:`_run_batch` resolves them row by
        row.  Submit-time hits land on the aggregate :attr:`stats` only: no
        replica was involved, which :meth:`rolled_up_stats` documents.
        """
        if self.eval_cache is None:
            return False
        assert ticket.state_keys is not None
        keys = [self._cache_key(ticket.client, key) for key in ticket.state_keys]
        if any(key is None or key not in self.eval_cache for key in keys):
            return False
        entries = [self.eval_cache.get(key) for key in keys]
        ticket.priors = np.stack([entry[0] for entry in entries], axis=0)
        ticket.values = np.asarray([entry[1] for entry in entries])
        self.stats.cache_hits += ticket.num_rows
        if ticket.metadata is not None:
            meta = ticket.metadata
            meta["inference_service"] = self.name
            meta["cache_hits"] = meta.get("cache_hits", 0) + ticket.num_rows
            meta["completion_us"] = max(meta.get("completion_us", 0.0),
                                        ticket.client.system.clock.now_us)
        return True

    @property
    def pending_rows(self) -> int:
        return self._pending_rows

    @property
    def pending_tickets(self) -> int:
        return len(self._pending)

    def earliest_pending_arrival_us(self) -> Optional[float]:
        """Arrival time of the oldest queued request (None when idle).

        O(1) amortized: submissions fold their arrival into a running
        minimum; only a serve (which removes arbitrary tickets) forces the
        next call to rescan the much-shrunken queue.
        """
        if not self._pending:
            return None
        if self._earliest_arrival_dirty:
            self._earliest_arrival_us = min(ticket.arrival_us for ticket in self._pending)
            self._earliest_arrival_dirty = False
        return self._earliest_arrival_us

    def _requeue(self, tickets: Iterable[InferenceTicket]) -> None:
        """Put held-back tickets back on the queue, keeping summaries right."""
        for ticket in tickets:
            self._pending.append(ticket)
            self._pending_rows += ticket.num_rows
        self._earliest_arrival_dirty = True

    def drop_pending(self, predicate) -> List[InferenceTicket]:
        """Shed hook: remove queued tickets matching ``predicate`` (load shedding).

        The serving tier's overload policies (shed-oldest, deadline-drop)
        evict requests from the ingress queue; this removes the matching
        tickets while keeping the O(1) queue summaries consistent.  Only
        *pending* tickets are touchable: a batch that has departed was
        removed from the queue when it was planned, so shedding can never
        claw back rows that are already being served — the "deadline-drop
        racing a departing batch" case resolves in the batch's favour by
        construction.  Returns the dropped tickets (submission order) so the
        caller can route shed replies; their stats were counted at submit
        time and are otherwise untouched.
        """
        kept: List[InferenceTicket] = []
        dropped: List[InferenceTicket] = []
        for ticket in self._pending:
            (dropped if predicate(ticket) else kept).append(ticket)
        if dropped:
            self._pending = kept
            self._pending_rows = sum(t.num_rows for t in kept)
            self._earliest_arrival_us = None
            self._earliest_arrival_dirty = bool(kept)
        return dropped

    def _take_pending(self, arrival_cutoff_us: Optional[float] = None
                      ) -> List[List[InferenceTicket]]:
        """Drain the queue into per-network ticket groups (submission order).

        With ``arrival_cutoff_us`` only tickets that arrived at or before the
        cutoff are taken; later ones stay queued (they can still gather more
        riders before their own deadline)."""
        if arrival_cutoff_us is None:
            tickets, self._pending = self._pending, []
            self._pending_rows = 0
        else:
            tickets = [t for t in self._pending if t.arrival_us <= arrival_cutoff_us]
            self._pending = [t for t in self._pending if t.arrival_us > arrival_cutoff_us]
            self._pending_rows = sum(t.num_rows for t in self._pending)
        self._earliest_arrival_us = None
        self._earliest_arrival_dirty = bool(self._pending)
        groups: Dict[int, List[InferenceTicket]] = {}
        for ticket in tickets:
            groups.setdefault(id(ticket.client.network), []).append(ticket)
        return list(groups.values())

    # ------------------------------------------------------ synchronous flush
    def flush(self) -> int:
        """Evaluate everything pending on the host's clock, immediately.

        This is the synchronous serving path: chunks execute *now* on the
        engine of each chunk's first requester, and non-host riders are
        charged the batch time.  The event-driven scheduler uses
        :meth:`serve_queued` instead, which models arrival-order queueing
        delay.  Returns the number of engine calls issued.
        """
        calls = 0
        for tickets in self._take_pending():
            # Flatten tickets into (ticket, row-within-ticket) spans and cut
            # the row stream into chunks of at most max_batch rows.
            spans: List[Tuple[InferenceTicket, int, int]] = []  # (ticket, lo, hi)
            for ticket in tickets:
                spans.append((ticket, 0, ticket.num_rows))
            while spans:
                chunk: List[Tuple[InferenceTicket, int, int]] = []
                rows = 0
                while spans and rows < self.max_batch:
                    ticket, lo, hi = spans[0]
                    take = min(hi - lo, self.max_batch - rows)
                    chunk.append((ticket, lo, lo + take))
                    rows += take
                    if lo + take == hi:
                        spans.pop(0)
                    else:
                        spans[0] = (ticket, lo + take, hi)
                self._evaluate_chunk(chunk, rows)
                calls += 1
        return calls

    def _evaluate_chunk(self, chunk: List[Tuple[InferenceTicket, int, int]], rows: int) -> None:
        """Run one batched engine call now and scatter rows back to its tickets."""
        host = chunk[0][0].client
        now_us = host.system.clock.now_us
        if self.fault_injector is None:
            replica = self.routing.choose(self.replicas, host_worker=host.worker,
                                          depart_us=now_us)
        else:
            self.apply_due_faults(now_us)
            replica, _ = self._route_around_crashes(host.worker, now_us, rows)
        priors, values, batch_time_us, engine_rows = self._run_batch(host, chunk, rows, replica)
        replica.free_us = max(replica.free_us, host.system.clock.now_us)
        replica.busy_us += batch_time_us

        clients = {id(t.client): t.client for t, _, _ in chunk}
        # Everyone who rode the batch waits for it; the host's clock already
        # advanced while the engine executed.  Non-host riders advance here,
        # inside an expand_leaf annotation of their own when they carry a
        # profiler (without one the wait would show as untracked time).
        for client in clients.values():
            if client is not host:
                self._charge_rider(client, batch_time_us, rows, len(clients))
        self._scatter(chunk, rows, priors, values, batch_time_us, len(clients), replica,
                      engine_rows=engine_rows)

    def _charge_rider(self, client: InferenceClient, batch_time_us: float,
                      rows: int, num_clients: int) -> None:
        """Advance a non-host rider's clock by the batch time it waited for."""
        profiler = client.profiler
        if profiler is None or not profiler.config.annotations:
            client.system.clock.advance(batch_time_us)
            return
        if profiler.current_operation is not None:
            # Already suspended inside its own annotation (the event-driven
            # driver holds expand_leaf open across the wait); the open
            # operation covers the advance.
            client.system.clock.advance(batch_time_us)
            return
        with profiler.operation(self.function_name, metadata={
                "batch_rider": True, "inference_service": self.name,
                "batch_rows": rows, "batch_clients": num_clients,
                "batch_time_us": batch_time_us}):
            client.system.clock.advance(batch_time_us)

    # ------------------------------------------------------- queued serving
    def serve_queued(self, *, policy: str = FLUSH_MAX_BATCH,
                     timeout_us: Optional[float] = None,
                     arrival_cutoff_us: Optional[float] = None,
                     full_batches_only: bool = False,
                     stable_before_us: Optional[float] = None) -> int:
        """Serve everything pending under the arrival-order queueing model.

        Requests are packed into batches in arrival order.  A batch *departs*
        (becomes eligible to run) when it is full — ``max_batch`` rows — or,
        under the ``timeout`` policy, at ``first arrival + timeout_us`` even
        if partial.  It then *starts* at ``max(departure, replica free
        time)`` on the replica the routing policy picks: a single replica
        serializes batches, while several replicas fan batches out across
        their horizons.  Every participant's clock is advanced to the
        batch's completion time, charging it its own queueing delay plus the
        batch time — a rider that arrived early pays more waiting than one
        that arrived just before departure.

        ``full_batches_only=True`` serves only the batches that packed to
        ``max_batch`` rows (the replica-aware scheduler's eager path: a full
        batch can never gather more riders, so a free replica may start it
        while other workers still run); partial batches are re-queued unless
        a split ticket straddles a served batch (partial re-queueing would
        double-serve its rows).  ``stable_before_us`` bounds the eager path
        to batches whose departure is already in the virtual past for every
        still-running worker: a batch departing later than a runnable
        worker's clock could still be reordered behind that worker's next
        submission in global arrival order, so it is held back.  A held
        deadline-closed partial may later start behind a full batch that
        departed after it — the behaviour of a real batching server, which
        dispatches full batches immediately while partials wait out their
        deadlines.

        ``unbatched`` serves each ticket on its own, on its own clock, with
        no queueing — the determinism baseline: per-worker timelines are
        bit-for-bit those of the synchronous sequential pool.  Returns the
        number of engine calls issued.
        """
        if policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {policy!r}; expected one of {FLUSH_POLICIES}")
        if policy == FLUSH_TIMEOUT:
            if timeout_us is None or timeout_us < 0:
                raise ValueError("the timeout policy requires a non-negative timeout_us")
        else:
            timeout_us = None
        calls = 0
        if full_batches_only:
            self.last_undue_full_depart_us = None
        for tickets in self._take_pending(arrival_cutoff_us):
            tickets.sort(key=lambda t: (t.arrival_us, t.seq))
            if policy == FLUSH_UNBATCHED:
                for ticket in tickets:
                    lo = 0
                    while lo < ticket.num_rows:
                        hi = min(lo + self.max_batch, ticket.num_rows)
                        self._evaluate_chunk([(ticket, lo, hi)], hi - lo)
                        calls += 1
                        lo = hi
                continue
            batches = self._plan_batches(tickets, timeout_us)
            if arrival_cutoff_us is not None and batches:
                # Cutoff-triggered serve (a deadline passed): a trailing
                # partial batch whose own deadline lies beyond the cutoff is
                # not due yet — hold its tickets back so they can still
                # gather riders, unless a split ticket straddles the served
                # batches (partial re-queueing would double-serve its rows).
                chunk, rows, depart_us = batches[-1]
                if rows < self.max_batch and depart_us > arrival_cutoff_us:
                    served = {id(t) for c, _, _ in batches[:-1] for t, _, _ in c}
                    if not any(id(t) in served for t, _, _ in chunk):
                        self._requeue(t for t, _, _ in chunk)
                        batches.pop()
            if full_batches_only and batches:
                batches = self._hold_partial_batches(batches, stable_before_us)
            for chunk, rows, depart_us in batches:
                self._serve_chunk_queued(chunk, rows, depart_us)
                calls += 1
        return calls

    def _hold_partial_batches(self, batches, stable_before_us: Optional[float]):
        """Keep only due full batches; re-queue the tickets of the rest.

        A full batch is due when its departure is not later than
        ``stable_before_us`` (no still-running worker could submit rows that
        sort before it in arrival order).  A held batch is still served when
        one of its tickets straddles a served batch (ticket rows split at a
        full-batch boundary must not be double-served by a later re-plan)."""
        served_ids: set = set()
        keep = []
        held_tickets: List[InferenceTicket] = []
        held_ids: set = set()
        for chunk, rows, depart_us in batches:
            straddles = any(id(t) in served_ids for t, _, _ in chunk)
            due = stable_before_us is None or depart_us <= stable_before_us
            if rows >= self.max_batch and not due:
                if (self.last_undue_full_depart_us is None
                        or depart_us < self.last_undue_full_depart_us):
                    self.last_undue_full_depart_us = depart_us
            if (rows >= self.max_batch and due) or straddles:
                keep.append((chunk, rows, depart_us))
                served_ids.update(id(t) for t, _, _ in chunk)
            else:
                for ticket, _, _ in chunk:
                    if id(ticket) not in held_ids:
                        held_ids.add(id(ticket))
                        held_tickets.append(ticket)
        self._requeue(held_tickets)
        return keep

    def _plan_batches(self, tickets: List[InferenceTicket], timeout_us: Optional[float]
                      ) -> List[Tuple[List[Tuple[InferenceTicket, int, int]], int, float]]:
        """Greedy arrival-order packing into ``(chunk, rows, depart_us)`` batches.

        A full batch departs when its last rider arrives; a partial batch
        departs at ``first arrival + timeout_us`` when a timeout is set (the
        server waits out the deadline hoping to fill), else when its last
        rider arrives (the serve trigger means no more arrivals are coming).
        """
        batches: List[Tuple[List[Tuple[InferenceTicket, int, int]], int, float]] = []
        chunk: List[Tuple[InferenceTicket, int, int]] = []
        rows = 0
        first_arrival = 0.0
        last_arrival = 0.0

        def close(depart_us: float) -> None:
            nonlocal chunk, rows
            batches.append((chunk, rows, depart_us))
            chunk, rows = [], 0

        for ticket in tickets:
            if chunk and timeout_us is not None and ticket.arrival_us > first_arrival + timeout_us:
                close(first_arrival + timeout_us)
            lo = 0
            while lo < ticket.num_rows:
                if not chunk:
                    first_arrival = ticket.arrival_us
                take = min(ticket.num_rows - lo, self.max_batch - rows)
                chunk.append((ticket, lo, lo + take))
                rows += take
                lo += take
                last_arrival = ticket.arrival_us
                if rows == self.max_batch:
                    # A full batch departs when its last rider arrives (the
                    # admission check above guarantees that is within the
                    # first rider's deadline).
                    close(last_arrival)
        if chunk:
            close(first_arrival + timeout_us if timeout_us is not None else last_arrival)
        return batches

    def _serve_chunk_queued(self, chunk: List[Tuple[InferenceTicket, int, int]],
                            rows: int, depart_us: float) -> None:
        """Run one planned batch under the queueing model and scatter results."""
        host = chunk[0][0].client
        injector = self.fault_injector
        if injector is None:
            replica = self.routing.choose(self.replicas, host_worker=host.worker,
                                          depart_us=depart_us)
        else:
            self.apply_due_faults(depart_us)
            replica, depart_us = self._route_around_crashes(host.worker,
                                                            depart_us, rows)
        start_us = max(depart_us, replica.free_us)
        # The host worker (first requester) waits for the batch to start...
        host.system.clock.advance_to(start_us)
        start_us = host.system.clock.now_us  # host may already be past depart
        priors, values, batch_time_us, engine_rows = self._run_batch(host, chunk, rows, replica)
        if (injector is not None and replica.slow_factor > 1.0
                and start_us < replica.slow_until_us and batch_time_us > 0.0):
            # An injected slowdown stretches the batch; the extra time is
            # real wall (virtual) time on the host clock.
            extra_us = (replica.slow_factor - 1.0) * batch_time_us
            host.system.clock.advance(extra_us)
            batch_time_us += extra_us
        end_us = host.system.clock.now_us
        replica.free_us = end_us
        replica.busy_us += batch_time_us
        # ...and every rider waits for it to finish: wait + batch time, each
        # from its own arrival, inside its own (open) expand_leaf annotation.
        clients = {id(t.client): t.client for t, _, _ in chunk}
        for client in clients.values():
            if client is not host:
                client.system.clock.advance_to(end_us)
        seen = set()
        for ticket, _, _ in chunk:
            if id(ticket) in seen:
                continue
            seen.add(id(ticket))
            delay = max(start_us - ticket.arrival_us, 0.0)
            for stats in (self.stats, replica.stats):
                stats.queued_waits += 1
                stats.queue_delay_us += delay
                stats.max_queue_delay_us = max(stats.max_queue_delay_us, delay)
                stats.queue_delay_samples.append(delay)
            if ticket.metadata is not None:
                ticket.metadata["queue_delay_us"] = ticket.metadata.get("queue_delay_us", 0.0) + delay
                # Batch completion in virtual time; a split ticket keeps the
                # end of its last-served chunk (the serving tier's reply
                # timestamp and deadline check read this).
                ticket.metadata["completion_us"] = max(
                    ticket.metadata.get("completion_us", 0.0), end_us)
        self._scatter(chunk, rows, priors, values, batch_time_us, len(clients), replica,
                      engine_rows=engine_rows)

    # -------------------------------------------------------- shared helpers
    def _run_batch(self, host: InferenceClient,
                   chunk: List[Tuple[InferenceTicket, int, int]], rows: int,
                   replica: ModelReplica) -> Tuple[np.ndarray, np.ndarray, float, int]:
        """Run one planned chunk, resolving cache hits and in-batch duplicates.

        With the cache disabled this is exactly one :meth:`_execute` call.
        With it enabled, each keyed row is either answered from the LRU
        cache (a *hit*), folded into the first identical row of the chunk
        (a *dedupe rider*), or executed; only the executed rows reach the
        engine — as a sub-chunk of the original spans, so the overridable
        :meth:`_execute` signature is untouched — and freshly executed
        keyed rows enter the cache.  Returns ``(priors, values,
        batch_time_us, engine_rows)`` covering all ``rows`` of the chunk;
        ``engine_rows`` is what the engine actually evaluated (``rows``
        when the cache is off, 0 for an all-hit chunk, which issues no
        engine call at all).
        """
        cache = self._cache_for(replica)
        if cache is None:
            priors, values, batch_time_us = self._execute(host, chunk, replica)
            return priors, values, batch_time_us, rows
        row_keys: List[Optional[Tuple[int, int, int]]] = []
        for ticket, lo, hi in chunk:
            keys = ticket.state_keys
            for row in range(lo, hi):
                state_key = keys[row] if keys is not None else None
                row_keys.append(self._cache_key(ticket.client, state_key))
        hit_entries: Dict[int, CachedRow] = {}
        canonical: List[int] = []       # batch-row indices the engine must run
        rider_of: Dict[int, int] = {}   # duplicate batch row -> its canonical row
        first_seen: Dict[Tuple[int, int, int], int] = {}
        for index, key in enumerate(row_keys):
            if key is None:
                canonical.append(index)
                continue
            entry = cache.get(key)
            if entry is not None:
                hit_entries[index] = entry
                continue
            seen = first_seen.get(key)
            if seen is None:
                first_seen[key] = index
                canonical.append(index)
            else:
                rider_of[index] = seen
        batch_time_us = 0.0
        sub_priors = sub_values = None
        if canonical:
            sub_chunk = self._sub_chunk(chunk, canonical)
            sub_priors, sub_values, batch_time_us = self._execute(host, sub_chunk, replica)
        if sub_priors is not None:
            width, pdtype, vdtype = sub_priors.shape[1], sub_priors.dtype, sub_values.dtype
        else:  # every row hit: shape/dtype come from any cached entry
            prior_row, value = next(iter(hit_entries.values()))
            width, pdtype, vdtype = prior_row.shape[0], prior_row.dtype, np.asarray(value).dtype
        priors = np.empty((rows, width), dtype=pdtype)
        values = np.empty(rows, dtype=vdtype)
        for position, index in enumerate(canonical):
            priors[index] = sub_priors[position]
            values[index] = sub_values[position]
        for index, source in rider_of.items():
            priors[index] = priors[source]
            values[index] = values[source]
        for index, (prior_row, value) in hit_entries.items():
            priors[index] = prior_row
            values[index] = value
        evictions = 0
        for index in canonical:
            key = row_keys[index]
            if key is not None:
                evictions += cache.put(key, priors[index].copy(), values[index])
        for stats in (self.stats, replica.stats):
            stats.cache_hits += len(hit_entries)
            stats.dedupe_rows += len(rider_of)
            stats.cache_evictions += evictions
        if hit_entries or rider_of:
            self._attribute_cache_rows(chunk, hit_entries, rider_of)
        return priors, values, batch_time_us, len(canonical)

    @staticmethod
    def _sub_chunk(chunk: List[Tuple[InferenceTicket, int, int]],
                   canonical: List[int]) -> List[Tuple[InferenceTicket, int, int]]:
        """Spans covering only the selected batch-row indices (order kept).

        ``canonical`` is strictly increasing, so one forward sweep over the
        original spans suffices; adjacent selected rows of one ticket merge
        back into a single span.
        """
        sub: List[Tuple[InferenceTicket, int, int]] = []
        bounds = []  # (ticket, first batch row of this span, lo)
        base = 0
        for ticket, lo, hi in chunk:
            bounds.append((ticket, base, lo, hi))
            base += hi - lo
        cursor = 0
        for index in canonical:
            while True:
                ticket, row_base, lo, hi = bounds[cursor]
                if index < row_base + (hi - lo):
                    break
                cursor += 1
            row = lo + (index - row_base)
            if sub and sub[-1][0] is ticket and sub[-1][2] == row:
                sub[-1] = (ticket, sub[-1][1], row + 1)
            else:
                sub.append((ticket, row, row + 1))
        return sub

    @staticmethod
    def _attribute_cache_rows(chunk: List[Tuple[InferenceTicket, int, int]],
                              hit_entries: Dict[int, CachedRow],
                              rider_of: Dict[int, int]) -> None:
        """Count each ticket's cached/deduped rows into its metadata dict."""
        base = 0
        for ticket, lo, hi in chunk:
            take = hi - lo
            if ticket.metadata is not None:
                hits = sum(1 for index in hit_entries if base <= index < base + take)
                dupes = sum(1 for index in rider_of if base <= index < base + take)
                if hits:
                    ticket.metadata["cache_hits"] = ticket.metadata.get("cache_hits", 0) + hits
                if dupes:
                    ticket.metadata["dedupe_rows"] = ticket.metadata.get("dedupe_rows", 0) + dupes
            base += take

    def _execute(self, host: InferenceClient, chunk: List[Tuple[InferenceTicket, int, int]],
                 replica: ModelReplica) -> Tuple[np.ndarray, np.ndarray, float]:
        """One batched engine call on the host's engine/clock, on the replica's device.

        The CPU side (dispatch, launches, syncs) runs on the host worker's
        engine and cost model — its process issues the call — while the
        kernels and memcpys land on the serving replica's device: the host's
        CUDA runtime is pointed at that device for the duration of the call.
        With replica 0 on the workload's primary device this is a no-op, and
        an *unpinned* replica 0 (no primary device given) skips the redirect
        entirely — kernels stay on the host's own device, as before
        sharding — so single-replica timelines are unchanged either way.
        """
        features = np.concatenate([t.features[lo:hi] for t, lo, hi in chunk], axis=0)
        compiled = replica.compiled_for(host.engine, host.network, self._forward,
                                        function_name=self.function_name)
        cuda = host.system.cuda
        saved_device = cuda.device
        if replica.pinned:
            cuda.device = replica.device
        start_us = host.system.clock.now_us
        try:
            with use_engine(host.engine):
                priors, values = compiled(features)
        finally:
            cuda.device = saved_device
        return priors, values, host.system.clock.now_us - start_us

    def _scatter(self, chunk: List[Tuple[InferenceTicket, int, int]], rows: int,
                 priors: np.ndarray, values: np.ndarray, batch_time_us: float,
                 num_clients: int, replica: ModelReplica, *,
                 engine_rows: Optional[int] = None) -> None:
        """Record stats for one served batch and hand rows back to its tickets.

        ``engine_rows`` is how many of the chunk's rows the engine actually
        evaluated (cache hits and dedupe riders subtracted); it defaults to
        ``rows`` — the cache-off behaviour — and 0 means no engine call was
        issued at all, so none of the per-call counters (nor the batch-size
        reservoir, whose RNG stream is pinned) may advance.
        """
        engine_rows = rows if engine_rows is None else engine_rows
        # The service aggregate and the serving replica's stats advance in
        # lock-step (aggregate first, so its reservoir RNG stream matches
        # the pre-sharding single-stats service draw for draw).
        if engine_rows:
            for stats in (self.stats, replica.stats):
                stats.engine_calls += 1
                stats.rows += engine_rows
                stats.max_batch_rows = max(stats.max_batch_rows, engine_rows)
                stats.batch_sizes.append(engine_rows)
                if num_clients > 1:
                    stats.cross_worker_batches += 1

        offset = 0
        for ticket, lo, hi in chunk:
            take = hi - lo
            worker = ticket.client.worker
            for stats in (self.stats, replica.stats):
                stats.rows_by_worker[worker] = stats.rows_by_worker.get(worker, 0) + take
            if ticket.priors is None:
                # First chunk serving this ticket (split tickets count once,
                # attributed to the replica that served their head rows).
                replica.stats.requests += 1
            prior_rows = priors[offset:offset + take]
            value_rows = values[offset:offset + take]
            if ticket.priors is None:
                ticket.priors, ticket.values = prior_rows, value_rows
            else:  # ticket split across chunks
                ticket.priors = np.concatenate([ticket.priors, prior_rows], axis=0)
                ticket.values = np.concatenate([ticket.values, value_rows], axis=0)
            if ticket.metadata is not None:
                meta = ticket.metadata
                meta["inference_service"] = self.name
                meta["batch_rows"] = meta.get("batch_rows", 0) + rows
                meta["batch_clients"] = max(meta.get("batch_clients", 0), num_clients)
                meta["batch_time_us"] = meta.get("batch_time_us", 0.0) + batch_time_us
                meta["engine_calls"] = meta.get("engine_calls", 0) + (1 if engine_rows else 0)
                meta["replica"] = replica.index
            offset += take

    # ------------------------------------------------------------- reporting
    def rolled_up_stats(self) -> InferenceStats:
        """Service-level summary merged from every replica's own stats.

        After a fully-served run this matches the live :attr:`stats`
        aggregate on every additive serving counter.  Two families
        intentionally differ: ``requests`` (the aggregate counts
        submissions, the roll-up counts served tickets, so they diverge
        while tickets are pending) and the weight-broadcast counters (the
        aggregate records one broadcast *span* per :meth:`update_weights`
        call, the roll-up sums every replica's own copy time).  A third,
        cache-enabled divergence: submit-time cache hits fulfil a ticket
        before any replica is routed, so their ``cache_hits`` land on the
        aggregate only and the roll-up undercounts them.
        """
        merged = InferenceStats(capacity=self.max_batch)
        for replica in self.replicas:
            merged.merge_from(replica.stats)
        return merged

    def replica_utilisation(self, span_us: float) -> List[float]:
        """Per-replica busy fraction of ``span_us`` (index-aligned)."""
        return [replica.utilisation(span_us) for replica in self.replicas]

    def routing_decisions(self) -> List[int]:
        """Per-replica routed-batch counts (index-aligned)."""
        return [self.routing.decisions.get(replica.index, 0) for replica in self.replicas]
