"""Worker pool running any registered simulator through the batched stack.

:class:`EnvRolloutPool` is the env-agnostic sibling of
:class:`~repro.minigo.workers.SelfPlayPool`: ``num_workers`` independent
"processes" (each with its own virtual clock, cost model, CUDA runtime and
stream on one shared :class:`~repro.hw.gpu.GPUDevice`) each run one
``repro.sim.registry`` environment behind a shared policy network, with
every per-step policy evaluation routed through one batched/sharded
:class:`~repro.rollout.inference.InferenceService` and the workers
interleaved by the :class:`~repro.rollout.scheduler.PoolScheduler`.  One
engine call serves the pending steps of many workers — the cross-worker
batching the Minigo pool demonstrated, now available to every sim and
algorithm in the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tracedb.store import TraceDB
    from ..tracedb.writer import StreamingTraceWriter

from ..backend.graph import GraphEngine
from ..backend.layers import MLP, Module
from ..backend.tensor import Parameter, Tensor
from ..hw.costmodel import CostModelConfig
from ..hw.gpu import GPUDevice
from ..profiler.api import Profiler, ProfilerConfig
from ..profiler.events import EventTrace
from ..sim import registry
from ..system import System
from .envdriver import (
    ActionPolicy,
    EnvRolloutDriver,
    EnvRolloutResult,
    GaussianNoisePolicy,
    SampledDiscretePolicy,
)
from .inference import (
    FLUSH_MAX_BATCH,
    FLUSH_POLICIES,
    FLUSH_TIMEOUT,
    ROUTING_ROUND_ROBIN,
    InferenceService,
)
from .scheduler import PoolScheduler
from .seeding import driver_seed

#: Compiled-function name for zoo policy evaluations (mirrors the per-step
#: inference functions the serial ``repro.rl`` collection loops compile).
POLICY_FUNCTION_NAME = "policy_forward"


class RolloutPolicyNet(Module):
    """Default zoo actor-critic: shared trunk, action head, value head.

    The action head emits logits for discrete envs (the service's default
    softmax forward turns them into sampling probabilities) and tanh-bounded
    action means for continuous envs (served raw through
    :func:`continuous_actor_forward`; the env clips to its action space).
    """

    def __init__(self, obs_dim: int, out_dim: int, hidden: Tuple[int, ...] = (64, 64), *,
                 continuous: bool = False, rng: Optional[np.random.Generator] = None,
                 name: str = "zoo_net") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.out_dim = out_dim
        self.continuous = continuous
        self.trunk = MLP(obs_dim, list(hidden[:-1]), hidden[-1], activation="relu",
                         out_activation="relu", name=f"{name}/trunk", rng=rng)
        self.action_head = MLP(hidden[-1], [], out_dim,
                               out_activation="tanh" if continuous else None,
                               name=f"{name}/action", rng=rng)
        self.value_head = MLP(hidden[-1], [], 1, name=f"{name}/value", rng=rng)

    def __call__(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        trunk = self.trunk(features)
        return self.action_head(trunk), self.value_head(trunk)

    def parameters(self) -> List[Parameter]:
        return (self.trunk.parameters() + self.action_head.parameters()
                + self.value_head.parameters())


def continuous_actor_forward(network, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Service forward for continuous actors: raw action rows, no softmax."""
    actions, value = network(Tensor(features))
    return actions.numpy(), value.numpy().reshape(-1)


@dataclass
class RolloutWorkerRun:
    """Output of one zoo worker (mirrors the Minigo pool's ``WorkerRun``)."""

    worker: str
    result: EnvRolloutResult
    trace: Optional[EventTrace]
    total_time_us: float
    system: Optional[System] = field(repr=False, default=None)


class EnvRolloutPool:
    """Pool of env-rollout workers sharing one GPU and one inference service."""

    def __init__(
        self,
        sim: str,
        num_workers: int = 8,
        *,
        steps_per_worker: int = 32,
        hidden: Tuple[int, ...] = (64, 64),
        network=None,
        forward=None,
        policy_factory=None,
        profile: bool = False,
        cost_config: Optional[CostModelConfig] = None,
        seed: int = 0,
        trace_dir: Optional[str] = None,
        store: Optional["StreamingTraceWriter"] = None,
        chunk_events: int = 50_000,
        inference_max_batch: Optional[int] = None,
        num_replicas: int = 1,
        routing: str = ROUTING_ROUND_ROBIN,
        flush_policy: str = FLUSH_MAX_BATCH,
        flush_timeout_us: Optional[float] = None,
        collect_transitions: bool = True,
        env_kwargs: Optional[dict] = None,
        num_processes: Optional[int] = None,
        process_backend: str = "process",
        fault_plan=None,
        cache_capacity: Optional[int] = None,
        cache_scope: str = "shared",
    ) -> None:
        """``network``/``forward``/``policy_factory`` default to a shared
        :class:`RolloutPolicyNet` with the env-appropriate service forward
        and action policy (categorical sampling for discrete envs, gaussian
        exploration noise for continuous ones); pass your own to route an
        algorithm's live network through the service instead (see
        ``repro.rl.zoo``).  ``policy_factory(env, seed)`` builds one
        :class:`~repro.rollout.envdriver.ActionPolicy` per worker.

        ``inference_max_batch`` defaults to ``num_workers // num_replicas``
        (floor 1): with one row per blocked worker, a full batch then forms
        as soon as one replica's fair share of the fleet is waiting, which
        both bounds batch size and lets the replica-aware eager path fan
        full batches out while other workers still run.

        ``num_processes`` shards the workers over that many real OS
        processes via :mod:`repro.parallel` (only with the default
        network/forward/policy — live objects cannot cross the process
        boundary): shards advance their drivers between serves while the
        parent merges their virtual timelines and runs the shared service,
        bit-for-bit reproducing the single-process event loop.
        ``process_backend="inline"`` runs the shards in-process.

        ``cache_capacity`` turns on the service-side evaluation cache
        (weight-versioned LRU; see :mod:`repro.rollout.evalcache`) for envs
        whose :meth:`~repro.sim.base.Env.state_key` returns a stable hash;
        keyless envs bypass it row-by-row.  ``cache_scope`` is ``"shared"``
        (one cache over all replicas) or ``"replica"``.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if steps_per_worker <= 0:
            raise ValueError("steps_per_worker must be positive")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if flush_policy not in FLUSH_POLICIES:
            raise ValueError(f"unknown flush policy {flush_policy!r}; "
                             f"expected one of {FLUSH_POLICIES}")
        if flush_policy == FLUSH_TIMEOUT and (flush_timeout_us is None or flush_timeout_us < 0):
            raise ValueError("the timeout flush policy requires a non-negative flush_timeout_us")
        if num_processes is not None:
            from ..parallel.runner import BACKENDS
            if num_processes <= 0:
                raise ValueError("num_processes must be positive")
            if store is not None:
                raise ValueError("num_processes cannot share a live store object "
                                 "across processes; pass trace_dir instead")
            if network is not None or forward is not None or policy_factory is not None:
                raise ValueError("num_processes requires the default network/forward/"
                                 "policy (live objects cannot cross the process boundary)")
            if process_backend not in BACKENDS:
                raise ValueError(f"unknown process backend {process_backend!r}; "
                                 f"expected one of {BACKENDS}")
        if cache_capacity is not None:
            from .evalcache import CACHE_SCOPES
            if cache_scope not in CACHE_SCOPES:
                raise ValueError(f"unknown cache scope {cache_scope!r}; "
                                 f"expected one of {CACHE_SCOPES}")
            if num_processes is not None:
                raise ValueError(
                    "num_processes cannot be combined with the service evaluation "
                    "cache: shards replay engine calls from their own pre-run "
                    "timelines, so parent-side cache hits would desynchronize the "
                    "shard replicas; run the cache single-process")
        self.sim = sim
        self.num_workers = num_workers
        self.steps_per_worker = steps_per_worker
        self.hidden = hidden
        self.profile = profile
        self.cost_config = cost_config
        self.seed = seed
        self.num_replicas = num_replicas
        self.routing = routing
        self.flush_policy = flush_policy
        self.flush_timeout_us = flush_timeout_us
        self.collect_transitions = collect_transitions
        self.env_kwargs = dict(env_kwargs or {})
        self.num_processes = num_processes
        self.process_backend = process_backend
        #: optional :class:`~repro.faults.plan.FaultPlan` for the multiprocess
        #: tier (shard crashes -> respawn + journal replay).  Deliberately
        #: excluded from :meth:`_child_config`: faults are injected by the
        #: parent, never re-injected inside a respawned shard.
        self.fault_plan = fault_plan
        self.cache_capacity = cache_capacity
        self.cache_scope = cache_scope
        self.trace_dir = trace_dir
        self.chunk_events = chunk_events
        self.inference_max_batch = (inference_max_batch if inference_max_batch is not None
                                    else max(1, num_workers // num_replicas))
        self._network = network
        self._forward = forward
        self._policy_factory = policy_factory
        #: the shared accelerator all workers contend for
        self.device = GPUDevice()
        self.inference_service: Optional[InferenceService] = None
        self.pool_scheduler: Optional[PoolScheduler] = None
        self.runs: List[RolloutWorkerRun] = []
        self._store = store
        self._owns_store = False
        self._streamed = False
        if self._store is None and trace_dir is not None:
            from ..tracedb.writer import StreamingTraceWriter
            self._store = StreamingTraceWriter(trace_dir, chunk_events=chunk_events)
            self._owns_store = True

    @property
    def streaming(self) -> bool:
        return self._store is not None

    @property
    def store(self) -> Optional["StreamingTraceWriter"]:
        return self._store

    def tracedb(self) -> "TraceDB":
        """Open the streamed trace store for querying/map-reduce analysis."""
        if self._store is None:
            raise ValueError("pool was not created with trace_dir/store; no trace store to open")
        from ..tracedb.store import TraceDB
        return TraceDB(str(self._store.directory))

    # ------------------------------------------------------------------ run
    def run(self) -> List[RolloutWorkerRun]:
        """Drive every worker's rollout to completion; returns per-worker runs."""
        if self.streaming and self._streamed:
            raise RuntimeError("this pool already streamed a run into its trace store; "
                               "create a new pool (or trace_dir) for another run")
        self.runs = []
        if self.num_processes is not None:
            return self._run_parallel()
        # Build every worker's system/engine/env first (fixed creation order
        # keeps every RNG stream independent of pool configuration).
        stacks = [self._make_worker_stack(index) for index in range(self.num_workers)]
        probe_env = stacks[0][2]
        self.inference_service = self._build_service(probe_env)
        drivers: List[EnvRolloutDriver] = []
        profilers: List[Optional[Profiler]] = []
        for index, (system, engine, env, profiler) in enumerate(stacks):
            client = self.inference_service.connect(system, engine,
                                                    worker=system.worker,
                                                    profiler=profiler)
            policy = self._make_policy(env, index)
            drivers.append(EnvRolloutDriver(
                env, client, policy, self.steps_per_worker,
                seed=driver_seed(self.seed, index), profiler=profiler,
                collect_transitions=self.collect_transitions))
            profilers.append(profiler)
        self.pool_scheduler = PoolScheduler(
            drivers, self.inference_service,
            flush_policy=self.flush_policy, flush_timeout_us=self.flush_timeout_us)
        self.pool_scheduler.run()
        for (system, _, _, profiler), driver in zip(stacks, drivers):
            trace = profiler.finalize() if profiler is not None else None
            if self.streaming:
                trace = None  # the trace lives in the store's shard
            self.runs.append(RolloutWorkerRun(
                worker=system.worker, result=driver.result, trace=trace,
                total_time_us=system.clock.now_us, system=system))
        if self.streaming:
            self._streamed = True
            if self._owns_store:
                self._store.close()
        return self.runs

    def _build_service(self, probe_env, service_factory=None) -> InferenceService:
        """Build the shared service for a fleet of ``probe_env``-shaped workers.

        ``probe_env`` supplies the observation/action dims and the
        discrete/continuous forward choice — identical for every worker of
        one sim, so any worker's env (or a throwaway probe) works.
        ``service_factory`` substitutes the class (the multiprocess path
        passes the parent-side mirror service).
        """
        from .seeding import network_seed

        factory = service_factory if service_factory is not None else InferenceService
        network = self._network
        if network is None:
            network = RolloutPolicyNet(
                probe_env.observation_dim, probe_env.action_dim, self.hidden,
                continuous=not probe_env.is_discrete,
                rng=np.random.default_rng(network_seed(self.seed)),
                name=f"zoo_{self.sim}")
        forward = self._forward
        if forward is None and not probe_env.is_discrete:
            forward = continuous_actor_forward
        cache_kwargs = {}
        if self.cache_capacity is not None:
            cache_kwargs.update(cache_capacity=self.cache_capacity,
                                cache_scope=self.cache_scope)
        return factory(
            network,
            max_batch=self.inference_max_batch,
            num_replicas=self.num_replicas,
            routing=self.routing,
            primary_device=self.device,
            cost_config=self.cost_config,
            seed=self.seed,
            function_name=POLICY_FUNCTION_NAME,
            forward=forward,
            **cache_kwargs,
        )

    def _child_config(self) -> dict:
        """Constructor kwargs a shard process rebuilds this pool from."""
        return dict(
            sim=self.sim,
            num_workers=self.num_workers,
            steps_per_worker=self.steps_per_worker,
            hidden=self.hidden,
            profile=self.profile,
            cost_config=self.cost_config,
            seed=self.seed,
            trace_dir=self.trace_dir,
            chunk_events=self.chunk_events,
            inference_max_batch=self.inference_max_batch,
            num_replicas=self.num_replicas,
            routing=self.routing,
            flush_policy=self.flush_policy,
            flush_timeout_us=self.flush_timeout_us,
            collect_transitions=self.collect_transitions,
            env_kwargs=self.env_kwargs,
        )

    def _probe_env(self):
        """A throwaway env instance for shapes only — no worker stream touched."""
        return registry.make(self.sim, System.create(seed=0, worker="probe"),
                             seed=0, **self.env_kwargs)

    def _run_parallel(self) -> List[RolloutWorkerRun]:
        """Run the pool sharded over ``num_processes`` OS processes.

        Same merge architecture as :meth:`SelfPlayPool._run_parallel`:
        shards own the real worker stacks, the parent owns the schedule.
        """
        from functools import partial

        from ..parallel.proxy import MirrorInferenceService, ProxyDriver
        from ..parallel.runner import ParallelRunner, assign_workers
        from ..parallel.shard import ShardSpec

        config = self._child_config()
        specs = [ShardSpec(kind="envrollout", pool_config=config,
                           worker_indices=indices)
                 for indices in assign_workers(self.num_workers, self.num_processes)]
        runner = ParallelRunner(specs, backend=self.process_backend,
                                fault_plan=self.fault_plan)
        self.parallel_runner = runner
        try:
            service = self._build_service(
                self._probe_env(),
                service_factory=partial(MirrorInferenceService, runner=runner))
            self.inference_service = service
            segments = runner.build()
            proxies = [ProxyDriver(runner, index, f"rollout_worker_{index}",
                                   service, segments[index])
                       for index in range(self.num_workers)]
            runner.attach(proxies)
            self.pool_scheduler = PoolScheduler(
                proxies, service,
                flush_policy=self.flush_policy, flush_timeout_us=self.flush_timeout_us)
            self.pool_scheduler.run()
            finals = runner.finalize()
        finally:
            runner.stop()
        self.runs = [RolloutWorkerRun(worker=f"rollout_worker_{index}",
                                      result=finals[index]["result"],
                                      trace=finals[index]["trace"],
                                      total_time_us=finals[index]["total_time_us"])
                     for index in range(self.num_workers)]
        if self.streaming:
            self._streamed = True
            if self._owns_store:
                # The shards already merged their trace shards; closing the
                # parent's (shard-less) writer just seals the store index.
                self._store.close()
        return self.runs

    def _make_worker_stack(self, index: int):
        """Build one worker's system/engine/env/profiler (its "process")."""
        from .seeding import system_seed, worker_seed

        worker_name = f"rollout_worker_{index}"
        system = System.create(
            seed=system_seed(self.seed, index),
            config=self.cost_config,
            device=self.device,
            worker=worker_name,
        )
        system.cuda.default_stream = index
        engine = GraphEngine(system, flavor="tensorflow")
        env = registry.make(self.sim, system, seed=worker_seed(self.seed, index),
                            **self.env_kwargs)
        profiler: Optional[Profiler] = None
        if self.profile:
            profiler = Profiler(system, ProfilerConfig.full(), worker=worker_name,
                                store=self._store)
            profiler.attach(engine=engine, envs=(env,))
        return system, engine, env, profiler

    def _make_policy(self, env, index: int) -> ActionPolicy:
        if self._policy_factory is not None:
            return self._policy_factory(env, driver_seed(self.seed, index))
        return SampledDiscretePolicy() if env.is_discrete else GaussianNoisePolicy()

    # ------------------------------------------------------------- reporting
    def traces(self) -> Dict[str, EventTrace]:
        return {run.worker: run.trace for run in self.runs if run.trace is not None}

    def total_steps(self) -> int:
        return sum(run.result.steps for run in self.runs)

    def collection_span_us(self) -> float:
        """Wall-clock span of the parallel collection phase (slowest worker)."""
        return max((run.total_time_us for run in self.runs), default=0.0)
