"""Deterministic fault injection and self-healing execution.

See :mod:`repro.faults.plan` for the fault model.  The package is consumed
by three layers: the replica pool (:mod:`repro.rollout.inference`), the
serving tier (:mod:`repro.serving.server`), and the multiprocess tier
(:mod:`repro.parallel.runner`).
"""

from .plan import (
    BROADCAST_FAIL,
    EMPTY_PLAN,
    FAULT_KINDS,
    FRAME_CORRUPT,
    FRAME_DROP,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    REPLICA_CRASH,
    REPLICA_RECOVER,
    REPLICA_SLOW,
    SHARD_CRASH,
)

__all__ = [
    "BROADCAST_FAIL",
    "EMPTY_PLAN",
    "FAULT_KINDS",
    "FRAME_CORRUPT",
    "FRAME_DROP",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "REPLICA_CRASH",
    "REPLICA_RECOVER",
    "REPLICA_SLOW",
    "SHARD_CRASH",
]
