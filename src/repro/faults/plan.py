"""Deterministic fault injection: seeded plans, virtual-time scheduling.

Every layer of the stack assumes a perfect substrate — replicas never die,
shard processes never crash, frames never corrupt.  This module supplies the
*adversary*: a :class:`FaultPlan` is an explicit (or seeded) schedule of
faults in **virtual time**, and a :class:`FaultInjector` walks that schedule
at runtime, applying each fault to the live system and logging it as a
replayable decision.

The discipline matches the rest of the repo: a plan is a pure function of
its seed, the injector's log is a pure function of (plan, workload), and an
**empty plan is bit-for-bit free** — every integration point early-outs
before touching RNG streams, clocks, or queues, so records, stats, and
decision logs are byte-identical to a build without the injector.

Fault kinds
-----------

===================  ======================================================
``replica-crash``    a :class:`~repro.rollout.inference.ModelReplica` dies
                     fail-stop at a batch boundary; queued and in-flight
                     rows re-dispatch onto survivors in arrival order
``replica-recover``  a dead replica rejoins; current weights re-broadcast
                     onto its horizon before it takes traffic
``replica-slow``     a replica degrades (``param`` = slowdown factor) for
                     ``duration_us`` of virtual time
``shard-crash``      a shard OS process exits mid-run (``target`` = shard,
                     ``param`` = crash after that many served segments)
``frame-drop``       the next wire frame at/after ``time_us`` is lost
``frame-corrupt``    the next wire frame at/after ``time_us`` is corrupted
                     (exercises the stream's magic-byte resync)
``broadcast-fail``   a replica's next weight copy at/after ``time_us``
                     fails once and is retried (charged twice)
===================  ======================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

REPLICA_CRASH = "replica-crash"
REPLICA_RECOVER = "replica-recover"
REPLICA_SLOW = "replica-slow"
SHARD_CRASH = "shard-crash"
FRAME_DROP = "frame-drop"
FRAME_CORRUPT = "frame-corrupt"
BROADCAST_FAIL = "broadcast-fail"

FAULT_KINDS = (REPLICA_CRASH, REPLICA_RECOVER, REPLICA_SLOW, SHARD_CRASH,
               FRAME_DROP, FRAME_CORRUPT, BROADCAST_FAIL)

#: Kinds applied to the replica pool by virtual time.
_REPLICA_KINDS = (REPLICA_CRASH, REPLICA_RECOVER, REPLICA_SLOW)
#: Kinds applied per wire frame.
_FRAME_KINDS = (FRAME_DROP, FRAME_CORRUPT)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  ``target`` is a replica or shard index."""

    time_us: float
    kind: str
    target: int = -1
    param: float = 0.0        #: slowdown factor / shard segment count
    duration_us: float = 0.0  #: span of replica-slow faults

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.time_us < 0.0:
            raise ValueError("fault time_us must be non-negative")
        if self.kind == REPLICA_SLOW and self.param <= 1.0:
            raise ValueError("replica-slow param is a slowdown factor > 1")

    def render(self) -> str:
        """Stable one-line rendering used by the replayable fault log."""
        parts = [f"{self.time_us:.3f}", self.kind]
        if self.target >= 0:
            parts.append(f"target={self.target}")
        if self.kind == REPLICA_SLOW:
            parts.append(f"factor={self.param:g}")
            parts.append(f"duration={self.duration_us:.3f}")
        if self.kind == SHARD_CRASH:
            parts.append(f"after_segments={int(self.param)}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A virtual-time fault schedule; sorted, explicit, and replayable.

    ``EMPTY`` (no events) is the fast path: every consumer checks
    :attr:`empty` first and skips fault bookkeeping entirely, keeping the
    fault-free run bit-identical to a build without fault support.
    """

    events: Tuple[FaultEvent, ...] = ()
    redispatch_latency_us: float = 25.0  #: charged per re-dispatched batch
    seed: Optional[int] = None           #: seed when built by :meth:`seeded`

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.time_us, FAULT_KINDS.index(e.kind),
                                              e.target)))
        object.__setattr__(self, "events", ordered)
        if self.redispatch_latency_us < 0.0:
            raise ValueError("redispatch_latency_us must be non-negative")

    @property
    def empty(self) -> bool:
        return not self.events

    def of_kind(self, *kinds: str) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind in kinds)

    def replica_event_times(self) -> Tuple[float, ...]:
        """Times the serving loop must wake at so faults apply promptly."""
        return tuple(e.time_us for e in self.of_kind(*_REPLICA_KINDS))

    def shard_crashes(self) -> Dict[int, int]:
        """``{shard_index: crash after this many served segments}``."""
        crashes: Dict[int, int] = {}
        for event in self.of_kind(SHARD_CRASH):
            crashes[event.target] = int(event.param)
        return crashes

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        horizon_us: float,
        num_replicas: int,
        crash_rate_per_sec: float = 0.0,
        mean_downtime_us: float = 5_000.0,
        slow_rate_per_sec: float = 0.0,
        slow_factor: float = 2.0,
        mean_slow_us: float = 2_000.0,
        frame_loss_per_sec: float = 0.0,
        frame_corrupt_per_sec: float = 0.0,
        broadcast_fail_per_sec: float = 0.0,
        redispatch_latency_us: float = 25.0,
    ) -> "FaultPlan":
        """Generate a plan as a pure function of ``seed``.

        Rates are events per second of virtual time; counts are drawn
        Poisson, times uniform over the horizon, targets uniform over the
        replicas, downtimes/slow spans exponential.  A crash whose recovery
        would land past the horizon simply never recovers (availability
        accounting closes the span at the horizon).
        """
        if horizon_us <= 0.0:
            raise ValueError("horizon_us must be positive")
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        rng = np.random.default_rng(seed)
        seconds = horizon_us / 1e6
        events: List[FaultEvent] = []

        def draw_times(rate: float) -> np.ndarray:
            count = int(rng.poisson(rate * seconds)) if rate > 0.0 else 0
            return np.sort(rng.uniform(0.0, horizon_us, size=count))

        for time_us in draw_times(crash_rate_per_sec):
            target = int(rng.integers(num_replicas))
            events.append(FaultEvent(float(time_us), REPLICA_CRASH, target))
            downtime = float(rng.exponential(mean_downtime_us))
            recover_us = time_us + max(downtime, 1.0)
            if recover_us < horizon_us:
                events.append(FaultEvent(float(recover_us), REPLICA_RECOVER, target))
        for time_us in draw_times(slow_rate_per_sec):
            target = int(rng.integers(num_replicas))
            span = max(float(rng.exponential(mean_slow_us)), 1.0)
            events.append(FaultEvent(float(time_us), REPLICA_SLOW, target,
                                     param=slow_factor, duration_us=span))
        for time_us in draw_times(frame_loss_per_sec):
            events.append(FaultEvent(float(time_us), FRAME_DROP))
        for time_us in draw_times(frame_corrupt_per_sec):
            events.append(FaultEvent(float(time_us), FRAME_CORRUPT))
        for time_us in draw_times(broadcast_fail_per_sec):
            target = int(rng.integers(num_replicas))
            events.append(FaultEvent(float(time_us), BROADCAST_FAIL, target))
        return cls(events=tuple(events),
                   redispatch_latency_us=redispatch_latency_us, seed=seed)


#: The canonical no-fault plan (the bit-identical fast path).
EMPTY_PLAN = FaultPlan()


class FaultInjector:
    """Walks a :class:`FaultPlan` at runtime and logs every applied fault.

    The injector partitions the plan into independent queues per consumer
    (replica-pool events, wire-frame events, broadcast failures) so the
    serving tier popping its due events never swallows the frame faults the
    simulation loop owns, and vice versa.  ``log`` accumulates one stable
    line per applied fault / recovery / re-dispatch — the replay bar
    compares these lines across runs of the same (plan, workload).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._replica_events: Deque[FaultEvent] = deque(
            e for e in plan.events if e.kind in _REPLICA_KINDS)
        self._frame_events: Deque[FaultEvent] = deque(
            e for e in plan.events if e.kind in _FRAME_KINDS)
        self._broadcast_events: List[FaultEvent] = [
            e for e in plan.events if e.kind == BROADCAST_FAIL]
        self.log: List[str] = []
        self._listeners: List[Callable[[FaultEvent], None]] = []

    # --------------------------------------------------------------- basics
    @property
    def armed(self) -> bool:
        return not self.plan.empty

    def subscribe(self, listener: Callable[[FaultEvent], None]) -> None:
        """Register a callback fired for every *applied* replica event
        (whichever layer consumed it) — the serving tier uses this to enter
        and leave degraded mode the moment capacity changes."""
        self._listeners.append(listener)

    def notify(self, event: FaultEvent) -> None:
        for listener in self._listeners:
            listener(event)

    def record(self, time_us: float, kind: str, target: int = -1,
               detail: str = "") -> None:
        parts = [f"{time_us:.3f}", kind]
        if target >= 0:
            parts.append(f"target={target}")
        if detail:
            parts.append(detail)
        self.log.append(" ".join(parts))

    def log_lines(self) -> List[str]:
        return list(self.log)

    # ------------------------------------------------------- replica events
    def due_replica_events(self, now_us: float) -> List[FaultEvent]:
        """Pop every replica-pool event scheduled at or before ``now_us``."""
        due: List[FaultEvent] = []
        while self._replica_events and self._replica_events[0].time_us <= now_us:
            due.append(self._replica_events.popleft())
        return due

    def peek_crash(self, replica_index: int,
                   before_us: float) -> Optional[FaultEvent]:
        """The pending crash of ``replica_index`` landing at/before
        ``before_us``, if it is the replica's next scheduled event.

        Used at batch-planning time: a batch whose start on a replica's
        horizon lies beyond that replica's crash must re-dispatch — its
        rows are exactly the "queued and in-flight" work the dead replica
        can no longer serve.
        """
        for event in self._replica_events:
            if event.target != replica_index:
                continue
            if event.kind == REPLICA_CRASH:
                return event if event.time_us <= before_us else None
            return None  # recover/slow scheduled first: no pending crash
        return None

    def consume(self, event: FaultEvent) -> None:
        """Remove an event claimed by a planner ahead of its due time."""
        self._replica_events.remove(event)

    # --------------------------------------------------------- frame events
    def next_frame_fault(self, now_us: float) -> Optional[FaultEvent]:
        """Pop the frame fault due for a frame sent at ``now_us``, if any."""
        if self._frame_events and self._frame_events[0].time_us <= now_us:
            return self._frame_events.popleft()
        return None

    # ----------------------------------------------------- broadcast events
    def take_broadcast_failures(self, replica_index: int,
                                before_us: float) -> List[FaultEvent]:
        """Pop broadcast failures due for ``replica_index`` at/before
        ``before_us`` (consumed by ``update_weights``)."""
        taken = [e for e in self._broadcast_events
                 if e.target == replica_index and e.time_us <= before_us]
        for event in taken:
            self._broadcast_events.remove(event)
        return taken
