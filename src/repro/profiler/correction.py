"""Overhead correction: subtract calibrated book-keeping time from the trace.

The profiler leaves an :class:`~repro.profiler.events.OverheadMarker` at every
point where its book-keeping code ran.  Correction looks up the calibrated
average duration of that book-keeping, finds the operation that was active at
that moment, and subtracts the estimate from the stack category the
book-keeping time landed in (Python for interception wrappers and
annotations, CUDA API for the librlscope hook and CUPTI inflation) — i.e. the
time is removed "at the precise point when it occurs" (Section 3.4).
"""

from __future__ import annotations

import bisect
import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .calibration import CalibrationResult
from .events import OVERHEAD_CATEGORY, Event, EventTrace
from .overlap import UNTRACKED, OverlapResult


class OperationLocator:
    """Finds the innermost operation active at a given time for one worker.

    The innermost operation at time ``t`` is the one with the latest start
    among all operations with ``start_us <= t <= end_us`` (ties broken toward
    the later entry in start-sorted order).  A linear scan per query makes
    overhead correction O(markers x operations); instead we sweep the
    interval boundaries once and precompute the answer for every elementary
    segment, so each query is a single binary search.

    Because an operation is active on the *closed* interval
    ``[start_us, end_us]``, the answer exactly at a boundary point can differ
    from the answer in the open segment that follows it; both are stored.
    """

    def __init__(self, operations: List[Event]) -> None:
        ops = sorted(operations, key=lambda op: op.start_us)
        points: List[float] = sorted({p for op in ops for p in (op.start_us, op.end_us)})
        self._points = points
        self._at_point: List[str] = []
        self._after_point: List[str] = []
        if not points:
            return

        starts_at: Dict[float, List[int]] = defaultdict(list)
        for index, op in enumerate(ops):
            starts_at[op.start_us].append(index)

        # Max-heap over (start, sorted-index) with lazy deletion: the top
        # entry still active is the innermost operation.  Each op is pushed
        # and popped at most once, so the whole sweep is O(n log n).
        heap: List[Tuple[float, int]] = []

        def innermost(active_threshold: float) -> str:
            """Name of the top op whose end_us >= active_threshold."""
            while heap and ops[-heap[0][1]].end_us < active_threshold:
                heapq.heappop(heap)
            return ops[-heap[0][1]].name if heap else UNTRACKED

        for i, point in enumerate(points):
            for index in starts_at.get(point, ()):
                heapq.heappush(heap, (-ops[index].start_us, -index))
            # Queries exactly at `point` see ops with end_us >= point ...
            self._at_point.append(innermost(point))
            # ... while queries strictly between this point and the next see
            # only ops that survive past `point`.
            if i + 1 < len(points):
                self._after_point.append(innermost(points[i + 1]))

    def locate(self, time_us: float) -> str:
        points = self._points
        index = bisect.bisect_right(points, time_us) - 1
        if index < 0:
            return UNTRACKED
        if points[index] == time_us:
            return self._at_point[index]
        if index >= len(self._after_point):
            return UNTRACKED
        return self._after_point[index]


def overhead_by_operation_category(
    trace: EventTrace,
    calibration: CalibrationResult,
) -> Dict[Tuple[str, str], float]:
    """Estimated book-keeping time per (operation, category) bucket."""
    locators = {
        worker: OperationLocator([op for op in trace.operations if op.worker == worker])
        for worker in trace.workers()
    }
    totals: Dict[Tuple[str, str], float] = defaultdict(float)
    for marker in trace.markers:
        duration = calibration.overhead_for_marker(marker)
        if duration <= 0:
            continue
        locator = locators.get(marker.worker)
        operation = locator.locate(marker.time_us) if locator is not None else UNTRACKED
        category = OVERHEAD_CATEGORY[marker.kind]
        totals[(operation, category)] += duration
    return dict(totals)


def corrected_category_breakdown(
    breakdown: Dict[str, Dict[str, float]],
    overheads: Dict[Tuple[str, str], float],
) -> Dict[str, Dict[str, float]]:
    """Subtract per-(operation, category) overhead estimates from a breakdown.

    Values are clamped at zero: calibration noise must never produce negative
    critical-path time.
    """
    corrected: Dict[str, Dict[str, float]] = {
        op: dict(categories) for op, categories in breakdown.items()
    }
    for (operation, category), overhead in overheads.items():
        if operation not in corrected:
            continue
        categories = corrected[operation]
        if category in categories:
            categories[category] = max(categories[category] - overhead, 0.0)
        else:
            # The overhead landed in a category with no measured time (e.g.
            # all of that category's time *was* overhead); nothing to subtract.
            continue
    return corrected


def corrected_total_us(trace: EventTrace, calibration: CalibrationResult, *, total_us: Optional[float] = None) -> float:
    """Corrected total training time: instrumented total minus estimated overhead."""
    if total_us is None:
        total_us = float(trace.metadata.get("total_time_us", trace.span_us()))
    return max(total_us - calibration.total_overhead_us(trace), 0.0)


def corrected_overlap_total_us(overlap: OverlapResult, trace: EventTrace, calibration: CalibrationResult) -> float:
    """Corrected total of the overlap regions (tracked time only)."""
    overheads = overhead_by_operation_category(trace, calibration)
    tracked_overhead = sum(v for (op, _), v in overheads.items() if op != UNTRACKED)
    return max(overlap.total_us(include_untracked=False) - tracked_overhead, 0.0)
