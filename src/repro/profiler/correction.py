"""Overhead correction: subtract calibrated book-keeping time from the trace.

The profiler leaves an :class:`~repro.profiler.events.OverheadMarker` at every
point where its book-keeping code ran.  Correction looks up the calibrated
average duration of that book-keeping, finds the operation that was active at
that moment, and subtracts the estimate from the stack category the
book-keeping time landed in (Python for interception wrappers and
annotations, CUDA API for the librlscope hook and CUPTI inflation) — i.e. the
time is removed "at the precise point when it occurs" (Section 3.4).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .calibration import CalibrationResult
from .events import OVERHEAD_CATEGORY, Event, EventTrace
from .overlap import UNTRACKED, OverlapResult


class _OperationLocator:
    """Finds the innermost operation active at a given time for one worker."""

    def __init__(self, operations: List[Event]) -> None:
        self._operations = sorted(operations, key=lambda op: op.start_us)
        self._starts = [op.start_us for op in self._operations]

    def locate(self, time_us: float) -> str:
        index = bisect.bisect_right(self._starts, time_us)
        best: Optional[Event] = None
        for op in self._operations[:index]:
            if op.end_us >= time_us:
                if best is None or op.start_us >= best.start_us:
                    best = op
        return best.name if best is not None else UNTRACKED


def overhead_by_operation_category(
    trace: EventTrace,
    calibration: CalibrationResult,
) -> Dict[Tuple[str, str], float]:
    """Estimated book-keeping time per (operation, category) bucket."""
    locators = {
        worker: _OperationLocator([op for op in trace.operations if op.worker == worker])
        for worker in trace.workers()
    }
    totals: Dict[Tuple[str, str], float] = defaultdict(float)
    for marker in trace.markers:
        duration = calibration.overhead_for_marker(marker)
        if duration <= 0:
            continue
        locator = locators.get(marker.worker)
        operation = locator.locate(marker.time_us) if locator is not None else UNTRACKED
        category = OVERHEAD_CATEGORY[marker.kind]
        totals[(operation, category)] += duration
    return dict(totals)


def corrected_category_breakdown(
    breakdown: Dict[str, Dict[str, float]],
    overheads: Dict[Tuple[str, str], float],
) -> Dict[str, Dict[str, float]]:
    """Subtract per-(operation, category) overhead estimates from a breakdown.

    Values are clamped at zero: calibration noise must never produce negative
    critical-path time.
    """
    corrected: Dict[str, Dict[str, float]] = {
        op: dict(categories) for op, categories in breakdown.items()
    }
    for (operation, category), overhead in overheads.items():
        if operation not in corrected:
            continue
        categories = corrected[operation]
        if category in categories:
            categories[category] = max(categories[category] - overhead, 0.0)
        else:
            # The overhead landed in a category with no measured time (e.g.
            # all of that category's time *was* overhead); nothing to subtract.
            continue
    return corrected


def corrected_total_us(trace: EventTrace, calibration: CalibrationResult, *, total_us: Optional[float] = None) -> float:
    """Corrected total training time: instrumented total minus estimated overhead."""
    if total_us is None:
        total_us = float(trace.metadata.get("total_time_us", trace.span_us()))
    return max(total_us - calibration.total_overhead_us(trace), 0.0)


def corrected_overlap_total_us(overlap: OverlapResult, trace: EventTrace, calibration: CalibrationResult) -> float:
    """Corrected total of the overlap regions (tracked time only)."""
    overheads = overhead_by_operation_category(trace, calibration)
    tracked_overhead = sum(v for (op, _), v in overheads.items() if op != UNTRACKED)
    return max(overlap.total_us(include_untracked=False) - tracked_overhead, 0.0)
