"""Textual reports: the tables/series behind each of the paper's figures.

Plotting is out of scope for an offline reproduction; instead every figure
has a report function that prints the same rows/series the paper plots, so
the shapes (who wins, by what factor, where crossovers fall) can be compared
directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .analysis import WorkloadAnalysis
from .events import CATEGORY_BACKEND, CATEGORY_CUDA_API, CATEGORY_GPU, CATEGORY_PYTHON, CATEGORY_SIMULATOR

#: Category order used for stacked-bar style tables (matches Figure 4's legend).
CATEGORY_ORDER = (CATEGORY_SIMULATOR, CATEGORY_PYTHON, CATEGORY_CUDA_API, CATEGORY_BACKEND, CATEGORY_GPU)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Simple fixed-width table formatter."""
    str_rows = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def breakdown_table(
    analyses: Mapping[str, WorkloadAnalysis],
    *,
    corrected: bool = True,
    as_percent: bool = False,
) -> str:
    """Time-breakdown table: one row per (configuration, operation, category)."""
    rows: List[List[object]] = []
    for config_name, analysis in analyses.items():
        breakdown = analysis.category_breakdown_sec(corrected=corrected)
        config_total = sum(sum(cats.values()) for cats in breakdown.values())
        for operation in sorted(breakdown):
            categories = breakdown[operation]
            op_total = sum(categories.values())
            for category in CATEGORY_ORDER:
                if category not in categories:
                    continue
                value = categories[category]
                if as_percent:
                    value = 100.0 * value / config_total if config_total > 0 else 0.0
                rows.append([config_name, operation, category, value, 100.0 * op_total / config_total if config_total else 0.0])
    unit = "% of total" if as_percent else "seconds"
    return format_table(["configuration", "operation", "category", unit, "op % of total"], rows)


def total_time_table(analyses: Mapping[str, WorkloadAnalysis], *, corrected: bool = True) -> str:
    """Total training time per configuration (the black bars of Figure 4)."""
    rows = [
        [name, analysis.total_time_sec(corrected=corrected), 100.0 * analysis.gpu_fraction()]
        for name, analysis in analyses.items()
    ]
    return format_table(["configuration", "total training time (s)", "GPU time (%)"], rows)


def transitions_table(analyses: Mapping[str, WorkloadAnalysis], iterations: Optional[int] = None) -> str:
    """Language transitions per iteration (Figures 4c/4d)."""
    rows: List[List[object]] = []
    for config_name, analysis in analyses.items():
        per_iter = analysis.transitions_per_iteration(iterations)
        for operation in sorted(per_iter):
            for category, value in sorted(per_iter[operation].items()):
                rows.append([config_name, operation, category, value])
    return format_table(["configuration", "operation", "transition", "per iteration"], rows)


def correction_table(rows: Mapping[str, Mapping[str, float]]) -> str:
    """Overhead-correction validation table (Figure 11).

    ``rows`` maps a workload label to a dict with keys ``corrected_sec``,
    ``uninstrumented_sec``, ``instrumented_sec`` and ``bias_percent``.
    """
    table_rows = [
        [label,
         values["instrumented_sec"],
         values["corrected_sec"],
         values["uninstrumented_sec"],
         values["bias_percent"]]
        for label, values in rows.items()
    ]
    return format_table(
        ["workload", "instrumented (s)", "corrected (s)", "uninstrumented (s)", "bias (%)"],
        table_rows,
    )


def worker_table(summaries, utilization_pct: Optional[float] = None, true_busy_pct: Optional[float] = None) -> str:
    """Per-worker CPU/GPU summary (Figure 8)."""
    rows = [
        [summary.worker, summary.total_time_sec, summary.gpu_time_sec]
        for summary in summaries
    ]
    table = format_table(["worker", "total time (s)", "GPU kernel time (s)"], rows)
    footer_lines = []
    if utilization_pct is not None:
        footer_lines.append(f"nvidia-smi reported GPU utilization: {utilization_pct:.1f}%")
    if true_busy_pct is not None:
        footer_lines.append(f"true GPU busy fraction:              {true_busy_pct:.3f}%")
    if footer_lines:
        table = table + "\n" + "\n".join(footer_lines)
    return table
