"""Event model for RL-Scope traces.

A trace is a flat list of timestamped events, each tagged with a *category*
that identifies its level of the software stack, plus the user's operation
annotations and the profiler's own overhead markers (used later for
correction).  This mirrors the event types the original tool collects via
CUPTI and Python <-> C interception (Section 3.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

# Stack-level categories (CPU side).
CATEGORY_PYTHON = "Python"
CATEGORY_SIMULATOR = "Simulator"
CATEGORY_BACKEND = "Backend"
CATEGORY_CUDA_API = "CUDA"
# Device side.
CATEGORY_GPU = "GPU"
# User annotations.
CATEGORY_OPERATION = "Operation"

CPU_CATEGORIES = (CATEGORY_PYTHON, CATEGORY_SIMULATOR, CATEGORY_BACKEND, CATEGORY_CUDA_API)
GPU_CATEGORIES = (CATEGORY_GPU,)

#: Priority used when a region has several CPU categories active at once
#: (e.g. a CUDA API call issued from inside a backend call): the most
#: specific (deepest) level wins, as in the paper's breakdowns.
CPU_CATEGORY_PRIORITY = {
    CATEGORY_CUDA_API: 3,
    CATEGORY_SIMULATOR: 2,
    CATEGORY_BACKEND: 1,
    CATEGORY_PYTHON: 0,
}

# Overhead marker kinds (what the profiler's own book-keeping did).
OVERHEAD_PYPROF = "pyprof_interception"
OVERHEAD_CUDA_INTERCEPTION = "cuda_interception"
OVERHEAD_ANNOTATION = "annotation"
OVERHEAD_CUPTI = "cupti"

OVERHEAD_KINDS = (OVERHEAD_PYPROF, OVERHEAD_CUDA_INTERCEPTION, OVERHEAD_ANNOTATION, OVERHEAD_CUPTI)

#: Which category each overhead kind's CPU time lands in (and therefore which
#: category the correction subtracts it from).
OVERHEAD_CATEGORY = {
    OVERHEAD_PYPROF: CATEGORY_PYTHON,
    OVERHEAD_ANNOTATION: CATEGORY_PYTHON,
    OVERHEAD_CUDA_INTERCEPTION: CATEGORY_CUDA_API,
    OVERHEAD_CUPTI: CATEGORY_CUDA_API,
}


@dataclass(frozen=True)
class Event:
    """One timestamped interval at a particular stack level.

    ``metadata`` carries optional structured attribution (e.g. batched
    inference events record the serving batch size and requesting share so
    shared ``expand_leaf`` time can be charged back to each worker).  It is
    ``None`` for ordinary events, takes no part in overlap computation, and
    is only serialised when present, so traces without metadata are
    byte-identical to those written before the field existed.
    """

    category: str
    name: str
    start_us: float
    end_us: float
    worker: str = "worker_0"
    phase: str = "default"
    metadata: Optional[Mapping[str, object]] = None

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def overlaps(self, other: "Event") -> bool:
        return self.start_us < other.end_us and other.start_us < self.end_us

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "category": self.category,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "worker": self.worker,
            "phase": self.phase,
        }
        if self.metadata is not None:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Event":
        metadata = data.get("metadata")
        return cls(
            category=str(data["category"]),
            name=str(data["name"]),
            start_us=float(data["start_us"]),   # type: ignore[arg-type]
            end_us=float(data["end_us"]),       # type: ignore[arg-type]
            worker=str(data.get("worker", "worker_0")),
            phase=str(data.get("phase", "default")),
            metadata=None if metadata is None else dict(metadata),  # type: ignore[call-overload]
        )


@dataclass(frozen=True)
class OverheadMarker:
    """A point where profiler book-keeping code ran.

    The profiler knows *when* and *what kind* of book-keeping happened, but
    not its true duration — that is exactly the information available to the
    real tool, which must estimate durations via calibration (Appendix C).
    """

    kind: str
    time_us: float
    api_name: Optional[str] = None
    worker: str = "worker_0"
    phase: str = "default"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "time_us": self.time_us,
            "api_name": self.api_name,
            "worker": self.worker,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "OverheadMarker":
        api_name = data.get("api_name")
        return cls(
            kind=str(data["kind"]),
            time_us=float(data["time_us"]),     # type: ignore[arg-type]
            api_name=None if api_name is None else str(api_name),
            worker=str(data.get("worker", "worker_0")),
            phase=str(data.get("phase", "default")),
        )


@dataclass
class EventTrace:
    """A complete trace: stack events, operation annotations and overhead markers."""

    events: List[Event] = field(default_factory=list)
    operations: List[Event] = field(default_factory=list)
    markers: List[OverheadMarker] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ add
    def add_event(self, event: Event) -> None:
        if event.end_us < event.start_us:
            raise ValueError(f"event ends before it starts: {event}")
        if event.category == CATEGORY_OPERATION:
            self.operations.append(event)
        else:
            self.events.append(event)

    def add_marker(self, marker: OverheadMarker) -> None:
        self.markers.append(marker)

    def extend(self, other: "EventTrace") -> None:
        """Merge another trace (e.g. another worker's) into this one."""
        self.events.extend(other.events)
        self.operations.extend(other.operations)
        self.markers.extend(other.markers)
        for key, value in other.metadata.items():
            self.metadata.setdefault(key, value)

    # -------------------------------------------------------------- queries
    def events_by_category(self, category: str) -> List[Event]:
        return [e for e in self.events if e.category == category]

    def workers(self) -> List[str]:
        names = {e.worker for e in self.events} | {op.worker for op in self.operations}
        return sorted(names)

    def span_us(self) -> float:
        """Total wall-clock span covered by the trace (max end over all events)."""
        ends = [e.end_us for e in self.events] + [op.end_us for op in self.operations]
        return max(ends, default=0.0)

    def total_events(self) -> int:
        return len(self.events) + len(self.operations)

    def marker_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for marker in self.markers:
            counts[marker.kind] = counts.get(marker.kind, 0) + 1
        return counts

    def filter_worker(self, worker: str) -> "EventTrace":
        return EventTrace(
            events=[e for e in self.events if e.worker == worker],
            operations=[op for op in self.operations if op.worker == worker],
            markers=[m for m in self.markers if m.worker == worker],
            metadata=dict(self.metadata),
        )

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        return {
            "events": [e.to_dict() for e in self.events],
            "operations": [op.to_dict() for op in self.operations],
            "markers": [m.to_dict() for m in self.markers],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EventTrace":
        trace = cls(metadata=dict(data.get("metadata", {})))  # type: ignore[arg-type]
        for event_data in data.get("events", []):              # type: ignore[union-attr]
            trace.events.append(Event.from_dict(event_data))
        for op_data in data.get("operations", []):              # type: ignore[union-attr]
            trace.operations.append(Event.from_dict(op_data))
        for marker_data in data.get("markers", []):             # type: ignore[union-attr]
            trace.markers.append(OverheadMarker.from_dict(marker_data))
        return trace


def merge_traces(traces: Iterable[EventTrace]) -> EventTrace:
    """Merge per-worker traces into a single multi-process trace."""
    merged = EventTrace()
    for trace in traces:
        merged.extend(trace)
    return merged
