"""Legacy trace storage API, now a thin wrapper over :mod:`repro.tracedb`.

The original tool aggregates trace records in a C++ library and flushes them
to Protobuf files of ~20 MB off the critical path.  Historically this module
implemented a dump-at-end JSON container per chunk; trace storage now lives
in the :mod:`repro.tracedb` subsystem (streaming writes, gzip-compressed
JSONL shards, an indexed store with a query engine).  :class:`TraceDumper`
and :class:`TraceReader` keep their old surface for existing callers and
tests: dumps are written in the new store format, and reads transparently
handle both the new format and directories written by older versions of
this module (``rlscope_index.json`` plus plain-JSON chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .events import EventTrace

# Retained for backwards compatibility: the *legacy* index file name.  New
# stores are indexed by ``repro.tracedb.format.INDEX_FILE``.
INDEX_FILE = "rlscope_index.json"
CHUNK_PREFIX = "trace_chunk"


@dataclass
class TraceChunk:
    """One on-disk chunk of trace records."""

    path: Path
    num_events: int
    num_operations: int
    num_markers: int


class TraceDumper:
    """Buffers trace records and flushes them to chunk files.

    Kept as the dump-at-end convenience API; for incremental flushing during
    profiling use ``Profiler(..., streaming=True)`` or
    :class:`repro.tracedb.StreamingTraceWriter` directly.
    """

    def __init__(self, directory: str, *, worker: str = "worker_0", chunk_events: int = 50_000) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.directory = Path(directory)
        self.worker = worker
        self.chunk_events = chunk_events
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunks: List[TraceChunk] = []
        self._writer = None  # one StreamingTraceWriter for the dumper's lifetime

    # ------------------------------------------------------------------ dump
    def dump(self, trace: EventTrace) -> List[TraceChunk]:
        """Write the whole trace as one or more chunks plus an index file."""
        from ..tracedb.writer import StreamingTraceWriter

        if self._writer is None:
            self._writer = StreamingTraceWriter(str(self.directory), chunk_events=self.chunk_events)
        writer = self._writer
        shard = writer.shard(self.worker)
        already_written = len(shard.chunks)
        for event in trace.events:
            shard.add_event(event)
        for operation in trace.operations:
            shard.add_operation(operation)
        for marker in trace.markers:
            shard.add_marker(marker)
        shard.flush()
        new_metas = shard.chunks[already_written:]
        writer.set_metadata(self.worker, dict(trace.metadata))
        writer.write_index()
        written = [
            TraceChunk(path=self.directory / meta.file,
                       num_events=meta.num_events or 0,
                       num_operations=meta.num_operations or 0,
                       num_markers=meta.num_markers or 0)
            for meta in new_metas
        ]
        self.chunks.extend(written)
        return written


class TraceReader:
    """Reads traces written by :class:`TraceDumper` or :mod:`repro.tracedb`."""

    def __init__(self, directory: str) -> None:
        from ..tracedb.store import TraceDB

        self.directory = Path(directory)
        self.db = TraceDB(directory)

    def workers(self) -> List[str]:
        return self.db.workers()

    def read_worker(self, worker: str) -> EventTrace:
        return self.db.read_worker(worker)

    def read_all(self) -> Dict[str, EventTrace]:
        return self.db.read_all()

    def iter_chunks(self) -> Iterator[Path]:
        for meta in self.db.chunks():
            yield self.directory / meta.file


def load_trace(directory: str, worker: Optional[str] = None) -> EventTrace:
    """Convenience loader: read one worker's trace (or the only worker)."""
    reader = TraceReader(directory)
    workers = reader.workers()
    if worker is None:
        if len(workers) != 1:
            raise ValueError(f"trace directory contains {len(workers)} workers; specify one of {workers}")
        worker = workers[0]
    return reader.read_worker(worker)
