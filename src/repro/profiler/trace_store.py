"""Trace storage: chunked, off-critical-path trace files (Appendix A.1).

The original tool aggregates trace records in a C++ library and flushes them
to Protobuf files of ~20 MB off the critical path.  The reproduction keeps
the same structure — events are buffered and flushed in chunks, the flush
costs no virtual time because it happens off the critical path — but uses a
compact JSON container per chunk plus an index file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .events import Event, EventTrace, OverheadMarker

INDEX_FILE = "rlscope_index.json"
CHUNK_PREFIX = "trace_chunk"


@dataclass
class TraceChunk:
    """One on-disk chunk of trace records."""

    path: Path
    num_events: int
    num_operations: int
    num_markers: int


class TraceDumper:
    """Buffers trace records and flushes them to chunk files."""

    def __init__(self, directory: str, *, worker: str = "worker_0", chunk_events: int = 50_000) -> None:
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.directory = Path(directory)
        self.worker = worker
        self.chunk_events = chunk_events
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunks: List[TraceChunk] = []
        self._chunk_counter = 0

    # ------------------------------------------------------------------ dump
    def dump(self, trace: EventTrace) -> List[TraceChunk]:
        """Write the whole trace as one or more chunks plus an index file."""
        events = list(trace.events)
        operations = list(trace.operations)
        markers = list(trace.markers)
        written: List[TraceChunk] = []
        # Chunk on the (usually dominant) flat event list; operations and
        # markers ride along with the first chunk.
        for offset in range(0, max(len(events), 1), self.chunk_events):
            chunk_events = events[offset:offset + self.chunk_events]
            chunk_ops = operations if offset == 0 else []
            chunk_markers = markers if offset == 0 else []
            written.append(self._write_chunk(chunk_events, chunk_ops, chunk_markers))
        self.chunks.extend(written)
        self._write_index(trace.metadata)
        return written

    def _write_chunk(self, events: List[Event], operations: List[Event],
                     markers: List[OverheadMarker]) -> TraceChunk:
        path = self.directory / f"{CHUNK_PREFIX}_{self.worker}_{self._chunk_counter:05d}.json"
        self._chunk_counter += 1
        payload = {
            "worker": self.worker,
            "events": [e.to_dict() for e in events],
            "operations": [op.to_dict() for op in operations],
            "markers": [m.to_dict() for m in markers],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return TraceChunk(path=path, num_events=len(events),
                          num_operations=len(operations), num_markers=len(markers))

    def _write_index(self, metadata: Dict[str, object]) -> None:
        index_path = self.directory / INDEX_FILE
        existing: Dict[str, object] = {}
        if index_path.exists():
            with open(index_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        workers = dict(existing.get("workers", {}))  # type: ignore[arg-type]
        workers[self.worker] = {
            "chunks": [str(chunk.path.name) for chunk in self.chunks],
            "metadata": metadata,
        }
        with open(index_path, "w", encoding="utf-8") as handle:
            json.dump({"workers": workers}, handle, indent=2)


class TraceReader:
    """Reads traces previously written by :class:`TraceDumper`."""

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)
        index_path = self.directory / INDEX_FILE
        if not index_path.exists():
            raise FileNotFoundError(f"no RL-Scope trace index found in {directory}")
        with open(index_path, "r", encoding="utf-8") as handle:
            self.index = json.load(handle)

    def workers(self) -> List[str]:
        return sorted(self.index.get("workers", {}).keys())

    def read_worker(self, worker: str) -> EventTrace:
        entry = self.index["workers"].get(worker)
        if entry is None:
            raise KeyError(f"worker {worker!r} not present in trace index")
        trace = EventTrace(metadata=dict(entry.get("metadata", {})))
        for chunk_name in entry["chunks"]:
            path = self.directory / chunk_name
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            for data in payload["events"]:
                trace.events.append(Event.from_dict(data))
            for data in payload["operations"]:
                trace.operations.append(Event.from_dict(data))
            for data in payload["markers"]:
                trace.markers.append(OverheadMarker.from_dict(data))
        return trace

    def read_all(self) -> Dict[str, EventTrace]:
        return {worker: self.read_worker(worker) for worker in self.workers()}

    def iter_chunks(self) -> Iterator[Path]:
        for worker in self.workers():
            for chunk_name in self.index["workers"][worker]["chunks"]:
                yield self.directory / chunk_name


def load_trace(directory: str, worker: Optional[str] = None) -> EventTrace:
    """Convenience loader: read one worker's trace (or the only worker)."""
    reader = TraceReader(directory)
    workers = reader.workers()
    if worker is None:
        if len(workers) != 1:
            raise ValueError(f"trace directory contains {len(workers)} workers; specify one of {workers}")
        worker = workers[0]
    return reader.read_worker(worker)
