"""Cross-stack event overlap computation (Section 3.3 of the paper).

The raw trace is a set of intervals at different stack levels plus the user's
(possibly nested) operation annotations.  The overlap algorithm walks the
trace boundaries left-to-right and, for every elementary region, records

* which **operation** is active (the innermost one),
* which **categories** are active (Python / Simulator / Backend / CUDA on the
  CPU side; GPU on the device side),

and sums the region durations per ``(operation, category-set)`` key.  All of
the paper's breakdowns (Figures 4, 5, 7, 8) are reductions of this map.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .events import (
    CATEGORY_GPU,
    CATEGORY_OPERATION,
    CPU_CATEGORIES,
    CPU_CATEGORY_PRIORITY,
    Event,
    EventTrace,
)

#: Key of one overlap bucket: (operation name, active category set).
OverlapKey = Tuple[str, FrozenSet[str]]

#: Marker operation name for time not covered by any operation annotation.
UNTRACKED = "<untracked>"

# Resource classes used in the paper's figures.
RESOURCE_CPU = "CPU"
RESOURCE_GPU = "GPU"
RESOURCE_CPU_GPU = "CPU + GPU"


@dataclass
class OverlapResult:
    """Durations (in microseconds) per (operation, active-category-set) region."""

    regions: Dict[OverlapKey, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ merge
    @classmethod
    def merge(cls, results: Iterable["OverlapResult"]) -> "OverlapResult":
        """Reduce several partial results (e.g. per-shard) into one.

        Region durations are summed key-wise in the given order, which makes
        the reduction deterministic: merging per-worker results in sorted
        worker order reproduces :func:`compute_overlap` on the merged trace
        bit for bit (the single-pass algorithm performs this exact merge
        internally).  Merging is associative up to floating-point rounding.
        """
        merged: Dict[OverlapKey, float] = {}
        for result in results:
            for key, duration in result.regions.items():
                merged[key] = merged.get(key, 0.0) + duration
        return cls(regions=merged)

    # ---------------------------------------------------------------- totals
    def total_us(self, *, include_untracked: bool = True) -> float:
        return sum(
            duration for (operation, _), duration in self.regions.items()
            if include_untracked or operation != UNTRACKED
        )

    def operations(self) -> List[str]:
        return sorted({operation for operation, _ in self.regions if operation != UNTRACKED})

    # ------------------------------------------------------------ reductions
    def resource_class(self, categories: FrozenSet[str]) -> str:
        has_cpu = any(cat in CPU_CATEGORIES for cat in categories)
        has_gpu = CATEGORY_GPU in categories
        if has_cpu and has_gpu:
            return RESOURCE_CPU_GPU
        if has_gpu:
            return RESOURCE_GPU
        return RESOURCE_CPU

    @staticmethod
    def cpu_category(categories: FrozenSet[str]) -> Optional[str]:
        """The most specific CPU category active in a region (or None)."""
        cpu = [cat for cat in categories if cat in CPU_CATEGORIES]
        if not cpu:
            return None
        return max(cpu, key=lambda cat: CPU_CATEGORY_PRIORITY[cat])

    def category_breakdown(self, *, include_untracked: bool = False) -> Dict[str, Dict[str, float]]:
        """Per-operation stacked breakdown: operation -> category label -> microseconds.

        The category label is the most specific CPU category of a region, or
        ``"GPU"`` for regions where only the GPU is active.  Each region is
        counted exactly once, so per-operation values sum to that operation's
        total time.
        """
        out: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for (operation, categories), duration in self.regions.items():
            if operation == UNTRACKED and not include_untracked:
                continue
            label = self.cpu_category(categories) or CATEGORY_GPU
            out[operation][label] += duration
        return {op: dict(cats) for op, cats in out.items()}

    def resource_breakdown(self, *, include_untracked: bool = False) -> Dict[str, Dict[str, float]]:
        """Per-operation breakdown by resource class (CPU / GPU / CPU + GPU)."""
        out: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for (operation, categories), duration in self.regions.items():
            if operation == UNTRACKED and not include_untracked:
                continue
            out[operation][self.resource_class(categories)] += duration
        return {op: dict(resources) for op, resources in out.items()}

    def full_breakdown(self, *, include_untracked: bool = False) -> Dict[Tuple[str, str, str], float]:
        """Rows keyed by (operation, category label, resource class) -> microseconds."""
        out: Dict[Tuple[str, str, str], float] = defaultdict(float)
        for (operation, categories), duration in self.regions.items():
            if operation == UNTRACKED and not include_untracked:
                continue
            label = self.cpu_category(categories) or CATEGORY_GPU
            out[(operation, label, self.resource_class(categories))] += duration
        return dict(out)

    def gpu_time_us(self, *, include_untracked: bool = True) -> float:
        """Total time during which the GPU was executing (GPU-only plus CPU+GPU)."""
        return sum(
            duration for (operation, categories), duration in self.regions.items()
            if CATEGORY_GPU in categories and (include_untracked or operation != UNTRACKED)
        )

    def resource_time_us(self, resource: str, *, include_untracked: bool = True) -> float:
        """Total time attributed to one resource class (CPU / GPU / CPU + GPU)."""
        return sum(
            duration for (operation, categories), duration in self.regions.items()
            if self.resource_class(categories) == resource
            and (include_untracked or operation != UNTRACKED)
        )

    def category_time_us(self, category: str, *, include_untracked: bool = True) -> float:
        """Total time attributed to ``category`` across all operations."""
        total = 0.0
        for (operation, categories), duration in self.regions.items():
            if operation == UNTRACKED and not include_untracked:
                continue
            label = self.cpu_category(categories) or CATEGORY_GPU
            if label == category:
                total += duration
        return total


def _innermost_operation(active_ops: List[Event]) -> str:
    """The innermost of a set of properly-nested active operation events."""
    if not active_ops:
        return UNTRACKED
    # Operations nest properly, so the one that started last is the innermost.
    return max(active_ops, key=lambda op: op.start_us).name


def compute_overlap(
    trace: EventTrace,
    *,
    workers: Optional[Iterable[str]] = None,
) -> OverlapResult:
    """Compute cross-stack overlap regions for one worker's trace.

    When ``workers`` is given, each worker's events are processed against its
    own operations and the region durations are summed (per-process critical
    paths, as in the multi-process Minigo view).
    """
    if workers is None:
        worker_list = trace.workers() or ["worker_0"]
    else:
        worker_list = list(workers)

    # Group events and operations by worker in ONE pass over the trace
    # (the original re-filtered the full event list once per worker —
    # O(workers x events) on multi-process traces).  Relative order within
    # each worker's slice is trace order, exactly what the per-worker
    # filter produced, so accumulation is bit-for-bit unchanged.
    wanted = set(worker_list)
    events_by_worker: Dict[str, List[Event]] = {worker: [] for worker in worker_list}
    ops_by_worker: Dict[str, List[Event]] = {worker: [] for worker in worker_list}
    for event in trace.events:
        if event.worker in wanted and event.end_us > event.start_us:
            events_by_worker[event.worker].append(event)
    for op in trace.operations:
        if op.worker in wanted and op.end_us > op.start_us:
            ops_by_worker[op.worker].append(op)

    # One partial result per worker, reduced with OverlapResult.merge: the
    # exact decomposition the shard-parallel path (repro.tracedb.mapreduce)
    # uses, so single-pass and map-reduce results are byte-identical.
    per_worker: List[OverlapResult] = []
    for worker in worker_list:
        regions: Dict[OverlapKey, float] = defaultdict(float)
        _accumulate_worker(events_by_worker[worker], ops_by_worker[worker], regions)
        per_worker.append(OverlapResult(regions=dict(regions)))
    return OverlapResult.merge(per_worker)


#: Dispatch flag for :func:`_accumulate_worker`.  The vectorized sweep is the
#: default; the original per-boundary Python loop is preserved as
#: :func:`_accumulate_worker_loop` and is both the byte-identity oracle the
#: property tests compare against and the pre-optimization baseline
#: ``benchmarks/test_bench_wallclock.py`` times.
USE_VECTORIZED_ACCUMULATE = True


def _accumulate_worker(events: List[Event], operations: List[Event],
                       regions: Dict[OverlapKey, float]) -> None:
    """Accumulate overlap regions for one worker's (pre-filtered) slice.

    ``events``/``operations`` must contain only that worker's non-empty
    intervals, in trace order — :func:`compute_overlap` groups them in a
    single pass over the full trace.
    """
    if USE_VECTORIZED_ACCUMULATE:
        _accumulate_worker_vectorized(events, operations, regions)
    else:
        _accumulate_worker_loop(events, operations, regions)


def _accumulate_worker_vectorized(events: List[Event], operations: List[Event],
                                  regions: Dict[OverlapKey, float]) -> None:
    """Numpy sweep line, byte-identical to :func:`_accumulate_worker_loop`.

    Identity argument, piece by piece:

    * **Boundaries** — ``np.unique`` over all interval endpoints produces the
      same sorted points as the loop's ``sorted(set(...))``, and
      ``np.diff`` performs the same IEEE-754 subtractions for segment
      durations.
    * **Category sets** — per-category +1/-1 deltas at each point, prefix-
      summed down the point axis (integer arithmetic, exact); a category is
      active in segment ``i`` iff its count after applying the deltas at
      ``points[i]`` is positive, exactly the loop's state when it charges
      the segment ``[points[i], points[i+1])``.
    * **Innermost operation** — operations are painted onto the segment
      array sorted by ``(start_us asc, trace index desc)``, each writing its
      name over ``[start, end)``; the last painter of a segment therefore
      has the latest start (ties: earliest trace index), which is exactly
      the loop's ``max(active_ops, key=start_us)`` pick (``max`` keeps the
      first of equal keys, and ``active_ops`` holds ops in trace order).
    * **Accumulation order** — per ``(operation, categories)`` key, segment
      durations are reduced with ``np.add.accumulate`` (sequential, not
      pairwise) in left-to-right segment order, seeded with the key's
      current value — the same chain of float additions the loop's
      ``regions[key] += segment`` performs.  Keys are inserted into
      ``regions`` in first-occurrence order so downstream whole-dict
      reductions iterate identically.
    """
    if not events and not operations:
        return
    ev_start = np.array([event.start_us for event in events], dtype=np.float64)
    ev_end = np.array([event.end_us for event in events], dtype=np.float64)
    op_start = np.array([op.start_us for op in operations], dtype=np.float64)
    op_end = np.array([op.end_us for op in operations], dtype=np.float64)
    points = np.unique(np.concatenate((ev_start, ev_end, op_start, op_end)))
    if points.size < 2:
        return
    durations = np.diff(points)
    n_segments = points.size - 1

    # Per-segment active-category bitmasks (CATEGORY_OPERATION never counts,
    # but its events still contribute boundaries above, like in the loop).
    cat_index: Dict[str, int] = {}
    for event in events:
        if event.category != CATEGORY_OPERATION and event.category not in cat_index:
            cat_index[event.category] = len(cat_index)
    if not cat_index:
        return  # no measurable categories: the loop never charges anything
    cat_names = list(cat_index)
    n_cats = len(cat_names)
    cat_of_event = np.array([cat_index.get(event.category, -1) for event in events],
                            dtype=np.int64)
    counted = cat_of_event >= 0
    # Scatter +1/-1 at each counted event's start/end boundary.  bincount on
    # flattened (boundary, category) indices is an exact integer scatter-add
    # (same deltas as np.add.at, substantially faster).
    cats = cat_of_event[counted]
    flat_start = np.searchsorted(points, ev_start[counted]) * n_cats + cats
    flat_end = np.searchsorted(points, ev_end[counted]) * n_cats + cats
    flat_size = points.size * n_cats
    deltas = (np.bincount(flat_start, minlength=flat_size)
              - np.bincount(flat_end, minlength=flat_size)
              ).reshape(points.size, n_cats)
    active = np.cumsum(deltas, axis=0)[:-1] > 0  # (n_segments, n_cats)
    masks = active @ (1 << np.arange(n_cats, dtype=np.int64))

    # Innermost-operation paint: name id per segment, -1 = untracked.
    paint = np.full(n_segments, -1, dtype=np.int64)
    if operations:
        name_ids: Dict[str, int] = {}
        op_name_id = [name_ids.setdefault(op.name, len(name_ids)) for op in operations]
        op_names = list(name_ids)
        start_idx = np.searchsorted(points, op_start)
        end_idx = np.searchsorted(points, op_end)
        for i in sorted(range(len(operations)),
                        key=lambda i: (operations[i].start_us, -i)):
            paint[start_idx[i]:end_idx[i]] = op_name_id[i]

    valid = np.flatnonzero(masks)
    if valid.size == 0:
        return
    durations = durations[valid]
    codes = (paint[valid] + 1) << n_cats | masks[valid]

    # Group segments by code, preserving left-to-right order within each
    # group (stable sort) and first-occurrence order across groups.
    uniq, first, inverse = np.unique(codes, return_index=True, return_inverse=True)
    by_group = np.argsort(inverse, kind="stable")
    splits = np.split(by_group, np.flatnonzero(np.diff(inverse[by_group])) + 1)
    for group in np.argsort(first, kind="stable"):
        code = int(uniq[group])
        mask, name_id = code & ((1 << n_cats) - 1), (code >> n_cats) - 1
        key = (UNTRACKED if name_id < 0 else op_names[name_id],
               frozenset(cat_names[b] for b in range(n_cats) if mask >> b & 1))
        seed = regions.get(key, 0.0)
        chain = np.concatenate(([seed], durations[splits[group]]))
        regions[key] = float(np.add.accumulate(chain)[-1])


def _accumulate_worker_loop(events: List[Event], operations: List[Event],
                            regions: Dict[OverlapKey, float]) -> None:
    """The original per-boundary Python sweep (preserved byte-identity oracle)."""
    if not events and not operations:
        return

    # Sweep line over every interval boundary.
    boundaries: set = set()
    for event in events:
        boundaries.add(event.start_us)
        boundaries.add(event.end_us)
    for op in operations:
        boundaries.add(op.start_us)
        boundaries.add(op.end_us)
    points = sorted(boundaries)
    if len(points) < 2:
        return

    # Build per-point deltas for efficiency: category -> count changes.
    starts: Dict[float, List[Event]] = defaultdict(list)
    ends: Dict[float, List[Event]] = defaultdict(list)
    for event in events:
        starts[event.start_us].append(event)
        ends[event.end_us].append(event)
    op_starts: Dict[float, List[Event]] = defaultdict(list)
    op_ends: Dict[float, List[Event]] = defaultdict(list)
    for op in operations:
        op_starts[op.start_us].append(op)
        op_ends[op.end_us].append(op)

    active_counts: Dict[str, int] = defaultdict(int)
    active_ops: List[Event] = []

    for i, point in enumerate(points):
        # Process interval [previous point, point) before applying changes at `point`.
        for op in op_ends.get(point, ()):  # closing before opening keeps zero-length ops out
            # Evict by identity, not equality: two annotations with the same
            # name/start/end are equal as dataclasses, and list.remove would
            # evict whichever instance comes first — corrupting the active
            # set when duplicate identical operations are open at once.
            for j in range(len(active_ops) - 1, -1, -1):
                if active_ops[j] is op:
                    del active_ops[j]
                    break
        for event in ends.get(point, ()):
            active_counts[event.category] -= 1

        for op in op_starts.get(point, ()):
            active_ops.append(op)
        for event in starts.get(point, ()):
            active_counts[event.category] += 1

        if i + 1 >= len(points):
            break
        segment = points[i + 1] - point
        categories = frozenset(cat for cat, count in active_counts.items() if count > 0 and cat != CATEGORY_OPERATION)
        if not categories and not active_ops:
            continue
        operation = _innermost_operation(active_ops)
        if not categories:
            # Operation open but nothing measured (should not normally happen).
            continue
        regions[(operation, categories)] += segment
