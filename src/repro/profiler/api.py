"""RL-Scope user-facing API: phases, operation annotations, and the profiler session.

Usage mirrors the paper's Figure 2::

    profiler = Profiler(system)
    profiler.attach(engine=engine, envs=[env])
    profiler.set_phase("data_collection")
    with profiler.operation("mcts_tree_search"):
        ...
        with profiler.operation("expand_leaf"):
            session_run(...)
    trace = profiler.finalize()

Every ``with profiler.operation(...)`` block records an operation event; the
attached interception hooks record Backend / Simulator / CUDA / GPU events
transparently; Python time is recorded as the gap between C-level events
while at least one operation is open.  When book-keeping is enabled the
profiler also *injects* its own overhead into the virtual clock and leaves an
:class:`~repro.profiler.events.OverheadMarker` behind so offline correction
can subtract it (Section 3.4).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from ..tracedb.writer import StreamingTraceWriter

from ..backend.engine import BackendEngine
from ..system import System
from .events import (
    CATEGORY_GPU,
    CATEGORY_OPERATION,
    CATEGORY_PYTHON,
    OVERHEAD_ANNOTATION,
    Event,
    EventTrace,
    OverheadMarker,
)
from .interception import BackendInterception, CudaInterceptionHook, SimulatorInterception


@dataclass(frozen=True)
class ProfilerConfig:
    """Which book-keeping subsystems are active.

    Each flag enables both the *recording* and the *overhead* of that
    subsystem — they are inseparable, as in the real tool.  Calibration runs
    the same workload under several partial configurations (Appendix C.1).
    """

    annotations: bool = True          #: record operation annotations
    pyprof: bool = True               #: intercept Python <-> C transitions (backend & simulator)
    cuda_interception: bool = True    #: intercept CUDA API calls (librlscope.so hooks)
    cupti: bool = True                #: enable CUPTI activity collection (GPU kernel times)

    @classmethod
    def full(cls) -> "ProfilerConfig":
        return cls()

    @classmethod
    def uninstrumented(cls) -> "ProfilerConfig":
        return cls(annotations=False, pyprof=False, cuda_interception=False, cupti=False)

    @classmethod
    def only(cls, **flags: bool) -> "ProfilerConfig":
        """A configuration with everything off except the given flags."""
        return replace(cls.uninstrumented(), **flags)

    @property
    def anything_enabled(self) -> bool:
        return self.annotations or self.pyprof or self.cuda_interception or self.cupti


class Profiler:
    """One worker's RL-Scope profiling session."""

    def __init__(
        self,
        system: System,
        config: Optional[ProfilerConfig] = None,
        *,
        worker: Optional[str] = None,
        trace_dir: Optional[str] = None,
        streaming: bool = False,
        chunk_events: int = 50_000,
        store: Optional["StreamingTraceWriter"] = None,
    ) -> None:
        """With ``streaming=True`` (or an explicit shared ``store``) the
        profiler flushes events incrementally into a :mod:`repro.tracedb`
        store instead of holding the whole trace in memory: at most one
        chunk of records stays buffered, and flushes cost zero virtual time.
        The finalized analysis is then read back through
        :meth:`open_tracedb` / :class:`repro.tracedb.TraceDB`.
        """
        self.system = system
        self.config = config if config is not None else ProfilerConfig.full()
        self.worker = worker if worker is not None else system.worker
        self.trace_dir = trace_dir
        self.streaming = bool(streaming or store is not None)
        self._store = store
        self._owns_store = False
        if self.streaming:
            if self._store is None:
                if trace_dir is None:
                    raise ValueError("streaming=True requires trace_dir (or an explicit store)")
                from ..tracedb.writer import StreamingTraceWriter
                self._store = StreamingTraceWriter(trace_dir, chunk_events=chunk_events)
                self._owns_store = True
            from ..tracedb.writer import SpillingEventTrace
            self.trace: EventTrace = SpillingEventTrace(
                self._store.shard(self.worker), metadata={"worker": self.worker})
        else:
            self.trace = EventTrace(metadata={"worker": self.worker})
        self.phase = "default"
        self._operation_stack: List[Event] = []
        self._operation_starts: List[float] = []
        self._operation_names: List[str] = []
        self._c_depth = 0
        self._python_resume_us: Optional[float] = None
        self._attached_engines: List[BackendEngine] = []
        self._attached_envs: List[object] = []
        self._cuda_hook: Optional[CudaInterceptionHook] = None
        self._finalized = False
        self._warned_unbalanced_exit = False

    # ---------------------------------------------------------------- attach
    def attach(self, *, engine: Optional[BackendEngine] = None,
               engines: Sequence[BackendEngine] = (), envs: Sequence[object] = ()) -> "Profiler":
        """Install transparent interception on backends, simulators and CUDA.

        No recompilation or modification of the instrumented components is
        required: the profiler attaches via their boundary-listener slots and
        the CUDA runtime's hook list.
        """
        all_engines = list(engines) + ([engine] if engine is not None else [])
        if self.config.pyprof:
            for eng in all_engines:
                eng.boundary = BackendInterception(self)
                self._attached_engines.append(eng)
            for env in envs:
                env.boundary = SimulatorInterception(self)  # type: ignore[attr-defined]
                self._attached_envs.append(env)
        if self.config.cuda_interception:
            self._cuda_hook = CudaInterceptionHook(self)
            self.system.cuda.add_hook(self._cuda_hook)
        if self.config.cupti:
            self.system.cuda.cupti.enable()
        return self

    def detach(self) -> None:
        """Remove interception from every attached component."""
        from ..backend.engine import NULL_BOUNDARY
        for eng in self._attached_engines:
            eng.boundary = NULL_BOUNDARY
        for env in self._attached_envs:
            env.boundary = None  # type: ignore[attr-defined]
        self._attached_engines.clear()
        self._attached_envs.clear()
        if self._cuda_hook is not None:
            self.system.cuda.remove_hook(self._cuda_hook)
            self._cuda_hook = None
        if self.config.cupti:
            self.system.cuda.cupti.disable()

    # ----------------------------------------------------------------- phases
    def set_phase(self, phase: str) -> None:
        """Set the current training phase (e.g. ``data_collection``, ``sgd_updates``)."""
        self.phase = phase

    # ------------------------------------------------------------- operations
    @property
    def current_operation(self) -> Optional[str]:
        return self._operation_names[-1] if self._operation_names else None

    @contextmanager
    def operation(self, name: str, *, metadata: Optional[dict] = None) -> Iterator[None]:
        """Annotate a high-level algorithmic operation (Figure 2 of the paper).

        ``metadata`` is attached to the recorded operation event.  The dict is
        snapshotted when the block exits, so callees may fill it in during the
        block — the batched inference service uses this to attribute shared
        ``expand_leaf`` batch time back to the requesting worker.
        """
        if not self.config.annotations:
            yield
            return
        clock = self.system.clock
        # Book-keeping overhead of recording the start timestamp.
        self._inject_annotation_overhead()
        if self._c_depth == 0:
            self._flush_python(clock.now_us)
            self._python_resume_us = clock.now_us
        start = clock.now_us
        self._operation_names.append(name)
        self._operation_starts.append(start)
        try:
            yield
        finally:
            self._inject_annotation_overhead()
            end = clock.now_us
            if self._c_depth == 0:
                self._flush_python(end)
                self._python_resume_us = end
            self._operation_names.pop()
            op_start = self._operation_starts.pop()
            self.trace.add_event(Event(
                category=CATEGORY_OPERATION, name=name,
                start_us=op_start, end_us=end,
                worker=self.worker, phase=self.phase,
                metadata=dict(metadata) if metadata else None,
            ))

    @contextmanager
    def reopen_operation(self, name: str, start_us: float, *,
                         metadata: Optional[dict] = None) -> Iterator[None]:
        """Re-enter an annotation that was open when a driver was snapshotted.

        Pushes the saved ``(name, start_us)`` back onto the operation stack
        *without* charging the entry-side annotation overhead again (the
        original :meth:`operation` ``__enter__`` already did, before the
        snapshot); the exit side is identical to :meth:`operation`, so the
        recorded event and the clock charges match an uninterrupted run.
        """
        if not self.config.annotations:
            yield
            return
        self._operation_names.append(name)
        self._operation_starts.append(start_us)
        try:
            yield
        finally:
            self._inject_annotation_overhead()
            end = self.system.clock.now_us
            if self._c_depth == 0:
                self._flush_python(end)
                self._python_resume_us = end
            self._operation_names.pop()
            op_start = self._operation_starts.pop()
            self.trace.add_event(Event(
                category=CATEGORY_OPERATION, name=name,
                start_us=op_start, end_us=end,
                worker=self.worker, phase=self.phase,
                metadata=dict(metadata) if metadata else None,
            ))

    def _inject_annotation_overhead(self) -> None:
        clock = self.system.clock
        self.trace.add_marker(OverheadMarker(
            kind=OVERHEAD_ANNOTATION, time_us=clock.now_us, worker=self.worker, phase=self.phase,
        ))
        clock.advance(self.system.cost_model.interception_overhead("annotation"))

    # ---------------------------------------------------- python gap tracking
    def _flush_python(self, now_us: float) -> None:
        """Emit a Python event covering the gap since we last returned to Python."""
        resume = self._python_resume_us
        if resume is None or not self._operation_names:
            self._python_resume_us = None
            return
        if now_us > resume:
            self.trace.add_event(Event(
                category=CATEGORY_PYTHON, name="python",
                start_us=resume, end_us=now_us,
                worker=self.worker, phase=self.phase,
            ))
        self._python_resume_us = None

    # Called by the interception hooks.
    def on_c_enter(self) -> None:
        self._flush_python(self.system.clock.now_us)
        self._c_depth += 1

    def on_c_exit(self) -> None:
        if self._c_depth == 0:
            # Unbalanced enter/exit indicates a broken interception hook;
            # surface it (once) instead of silently swallowing the underflow.
            if not self._warned_unbalanced_exit:
                warnings.warn(
                    f"unbalanced C enter/exit in worker {self.worker!r}: "
                    "on_c_exit called with no matching on_c_enter",
                    RuntimeWarning, stacklevel=2)
                self._warned_unbalanced_exit = True
            self._python_resume_us = self.system.clock.now_us
            return
        self._c_depth -= 1
        if self._c_depth == 0:
            self._python_resume_us = self.system.clock.now_us

    def record_event(self, event: Event) -> None:
        self.trace.add_event(event)

    def record_marker(self, marker: OverheadMarker) -> None:
        self.trace.add_marker(marker)

    # -------------------------------------------------------------- finalize
    def finalize(self) -> EventTrace:
        """Close the session: collect GPU activity from CUPTI and return the trace."""
        if self._finalized:
            return self.trace
        self._flush_python(self.system.clock.now_us)
        if self.config.cupti:
            cupti = self.system.cuda.cupti
            for record in cupti.kernel_records:
                if record.worker != self.worker:
                    continue
                self.trace.add_event(Event(
                    category=CATEGORY_GPU, name=record.kernel_name,
                    start_us=record.start_us, end_us=record.end_us,
                    worker=self.worker, phase=self.phase,
                ))
            for record in cupti.memcpy_records:
                if record.worker != self.worker:
                    continue
                self.trace.add_event(Event(
                    category=CATEGORY_GPU, name=f"memcpy_{record.direction}",
                    start_us=record.start_us, end_us=record.end_us,
                    worker=self.worker, phase=self.phase,
                ))
        self.trace.metadata.setdefault("total_time_us", self.system.clock.now_us)
        self.detach()
        self._finalized = True
        if self.streaming:
            assert self._store is not None
            self._store.close_shard(self.worker, metadata=dict(self.trace.metadata))
            if self._owns_store:
                self._store.close()
        elif self.trace_dir is not None:
            from .trace_store import TraceDumper
            dumper = TraceDumper(self.trace_dir, worker=self.worker)
            dumper.dump(self.trace)
        return self.trace

    @property
    def store(self) -> Optional["StreamingTraceWriter"]:
        """The streaming store writer (None unless streaming mode is on)."""
        return self._store

    def open_tracedb(self):
        """Open the finalized trace store for querying (streaming mode only)."""
        if self._store is None:
            raise ValueError("no trace store: profiler was not created with streaming=True")
        from ..tracedb.store import TraceDB
        return TraceDB(str(self._store.directory))
