"""Profiling-overhead calibration (Appendix C.1 / C.2 of the paper).

Two calibration strategies are reproduced:

* **Delta calibration** — for book-keeping whose cost does not depend on
  where it happens (Python <-> C interception, CUDA API interception,
  operation annotations): run the workload with the book-keeping disabled and
  enabled; the average cost is the increase in total runtime divided by the
  number of times the book-keeping ran.
* **Difference-of-average calibration** — for the closed-source CUPTI
  inflation, which differs per CUDA API and cannot be toggled per API: the
  average duration of each API call is measured with and without CUPTI
  enabled, and the difference is that API's inflation.

The calibration driver is given a *workload runner*: a callable that executes
the same (seeded, deterministic) workload under a supplied
:class:`~repro.profiler.api.ProfilerConfig` and reports total runtime plus the
collected trace.  Calibration results can be reused across future profiling
runs of the same workload, as in the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .api import ProfilerConfig
from .events import (
    CATEGORY_CUDA_API,
    OVERHEAD_ANNOTATION,
    OVERHEAD_CUDA_INTERCEPTION,
    OVERHEAD_CUPTI,
    OVERHEAD_PYPROF,
    EventTrace,
    OverheadMarker,
)


@dataclass
class CalibrationRun:
    """Outcome of one workload execution under a particular profiler config."""

    total_time_us: float
    trace: Optional[EventTrace] = None


#: A workload runner: executes the workload under ``config`` and reports the outcome.
WorkloadRunner = Callable[[ProfilerConfig], CalibrationRun]


@dataclass
class CalibrationResult:
    """Average book-keeping durations recovered by calibration."""

    pyprof_us: float = 0.0
    annotation_us: float = 0.0
    cuda_interception_us: float = 0.0
    cupti_per_api_us: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, float] = field(default_factory=dict)

    def overhead_for_marker(self, marker: OverheadMarker) -> float:
        """Estimated duration of the book-keeping behind one overhead marker."""
        if marker.kind == OVERHEAD_PYPROF:
            return self.pyprof_us
        if marker.kind == OVERHEAD_ANNOTATION:
            return self.annotation_us
        if marker.kind == OVERHEAD_CUDA_INTERCEPTION:
            return self.cuda_interception_us
        if marker.kind == OVERHEAD_CUPTI:
            if marker.api_name is not None and marker.api_name in self.cupti_per_api_us:
                return self.cupti_per_api_us[marker.api_name]
            return self.details.get("cupti_default_us", 0.0)
        raise ValueError(f"unknown overhead marker kind: {marker.kind!r}")

    def total_overhead_us(self, trace: EventTrace) -> float:
        """Total estimated book-keeping time contained in ``trace``."""
        return sum(self.overhead_for_marker(marker) for marker in trace.markers)

    def overhead_by_kind_us(self, trace: EventTrace) -> Dict[str, float]:
        totals: Dict[str, float] = defaultdict(float)
        for marker in trace.markers:
            totals[marker.kind] += self.overhead_for_marker(marker)
        return dict(totals)

    @classmethod
    def from_ground_truth(cls, cost_model_config) -> "CalibrationResult":
        """Build a result from the cost model's true overheads (used in tests)."""
        profiling = cost_model_config.profiling
        return cls(
            pyprof_us=profiling.pyprof_interception_us,
            annotation_us=profiling.annotation_us,
            cuda_interception_us=profiling.cuda_interception_us,
            cupti_per_api_us=dict(profiling.cupti_inflation_us),
            details={"cupti_default_us": 0.5},
        )


def _marker_count(trace: Optional[EventTrace], kind: str) -> int:
    if trace is None:
        return 0
    return sum(1 for marker in trace.markers if marker.kind == kind)


def _mean_api_durations(trace: Optional[EventTrace]) -> Dict[str, float]:
    """Average CPU duration of each CUDA API call in the trace."""
    if trace is None:
        return {}
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for event in trace.events:
        if event.category != CATEGORY_CUDA_API:
            continue
        totals[event.name] += event.duration_us
        counts[event.name] += 1
    return {name: totals[name] / counts[name] for name in totals}


def delta_calibrate(
    run_fn: WorkloadRunner,
    *,
    flag: str,
    marker_kind: str,
    baseline_total_us: float,
) -> tuple[float, Dict[str, float]]:
    """Delta calibration for one book-keeping type (Figure 9 of the paper)."""
    run = run_fn(ProfilerConfig.only(**{flag: True}))
    count = _marker_count(run.trace, marker_kind)
    delta = run.total_time_us - baseline_total_us
    mean = delta / count if count > 0 else 0.0
    details = {
        f"{marker_kind}_count": float(count),
        f"{marker_kind}_delta_us": delta,
        f"{marker_kind}_total_us": run.total_time_us,
    }
    return max(mean, 0.0), details


def difference_of_average_calibrate(run_fn: WorkloadRunner) -> tuple[Dict[str, float], Dict[str, float]]:
    """Difference-of-average calibration of CUPTI inflation (Figure 10)."""
    without_cupti = run_fn(ProfilerConfig.only(cuda_interception=True))
    with_cupti = run_fn(ProfilerConfig.only(cuda_interception=True, cupti=True))
    base_means = _mean_api_durations(without_cupti.trace)
    cupti_means = _mean_api_durations(with_cupti.trace)
    inflation: Dict[str, float] = {}
    for api_name, mean_with in cupti_means.items():
        mean_without = base_means.get(api_name)
        if mean_without is None:
            continue
        inflation[api_name] = max(mean_with - mean_without, 0.0)
    default = sum(inflation.values()) / len(inflation) if inflation else 0.0
    details = {"cupti_default_us": default}
    return inflation, details


def calibrate(run_fn: WorkloadRunner) -> CalibrationResult:
    """Full calibration: delta calibration for interception/annotations plus
    difference-of-average calibration for CUPTI.

    The workload runner is invoked six times (one uninstrumented baseline,
    three single-flag runs, and two runs for the CUPTI difference).  In the
    real tool this is a one-time cost per workload; the result is reusable.
    """
    baseline = run_fn(ProfilerConfig.uninstrumented())
    details: Dict[str, float] = {"baseline_total_us": baseline.total_time_us}

    pyprof_us, d = delta_calibrate(
        run_fn, flag="pyprof", marker_kind=OVERHEAD_PYPROF, baseline_total_us=baseline.total_time_us)
    details.update(d)
    annotation_us, d = delta_calibrate(
        run_fn, flag="annotations", marker_kind=OVERHEAD_ANNOTATION, baseline_total_us=baseline.total_time_us)
    details.update(d)
    cuda_us, d = delta_calibrate(
        run_fn, flag="cuda_interception", marker_kind=OVERHEAD_CUDA_INTERCEPTION,
        baseline_total_us=baseline.total_time_us)
    details.update(d)
    cupti_per_api, d = difference_of_average_calibrate(run_fn)
    details.update(d)

    return CalibrationResult(
        pyprof_us=pyprof_us,
        annotation_us=annotation_us,
        cuda_interception_us=cuda_us,
        cupti_per_api_us=cupti_per_api,
        details=details,
    )
