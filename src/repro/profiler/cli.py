"""``rls-prof``: profile one RL training workload and print its breakdown.

The original tool is launched as ``rls-prof python train.py``; in the
reproduction the workloads are built in, so the CLI takes an algorithm,
simulator and framework configuration instead::

    rls-prof --algo PPO2 --simulator Walker2D --steps 200 --trace-dir traces/
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..rl.frameworks import TABLE1, FrameworkSpec, STABLE_BASELINES


def _framework_by_label(label: str) -> FrameworkSpec:
    for spec in TABLE1:
        if spec.label.lower() == label.lower() or spec.key == label:
            return spec
    raise SystemExit(f"unknown framework {label!r}; choose from {[s.label for s in TABLE1]}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="rls-prof", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--algo", default="PPO2", help="RL algorithm (DQN/DDPG/TD3/SAC/A2C/PPO2)")
    parser.add_argument("--simulator", default="Walker2D", help="simulator name (see repro.sim.available_simulators)")
    parser.add_argument("--framework", default=STABLE_BASELINES.label,
                        help="framework configuration label from Table 1")
    parser.add_argument("--steps", type=int, default=200, help="number of simulator steps to train for")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace-dir", default=None, help="directory to store RL-Scope trace files")
    parser.add_argument("--streaming", action="store_true",
                        help="flush the trace incrementally into a TraceDB store during profiling "
                             "(requires --trace-dir; query it afterwards with repro-trace)")
    parser.add_argument("--no-correction", action="store_true",
                        help="report uncorrected times (skip overhead correction)")
    parser.add_argument("--uninstrumented", action="store_true",
                        help="run without any profiling (baseline timing only)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Imports are deferred so `rls-prof --help` stays fast.
    from ..experiments.common import WorkloadSpec, run_workload
    from ..profiler.api import ProfilerConfig
    from ..profiler import report as report_mod
    from ..profiler.trace_store import TraceDumper

    spec = WorkloadSpec(
        algo=args.algo.upper(),
        simulator=args.simulator,
        framework=_framework_by_label(args.framework),
        total_timesteps=args.steps,
        seed=args.seed,
    )
    if args.streaming and not args.trace_dir:
        raise SystemExit("--streaming requires --trace-dir")
    profiler_config = ProfilerConfig.uninstrumented() if args.uninstrumented else ProfilerConfig.full()
    run = run_workload(spec, profiler_config=profiler_config,
                       use_ground_truth_calibration=not args.no_correction,
                       trace_dir=args.trace_dir if args.streaming else None,
                       streaming=args.streaming)

    print(f"workload: {spec.label}  ({args.steps} steps, seed {args.seed})")
    print(f"total training time: {run.total_time_sec:.3f} virtual seconds")
    if args.uninstrumented:
        return 0

    analyses = {spec.label: run.analysis}
    print()
    print(report_mod.total_time_table(analyses, corrected=not args.no_correction))
    print()
    print(report_mod.breakdown_table(analyses, corrected=not args.no_correction))
    print()
    print(report_mod.transitions_table(analyses, args.steps))

    if args.trace_dir:
        if args.streaming:
            print(f"\ntrace streamed to {args.trace_dir} (inspect with: repro-trace summarize {args.trace_dir})")
        else:
            TraceDumper(args.trace_dir).dump(run.trace)
            print(f"\ntrace written to {args.trace_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
