"""Transparent event interception (Section 3.2 of the paper).

Three hook types correspond to the three interception mechanisms of the real
tool:

* :class:`BackendInterception` — Python <-> C interception around ML-backend
  calls (dynamically generated wrappers in the original; boundary listeners
  here).
* :class:`SimulatorInterception` — the same mechanism around simulator calls.
* :class:`CudaInterceptionHook` — the ``librlscope.so`` CUPTI-callback hook
  that records CUDA API calls.

Each hook records events into the owning profiler's trace and, because
book-keeping is not free, injects its own overhead into the virtual clock
while leaving an :class:`~repro.profiler.events.OverheadMarker` behind for
offline correction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..backend.engine import BackendEngine, BoundaryListener
from ..cuda.cupti import CuptiApiRecord
from .events import (
    CATEGORY_BACKEND,
    CATEGORY_CUDA_API,
    CATEGORY_SIMULATOR,
    OVERHEAD_CUDA_INTERCEPTION,
    OVERHEAD_CUPTI,
    OVERHEAD_PYPROF,
    Event,
    OverheadMarker,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .api import Profiler


class BackendInterception(BoundaryListener):
    """Records Backend events at the Python <-> ML-backend boundary."""

    category = CATEGORY_BACKEND

    def __init__(self, profiler: "Profiler") -> None:
        self.profiler = profiler
        self._span_starts: List[float] = []
        self._span_names: List[str] = []

    def _inject_overhead(self) -> None:
        profiler = self.profiler
        profiler.record_marker(OverheadMarker(
            kind=OVERHEAD_PYPROF,
            time_us=profiler.system.clock.now_us,
            worker=profiler.worker,
            phase=profiler.phase,
        ))
        profiler.system.clock.advance(profiler.system.cost_model.interception_overhead("pyprof"))

    def enter(self, engine: BackendEngine, call_name: str) -> None:
        # Wrapper book-keeping runs in Python before crossing into C.
        self._inject_overhead()
        self.profiler.on_c_enter()
        self._span_starts.append(self.profiler.system.clock.now_us)
        self._span_names.append(call_name)

    def exit(self, engine: BackendEngine, call_name: str) -> None:
        profiler = self.profiler
        end = profiler.system.clock.now_us
        start = self._span_starts.pop() if self._span_starts else end
        name = self._span_names.pop() if self._span_names else call_name
        profiler.record_event(Event(
            category=self.category, name=name,
            start_us=start, end_us=end,
            worker=profiler.worker, phase=profiler.phase,
        ))
        profiler.on_c_exit()
        # Wrapper book-keeping on the way back to Python.
        self._inject_overhead()


class SimulatorInterception(BackendInterception):
    """Records Simulator events at the Python <-> simulator boundary."""

    category = CATEGORY_SIMULATOR


class CudaInterceptionHook:
    """The ``librlscope.so`` hook: records CUDA API events via CUPTI callbacks."""

    def __init__(self, profiler: "Profiler") -> None:
        self.profiler = profiler

    def api_overhead_us(self, api_name: str) -> float:
        """Book-keeping time included inside the API call span."""
        del api_name  # overhead does not depend on which API was intercepted
        return self.profiler.system.cost_model.interception_overhead("cuda")

    def on_api(self, record: CuptiApiRecord) -> None:
        profiler = self.profiler
        if record.worker != profiler.worker:
            return
        profiler.record_event(Event(
            category=CATEGORY_CUDA_API, name=record.api_name,
            start_us=record.start_us, end_us=record.end_us,
            worker=profiler.worker, phase=profiler.phase,
        ))
        profiler.record_marker(OverheadMarker(
            kind=OVERHEAD_CUDA_INTERCEPTION, time_us=record.end_us,
            api_name=record.api_name, worker=profiler.worker, phase=profiler.phase,
        ))
        if profiler.system.cuda.cupti.enabled:
            profiler.record_marker(OverheadMarker(
                kind=OVERHEAD_CUPTI, time_us=record.end_us,
                api_name=record.api_name, worker=profiler.worker, phase=profiler.phase,
            ))
