"""Offline analysis: breakdowns, transition counts and multi-process summaries.

This module turns raw traces into the quantities the paper reports:

* per-operation time breakdowns by stack category and resource class
  (Figures 4a/4b, 5, 7),
* language-transition counts per training iteration (Figures 4c/4d),
* per-worker CPU/GPU totals for multi-process workloads (Figure 8),
* corrected vs. uninstrumented totals for overhead-correction validation
  (Figure 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .calibration import CalibrationResult
from .correction import (
    OperationLocator,
    corrected_category_breakdown,
    corrected_total_us,
    overhead_by_operation_category,
)
from .events import (
    CATEGORY_BACKEND,
    CATEGORY_CUDA_API,
    CATEGORY_GPU,
    CATEGORY_PYTHON,
    CATEGORY_SIMULATOR,
    Event,
    EventTrace,
)
from .overlap import RESOURCE_CPU, RESOURCE_CPU_GPU, RESOURCE_GPU, UNTRACKED, OverlapResult, compute_overlap

#: Transition categories reported in Figures 4c/4d.
TRANSITION_CATEGORIES = (CATEGORY_SIMULATOR, CATEGORY_BACKEND, CATEGORY_CUDA_API)


@dataclass
class WorkloadAnalysis:
    """Analysis of one profiled workload run."""

    trace: EventTrace
    overlap: OverlapResult
    calibration: Optional[CalibrationResult] = None
    iterations: Optional[int] = None
    _overheads: Optional[Dict[Tuple[str, str], float]] = field(default=None, repr=False)

    # ----------------------------------------------------------- breakdowns
    def category_breakdown_us(self, *, corrected: bool = True) -> Dict[str, Dict[str, float]]:
        """operation -> category -> microseconds (corrected when calibration present)."""
        breakdown = self.overlap.category_breakdown()
        if corrected and self.calibration is not None:
            breakdown = corrected_category_breakdown(breakdown, self.overheads())
        return breakdown

    def category_breakdown_sec(self, *, corrected: bool = True) -> Dict[str, Dict[str, float]]:
        return {
            op: {cat: us / 1e6 for cat, us in cats.items()}
            for op, cats in self.category_breakdown_us(corrected=corrected).items()
        }

    def resource_breakdown_us(self) -> Dict[str, Dict[str, float]]:
        """operation -> resource class (CPU / GPU / CPU + GPU) -> microseconds."""
        return self.overlap.resource_breakdown()

    def overheads(self) -> Dict[Tuple[str, str], float]:
        if self.calibration is None:
            return {}
        if self._overheads is None:
            self._overheads = overhead_by_operation_category(self.trace, self.calibration)
        return self._overheads

    # ----------------------------------------------------------------- totals
    def total_time_us(self, *, corrected: bool = True) -> float:
        total = float(self.trace.metadata.get("total_time_us", self.trace.span_us()))
        if corrected and self.calibration is not None:
            return corrected_total_us(self.trace, self.calibration, total_us=total)
        return total

    def total_time_sec(self, *, corrected: bool = True) -> float:
        return self.total_time_us(corrected=corrected) / 1e6

    def gpu_time_us(self) -> float:
        """Time during which the GPU was executing kernels or copies."""
        return self.overlap.gpu_time_us()

    def gpu_fraction(self) -> float:
        """Fraction of (uncorrected tracked) training time with the GPU active."""
        tracked = self.overlap.total_us(include_untracked=False)
        return self.gpu_time_us() / tracked if tracked > 0 else 0.0

    def category_fraction(self, category: str) -> float:
        """Fraction of tracked training time attributed to ``category``."""
        tracked = self.overlap.total_us(include_untracked=False)
        return self.overlap.category_time_us(category, include_untracked=False) / tracked if tracked > 0 else 0.0

    def operation_fraction(self, operation: str, *, corrected: bool = True) -> float:
        """Fraction of training time spent in ``operation``."""
        breakdown = self.category_breakdown_us(corrected=corrected)
        totals = {op: sum(cats.values()) for op, cats in breakdown.items()}
        grand_total = sum(totals.values())
        return totals.get(operation, 0.0) / grand_total if grand_total > 0 else 0.0

    def operation_category_fraction(self, operation: str, category: str) -> float:
        """Fraction of an operation's time attributed to ``category``."""
        breakdown = self.category_breakdown_us(corrected=True)
        cats = breakdown.get(operation, {})
        total = sum(cats.values())
        return cats.get(category, 0.0) / total if total > 0 else 0.0

    # ------------------------------------------------------------ transitions
    def transition_counts(self) -> Dict[str, Dict[str, int]]:
        """operation -> transition category -> number of native calls."""
        locators = _build_locators(self.trace)
        counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for event in self.trace.events:
            if event.category not in TRANSITION_CATEGORIES:
                continue
            locator = locators.get(event.worker)
            operation = locator.locate(event.start_us) if locator is not None else UNTRACKED
            counts[operation][event.category] += 1
        return {op: dict(cats) for op, cats in counts.items()}

    def transitions_per_iteration(self, iterations: Optional[int] = None) -> Dict[str, Dict[str, float]]:
        """operation -> transition category -> transitions per training iteration."""
        iters = iterations if iterations is not None else self.iterations
        if not iters:
            raise ValueError("number of iterations required to normalise transition counts")
        return {
            op: {cat: count / iters for cat, count in cats.items()}
            for op, cats in self.transition_counts().items()
        }


def analyze(
    trace: EventTrace,
    *,
    calibration: Optional[CalibrationResult] = None,
    iterations: Optional[int] = None,
) -> WorkloadAnalysis:
    """Compute the overlap regions for ``trace`` and wrap them for reporting."""
    overlap = compute_overlap(trace)
    return WorkloadAnalysis(trace=trace, overlap=overlap, calibration=calibration, iterations=iterations)


def _build_locators(trace: EventTrace) -> Dict[str, OperationLocator]:
    """One interval-indexed innermost-operation locator per worker, so
    transition counting stays O((events + operations) log operations)."""
    return {
        worker: OperationLocator([op for op in trace.operations if op.worker == worker])
        for worker in trace.workers()
    }


# --------------------------------------------------------------- multi-process
@dataclass(frozen=True)
class WorkerSummary:
    """Per-process summary used by the Minigo multi-process view (Figure 8)."""

    worker: str
    total_time_us: float
    cpu_time_us: float
    gpu_time_us: float

    @property
    def total_time_sec(self) -> float:
        return self.total_time_us / 1e6

    @property
    def gpu_time_sec(self) -> float:
        return self.gpu_time_us / 1e6


def summarize_worker_trace(worker: str, trace: EventTrace) -> WorkerSummary:
    """One worker's Figure 8 summary: total span, CPU-bound time, GPU time."""
    overlap = compute_overlap(trace)
    total = float(trace.metadata.get("total_time_us", trace.span_us()))
    gpu = overlap.gpu_time_us()
    gpu_only = overlap.resource_time_us(RESOURCE_GPU)
    cpu = max(total - gpu_only, 0.0)
    return WorkerSummary(worker=worker, total_time_us=total, cpu_time_us=cpu, gpu_time_us=gpu)


def multi_process_summary(traces: Mapping[str, EventTrace]) -> List[WorkerSummary]:
    """Summarise each worker's trace: total span, CPU-bound time, GPU time."""
    summaries = [summarize_worker_trace(worker, trace) for worker, trace in traces.items()]
    return sorted(summaries, key=lambda s: s.worker)


def multi_process_summary_db(source, *, max_workers: Optional[int] = None,
                             mode: str = "thread") -> List[WorkerSummary]:
    """Per-worker summaries computed shard-parallel from a TraceDB store.

    ``source`` is a :class:`repro.tracedb.TraceDB` or a store directory.
    """
    from ..tracedb.mapreduce import parallel_worker_summaries
    summaries = parallel_worker_summaries(source, max_workers=max_workers, mode=mode)
    return sorted(summaries, key=lambda s: s.worker)


def analyze_db(
    source,
    *,
    calibration: Optional[CalibrationResult] = None,
    iterations: Optional[int] = None,
) -> WorkloadAnalysis:
    """Build a :class:`WorkloadAnalysis` from a TraceDB store handle.

    :class:`WorkloadAnalysis` needs the full record lists for its marker and
    transition queries, so the store is materialised once and the overlap is
    computed from that trace — decoding every chunk a second time through
    the map phase would only add work.  The result is byte-identical to
    :func:`repro.tracedb.parallel_overlap`, which remains the right tool for
    summaries that never need the materialised trace (e.g.
    :func:`multi_process_summary_db`).
    """
    from ..tracedb.store import TraceDB
    db = source if isinstance(source, TraceDB) else TraceDB(str(source))
    trace = db.to_event_trace()
    return WorkloadAnalysis(trace=trace, overlap=compute_overlap(trace),
                            calibration=calibration, iterations=iterations)
