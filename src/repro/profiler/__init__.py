"""RL-Scope: the cross-stack profiler (the paper's primary contribution).

Public surface:

* :class:`Profiler` / :class:`ProfilerConfig` — annotation API and
  transparent interception (Sections 3.1, 3.2).
* :func:`compute_overlap` / :class:`OverlapResult` — cross-stack event
  overlap (Section 3.3).
* :func:`calibrate` / :class:`CalibrationResult` and the correction helpers —
  profiling calibration and overhead correction (Section 3.4, Appendix C).
* :func:`analyze` / :class:`WorkloadAnalysis` — offline analysis producing
  the breakdowns, transition counts and multi-process summaries reported in
  the paper's figures.
* :class:`TraceDumper` / :class:`TraceReader` — chunked trace storage
  (thin wrappers over the :mod:`repro.tracedb` streaming store, which also
  provides the shard-parallel analysis engine used by :func:`analyze_db`).
"""

from .analysis import (
    TRANSITION_CATEGORIES,
    WorkerSummary,
    WorkloadAnalysis,
    analyze,
    analyze_db,
    multi_process_summary,
    multi_process_summary_db,
    summarize_worker_trace,
)
from .api import Profiler, ProfilerConfig
from .calibration import (
    CalibrationResult,
    CalibrationRun,
    calibrate,
    delta_calibrate,
    difference_of_average_calibrate,
)
from .correction import (
    corrected_category_breakdown,
    corrected_total_us,
    overhead_by_operation_category,
)
from .events import (
    CATEGORY_BACKEND,
    CATEGORY_CUDA_API,
    CATEGORY_GPU,
    CATEGORY_OPERATION,
    CATEGORY_PYTHON,
    CATEGORY_SIMULATOR,
    CPU_CATEGORIES,
    Event,
    EventTrace,
    OverheadMarker,
    merge_traces,
)
from .overlap import (
    RESOURCE_CPU,
    RESOURCE_CPU_GPU,
    RESOURCE_GPU,
    UNTRACKED,
    OverlapResult,
    compute_overlap,
)
from .trace_store import TraceDumper, TraceReader, load_trace
from . import report

__all__ = [
    "TRANSITION_CATEGORIES",
    "WorkerSummary",
    "WorkloadAnalysis",
    "analyze",
    "analyze_db",
    "multi_process_summary",
    "multi_process_summary_db",
    "summarize_worker_trace",
    "Profiler",
    "ProfilerConfig",
    "CalibrationResult",
    "CalibrationRun",
    "calibrate",
    "delta_calibrate",
    "difference_of_average_calibrate",
    "corrected_category_breakdown",
    "corrected_total_us",
    "overhead_by_operation_category",
    "CATEGORY_BACKEND",
    "CATEGORY_CUDA_API",
    "CATEGORY_GPU",
    "CATEGORY_OPERATION",
    "CATEGORY_PYTHON",
    "CATEGORY_SIMULATOR",
    "CPU_CATEGORIES",
    "Event",
    "EventTrace",
    "OverheadMarker",
    "merge_traces",
    "RESOURCE_CPU",
    "RESOURCE_CPU_GPU",
    "RESOURCE_GPU",
    "UNTRACKED",
    "OverlapResult",
    "compute_overlap",
    "TraceDumper",
    "TraceReader",
    "load_trace",
    "report",
]
