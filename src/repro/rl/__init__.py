"""RL algorithms, framework adapters, and experience buffers."""

from typing import Dict, Type

from .a2c import A2C
from .base import (
    ALGORITHM_DEFAULTS,
    AlgorithmConfig,
    BaseAlgorithm,
    OffPolicyAlgorithm,
    OnPolicyAlgorithm,
    OP_BACKPROPAGATION,
    OP_INFERENCE,
    OP_SIMULATION,
    PHASE_DATA_COLLECTION,
    PHASE_SGD_UPDATES,
    TrainResult,
    default_config,
)
from .buffers import Batch, ReplayBuffer, Rollout, RolloutBuffer
from .ddpg import DDPG
from .dqn import DQN
from .frameworks import (
    REAGENT,
    STABLE_BASELINES,
    TABLE1,
    TF_AGENTS_AUTOGRAPH,
    TF_AGENTS_EAGER,
    FrameworkAdapter,
    FrameworkSpec,
    default_framework,
    make_engine,
)
from .networks import (
    CategoricalPolicy,
    DeterministicActor,
    GaussianActor,
    QCritic,
    TwinQCritic,
    ValueCritic,
)
from .noise import GaussianNoise, OrnsteinUhlenbeckNoise
from .ppo import PPO2
from .sac import SAC
from .td3 import TD3
from .zoo import (
    ZOO_ALGORITHMS,
    ZooAlgorithm,
    ZooCollectStats,
    algorithm_supports,
    collect_replay,
    collect_rollout,
    make_zoo_pool,
)

#: Algorithm registry used by the experiment harness and the CLI.
ALGORITHMS: Dict[str, Type[BaseAlgorithm]] = {
    "DQN": DQN,
    "DDPG": DDPG,
    "TD3": TD3,
    "SAC": SAC,
    "A2C": A2C,
    "PPO2": PPO2,
    # Alias: the simulator survey (Figure 7) refers to PPO2 simply as PPO.
    "PPO": PPO2,
}

#: On/off-policy classification used by finding F.10.
ON_POLICY_ALGORITHMS = ("A2C", "PPO2")
OFF_POLICY_ALGORITHMS = ("DQN", "DDPG", "TD3", "SAC")


def make_algorithm(name: str, env, framework, **kwargs) -> BaseAlgorithm:
    """Instantiate an algorithm by name."""
    try:
        cls = ALGORITHMS[name.upper()]
    except KeyError as exc:
        raise KeyError(f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}") from exc
    return cls(env, framework, **kwargs)


__all__ = [
    "A2C",
    "ALGORITHM_DEFAULTS",
    "ALGORITHMS",
    "AlgorithmConfig",
    "BaseAlgorithm",
    "Batch",
    "CategoricalPolicy",
    "DDPG",
    "DQN",
    "DeterministicActor",
    "FrameworkAdapter",
    "FrameworkSpec",
    "GaussianActor",
    "GaussianNoise",
    "OFF_POLICY_ALGORITHMS",
    "ON_POLICY_ALGORITHMS",
    "OP_BACKPROPAGATION",
    "OP_INFERENCE",
    "OP_SIMULATION",
    "OffPolicyAlgorithm",
    "OnPolicyAlgorithm",
    "OrnsteinUhlenbeckNoise",
    "PHASE_DATA_COLLECTION",
    "PHASE_SGD_UPDATES",
    "PPO2",
    "QCritic",
    "REAGENT",
    "ReplayBuffer",
    "Rollout",
    "RolloutBuffer",
    "SAC",
    "STABLE_BASELINES",
    "TABLE1",
    "TD3",
    "TF_AGENTS_AUTOGRAPH",
    "TF_AGENTS_EAGER",
    "TrainResult",
    "TwinQCritic",
    "ValueCritic",
    "ZOO_ALGORITHMS",
    "ZooAlgorithm",
    "ZooCollectStats",
    "algorithm_supports",
    "collect_replay",
    "collect_rollout",
    "default_config",
    "default_framework",
    "make_algorithm",
    "make_engine",
    "make_zoo_pool",
]
