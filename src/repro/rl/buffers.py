"""Experience storage: replay buffer (off-policy) and rollout buffer (on-policy).

Sampling happens in interpreted Python/numpy on the critical path — one of the
structural reasons RL training keeps returning to high-level code between
backend calls (Section 2.2) — so both buffers charge Python work to the
virtual clock proportional to the amount of data handled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..system import System


@dataclass(frozen=True)
class Batch:
    """A minibatch of transitions."""

    observations: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_observations: np.ndarray
    dones: np.ndarray

    def __len__(self) -> int:
        return self.observations.shape[0]


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer for off-policy algorithms."""

    #: python units of work per stored transition / per sampled row
    ADD_UNITS = 1.5
    SAMPLE_UNITS_PER_ROW = 0.35

    def __init__(
        self,
        capacity: int,
        obs_dim: int,
        action_dim: int,
        *,
        system: Optional[System] = None,
        seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.system = system
        self.rng = np.random.default_rng(seed)
        self.observations = np.zeros((capacity, obs_dim), dtype=np.float32)
        self.actions = np.zeros((capacity, action_dim), dtype=np.float32)
        self.rewards = np.zeros((capacity,), dtype=np.float32)
        self.next_observations = np.zeros((capacity, obs_dim), dtype=np.float32)
        self.dones = np.zeros((capacity,), dtype=np.float32)
        self._index = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def add(self, obs: np.ndarray, action, reward: float, next_obs: np.ndarray, done: bool) -> None:
        """Store one transition."""
        if self.system is not None:
            self.system.cpu_work(self.ADD_UNITS)
        i = self._index
        self.observations[i] = obs
        self.actions[i] = np.asarray(action, dtype=np.float32).reshape(self.actions.shape[1:])
        self.rewards[i] = reward
        self.next_observations[i] = next_obs
        self.dones[i] = float(done)
        self._index = (self._index + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample a minibatch (Python-side work on the critical path)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        if self.system is not None:
            self.system.cpu_work(self.SAMPLE_UNITS_PER_ROW * batch_size)
        indices = self.rng.integers(0, self._size, size=batch_size)
        return Batch(
            observations=self.observations[indices],
            actions=self.actions[indices],
            rewards=self.rewards[indices],
            next_observations=self.next_observations[indices],
            dones=self.dones[indices],
        )


@dataclass(frozen=True)
class Rollout:
    """A finished on-policy rollout with computed returns and advantages."""

    observations: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    values: np.ndarray
    log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray

    def __len__(self) -> int:
        return self.observations.shape[0]


class RolloutBuffer:
    """On-policy rollout storage with GAE(lambda) advantage estimation."""

    ADD_UNITS = 1.5
    FINISH_UNITS_PER_ROW = 0.4

    def __init__(
        self,
        n_steps: int,
        obs_dim: int,
        action_dim: int,
        *,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        system: Optional[System] = None,
    ) -> None:
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= gae_lambda <= 1.0:
            raise ValueError("gae_lambda must be in [0, 1]")
        self.n_steps = n_steps
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.system = system
        self.observations = np.zeros((n_steps, obs_dim), dtype=np.float32)
        self.actions = np.zeros((n_steps, action_dim), dtype=np.float32)
        self.rewards = np.zeros(n_steps, dtype=np.float32)
        self.values = np.zeros(n_steps, dtype=np.float32)
        self.log_probs = np.zeros(n_steps, dtype=np.float32)
        self.dones = np.zeros(n_steps, dtype=np.float32)
        self._pos = 0

    def __len__(self) -> int:
        return self._pos

    @property
    def is_full(self) -> bool:
        return self._pos == self.n_steps

    def reset(self) -> None:
        self._pos = 0

    def add(self, obs: np.ndarray, action, reward: float, value: float, log_prob: float, done: bool) -> None:
        if self.is_full:
            raise ValueError("rollout buffer is full; call finish()/reset() first")
        if self.system is not None:
            self.system.cpu_work(self.ADD_UNITS)
        i = self._pos
        self.observations[i] = obs
        self.actions[i] = np.asarray(action, dtype=np.float32).reshape(self.actions.shape[1:])
        self.rewards[i] = reward
        self.values[i] = value
        self.log_probs[i] = log_prob
        self.dones[i] = float(done)
        self._pos += 1

    def finish(self, last_value: float) -> Rollout:
        """Compute GAE advantages and discounted returns for the stored steps."""
        if self._pos == 0:
            raise ValueError("cannot finish an empty rollout")
        if self.system is not None:
            self.system.cpu_work(self.FINISH_UNITS_PER_ROW * self._pos)
        n = self._pos
        advantages = np.zeros(n, dtype=np.float32)
        last_gae = 0.0
        for t in reversed(range(n)):
            next_value = last_value if t == n - 1 else self.values[t + 1]
            next_non_terminal = 1.0 - self.dones[t]
            delta = self.rewards[t] + self.gamma * next_value * next_non_terminal - self.values[t]
            last_gae = delta + self.gamma * self.gae_lambda * next_non_terminal * last_gae
            advantages[t] = last_gae
        returns = advantages + self.values[:n]
        return Rollout(
            observations=self.observations[:n].copy(),
            actions=self.actions[:n].copy(),
            rewards=self.rewards[:n].copy(),
            values=self.values[:n].copy(),
            log_probs=self.log_probs[:n].copy(),
            advantages=advantages,
            returns=returns,
        )
