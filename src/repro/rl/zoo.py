"""Workload zoo: every sim x algorithm pair through the batched rollout stack.

Two layers of wiring on top of :class:`~repro.rollout.pool.EnvRolloutPool`:

* :func:`make_zoo_pool` — algorithm-*flavoured* collection: a pool whose
  action policy matches the named algorithm family (epsilon-greedy argmax
  for DQN, categorical sampling for PPO-style actors, gaussian exploration
  noise for DDPG-style continuous control) over a shared
  :class:`~repro.rollout.pool.RolloutPolicyNet`.  This is what the
  ``zoosweep`` experiment grids over sims x algorithms x workers x
  replicas.
* :func:`collect_replay` / :func:`collect_rollout` — algorithm-*attached*
  collection: a live ``repro.rl`` algorithm's own networks are routed
  through the shared :class:`~repro.rollout.inference.InferenceService`
  (its q-network, deterministic actor, or policy/value pair becomes the
  service's ``forward``), and the transitions the worker fleet collects
  land in the algorithm's replay/rollout buffer — vectorized data
  collection for the exact model being trained, with cross-worker batch
  sharing replacing the serial per-step inference of
  ``BaseAlgorithm._collect_loop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.tensor import Tensor
from ..rollout.envdriver import (
    ActionPolicy,
    EpsilonGreedyPolicy,
    GaussianNoisePolicy,
    SampledDiscretePolicy,
)
from ..rollout.pool import EnvRolloutPool, continuous_actor_forward
from ..sim import registry
from ..system import System
from .base import OffPolicyAlgorithm, OnPolicyAlgorithm


@dataclass(frozen=True)
class ZooAlgorithm:
    """One algorithm family's collection behaviour in the zoo."""

    name: str
    supports_discrete: bool
    supports_continuous: bool
    kind: str  #: "value" (greedy), "policy" (sampling), "actor" (continuous)

    def make_policy(self, env, seed: int) -> ActionPolicy:
        if self.kind == "value":
            return EpsilonGreedyPolicy()
        if self.kind == "policy":
            return (SampledDiscretePolicy() if env.is_discrete
                    else GaussianNoisePolicy(noise_scale=0.1))
        return GaussianNoisePolicy(noise_scale=0.1)

    def supports(self, env) -> bool:
        return self.supports_discrete if env.is_discrete else self.supports_continuous


#: The algorithm families the zoosweep grids over.
ZOO_ALGORITHMS: Dict[str, ZooAlgorithm] = {
    "DQN": ZooAlgorithm("DQN", supports_discrete=True, supports_continuous=False,
                        kind="value"),
    "PPO": ZooAlgorithm("PPO", supports_discrete=True, supports_continuous=True,
                        kind="policy"),
    "DDPG": ZooAlgorithm("DDPG", supports_discrete=False, supports_continuous=True,
                         kind="actor"),
}


def algorithm_supports(sim: str, algorithm: str) -> bool:
    """Whether ``algorithm`` can act in ``sim``'s action space (cheap probe)."""
    spec = ZOO_ALGORITHMS[algorithm]
    env = registry.make(sim, System.create(seed=0), seed=0)
    return spec.supports(env)


def make_zoo_pool(sim: str, algorithm: str, num_workers: int = 8,
                  **pool_kwargs) -> EnvRolloutPool:
    """An :class:`EnvRolloutPool` whose action policy matches ``algorithm``."""
    spec = ZOO_ALGORITHMS[algorithm]
    return EnvRolloutPool(
        sim, num_workers,
        policy_factory=lambda env, seed: spec.make_policy(env, seed),
        **pool_kwargs)


# --------------------------------------------------------------- rl wiring
@dataclass
class ZooCollectStats:
    """What one batched collection pass did for an attached algorithm."""

    sim: str
    algorithm: str
    workers: int
    steps: int                 #: env transitions collected
    buffered: int              #: transitions that landed in the buffer
    engine_calls: int          #: batched service calls issued
    rows: int                  #: policy evaluations served
    cross_worker_share: float  #: fraction of batches spanning >1 worker
    collection_span_us: float  #: virtual span of the slowest worker


class _RecordingPolicy(ActionPolicy):
    """Wraps a policy, recording (value, log_prob) per step for on-policy buffers."""

    def __init__(self, inner: ActionPolicy, discrete: bool) -> None:
        self.inner = inner
        self.discrete = discrete
        self.values = []
        self.log_probs = []

    def __call__(self, out_row, value_row, *, rng, env, timestep):
        action = self.inner(out_row, value_row, rng=rng, env=env, timestep=timestep)
        self.values.append(float(value_row))
        if self.discrete:
            probs = np.asarray(out_row, dtype=np.float64)
            probs = probs / probs.sum()
            self.log_probs.append(float(np.log(probs[int(action)] + 1e-12)))
        else:
            # Gaussian exploration around the served mean with the policy's
            # noise scale as the (fixed) std.
            scale = getattr(self.inner, "noise_scale", 0.1) or 1e-6
            z = (np.asarray(action, dtype=np.float64) - np.asarray(out_row, dtype=np.float64)) / scale
            self.log_probs.append(float(np.sum(
                -0.5 * (z ** 2) - np.log(scale) - 0.5 * np.log(2 * np.pi))))
        return action


def _attach_forward(algorithm) -> Tuple[object, object]:
    """(network, forward) routing the algorithm's own nets through the service.

    The returned ``network`` is whatever object keys the service's compiled
    cache (and receives ``update_weights``-free evaluation); ``forward``
    maps a feature batch to the service's ``(out, value)`` row contract
    using the algorithm's live parameters, so collection always acts with
    the current policy.
    """
    if hasattr(algorithm, "q_network"):  # DQN-style value net
        network = algorithm.q_network

        def forward(net, features):
            q = net(Tensor(features))
            return F.softmax(q).numpy(), F.reduce_max(q, axis=1).numpy().reshape(-1)

        return network, forward
    if hasattr(algorithm, "policy") and hasattr(algorithm, "value"):  # PPO/A2C
        network = algorithm.policy
        discrete = algorithm.env.is_discrete

        def forward(net, features):
            obs_t = Tensor(features)
            head = algorithm.policy(obs_t)
            if discrete:
                head = F.softmax(head)
            value = algorithm.value(obs_t)
            return head.numpy(), value.numpy().reshape(-1)

        return network, forward
    if hasattr(algorithm, "actor"):  # DDPG/TD3/SAC deterministic-mean actors
        network = algorithm.actor

        def forward(net, features):
            actions = net(Tensor(features))
            # Deterministic actors carry no value head; riders ignore it.
            return actions.numpy(), np.zeros(features.shape[0], dtype=np.float32)

        return network, forward
    raise TypeError(f"don't know how to route {type(algorithm).__name__} "
                    "through the inference service (no q_network/policy/actor)")


def _collection_policy(algorithm) -> ActionPolicy:
    cfg = algorithm.config
    if hasattr(algorithm, "q_network"):
        return EpsilonGreedyPolicy(cfg.epsilon_start, cfg.epsilon_end,
                                   cfg.epsilon_decay_steps)
    if hasattr(algorithm, "policy"):
        return (SampledDiscretePolicy() if algorithm.env.is_discrete
                else GaussianNoisePolicy(noise_scale=0.1))
    return GaussianNoisePolicy(noise_scale=getattr(cfg, "exploration_noise", 0.1))


def _run_attached_pool(algorithm, num_workers: int, steps_per_worker: int,
                       policy_factory, **pool_kwargs) -> EnvRolloutPool:
    network, forward = _attach_forward(algorithm)
    pool = EnvRolloutPool(
        algorithm.env.sim_id, num_workers,
        steps_per_worker=steps_per_worker,
        network=network, forward=forward,
        policy_factory=policy_factory,
        seed=pool_kwargs.pop("seed", algorithm.seed + 40_000),
        **pool_kwargs)
    pool.run()
    return pool


def _stats_for(algorithm, pool: EnvRolloutPool, buffered: int) -> ZooCollectStats:
    stats = pool.inference_service.stats
    return ZooCollectStats(
        sim=algorithm.env.sim_id, algorithm=algorithm.name,
        workers=pool.num_workers, steps=pool.total_steps(), buffered=buffered,
        engine_calls=stats.engine_calls, rows=stats.rows,
        cross_worker_share=stats.cross_worker_share,
        collection_span_us=pool.collection_span_us())


def collect_replay(algorithm: OffPolicyAlgorithm, *, num_workers: int = 4,
                   steps_per_worker: int = 16, **pool_kwargs) -> ZooCollectStats:
    """Fill an off-policy algorithm's replay buffer through the batched stack.

    ``num_workers`` env instances of the algorithm's simulator run under the
    pool scheduler; every policy evaluation batches across workers through
    the shared service *using the algorithm's own q-network/actor*, and the
    collected transitions are appended to ``algorithm.buffer`` in worker
    order (deterministic for fixed seeds).
    """
    policy = _collection_policy(algorithm)
    pool = _run_attached_pool(algorithm, num_workers, steps_per_worker,
                              lambda env, seed: policy, **pool_kwargs)
    buffered = 0
    for run in pool.runs:
        for t in run.result.transitions:
            algorithm.buffer.add(t.obs, algorithm._store_action(t.action),
                                 t.reward, t.next_obs, t.done)
            buffered += 1
    return _stats_for(algorithm, pool, buffered)


def collect_rollout(algorithm: OnPolicyAlgorithm, *, num_workers: int = 4,
                    steps_per_worker: Optional[int] = None,
                    **pool_kwargs) -> ZooCollectStats:
    """Fill an on-policy algorithm's rollout buffer through the batched stack.

    Values and log-probs ride along via a recording action policy (the
    service's ``(out, value)`` rows carry both), so the buffer rows are
    complete; the caller finishes the rollout (``buffer.finish``) exactly
    as the serial collection loop would.  Transitions beyond the buffer's
    ``n_steps`` capacity are dropped.
    """
    buffer = algorithm.rollout
    if steps_per_worker is None:
        steps_per_worker = max(1, buffer.n_steps // num_workers)
    recorders = {}

    def policy_factory(env, seed):
        recorder = _RecordingPolicy(_collection_policy(algorithm), env.is_discrete)
        recorders[env.system.worker] = recorder
        return recorder

    pool = _run_attached_pool(algorithm, num_workers, steps_per_worker,
                              policy_factory, **pool_kwargs)
    buffered = 0
    for run in pool.runs:
        recorder = recorders[run.worker]
        for t, value, log_prob in zip(run.result.transitions,
                                      recorder.values, recorder.log_probs):
            if buffer.is_full:
                break
            buffer.add(t.obs, algorithm._store_action(t.action),
                       t.reward, value, log_prob, t.done)
            buffered += 1
    return _stats_for(algorithm, pool, buffered)
