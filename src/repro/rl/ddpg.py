"""Deep Deterministic Policy Gradient (off-policy, continuous control).

DDPG is one of the paper's two headline off-policy algorithms (Figures 4b/4d
and 5).  The stable-baselines implementation the paper profiles has two
GPU-unfriendly quirks that this reproduction preserves through the framework
adapter (finding F.4): the MPI-friendly Adam optimizer that round-trips
parameters through the CPU, and target-network updates issued as separate
backend calls.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.layers import hard_update, soft_update
from ..backend.tensor import Tensor
from .base import OffPolicyAlgorithm
from .buffers import Batch
from .networks import DeterministicActor, QCritic
from .noise import OrnsteinUhlenbeckNoise


class DDPG(OffPolicyAlgorithm):
    """DDPG with target networks, OU exploration noise and soft target updates."""

    name = "DDPG"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        cfg = self.config
        hidden = cfg.hidden_sizes
        self.actor = DeterministicActor(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="actor")
        self.critic = QCritic(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="critic")
        self.target_actor = DeterministicActor(self.obs_dim, self.action_dim, hidden,
                                                rng=self.net_rng, name="target_actor")
        self.target_critic = QCritic(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="target_critic")
        hard_update(self.target_actor, self.actor)
        hard_update(self.target_critic, self.critic)

        self.actor_optimizer = self.framework.make_optimizer(self.actor.parameters(), cfg.actor_lr, algo=self.name)
        self.critic_optimizer = self.framework.make_optimizer(self.critic.parameters(), cfg.critic_lr, algo=self.name)
        self.noise = OrnsteinUhlenbeckNoise(self.action_dim, sigma=cfg.exploration_noise, seed=self.seed + 3)

        self._actor_infer = self.framework.compile(
            self._actor_forward, kind="inference", name="actor_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._update_step, kind="update", name="ddpg_train_step", num_feeds=5)

    # -------------------------------------------------------------- inference
    def _actor_forward(self, obs: np.ndarray) -> np.ndarray:
        return self.actor(Tensor(obs)).numpy()

    def _explore_action(self, obs: np.ndarray, timestep: int) -> np.ndarray:
        action = self._actor_infer(self._batch_obs(obs))[0]
        action = action + self.noise.sample()
        return np.clip(action, self.env.action_space.low, self.env.action_space.high)

    def predict(self, obs: np.ndarray) -> np.ndarray:
        with use_engine(self.engine):
            return self._actor_infer(self._batch_obs(obs))[0]

    # ----------------------------------------------------------------- update
    def _update(self, batch: Batch) -> Dict[str, float]:
        return self._update_compiled(batch)

    def _update_step(self, batch: Batch) -> Dict[str, float]:
        cfg = self.config
        obs = Tensor(batch.observations)
        actions = Tensor(batch.actions)
        next_obs = Tensor(batch.next_observations)
        rewards = Tensor(batch.rewards.reshape(-1, 1))
        not_done = Tensor((1.0 - batch.dones).reshape(-1, 1))

        # Bellman targets (no gradient flows into the target networks).
        target_actions = self.target_actor(next_obs)
        target_q = self.target_critic(next_obs, target_actions)
        y = F.add(rewards, F.mul(F.scale_shift(not_done, cfg.gamma), target_q))

        # Critic update.
        with Tape() as tape:
            q = self.critic(obs, actions)
            critic_loss = F.mse_loss(q, F.stop_gradient(y))
        critic_grads = tape.gradient(critic_loss, self.critic.parameters())
        self.critic_optimizer.step(critic_grads)

        # Actor update: maximise Q(s, pi(s)).
        with Tape() as tape:
            actor_loss = F.neg(F.reduce_mean(self.critic(obs, self.actor(obs))))
        actor_grads = tape.gradient(actor_loss, self.actor.parameters())
        self.actor_optimizer.step(actor_grads)

        # Polyak target updates (separate backend calls in stable-baselines DDPG).
        separate = self.framework.separate_target_update_calls(self.name)
        soft_update(self.target_actor, self.actor, cfg.tau, separate_calls=separate)
        soft_update(self.target_critic, self.critic, cfg.tau, separate_calls=separate)

        return {"critic_loss": critic_loss.item(), "actor_loss": actor_loss.item()}
