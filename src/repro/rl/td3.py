"""Twin Delayed DDPG (TD3).

TD3 is the second headline off-policy algorithm of the framework study
(Figures 4a/4c).  Relative to DDPG it adds clipped double-Q learning, target
policy smoothing, and delayed policy updates; its stable-baselines zoo
configuration also performs 1000 consecutive simulator steps per collection
cycle (vs. DDPG's 100), which is what lets it amortise Autograph's per-call
overhead (finding F.5).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.layers import hard_update, soft_update
from ..backend.tensor import Tensor
from .base import OffPolicyAlgorithm
from .buffers import Batch
from .networks import DeterministicActor, TwinQCritic
from .noise import GaussianNoise


class TD3(OffPolicyAlgorithm):
    """TD3 with twin critics, target smoothing and delayed policy updates."""

    name = "TD3"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        cfg = self.config
        hidden = cfg.hidden_sizes
        self.actor = DeterministicActor(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="actor")
        self.critic = TwinQCritic(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="critic")
        self.target_actor = DeterministicActor(self.obs_dim, self.action_dim, hidden,
                                                rng=self.net_rng, name="target_actor")
        self.target_critic = TwinQCritic(self.obs_dim, self.action_dim, hidden,
                                         rng=self.net_rng, name="target_critic")
        hard_update(self.target_actor, self.actor)
        hard_update(self.target_critic, self.critic)

        self.actor_optimizer = self.framework.make_optimizer(self.actor.parameters(), cfg.actor_lr, algo=self.name)
        self.critic_optimizer = self.framework.make_optimizer(self.critic.parameters(), cfg.critic_lr, algo=self.name)
        self.noise = GaussianNoise(self.action_dim, sigma=cfg.exploration_noise, seed=self.seed + 3)
        self._update_count = 0

        self._actor_infer = self.framework.compile(
            self._actor_forward, kind="inference", name="actor_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._update_step, kind="update", name="td3_train_step", num_feeds=5)

    # -------------------------------------------------------------- inference
    def _actor_forward(self, obs: np.ndarray) -> np.ndarray:
        return self.actor(Tensor(obs)).numpy()

    def _explore_action(self, obs: np.ndarray, timestep: int) -> np.ndarray:
        action = self._actor_infer(self._batch_obs(obs))[0] + self.noise.sample()
        return np.clip(action, self.env.action_space.low, self.env.action_space.high)

    def predict(self, obs: np.ndarray) -> np.ndarray:
        with use_engine(self.engine):
            return self._actor_infer(self._batch_obs(obs))[0]

    # ----------------------------------------------------------------- update
    def _update(self, batch: Batch) -> Dict[str, float]:
        return self._update_compiled(batch)

    def _update_step(self, batch: Batch) -> Dict[str, float]:
        cfg = self.config
        self._update_count += 1
        obs = Tensor(batch.observations)
        actions = Tensor(batch.actions)
        next_obs = Tensor(batch.next_observations)
        rewards = Tensor(batch.rewards.reshape(-1, 1))
        not_done = Tensor((1.0 - batch.dones).reshape(-1, 1))

        # Target policy smoothing: noisy target actions, clipped to the action range.
        smoothing = np.clip(
            self.rng.normal(0.0, cfg.target_noise, size=batch.actions.shape),
            -cfg.target_noise_clip, cfg.target_noise_clip,
        ).astype(np.float32)
        target_actions = F.clip(
            F.add(self.target_actor(next_obs), Tensor(smoothing)),
            float(self.env.action_space.low), float(self.env.action_space.high),
        )
        target_q = self.target_critic.min_q(next_obs, target_actions)
        y = F.add(rewards, F.mul(F.scale_shift(not_done, cfg.gamma), target_q))

        # Twin-critic update.
        with Tape() as tape:
            q1, q2 = self.critic(obs, actions)
            critic_loss = F.add(F.mse_loss(q1, F.stop_gradient(y)), F.mse_loss(q2, F.stop_gradient(y)))
        critic_grads = tape.gradient(critic_loss, self.critic.parameters())
        self.critic_optimizer.step(critic_grads)

        losses = {"critic_loss": critic_loss.item()}

        # Delayed policy and target updates.
        if self._update_count % cfg.policy_delay == 0:
            with Tape() as tape:
                actor_loss = F.neg(F.reduce_mean(self.critic.q1(obs, self.actor(obs))))
            actor_grads = tape.gradient(actor_loss, self.actor.parameters())
            self.actor_optimizer.step(actor_grads)
            soft_update(self.target_actor, self.actor, cfg.tau)
            soft_update(self.target_critic, self.critic, cfg.tau)
            losses["actor_loss"] = actor_loss.item()
        return losses
