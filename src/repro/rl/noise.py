"""Exploration noise processes for continuous-control algorithms."""

from __future__ import annotations

from typing import Optional

import numpy as np


class GaussianNoise:
    """Independent Gaussian exploration noise (used by TD3 and SAC-style exploration)."""

    def __init__(self, dim: int, sigma: float = 0.1, *, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.dim = dim
        self.sigma = sigma
        self.rng = np.random.default_rng(seed)

    def sample(self) -> np.ndarray:
        return self.rng.normal(0.0, self.sigma, size=self.dim).astype(np.float32)

    def reset(self) -> None:  # pragma: no cover - stateless
        """Gaussian noise has no state to reset."""


class OrnsteinUhlenbeckNoise:
    """Temporally correlated OU noise, the classic DDPG exploration process."""

    def __init__(
        self,
        dim: int,
        sigma: float = 0.2,
        theta: float = 0.15,
        dt: float = 1e-2,
        *,
        seed: int = 0,
    ) -> None:
        if sigma < 0 or theta < 0 or dt <= 0:
            raise ValueError("invalid OU noise parameters")
        self.dim = dim
        self.sigma = sigma
        self.theta = theta
        self.dt = dt
        self.rng = np.random.default_rng(seed)
        self.state = np.zeros(dim, dtype=np.float32)

    def reset(self) -> None:
        self.state = np.zeros(self.dim, dtype=np.float32)

    def sample(self) -> np.ndarray:
        drift = self.theta * (0.0 - self.state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self.rng.normal(size=self.dim)
        self.state = (self.state + drift + diffusion).astype(np.float32)
        return self.state.copy()
