"""Algorithm base classes: configuration, training loops and result records.

The training loops are annotated with the same three high-level operations
the paper scopes its analysis to — ``inference``, ``simulation`` and
``backpropagation`` — and with ``data_collection`` / ``sgd_updates`` phases,
so any algorithm trained through these base classes can be profiled by
RL-Scope out of the box.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..backend.context import use_engine
from ..profiler.api import Profiler
from ..sim.base import Env
from ..sim.spaces import Box, Discrete
from ..system import System
from .buffers import ReplayBuffer, RolloutBuffer
from .frameworks import FrameworkAdapter

OP_INFERENCE = "inference"
OP_SIMULATION = "simulation"
OP_BACKPROPAGATION = "backpropagation"

PHASE_DATA_COLLECTION = "data_collection"
PHASE_SGD_UPDATES = "sgd_updates"


@dataclass
class AlgorithmConfig:
    """Hyperparameters shared across the algorithm implementations.

    Defaults follow the stable-baselines zoo settings the paper pre-tuned;
    per-algorithm defaults (e.g. TD3's 1000-step ``train_freq`` vs DDPG's 100,
    the root of finding F.5) are applied by :func:`default_config`.
    """

    hidden_sizes: Tuple[int, ...] = (256, 256)
    gamma: float = 0.99
    batch_size: int = 64
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    buffer_size: int = 50_000
    warmup_steps: int = 64
    train_freq: int = 100          #: consecutive simulator steps per collection cycle
    gradient_steps: int = 100      #: gradient updates per collection cycle
    tau: float = 0.005
    exploration_noise: float = 0.1
    # TD3
    policy_delay: int = 2
    target_noise: float = 0.2
    target_noise_clip: float = 0.5
    # SAC
    alpha: float = 0.2
    # On-policy
    n_steps: int = 64
    gae_lambda: float = 0.95
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    n_epochs: int = 4
    n_minibatches: int = 4
    clip_range: float = 0.2
    # DQN
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 2_000
    target_update_interval: int = 250


#: Per-algorithm hyperparameter overrides (stable-baselines zoo style).
ALGORITHM_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "DDPG": {"train_freq": 100, "gradient_steps": 100, "hidden_sizes": (256, 256)},
    "TD3": {"train_freq": 1000, "gradient_steps": 1000, "hidden_sizes": (256, 256)},
    "SAC": {"train_freq": 64, "gradient_steps": 64, "hidden_sizes": (256, 256)},
    "DQN": {"train_freq": 4, "gradient_steps": 1, "hidden_sizes": (64, 64), "batch_size": 32},
    "A2C": {"n_steps": 16, "hidden_sizes": (64, 64), "entropy_coef": 0.01},
    "PPO2": {"n_steps": 128, "hidden_sizes": (64, 64), "n_epochs": 4, "n_minibatches": 4},
}


def default_config(algo: str, **overrides: Any) -> AlgorithmConfig:
    """Build the default configuration for ``algo`` with optional overrides."""
    config = AlgorithmConfig()
    defaults = ALGORITHM_DEFAULTS.get(algo.upper(), {})
    config = replace(config, **defaults)
    if overrides:
        config = replace(config, **overrides)
    return config


@dataclass
class TrainResult:
    """Summary of one training run."""

    algorithm: str
    timesteps: int
    episodes: int
    episode_rewards: List[float] = field(default_factory=list)
    losses: Dict[str, List[float]] = field(default_factory=dict)
    gradient_updates: int = 0

    @property
    def mean_episode_reward(self) -> float:
        return float(np.mean(self.episode_rewards)) if self.episode_rewards else 0.0

    def mean_reward_over(self, last_n: int) -> float:
        if not self.episode_rewards:
            return 0.0
        return float(np.mean(self.episode_rewards[-last_n:]))

    def record_loss(self, name: str, value: float) -> None:
        self.losses.setdefault(name, []).append(float(value))


class BaseAlgorithm:
    """Common plumbing: engine activation, profiler annotations, prediction."""

    name: str = "base"
    on_policy: bool = False

    def __init__(
        self,
        env: Env,
        framework: FrameworkAdapter,
        *,
        config: Optional[AlgorithmConfig] = None,
        profiler: Optional[Profiler] = None,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.framework = framework
        self.engine = framework.engine
        self.system: System = framework.system
        self.profiler = profiler
        self.config = config if config is not None else default_config(self.name)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.net_rng = np.random.default_rng(seed + 1)
        self.obs_dim = env.observation_dim
        self.action_dim = env.action_dim if isinstance(env.action_space, Box) else env.action_space.n
        with use_engine(self.engine):
            self._build()

    # ------------------------------------------------------------ subclasses
    def _build(self) -> None:
        """Create networks, optimizers and compiled functions."""
        raise NotImplementedError

    def train(self, total_timesteps: int) -> TrainResult:
        raise NotImplementedError

    def predict(self, obs: np.ndarray) -> np.ndarray:
        """Greedy action for evaluation (no exploration noise)."""
        raise NotImplementedError

    # -------------------------------------------------------------- profiling
    def _op(self, name: str):
        return self.profiler.operation(name) if self.profiler is not None else nullcontext()

    def _set_phase(self, name: str) -> None:
        if self.profiler is not None:
            self.profiler.set_phase(name)

    # ------------------------------------------------------------------ misc
    def _batch_obs(self, obs: np.ndarray) -> np.ndarray:
        return np.asarray(obs, dtype=np.float32).reshape(1, -1)

    def evaluate(self, episodes: int = 3, max_steps: int = 500) -> float:
        """Average undiscounted return of the greedy policy."""
        total = 0.0
        with use_engine(self.engine):
            for _ in range(episodes):
                obs = self.env.reset()
                episode_reward = 0.0
                for _ in range(max_steps):
                    action = self.predict(obs)
                    obs, reward, done, _ = self.env.step(action)
                    episode_reward += reward
                    if done:
                        break
                total += episode_reward
        return total / episodes


class OffPolicyAlgorithm(BaseAlgorithm):
    """Replay-buffer algorithms (DQN, DDPG, TD3, SAC).

    The training loop alternates data-collection cycles of ``train_freq``
    simulator steps with ``gradient_steps`` minibatch updates, the structure
    whose hyperparameters drive finding F.5.
    """

    def __init__(self, env: Env, framework: FrameworkAdapter, **kwargs: Any) -> None:
        super().__init__(env, framework, **kwargs)
        self.buffer = ReplayBuffer(
            self.config.buffer_size, self.obs_dim,
            self.action_dim if isinstance(env.action_space, Box) else 1,
            system=self.system, seed=self.seed + 2,
        )
        self._collect_compiled: Optional[Callable] = None

    # ------------------------------------------------------------ subclasses
    def _explore_action(self, obs: np.ndarray, timestep: int) -> np.ndarray:
        """Action used while collecting training data (includes exploration)."""
        raise NotImplementedError

    def _update(self, batch) -> Dict[str, float]:
        """One gradient update on a replay minibatch; returns named losses."""
        raise NotImplementedError

    # ---------------------------------------------------------------- training
    def train(self, total_timesteps: int) -> TrainResult:
        if total_timesteps <= 0:
            raise ValueError("total_timesteps must be positive")
        cfg = self.config
        result = TrainResult(algorithm=self.name, timesteps=total_timesteps, episodes=0)
        if self._collect_compiled is None:
            self._collect_compiled = self.framework.compile_collect(self._collect_loop)
        with use_engine(self.engine):
            self._set_phase(PHASE_DATA_COLLECTION)
            obs = self.env.reset()
            self._episode_reward = 0.0
            steps = 0
            timestep = 0
            while steps < total_timesteps:
                chunk = min(cfg.train_freq, total_timesteps - steps)
                self._set_phase(PHASE_DATA_COLLECTION)
                obs, timestep = self._collect_compiled(obs, chunk, timestep, result)
                steps += chunk
                if len(self.buffer) >= max(cfg.batch_size, cfg.warmup_steps):
                    self._set_phase(PHASE_SGD_UPDATES)
                    n_updates = max(1, int(round(cfg.gradient_steps * chunk / cfg.train_freq)))
                    for _ in range(n_updates):
                        # Minibatch sampling happens in Python, on the critical path.
                        batch = self.buffer.sample(cfg.batch_size)
                        with self._op(OP_BACKPROPAGATION):
                            losses = self._update(batch)
                        result.gradient_updates += 1
                        for loss_name, value in losses.items():
                            result.record_loss(loss_name, value)
        return result

    def _collect_loop(self, obs: np.ndarray, n_steps: int, timestep: int, result: TrainResult):
        """Collect ``n_steps`` transitions (this whole loop runs in-graph under Autograph)."""
        cfg = self.config
        for _ in range(n_steps):
            with self._op(OP_INFERENCE):
                if timestep < cfg.warmup_steps:
                    action = self._random_action()
                else:
                    action = self._explore_action(obs, timestep)
            with self._op(OP_SIMULATION):
                next_obs, reward, done, _ = self.framework.env_call(self.env.step, action)
            self.buffer.add(obs, self._store_action(action), reward, next_obs, done)
            self._episode_reward += reward
            timestep += 1
            if done:
                result.episodes += 1
                result.episode_rewards.append(self._episode_reward)
                self._episode_reward = 0.0
                with self._op(OP_SIMULATION):
                    next_obs = self.framework.env_call(self.env.reset)
            obs = next_obs
        return obs, timestep

    # ------------------------------------------------------------------ utils
    def _random_action(self):
        if isinstance(self.env.action_space, Discrete):
            return self.env.action_space.sample(self.rng)
        return self.env.action_space.sample(self.rng)

    def _store_action(self, action):
        """Shape the action for replay storage (discrete actions stored as a scalar column)."""
        if isinstance(self.env.action_space, Discrete):
            return np.array([action], dtype=np.float32)
        return action


class OnPolicyAlgorithm(BaseAlgorithm):
    """Rollout-based algorithms (A2C, PPO2)."""

    on_policy = True

    def __init__(self, env: Env, framework: FrameworkAdapter, **kwargs: Any) -> None:
        super().__init__(env, framework, **kwargs)
        cfg = self.config
        self.rollout = RolloutBuffer(
            cfg.n_steps, self.obs_dim,
            self.action_dim if isinstance(env.action_space, Box) else 1,
            gamma=cfg.gamma, gae_lambda=cfg.gae_lambda, system=self.system,
        )
        self._collect_compiled: Optional[Callable] = None

    # ------------------------------------------------------------ subclasses
    def _policy_step(self, obs: np.ndarray) -> Tuple[np.ndarray, float, float]:
        """Sampled action, its log-probability and the value estimate for ``obs``."""
        raise NotImplementedError

    def _update_from_rollout(self, rollout, result: TrainResult) -> None:
        """Gradient updates from one finished rollout (annotates backpropagation)."""
        raise NotImplementedError

    def _value_estimate(self, obs: np.ndarray) -> float:
        raise NotImplementedError

    # ---------------------------------------------------------------- training
    def train(self, total_timesteps: int) -> TrainResult:
        if total_timesteps <= 0:
            raise ValueError("total_timesteps must be positive")
        cfg = self.config
        result = TrainResult(algorithm=self.name, timesteps=total_timesteps, episodes=0)
        if self._collect_compiled is None:
            self._collect_compiled = self.framework.compile_collect(self._collect_loop)
        with use_engine(self.engine):
            obs = self.env.reset()
            self._episode_reward = 0.0
            steps = 0
            while steps < total_timesteps:
                chunk = min(cfg.n_steps, total_timesteps - steps)
                self._set_phase(PHASE_DATA_COLLECTION)
                obs = self._collect_compiled(obs, chunk, result)
                steps += chunk
                with self._op(OP_INFERENCE):
                    last_value = self._value_estimate(obs)
                rollout = self.rollout.finish(last_value)
                self._set_phase(PHASE_SGD_UPDATES)
                self._update_from_rollout(rollout, result)
                self.rollout.reset()
        return result

    def _collect_loop(self, obs: np.ndarray, n_steps: int, result: TrainResult) -> np.ndarray:
        for _ in range(n_steps):
            with self._op(OP_INFERENCE):
                action, log_prob, value = self._policy_step(obs)
            env_action = self._env_action(action)
            with self._op(OP_SIMULATION):
                next_obs, reward, done, _ = self.framework.env_call(self.env.step, env_action)
            self.rollout.add(obs, self._store_action(action), reward, value, log_prob, done)
            self._episode_reward += reward
            if done:
                result.episodes += 1
                result.episode_rewards.append(self._episode_reward)
                self._episode_reward = 0.0
                with self._op(OP_SIMULATION):
                    next_obs = self.framework.env_call(self.env.reset)
            obs = next_obs
        return obs

    # ------------------------------------------------------------------ utils
    def _env_action(self, action):
        if isinstance(self.env.action_space, Box):
            return self.env.action_space.clip(action)
        return int(action)

    def _store_action(self, action):
        if isinstance(self.env.action_space, Discrete):
            return np.array([action], dtype=np.float32)
        return action
