"""Soft Actor-Critic (off-policy, maximum-entropy continuous control).

SAC appears in the algorithm survey (Figure 5) as the second off-policy
algorithm alongside DDPG.  The implementation uses a squashed-Gaussian policy
with the reparameterisation trick, twin critics with clipped double-Q
targets, and a fixed entropy temperature.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.layers import hard_update, soft_update
from ..backend.tensor import Tensor
from .base import OffPolicyAlgorithm
from .buffers import Batch
from .networks import GaussianActor, TwinQCritic

_LOG_PROB_EPS = 1e-6


class SAC(OffPolicyAlgorithm):
    """SAC with a squashed-Gaussian policy and fixed temperature."""

    name = "SAC"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        cfg = self.config
        hidden = cfg.hidden_sizes
        self.actor = GaussianActor(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="pi")
        self.critic = TwinQCritic(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="q")
        self.target_critic = TwinQCritic(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="q_target")
        hard_update(self.target_critic, self.critic)

        self.actor_optimizer = self.framework.make_optimizer(self.actor.parameters(), cfg.actor_lr, algo=self.name)
        self.critic_optimizer = self.framework.make_optimizer(self.critic.parameters(), cfg.critic_lr, algo=self.name)

        self._actor_infer = self.framework.compile(
            self._actor_forward, kind="inference", name="actor_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._update_step, kind="update", name="sac_train_step", num_feeds=5)

    # ----------------------------------------------------------- distribution
    def _squashed_sample(self, obs: Tensor, noise: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Reparameterised squashed-Gaussian sample and its log-probability."""
        mean, log_std = self.actor.distribution(obs)
        std = F.exp(log_std)
        pre_tanh = F.add(mean, F.mul(std, Tensor(noise)))
        action = F.tanh(pre_tanh)
        log_prob = F.gaussian_log_prob(pre_tanh, mean, log_std)
        # Tanh-squashing correction: log det of the Jacobian.
        correction = F.reduce_sum(
            F.log(F.scale_shift(F.square(action), -1.0, 1.0 + _LOG_PROB_EPS)), axis=-1)
        log_prob = F.sub(log_prob, correction)
        return action, log_prob

    # -------------------------------------------------------------- inference
    def _actor_forward(self, obs: np.ndarray) -> np.ndarray:
        """Mean action (used for greedy evaluation and exploration's base)."""
        mean = self.actor(Tensor(obs))
        return F.tanh(mean).numpy()

    def _explore_action(self, obs: np.ndarray, timestep: int) -> np.ndarray:
        mean = self._actor_infer(self._batch_obs(obs))[0]
        std = np.exp(np.clip(self.actor.log_std.data, self.actor.LOG_STD_MIN, self.actor.LOG_STD_MAX))
        action = np.tanh(np.arctanh(np.clip(mean, -0.999, 0.999)) + std * self.rng.normal(size=mean.shape))
        return np.clip(action, self.env.action_space.low, self.env.action_space.high).astype(np.float32)

    def predict(self, obs: np.ndarray) -> np.ndarray:
        with use_engine(self.engine):
            return self._actor_infer(self._batch_obs(obs))[0]

    # ----------------------------------------------------------------- update
    def _update(self, batch: Batch) -> Dict[str, float]:
        return self._update_compiled(batch)

    def _update_step(self, batch: Batch) -> Dict[str, float]:
        cfg = self.config
        batch_size = len(batch)
        obs = Tensor(batch.observations)
        actions = Tensor(batch.actions)
        next_obs = Tensor(batch.next_observations)
        rewards = Tensor(batch.rewards.reshape(-1, 1))
        not_done = Tensor((1.0 - batch.dones).reshape(-1, 1))

        # Soft Bellman target: min target Q of a fresh next action minus entropy term.
        next_noise = self.rng.normal(size=(batch_size, self.action_dim)).astype(np.float32)
        next_action, next_log_prob = self._squashed_sample(next_obs, next_noise)
        target_q = self.target_critic.min_q(next_obs, next_action)
        entropy_term = F.scale_shift(F.reshape(next_log_prob, (batch_size, 1)), cfg.alpha)
        soft_target = F.sub(target_q, entropy_term)
        y = F.add(rewards, F.mul(F.scale_shift(not_done, cfg.gamma), soft_target))

        # Critic update.
        with Tape() as tape:
            q1, q2 = self.critic(obs, actions)
            critic_loss = F.add(F.mse_loss(q1, F.stop_gradient(y)), F.mse_loss(q2, F.stop_gradient(y)))
        critic_grads = tape.gradient(critic_loss, self.critic.parameters())
        self.critic_optimizer.step(critic_grads)

        # Actor update: maximise soft value of reparameterised actions.
        actor_noise = self.rng.normal(size=(batch_size, self.action_dim)).astype(np.float32)
        with Tape() as tape:
            new_action, log_prob = self._squashed_sample(obs, actor_noise)
            q_new = self.critic.min_q(obs, new_action)
            actor_loss = F.reduce_mean(
                F.sub(F.scale_shift(F.reshape(log_prob, (batch_size, 1)), cfg.alpha), q_new))
        actor_grads = tape.gradient(actor_loss, self.actor.parameters())
        self.actor_optimizer.step(actor_grads)

        soft_update(self.target_critic, self.critic, cfg.tau)
        return {"critic_loss": critic_loss.item(), "actor_loss": actor_loss.item()}
