"""Deep Q-Network (DQN), the paper's running example workload (Section 2.1).

DQN is not part of the evaluation figures but is the algorithm the paper uses
to explain the structure of an RL training loop (inference -> simulation ->
backpropagation over replayed experience), so it is included both for the
quickstart example and for discrete-action workloads such as Pong.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.layers import MLP, hard_update
from ..backend.tensor import Tensor
from .base import OffPolicyAlgorithm
from .buffers import Batch


class DQN(OffPolicyAlgorithm):
    """DQN with a target network, epsilon-greedy exploration and Huber loss."""

    name = "DQN"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        if not self.env.is_discrete:
            raise ValueError("DQN requires a discrete action space")
        cfg = self.config
        hidden = cfg.hidden_sizes
        num_actions = self.env.action_space.n
        self.q_network = MLP(self.obs_dim, hidden, num_actions, activation="relu",
                             name="q", rng=self.net_rng)
        self.target_network = MLP(self.obs_dim, hidden, num_actions, activation="relu",
                                  name="q_target", rng=self.net_rng)
        hard_update(self.target_network, self.q_network)
        self.optimizer = self.framework.make_optimizer(self.q_network.parameters(), cfg.critic_lr, algo=self.name)
        self._updates_since_target_sync = 0

        self._q_infer = self.framework.compile(
            self._q_forward, kind="inference", name="q_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._update_step, kind="update", name="dqn_train_step", num_feeds=5)

    # -------------------------------------------------------------- inference
    def _q_forward(self, obs: np.ndarray) -> np.ndarray:
        return self.q_network(Tensor(obs)).numpy()

    def _epsilon(self, timestep: int) -> float:
        cfg = self.config
        fraction = min(1.0, timestep / max(cfg.epsilon_decay_steps, 1))
        return cfg.epsilon_start + fraction * (cfg.epsilon_end - cfg.epsilon_start)

    def _explore_action(self, obs: np.ndarray, timestep: int) -> int:
        if self.rng.uniform() < self._epsilon(timestep):
            return int(self.env.action_space.sample(self.rng))
        q_values = self._q_infer(self._batch_obs(obs))[0]
        return int(np.argmax(q_values))

    def predict(self, obs: np.ndarray) -> int:
        with use_engine(self.engine):
            q_values = self._q_infer(self._batch_obs(obs))[0]
        return int(np.argmax(q_values))

    # ----------------------------------------------------------------- update
    def _update(self, batch: Batch) -> Dict[str, float]:
        return self._update_compiled(batch)

    def _update_step(self, batch: Batch) -> Dict[str, float]:
        cfg = self.config
        obs = Tensor(batch.observations)
        next_obs = Tensor(batch.next_observations)
        actions = batch.actions.astype(np.int64).reshape(-1)
        rewards = Tensor(batch.rewards)
        not_done = Tensor(1.0 - batch.dones)

        # Bellman target from the (frozen) target network.
        next_q = F.reduce_max(self.target_network(next_obs), axis=-1)
        y = F.add(rewards, F.mul(F.scale_shift(not_done, cfg.gamma), next_q))

        with Tape() as tape:
            q_selected = F.gather_rows(self.q_network(obs), actions)
            loss = F.huber_loss(q_selected, F.stop_gradient(y))
        grads = tape.gradient(loss, self.q_network.parameters())
        self.optimizer.step(grads)

        self._updates_since_target_sync += 1
        if self._updates_since_target_sync >= cfg.target_update_interval:
            hard_update(self.target_network, self.q_network)
            self._updates_since_target_sync = 0
        return {"q_loss": loss.item()}
