"""Advantage Actor-Critic (synchronous A2C).

A2C is one of the two on-policy algorithms of the algorithm survey
(Figure 5).  It collects a short on-policy rollout, computes GAE advantages,
and performs a single combined policy/value gradient step per rollout — which
is why it is by far the most simulation-bound workload in the survey
(finding F.10).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.tensor import Tensor
from .base import OP_BACKPROPAGATION, OnPolicyAlgorithm, TrainResult
from .buffers import Rollout
from .networks import CategoricalPolicy, GaussianActor, ValueCritic


class A2C(OnPolicyAlgorithm):
    """Synchronous advantage actor-critic with GAE."""

    name = "A2C"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        cfg = self.config
        hidden = cfg.hidden_sizes
        if self.env.is_discrete:
            self.policy = CategoricalPolicy(self.obs_dim, self.env.action_space.n, hidden,
                                            rng=self.net_rng, name="pi")
        else:
            self.policy = GaussianActor(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="pi")
        self.value = ValueCritic(self.obs_dim, hidden, rng=self.net_rng, name="vf")
        params = self.policy.parameters() + self.value.parameters()
        self.optimizer = self.framework.make_optimizer(params, cfg.actor_lr, algo=self.name)
        self._params = params

        self._policy_infer = self.framework.compile(
            self._policy_value_forward, kind="inference", name="policy_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._update_step, kind="update", name="a2c_train_step", num_feeds=4)

    # -------------------------------------------------------------- inference
    def _policy_value_forward(self, obs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Policy head output (mean or logits) and value estimate."""
        obs_t = Tensor(obs)
        head = self.policy(obs_t)
        value = self.value(obs_t)
        return head.numpy(), value.numpy()

    def _policy_step(self, obs: np.ndarray) -> Tuple[np.ndarray, float, float]:
        head, value = self._policy_infer(self._batch_obs(obs))
        if self.env.is_discrete:
            logits = head[0]
            probs = np.exp(logits - logits.max())
            probs /= probs.sum()
            action = int(self.rng.choice(len(probs), p=probs))
            log_prob = float(np.log(probs[action] + 1e-12))
            return np.array(action), log_prob, float(value[0, 0])
        mean = head[0]
        action = self.policy.sample_numpy(mean, self.rng)
        log_prob = float(self._numpy_gaussian_log_prob(action, mean))
        return action, log_prob, float(value[0, 0])

    def _numpy_gaussian_log_prob(self, action: np.ndarray, mean: np.ndarray) -> float:
        log_std = np.clip(self.policy.log_std.data, self.policy.LOG_STD_MIN, self.policy.LOG_STD_MAX)
        std = np.exp(log_std)
        z = (action - mean) / std
        return float(np.sum(-0.5 * (z ** 2 + 2 * log_std + np.log(2 * np.pi))))

    def _value_estimate(self, obs: np.ndarray) -> float:
        _, value = self._policy_infer(self._batch_obs(obs))
        return float(value[0, 0])

    def predict(self, obs: np.ndarray) -> np.ndarray:
        with use_engine(self.engine):
            head, _ = self._policy_infer(self._batch_obs(obs))
        if self.env.is_discrete:
            return int(np.argmax(head[0]))
        return head[0]

    # ----------------------------------------------------------------- update
    def _update_from_rollout(self, rollout: Rollout, result: TrainResult) -> None:
        with self._op(OP_BACKPROPAGATION):
            losses = self._update_compiled(rollout)
        result.gradient_updates += 1
        for name, value in losses.items():
            result.record_loss(name, value)

    def _policy_loss_terms(self, obs: Tensor, actions: Tensor, advantages: Tensor) -> Tuple[Tensor, Tensor]:
        """(policy loss, entropy) for either action-space type."""
        if self.env.is_discrete:
            log_probs = self.policy.log_probs(obs)
            indices = actions.numpy().astype(np.int64).reshape(-1)
            action_log_prob = F.gather_rows(log_probs, indices)
            probs = F.softmax(self.policy(obs))
            entropy = F.neg(F.reduce_mean(F.reduce_sum(F.mul(probs, F.log(probs)), axis=-1)))
        else:
            action_log_prob = self.policy.log_prob(obs, actions)
            _, log_std = self.policy.distribution(obs)
            entropy = F.gaussian_entropy(log_std)
        policy_loss = F.neg(F.reduce_mean(F.mul(action_log_prob, advantages)))
        return policy_loss, entropy

    def _update_step(self, rollout: Rollout) -> Dict[str, float]:
        cfg = self.config
        obs = Tensor(rollout.observations)
        actions = Tensor(rollout.actions)
        advantages_np = rollout.advantages
        advantages_np = (advantages_np - advantages_np.mean()) / (advantages_np.std() + 1e-8)
        advantages = Tensor(advantages_np)
        returns = Tensor(rollout.returns.reshape(-1, 1))

        with Tape() as tape:
            policy_loss, entropy = self._policy_loss_terms(obs, actions, advantages)
            value_loss = F.mse_loss(self.value(obs), returns)
            loss = F.sub(
                F.add(policy_loss, F.scale_shift(value_loss, cfg.value_coef)),
                F.scale_shift(entropy, cfg.entropy_coef),
            )
        grads = tape.gradient(loss, self._params)
        self.optimizer.step(grads)
        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy.item(),
        }
