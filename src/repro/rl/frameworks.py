"""RL framework adapters: the <execution model, ML backend> combinations of Table 1.

The paper compares four RL frameworks that implement the *same* algorithms
with the same hyperparameters but different execution models and backends:

===================  ================  ===========
RL framework         Execution model   ML backend
===================  ================  ===========
stable-baselines     Graph             TensorFlow
tf-agents            Autograph         TensorFlow
tf-agents            Eager             TensorFlow
ReAgent              Eager             PyTorch
===================  ================  ===========

A :class:`FrameworkAdapter` binds an algorithm implementation to one of these
combinations: it owns the backend engine, decides how inference / update
functions are compiled, how the environment is called from inside compiled
code, which optimizer implementation is used (stable-baselines' DDPG uses the
MPI-friendly CPU Adam of finding F.4), and whether target-network updates are
bundled or issued as separate backend calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..backend.autograph import AutographEngine
from ..backend.eager import EagerEngine, PyTorchEagerEngine
from ..backend.engine import BackendEngine
from ..backend.graph import GraphEngine
from ..backend.optimizers import Adam, MPIAdam, Optimizer
from ..backend.tensor import Parameter
from ..system import System

EXECUTION_GRAPH = "graph"
EXECUTION_AUTOGRAPH = "autograph"
EXECUTION_EAGER = "eager"

BACKEND_TENSORFLOW = "tensorflow"
BACKEND_PYTORCH = "pytorch"


@dataclass(frozen=True)
class FrameworkSpec:
    """One row of Table 1."""

    framework: str
    execution_model: str
    backend: str

    @property
    def label(self) -> str:
        return f"{self.backend.capitalize()} {self.execution_model.capitalize()}"

    @property
    def key(self) -> str:
        return f"{self.framework}:{self.execution_model}:{self.backend}"


STABLE_BASELINES = FrameworkSpec("stable-baselines", EXECUTION_GRAPH, BACKEND_TENSORFLOW)
TF_AGENTS_AUTOGRAPH = FrameworkSpec("tf-agents", EXECUTION_AUTOGRAPH, BACKEND_TENSORFLOW)
TF_AGENTS_EAGER = FrameworkSpec("tf-agents", EXECUTION_EAGER, BACKEND_TENSORFLOW)
REAGENT = FrameworkSpec("ReAgent", EXECUTION_EAGER, BACKEND_PYTORCH)

#: The framework matrix of Table 1, in the order the paper's figures use.
TABLE1: List[FrameworkSpec] = [REAGENT, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER, STABLE_BASELINES]


def make_engine(system: System, spec: FrameworkSpec) -> BackendEngine:
    """Instantiate the backend engine for a framework configuration."""
    if spec.execution_model == EXECUTION_GRAPH:
        return GraphEngine(system, flavor=spec.backend)
    if spec.execution_model == EXECUTION_AUTOGRAPH:
        return AutographEngine(system, flavor=spec.backend)
    if spec.execution_model == EXECUTION_EAGER:
        if spec.backend == BACKEND_PYTORCH:
            return PyTorchEagerEngine(system)
        return EagerEngine(system, flavor=spec.backend)
    raise ValueError(f"unknown execution model {spec.execution_model!r}")


class FrameworkAdapter:
    """Binds algorithm code to a framework configuration."""

    def __init__(self, system: System, spec: FrameworkSpec = STABLE_BASELINES) -> None:
        self.system = system
        self.spec = spec
        self.engine = make_engine(system, spec)

    # ------------------------------------------------------------ compilation
    def compile(self, fn: Callable, *, kind: str, name: str, num_feeds: int = 4) -> Callable:
        """Wrap ``fn`` according to the framework's execution model.

        ``kind`` is ``"inference"`` or ``"update"``; Autograph inference
        functions carry the dispatch-inflation anomaly of finding F.6.
        """
        engine = self.engine
        if isinstance(engine, GraphEngine):
            return engine.function(fn, name=name, num_feeds=num_feeds)
        if isinstance(engine, AutographEngine):
            return engine.function(fn, name=name, inflate_dispatch=(kind == "inference"))
        return fn

    def compile_collect(self, fn: Callable, *, name: str = "collect_driver") -> Callable:
        """Wrap a data-collection loop.

        tf-agents' Autograph driver runs the entire loop in-graph (one
        backend transition per ``train_freq`` simulator steps); every other
        framework collects data with a plain Python loop.
        """
        engine = self.engine
        if isinstance(engine, AutographEngine):
            return engine.function(fn, name=name, inflate_dispatch=False)
        return fn

    def env_call(self, fn: Callable, *args, **kwargs):
        """Call a simulator method, escaping compiled code if necessary."""
        engine = self.engine
        if isinstance(engine, AutographEngine) and engine.in_native:
            return engine.py_function(fn, *args, **kwargs)
        return fn(*args, **kwargs)

    # -------------------------------------------------------------- policies
    def make_optimizer(self, params: Sequence[Parameter], lr: float, *, algo: str) -> Optimizer:
        """Create the optimizer this framework's implementation of ``algo`` uses."""
        if self.uses_mpi_adam(algo):
            return MPIAdam(params, lr=lr)
        return Adam(params, lr=lr)

    def uses_mpi_adam(self, algo: str) -> bool:
        """stable-baselines' DDPG uses the MPI-friendly CPU Adam (finding F.4)."""
        return self.spec.framework == "stable-baselines" and algo.upper() == "DDPG"

    def separate_target_update_calls(self, algo: str) -> bool:
        """stable-baselines' DDPG issues target updates as separate backend calls (F.4)."""
        return self.spec.framework == "stable-baselines" and algo.upper() == "DDPG"

    @property
    def label(self) -> str:
        return self.spec.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameworkAdapter({self.spec.key})"


def default_framework(system: System) -> FrameworkAdapter:
    """The framework used for the algorithm/simulator surveys (stable-baselines, TF Graph)."""
    return FrameworkAdapter(system, STABLE_BASELINES)
