"""Policy and value networks used by the RL algorithms.

All of them are small MLPs, like the networks of the paper's workloads
(Section 2.2): two hidden layers of a few hundred units at most.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.layers import MLP, Module
from ..backend.tensor import Parameter, Tensor


class DeterministicActor(Module):
    """Deterministic policy ``a = tanh(MLP(s))`` scaled to the action range (DDPG/TD3)."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: Sequence[int] = (256, 256), *,
                 action_scale: float = 1.0, rng: Optional[np.random.Generator] = None,
                 name: str = "actor") -> None:
        self.net = MLP(obs_dim, hidden, action_dim, activation="relu", out_activation="tanh",
                       name=name, rng=rng)
        self.action_scale = float(action_scale)

    def __call__(self, obs: Tensor) -> Tensor:
        action = self.net(obs)
        if self.action_scale != 1.0:
            action = F.scale_shift(action, scale=self.action_scale)
        return action

    def parameters(self) -> List[Parameter]:
        return self.net.parameters()


class QCritic(Module):
    """Action-value critic ``Q(s, a)`` over concatenated state/action."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: Sequence[int] = (256, 256), *,
                 rng: Optional[np.random.Generator] = None, name: str = "critic") -> None:
        self.net = MLP(obs_dim + action_dim, hidden, 1, activation="relu", name=name, rng=rng)

    def __call__(self, obs: Tensor, action: Tensor) -> Tensor:
        return self.net(F.concat([obs, action], axis=-1))

    def parameters(self) -> List[Parameter]:
        return self.net.parameters()


class ValueCritic(Module):
    """State-value critic ``V(s)`` (A2C/PPO)."""

    def __init__(self, obs_dim: int, hidden: Sequence[int] = (64, 64), *,
                 rng: Optional[np.random.Generator] = None, name: str = "value") -> None:
        self.net = MLP(obs_dim, hidden, 1, activation="tanh", name=name, rng=rng)

    def __call__(self, obs: Tensor) -> Tensor:
        return self.net(obs)

    def parameters(self) -> List[Parameter]:
        return self.net.parameters()


class GaussianActor(Module):
    """Diagonal-Gaussian policy with a state-independent log-std (A2C/PPO/SAC).

    ``forward`` returns the mean; ``log_std`` is a trainable parameter vector.
    """

    LOG_STD_MIN = -5.0
    LOG_STD_MAX = 2.0

    def __init__(self, obs_dim: int, action_dim: int, hidden: Sequence[int] = (64, 64), *,
                 init_log_std: float = -0.5, rng: Optional[np.random.Generator] = None,
                 name: str = "pi") -> None:
        self.net = MLP(obs_dim, hidden, action_dim, activation="tanh", name=name, rng=rng)
        self.log_std = Parameter(np.full(action_dim, init_log_std, dtype=np.float32), name=f"{name}/log_std")
        self.action_dim = action_dim

    def __call__(self, obs: Tensor) -> Tensor:
        return self.net(obs)

    def distribution(self, obs: Tensor) -> Tuple[Tensor, Tensor]:
        """Mean and (clipped) log-std tensors of the policy distribution."""
        mean = self.net(obs)
        log_std = F.clip(self.log_std, self.LOG_STD_MIN, self.LOG_STD_MAX)
        return mean, log_std

    def log_prob(self, obs: Tensor, actions: Tensor) -> Tensor:
        mean, log_std = self.distribution(obs)
        return F.gaussian_log_prob(actions, mean, log_std)

    def sample_numpy(self, mean: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw an action on the CPU from the current (numpy) mean and log-std."""
        std = np.exp(np.clip(self.log_std.data, self.LOG_STD_MIN, self.LOG_STD_MAX))
        return (mean + std * rng.normal(size=mean.shape)).astype(np.float32)

    def parameters(self) -> List[Parameter]:
        return self.net.parameters() + [self.log_std]


class CategoricalPolicy(Module):
    """Discrete-action policy producing logits (DQN-style nets reuse plain MLPs)."""

    def __init__(self, obs_dim: int, num_actions: int, hidden: Sequence[int] = (64, 64), *,
                 rng: Optional[np.random.Generator] = None, name: str = "pi") -> None:
        self.net = MLP(obs_dim, hidden, num_actions, activation="tanh", name=name, rng=rng)
        self.num_actions = num_actions

    def __call__(self, obs: Tensor) -> Tensor:
        return self.net(obs)

    def log_probs(self, obs: Tensor) -> Tensor:
        return F.log_softmax(self.net(obs))

    def parameters(self) -> List[Parameter]:
        return self.net.parameters()


class TwinQCritic(Module):
    """Two independent Q critics (TD3/SAC clipped double-Q)."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: Sequence[int] = (256, 256), *,
                 rng: Optional[np.random.Generator] = None, name: str = "twin_q") -> None:
        self.q1 = QCritic(obs_dim, action_dim, hidden, rng=rng, name=f"{name}/q1")
        self.q2 = QCritic(obs_dim, action_dim, hidden, rng=rng, name=f"{name}/q2")

    def __call__(self, obs: Tensor, action: Tensor) -> Tuple[Tensor, Tensor]:
        return self.q1(obs, action), self.q2(obs, action)

    def min_q(self, obs: Tensor, action: Tensor) -> Tensor:
        q1, q2 = self(obs, action)
        return F.minimum(q1, q2)

    def parameters(self) -> List[Parameter]:
        return self.q1.parameters() + self.q2.parameters()
