"""Proximal Policy Optimization (PPO2, clipped surrogate objective).

PPO2 is the top-performing on-policy algorithm the paper uses both in the
algorithm survey (Figure 5) and as the fixed algorithm of the simulator
survey (Figure 7).  It collects ``n_steps`` of on-policy experience, then
performs several epochs of clipped-surrogate minibatch updates.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..backend import functional as F
from ..backend.autodiff import Tape
from ..backend.context import use_engine
from ..backend.tensor import Tensor
from .base import OP_BACKPROPAGATION, OnPolicyAlgorithm, TrainResult
from .buffers import Rollout
from .networks import CategoricalPolicy, GaussianActor, ValueCritic


class PPO2(OnPolicyAlgorithm):
    """PPO with clipped surrogate objective and minibatch epochs."""

    name = "PPO2"

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        cfg = self.config
        hidden = cfg.hidden_sizes
        if self.env.is_discrete:
            self.policy = CategoricalPolicy(self.obs_dim, self.env.action_space.n, hidden,
                                            rng=self.net_rng, name="pi")
        else:
            self.policy = GaussianActor(self.obs_dim, self.action_dim, hidden, rng=self.net_rng, name="pi")
        self.value = ValueCritic(self.obs_dim, hidden, rng=self.net_rng, name="vf")
        params = self.policy.parameters() + self.value.parameters()
        self.optimizer = self.framework.make_optimizer(params, cfg.actor_lr, algo=self.name)
        self._params = params

        self._policy_infer = self.framework.compile(
            self._policy_value_forward, kind="inference", name="policy_forward", num_feeds=1)
        self._update_compiled = self.framework.compile(
            self._minibatch_update, kind="update", name="ppo_train_step", num_feeds=5)

    # -------------------------------------------------------------- inference
    def _policy_value_forward(self, obs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        obs_t = Tensor(obs)
        return self.policy(obs_t).numpy(), self.value(obs_t).numpy()

    def _policy_step(self, obs: np.ndarray) -> Tuple[np.ndarray, float, float]:
        head, value = self._policy_infer(self._batch_obs(obs))
        if self.env.is_discrete:
            logits = head[0]
            probs = np.exp(logits - logits.max())
            probs /= probs.sum()
            action = int(self.rng.choice(len(probs), p=probs))
            log_prob = float(np.log(probs[action] + 1e-12))
            return np.array(action), log_prob, float(value[0, 0])
        mean = head[0]
        action = self.policy.sample_numpy(mean, self.rng)
        log_prob = self._numpy_gaussian_log_prob(action, mean)
        return action, log_prob, float(value[0, 0])

    def _numpy_gaussian_log_prob(self, action: np.ndarray, mean: np.ndarray) -> float:
        log_std = np.clip(self.policy.log_std.data, self.policy.LOG_STD_MIN, self.policy.LOG_STD_MAX)
        std = np.exp(log_std)
        z = (action - mean) / std
        return float(np.sum(-0.5 * (z ** 2 + 2 * log_std + np.log(2 * np.pi))))

    def _value_estimate(self, obs: np.ndarray) -> float:
        _, value = self._policy_infer(self._batch_obs(obs))
        return float(value[0, 0])

    def predict(self, obs: np.ndarray) -> np.ndarray:
        with use_engine(self.engine):
            head, _ = self._policy_infer(self._batch_obs(obs))
        if self.env.is_discrete:
            return int(np.argmax(head[0]))
        return head[0]

    # ----------------------------------------------------------------- update
    def _update_from_rollout(self, rollout: Rollout, result: TrainResult) -> None:
        cfg = self.config
        n = len(rollout)
        advantages = rollout.advantages
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        indices = np.arange(n)
        minibatch_size = max(1, n // cfg.n_minibatches)
        for _ in range(cfg.n_epochs):
            self.rng.shuffle(indices)
            for start in range(0, n, minibatch_size):
                mb = indices[start:start + minibatch_size]
                # Minibatch slicing is Python/numpy work on the critical path.
                self.system.cpu_work(0.2 * len(mb))
                with self._op(OP_BACKPROPAGATION):
                    losses = self._update_compiled(
                        rollout.observations[mb], rollout.actions[mb], advantages[mb],
                        rollout.returns[mb], rollout.log_probs[mb])
                result.gradient_updates += 1
                for name, value in losses.items():
                    result.record_loss(name, value)

    def _log_prob_and_entropy(self, obs: Tensor, actions: Tensor) -> Tuple[Tensor, Tensor]:
        if self.env.is_discrete:
            log_probs = self.policy.log_probs(obs)
            indices = actions.numpy().astype(np.int64).reshape(-1)
            action_log_prob = F.gather_rows(log_probs, indices)
            probs = F.softmax(self.policy(obs))
            entropy = F.neg(F.reduce_mean(F.reduce_sum(F.mul(probs, F.log(probs)), axis=-1)))
        else:
            action_log_prob = self.policy.log_prob(obs, actions)
            _, log_std = self.policy.distribution(obs)
            entropy = F.gaussian_entropy(log_std)
        return action_log_prob, entropy

    def _minibatch_update(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
        old_log_probs: np.ndarray,
    ) -> Dict[str, float]:
        cfg = self.config
        obs = Tensor(observations)
        actions_t = Tensor(actions)
        advantages_t = Tensor(advantages)
        returns_t = Tensor(returns.reshape(-1, 1))
        old_log_probs_t = Tensor(old_log_probs)

        with Tape() as tape:
            log_prob, entropy = self._log_prob_and_entropy(obs, actions_t)
            ratio = F.exp(F.sub(log_prob, old_log_probs_t))
            unclipped = F.mul(ratio, advantages_t)
            clipped = F.mul(F.clip(ratio, 1.0 - cfg.clip_range, 1.0 + cfg.clip_range), advantages_t)
            policy_loss = F.neg(F.reduce_mean(F.minimum(unclipped, clipped)))
            value_loss = F.mse_loss(self.value(obs), returns_t)
            loss = F.sub(
                F.add(policy_loss, F.scale_shift(value_loss, cfg.value_coef)),
                F.scale_shift(entropy, cfg.entropy_coef),
            )
        grads = tape.gradient(loss, self._params)
        self.optimizer.step(grads)
        return {
            "policy_loss": policy_loss.item(),
            "value_loss": value_loss.item(),
            "entropy": entropy.item(),
        }
