"""Table 1: the RL framework configurations considered in the framework study."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..rl.frameworks import TABLE1, FrameworkSpec, make_engine
from ..system import System


@dataclass(frozen=True)
class Table1Row:
    rl_framework: str
    execution_model: str
    ml_backend: str
    engine_class: str


def run_table1() -> List[Table1Row]:
    """Materialise Table 1, verifying each configuration builds its engine."""
    rows: List[Table1Row] = []
    for spec in TABLE1:
        system = System.create(seed=0)
        engine = make_engine(system, spec)
        rows.append(Table1Row(
            rl_framework=spec.framework,
            execution_model=spec.execution_model.capitalize(),
            ml_backend=f"{spec.backend.capitalize()}",
            engine_class=type(engine).__name__,
        ))
    return rows


def report(rows: List[Table1Row]) -> str:
    lines = ["Table 1: RL frameworks (execution model, ML backend)", ""]
    header = f"{'RL framework':<18} {'Execution model':<16} {'ML backend':<12} {'engine':<20}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(f"{row.rl_framework:<18} {row.execution_model:<16} {row.ml_backend:<12} {row.engine_class:<20}")
    return "\n".join(lines)
