"""Scheduler sweep: sequential vs event-driven pool at each leaf batch size.

PR 2's batched :class:`InferenceService` capped its win at one worker's
``leaf_batch``: the sequential pool simulates workers one after another on
overlapping virtual timelines, so a flush almost always serves a single
worker's wave.  The event-driven :class:`~repro.minigo.workers.PoolScheduler`
interleaves all workers at wave granularity and only serves the queue when
every runnable worker is blocked on inference — one engine call then batches
leaves from many workers at the same virtual instant, the way a real
inference server batches across client processes.

This sweep runs the pool under both schedulers for each ``leaf_batch`` and
reports, per point, the engine calls issued, the share of batches serving
more than one worker, batch occupancy, and the queueing delay the
event-driven model charges (the sequential model hides replica contention
entirely, which is why its collection span can look *shorter* while issuing
many times more engine calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..minigo.inference import FLUSH_MAX_BATCH, ROUTING_ROUND_ROBIN
from ..minigo.workers import SCHEDULER_EVENT, SCHEDULER_SEQUENTIAL, SelfPlayPool

#: The sweep the paper-style report covers.
DEFAULT_SCHED_LEAF_BATCHES = (1, 4, 8)
DEFAULT_SCHED_WORKERS = 8


@dataclass
class SchedSweepPoint:
    """One (scheduler, leaf_batch) setting's measurements."""

    scheduler: str
    leaf_batch: int
    engine_calls: int
    rows: int
    cross_worker_batches: int
    mean_batch_rows: float
    mean_occupancy: float
    mean_queue_delay_us: float
    moves: int
    span_us: float           #: parallel collection span (slowest worker)
    #: Per-replica roll-ups (index-aligned; single-entry lists with the
    #: default unsharded service, empty when constructed without them).
    replica_calls: List[int] = field(default_factory=list)
    replica_utilisation: List[float] = field(default_factory=list)
    routing_decisions: List[int] = field(default_factory=list)

    @property
    def cross_worker_share(self) -> float:
        return self.cross_worker_batches / self.engine_calls if self.engine_calls else 0.0

    @property
    def calls_per_row(self) -> float:
        return self.engine_calls / self.rows if self.rows else 0.0


@dataclass
class SchedSweepResult:
    num_workers: int
    flush_policy: str
    flush_timeout_us: Optional[float]
    points: List[SchedSweepPoint]
    num_replicas: int = 1
    routing: str = ROUTING_ROUND_ROBIN

    def point(self, scheduler: str, leaf_batch: int) -> SchedSweepPoint:
        for point in self.points:
            if point.scheduler == scheduler and point.leaf_batch == leaf_batch:
                return point
        raise KeyError(f"no sweep point for scheduler={scheduler!r}, leaf_batch={leaf_batch}")

    def call_reduction(self, leaf_batch: int) -> float:
        """Engine calls per evaluated row: sequential over event-driven.

        Normalised per row because cross-worker coalescing perturbs network
        outputs at the ulp level, so trajectories (and row counts) can
        differ slightly between the two schedulers."""
        sequential = self.point(SCHEDULER_SEQUENTIAL, leaf_batch)
        event = self.point(SCHEDULER_EVENT, leaf_batch)
        return sequential.calls_per_row / event.calls_per_row if event.calls_per_row else 0.0

    def raw_call_reduction(self, leaf_batch: int) -> float:
        sequential = self.point(SCHEDULER_SEQUENTIAL, leaf_batch)
        event = self.point(SCHEDULER_EVENT, leaf_batch)
        return sequential.engine_calls / event.engine_calls if event.engine_calls else 0.0

    def report(self) -> str:
        header = (f"{'scheduler':>10} {'leaf_batch':>10} {'engine calls':>12} "
                  f"{'mean batch':>10} {'occupancy':>9} {'x-worker %':>10} "
                  f"{'queue delay':>11} {'span (s)':>9} {'moves':>6}")
        policy = self.flush_policy
        if self.flush_timeout_us is not None:
            policy += f" (timeout {self.flush_timeout_us:.0f}us)"
        replicas = ("one shared inference replica" if self.num_replicas == 1 else
                    f"{self.num_replicas} inference replicas ({self.routing} routing)")
        lines = [
            f"Scheduler sweep: {self.num_workers} self-play workers, "
            f"{replicas}, flush policy {policy}",
            header,
        ]
        for point in self.points:
            delay = (f"{point.mean_queue_delay_us:>9.1f}us"
                     if point.scheduler == SCHEDULER_EVENT else f"{'-':>11}")
            lines.append(
                f"{point.scheduler:>10} {point.leaf_batch:>10d} {point.engine_calls:>12d} "
                f"{point.mean_batch_rows:>10.2f} {point.mean_occupancy:>9.1%} "
                f"{100.0 * point.cross_worker_share:>9.1f}% "
                f"{delay} {point.span_us / 1e6:>9.3f} {point.moves:>6d}")
            if self.num_replicas > 1:
                # Per-replica utilisation / routed-batch counts so routing
                # imbalance is visible at a glance (zip tolerates points
                # constructed without the per-replica columns).
                per_replica = zip(point.routing_decisions, point.replica_calls,
                                  point.replica_utilisation)
                for index, (routed, calls, util) in enumerate(per_replica):
                    lines.append(
                        f"{'':>21} replica_{index}: routed={routed:<4d} "
                        f"calls={calls:<4d} utilisation={util:.1%}")
        best = max(point.leaf_batch for point in self.points)
        event = self.point(SCHEDULER_EVENT, best)
        lines.append(
            f"event-driven at leaf_batch={best}: {self.call_reduction(best):.1f}x fewer engine "
            f"calls per row than the sequential scheduler "
            f"({self.raw_call_reduction(best):.1f}x fewer total), "
            f"{100.0 * event.cross_worker_share:.1f}% of batches cross-worker, "
            f"mean occupancy {event.mean_occupancy:.1%}")
        lines.append(
            "note: the event-driven span includes replica queueing delay the "
            "sequential model does not charge (its workers never contend for "
            "the shared replica)")
        return "\n".join(lines)


def run_sched_sweep(
    leaf_batches: Sequence[int] = DEFAULT_SCHED_LEAF_BATCHES,
    *,
    num_workers: int = DEFAULT_SCHED_WORKERS,
    board_size: int = 5,
    num_simulations: int = 16,
    games_per_worker: int = 1,
    max_moves: Optional[int] = 10,
    hidden: tuple = (32, 32),
    inference_max_batch: int = 64,
    num_replicas: int = 1,
    routing: str = ROUTING_ROUND_ROBIN,
    flush_policy: str = FLUSH_MAX_BATCH,
    flush_timeout_us: Optional[float] = None,
    seed: int = 0,
) -> SchedSweepResult:
    """Run the pool under both schedulers for every leaf_batch value."""
    if not leaf_batches:
        raise ValueError("leaf_batches must not be empty")
    points: List[SchedSweepPoint] = []
    for leaf_batch in leaf_batches:
        for scheduler in (SCHEDULER_SEQUENTIAL, SCHEDULER_EVENT):
            pool = SelfPlayPool(
                num_workers,
                board_size=board_size,
                num_simulations=num_simulations,
                games_per_worker=games_per_worker,
                max_moves=max_moves,
                hidden=hidden,
                profile=False,
                seed=seed,
                batched_inference=True,
                leaf_batch=leaf_batch,
                inference_max_batch=inference_max_batch,
                num_replicas=num_replicas,
                routing=routing,
                scheduler=scheduler,
                flush_policy=flush_policy,
                flush_timeout_us=flush_timeout_us,
            )
            pool.run()
            service = pool.inference_service
            stats = service.stats
            span_us = pool.collection_span_us()
            points.append(SchedSweepPoint(
                scheduler=scheduler,
                leaf_batch=leaf_batch,
                engine_calls=stats.engine_calls,
                rows=stats.rows,
                cross_worker_batches=stats.cross_worker_batches,
                mean_batch_rows=stats.mean_batch_rows,
                mean_occupancy=stats.mean_occupancy,
                mean_queue_delay_us=stats.mean_queue_delay_us,
                moves=sum(run.result.moves for run in pool.runs),
                span_us=span_us,
                replica_calls=[r.stats.engine_calls for r in service.replicas],
                replica_utilisation=service.replica_utilisation(span_us),
                routing_decisions=service.routing_decisions(),
            ))
    return SchedSweepResult(num_workers=num_workers, flush_policy=flush_policy,
                            flush_timeout_us=flush_timeout_us, points=points,
                            num_replicas=num_replicas, routing=routing)
