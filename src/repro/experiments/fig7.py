"""Figure 7 (Appendix B.1): simulator survey with a fixed algorithm (PPO).

The same top-performing algorithm (PPO) is trained on simulators spanning the
low / medium / high complexity classes of Figure 6; for each simulator we
regenerate total training time, the percentage breakdown and the
simulation-bound fraction (finding F.12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.costmodel import CostModelConfig
from ..profiler import report as report_mod
from ..sim.registry import SIMULATOR_COMPLEXITY
from .common import DEFAULT_TIMESTEPS, WorkloadRun, WorkloadSpec, run_workload

#: Simulators surveyed in Figure 7, ordered as in the paper's x-axis.
SURVEY_SIMULATORS = ["AirLearning", "Ant", "HalfCheetah", "Hopper", "Pong", "Walker2D"]

#: Per-simulator tuned hyperparameters (rl-baselines-zoo style).  The paper
#: notes that the tuned (PPO, Pong) configuration performs few gradient
#: updates relative to simulator invocations, which is why Pong is so
#: simulation-bound despite being a cheap simulator.
SIMULATOR_OVERRIDES = {
    "Pong": {"n_steps": 128, "n_epochs": 1},
    "AirLearning": {"n_steps": 64, "n_epochs": 1},
}


@dataclass
class Fig7Result:
    algo: str
    timesteps: int
    runs: Dict[str, WorkloadRun] = field(default_factory=dict)

    def total_times_sec(self) -> Dict[str, float]:
        return {sim: run.analysis.total_time_sec() for sim, run in self.runs.items()}

    def simulation_fraction(self, simulator: str) -> float:
        return self.runs[simulator].analysis.operation_fraction("simulation")

    def gpu_fraction(self, simulator: str) -> float:
        return self.runs[simulator].analysis.gpu_fraction()

    def percent_breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for sim, run in self.runs.items():
            breakdown = run.analysis.category_breakdown_us()
            total = sum(sum(cats.values()) for cats in breakdown.values())
            out[sim] = {op: {cat: 100.0 * v / total for cat, v in cats.items()}
                        for op, cats in breakdown.items()}
        return out

    def report(self) -> str:
        analyses = {sim: run.analysis for sim, run in self.runs.items()}
        lines = [
            f"Figure 7: simulator survey with {self.algo}",
            report_mod.total_time_table(analyses),
            "",
            report_mod.breakdown_table(analyses, as_percent=True),
            "",
            "Simulation-bound fraction per simulator:",
        ]
        for sim in self.runs:
            complexity = SIMULATOR_COMPLEXITY.get(sim, "?")
            lines.append(f"  {sim:12s} ({complexity:6s} complexity): {100.0 * self.simulation_fraction(sim):5.1f}%")
        return "\n".join(lines)


def run_fig7(
    *,
    algo: str = "PPO2",
    simulators: Optional[List[str]] = None,
    timesteps: int = DEFAULT_TIMESTEPS,
    seed: int = 0,
    cost_config: Optional[CostModelConfig] = None,
) -> Fig7Result:
    """Run the simulator survey of Figure 7."""
    simulators = simulators if simulators is not None else list(SURVEY_SIMULATORS)
    result = Fig7Result(algo=algo, timesteps=timesteps)
    for simulator in simulators:
        overrides = SIMULATOR_OVERRIDES.get(simulator, {})
        spec = WorkloadSpec(algo=algo, simulator=simulator, total_timesteps=timesteps, seed=seed,
                            config_overrides=dict(overrides))
        result.runs[simulator] = run_workload(spec, cost_config=cost_config,
                                              use_ground_truth_calibration=True)
    return result
