"""Serve sweep: the networked inference tier under open-loop overload.

PRs 2–5 measured the *closed-loop* harness: lock-step self-play workers that
submit a leaf only after the previous one returns, so offered load can never
exceed service capacity.  The :mod:`repro.serving` tier faces the opposite
regime — open-loop arrivals that keep coming however far behind the server
falls — and this sweep measures its defences over **arrival rate (as a
multiple of measured capacity) × overload policy × replica count**.

For every grid point it runs thousands of Poisson (or bursty) arrivals from
``num_clients`` synthetic clients against an
:class:`~repro.serving.server.InferenceServer` and reports the SLO picture:
goodput, shed/retry/timeout rates, and p50/p95/p99 queue delay and
end-to-end latency.  The ``none`` policy point (admission off, window
unbounded) is the control: its tail delay grows with the backlog, which is
exactly the divergence `benchmarks/test_bench_serving.py` pins against the
bounded policies.

Arrival rates are expressed as capacity multiples so the sweep stays
meaningful if the cost model's constants change: capacity is measured first
with a deterministic probe (:func:`estimate_capacity_rows_per_sec`), then
``rate = multiplier x capacity x replicas``.

Everything — arrivals, client choice, feature rows, batch durations — is a
pure function of ``seed``, so the rendered report is byte-identical across
runs of the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..minigo.selfplay import PolicyValueNet
from ..serving import (
    BurstyProcess,
    InferenceServer,
    LoadGenerator,
    PoissonProcess,
    RetryPolicy,
    SLOReport,
    build_slo_report,
    estimate_capacity_rows_per_sec,
    run_serving,
)

#: Arrival rates as multiples of measured single-replica serving capacity.
DEFAULT_SERVE_MULTIPLIERS = (0.5, 1.0, 2.0)
#: Overload policies swept; ``none`` is the no-admission control (unbounded
#: window, everything admitted) the bounded policies are compared against.
DEFAULT_SERVE_OVERLOADS = ("none", "block", "shed-newest", "shed-oldest", "deadline-drop")
DEFAULT_SERVE_REPLICAS = (1, 2)
DEFAULT_SERVE_ARRIVAL = "poisson"
SERVE_ARRIVALS = ("poisson", "bursty")

#: Server + traffic shape of the default sweep (and of the serving bench).
DEFAULT_SERVE_KWARGS = dict(
    board_size=5,
    hidden=(16,),
    max_batch=8,
    queue_capacity=16,
    flush_timeout_us=300.0,
    rate_burst=4.0,
    num_clients=256,
    request_deadline_us=3_000.0,
    horizon_us=30_000.0,
)


@dataclass
class ServeSweepPoint:
    """One (rate multiplier, overload policy, replicas) setting's SLO report."""

    multiplier: float
    rate_per_sec: float      #: offered arrival rate the multiplier resolves to
    num_replicas: int
    overload: str            #: an OVERLOAD_* policy, or "none" (admission off)
    slo: SLOReport


@dataclass
class ServeSweepResult:
    arrival: str
    board_size: int
    max_batch: int
    queue_capacity: int
    flush_timeout_us: float
    num_clients: int
    request_deadline_us: float
    horizon_us: float
    capacity_rows_per_sec: float  #: measured single-replica capacity
    points: List[ServeSweepPoint]
    cache_capacity: Optional[int] = None  #: admission-cache size (None = off)
    key_space: Optional[int] = None       #: keyed-workload span (None = keyless)

    def point(self, multiplier: float, overload: str,
              num_replicas: int) -> ServeSweepPoint:
        for point in self.points:
            if (point.multiplier == multiplier and point.overload == overload
                    and point.num_replicas == num_replicas):
                return point
        raise KeyError(f"no sweep point for multiplier={multiplier}, "
                       f"overload={overload!r}, replicas={num_replicas}")

    def report(self) -> str:
        header = (f"{'xcap':>5} {'repl':>4} {'overload':>13} {'offered/s':>10} "
                  f"{'goodput/s':>10} {'shed%':>6} {'hit%':>6} {'retry%':>6} "
                  f"{'late%':>6} {'avail%':>7} {'redisp':>6} {'blocked':>7} "
                  f"{'qdelay p50/p95/p99 us':>22} {'latency p99 us':>14}")
        cache_txt = ("cache off" if self.cache_capacity is None
                     else f"cache={self.cache_capacity}")
        keys_txt = ("keyless rows" if self.key_space is None
                    else f"key_space={self.key_space}")
        lines = [
            f"Serve sweep: {self.arrival} arrivals from {self.num_clients} clients, "
            f"board={self.board_size}, max_batch={self.max_batch}, "
            f"window={self.queue_capacity}, flush timeout {self.flush_timeout_us:.0f}us, "
            f"deadline {self.request_deadline_us:.0f}us, "
            f"horizon {self.horizon_us / 1e6:.4f}s, {cache_txt}, {keys_txt}",
            f"measured capacity: {self.capacity_rows_per_sec:.0f} rows/s per replica "
            f"(rates below are multiples of capacity x replicas)",
            header,
        ]
        for point in self.points:
            slo = point.slo
            delay = slo.client_queue_delay_us
            latency = slo.latency_us
            delay_txt = ("n/a" if delay is None else
                         "/".join(f"{delay[p]:.0f}" for p in (50.0, 95.0, 99.0)))
            latency_txt = "n/a" if latency is None else f"{latency[99.0]:.0f}"
            lines.append(
                f"{point.multiplier:>5.2f} {point.num_replicas:>4d} {point.overload:>13} "
                f"{slo.offered_rate_per_sec:>10.1f} {slo.goodput_per_sec:>10.1f} "
                f"{100.0 * slo.shed_fraction:>5.1f}% "
                f"{100.0 * slo.cache_hit_fraction:>5.1f}% "
                f"{100.0 * slo.retry_fraction:>5.1f}% "
                f"{100.0 * slo.timeout_fraction:>5.1f}% "
                f"{100.0 * slo.availability:>6.2f}% "
                f"{slo.redispatched_rows:>6d} {slo.blocked:>7d} "
                f"{delay_txt:>22} {latency_txt:>14}")
        lines.append(
            "note: 'none' admits everything into an unbounded window — its tail "
            "queue delay grows with the backlog; bounded policies shed or block "
            "instead, keeping admitted requests' delay within the window")
        return "\n".join(lines)


def run_serve_sweep(
    multipliers: Sequence[float] = DEFAULT_SERVE_MULTIPLIERS,
    *,
    overloads: Sequence[str] = DEFAULT_SERVE_OVERLOADS,
    replica_counts: Sequence[int] = DEFAULT_SERVE_REPLICAS,
    arrival: str = DEFAULT_SERVE_ARRIVAL,
    board_size: int = DEFAULT_SERVE_KWARGS["board_size"],
    hidden: tuple = DEFAULT_SERVE_KWARGS["hidden"],
    max_batch: int = DEFAULT_SERVE_KWARGS["max_batch"],
    queue_capacity: int = DEFAULT_SERVE_KWARGS["queue_capacity"],
    flush_timeout_us: float = DEFAULT_SERVE_KWARGS["flush_timeout_us"],
    rate_burst: float = DEFAULT_SERVE_KWARGS["rate_burst"],
    num_clients: int = DEFAULT_SERVE_KWARGS["num_clients"],
    request_deadline_us: float = DEFAULT_SERVE_KWARGS["request_deadline_us"],
    horizon_us: float = DEFAULT_SERVE_KWARGS["horizon_us"],
    retry: Optional[RetryPolicy] = None,
    cache_capacity: Optional[int] = None,
    key_space: Optional[int] = None,
    seed: int = 0,
) -> ServeSweepResult:
    """Run the serving tier over the (rate, overload, replicas) grid.

    ``key_space`` switches every client to the keyed workload (features a
    pure function of a per-request state key; see
    :func:`~repro.serving.client.key_features`) and ``cache_capacity``
    arms the server's admission cache on that key — ``key_space`` alone
    keeps the traffic identical while the server stays cacheless, which is
    the apples-to-apples control the cache sweep compares against.
    """
    if not multipliers or any(m <= 0 for m in multipliers):
        raise ValueError("multipliers must be positive")
    if arrival not in SERVE_ARRIVALS:
        raise ValueError(f"unknown arrival process {arrival!r}; expected one of {SERVE_ARRIVALS}")
    unknown = [o for o in overloads if o != "none" and o not in
               ("block", "shed-newest", "shed-oldest", "deadline-drop")]
    if unknown:
        raise ValueError(f"unknown overload policies {unknown}")
    feature_dim = 3 * board_size * board_size
    retry = retry if retry is not None else RetryPolicy()

    def make_network():
        return PolicyValueNet(board_size, hidden=hidden,
                              rng=np.random.default_rng(seed))

    capacity = estimate_capacity_rows_per_sec(
        make_network, feature_dim=feature_dim, max_batch=max_batch, seed=seed)
    points: List[ServeSweepPoint] = []
    for multiplier in multipliers:
        for num_replicas in replica_counts:
            rate = multiplier * capacity * num_replicas
            for overload in overloads:
                admission_off = overload == "none"
                server = InferenceServer(
                    make_network(),
                    max_batch=max_batch,
                    queue_capacity=None if admission_off else queue_capacity,
                    overload="shed-newest" if admission_off else overload,
                    rate_limit_per_sec=None,
                    rate_burst=rate_burst,
                    flush_policy="timeout",
                    flush_timeout_us=flush_timeout_us,
                    num_replicas=num_replicas,
                    seed=seed,
                    name=f"serve_{overload}",
                    keep_decision_log=False,
                    cache_capacity=cache_capacity)
                if arrival == "poisson":
                    process = PoissonProcess(rate)
                else:
                    # Same mean rate, modulated: calm at half, bursts at 3x.
                    process = BurstyProcess(0.5 * rate, 3.0 * rate,
                                            mean_calm_us=horizon_us / 6.0,
                                            mean_burst_us=horizon_us / 12.0)
                loadgen = LoadGenerator(process, num_clients,
                                        feature_dim=feature_dim, retry=retry,
                                        request_deadline_us=request_deadline_us,
                                        key_space=key_space,
                                        seed=seed)
                result = run_serving(server, loadgen, horizon_us)
                label = f"x{multiplier:g}/{overload}/r{num_replicas}"
                points.append(ServeSweepPoint(
                    multiplier=multiplier, rate_per_sec=rate,
                    num_replicas=num_replicas, overload=overload,
                    slo=build_slo_report(result, label=label)))
    return ServeSweepResult(
        arrival=arrival, board_size=board_size, max_batch=max_batch,
        queue_capacity=queue_capacity, flush_timeout_us=flush_timeout_us,
        num_clients=num_clients, request_deadline_us=request_deadline_us,
        horizon_us=horizon_us, capacity_rows_per_sec=capacity, points=points,
        cache_capacity=cache_capacity, key_space=key_space)
