"""Figure 4: RL framework comparison (TD3 and DDPG on Walker2D).

Regenerates, for each framework configuration of Table 1,

* the per-operation time breakdown by stack category (Figures 4a / 4b), and
* the language transitions per training iteration (Figures 4c / 4d).

The same algorithm, simulator and hyperparameters are used across framework
configurations, so differences are attributable to the execution model and
ML backend, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.costmodel import CostModelConfig
from ..profiler import report as report_mod
from ..rl.frameworks import REAGENT, STABLE_BASELINES, TABLE1, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER, FrameworkSpec
from .common import DEFAULT_TIMESTEPS, WorkloadRun, WorkloadSpec, run_workload

#: Framework configurations shown for each algorithm (Figure 4b omits ReAgent DDPG).
FRAMEWORKS_BY_ALGO: Dict[str, List[FrameworkSpec]] = {
    "TD3": [REAGENT, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER, STABLE_BASELINES],
    "DDPG": [TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER, STABLE_BASELINES],
}


@dataclass
class Fig4Result:
    """All runs for one algorithm's panel of Figure 4."""

    algo: str
    simulator: str
    timesteps: int
    runs: Dict[str, WorkloadRun] = field(default_factory=dict)

    # ------------------------------------------------------------- reductions
    def total_times_sec(self, *, corrected: bool = True) -> Dict[str, float]:
        return {label: run.analysis.total_time_sec(corrected=corrected) for label, run in self.runs.items()}

    def breakdown_sec(self, *, corrected: bool = True) -> Dict[str, Dict[str, Dict[str, float]]]:
        """framework label -> operation -> category -> seconds."""
        return {label: run.analysis.category_breakdown_sec(corrected=corrected)
                for label, run in self.runs.items()}

    def transitions_per_iteration(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """framework label -> operation -> transition category -> per-iteration count."""
        return {label: run.analysis.transitions_per_iteration(self.timesteps)
                for label, run in self.runs.items()}

    def gpu_fractions(self) -> Dict[str, float]:
        return {label: run.analysis.gpu_fraction() for label, run in self.runs.items()}

    def operation_category_sec(self, label: str, operation: str, category: str,
                               *, corrected: bool = True) -> float:
        return self.breakdown_sec(corrected=corrected)[label].get(operation, {}).get(category, 0.0)

    def report(self) -> str:
        analyses = {label: run.analysis for label, run in self.runs.items()}
        sections = [
            f"Figure 4 ({self.algo}, {self.simulator}): training time breakdown",
            report_mod.total_time_table(analyses),
            "",
            report_mod.breakdown_table(analyses),
            "",
            f"Figure 4 ({self.algo}, {self.simulator}): language transitions per iteration",
            report_mod.transitions_table(analyses, self.timesteps),
        ]
        return "\n".join(sections)


def run_fig4(
    algo: str = "TD3",
    *,
    simulator: str = "Walker2D",
    timesteps: int = DEFAULT_TIMESTEPS,
    seed: int = 0,
    frameworks: Optional[List[FrameworkSpec]] = None,
    cost_config: Optional[CostModelConfig] = None,
) -> Fig4Result:
    """Run one panel of Figure 4 (``algo`` is ``"TD3"`` for 4a/4c, ``"DDPG"`` for 4b/4d)."""
    algo = algo.upper()
    if frameworks is None:
        frameworks = FRAMEWORKS_BY_ALGO.get(algo, TABLE1)
    result = Fig4Result(algo=algo, simulator=simulator, timesteps=timesteps)
    for spec in frameworks:
        workload = WorkloadSpec(algo=algo, simulator=simulator, framework=spec,
                                total_timesteps=timesteps, seed=seed)
        result.runs[spec.label] = run_workload(workload, cost_config=cost_config,
                                               use_ground_truth_calibration=True)
    return result
