"""Replica sweep: sharded inference scaling over replicas × workers × routing.

PR 3's event-driven pool batched leaf evaluations across workers, but every
batch still serialized through a single model replica's ``free_us`` horizon —
the virtual-time model's picture of one inference GPU saturating.  The
sharded :class:`~repro.minigo.inference.InferenceService` fans batches out
across ``num_replicas`` replicas (each pinned to its own device/system)
under a pluggable routing policy, and the replica-aware
:class:`~repro.minigo.workers.PoolScheduler` serves full batches eagerly so
free replicas overlap in-flight work with still-running workers.

This sweep measures that scale-out on an **inference-bound** configuration
(tree-search Python work priced near zero, so the replica horizon is the
bottleneck — the regime where a real deployment adds GPUs): for each
(workers, replicas, routing) point it reports the virtual collection span,
the speedup over the single-replica baseline with the same worker count,
and the per-replica utilisation / routed-batch counts that make routing
imbalance visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hw.costmodel import CostModelConfig
from ..minigo.inference import FLUSH_TIMEOUT, ROUTING_ROUND_ROBIN
from ..minigo.workers import SCHEDULER_EVENT, SelfPlayPool

#: The grid the paper-style report covers.
DEFAULT_REPLICA_COUNTS = (1, 2, 4)
DEFAULT_REPLICA_ROUTINGS = ("round-robin", "least-loaded", "sticky")
DEFAULT_REPLICA_WORKERS = (4, 8)

#: Pool shape of the default sweep (and of ``benchmarks/test_bench_replicas.py``).
DEFAULT_REPLICA_POOL_KWARGS = dict(
    board_size=5,
    num_simulations=32,
    games_per_worker=1,
    max_moves=8,
    hidden=(64, 64),
    leaf_batch=8,
    inference_max_batch=8,
    flush_policy=FLUSH_TIMEOUT,
    flush_timeout_us=50.0,
)


def inference_bound_cost_config() -> CostModelConfig:
    """Cost model that makes self-play inference-bound.

    Interpreted-Python tree-search work is priced at (virtually) zero while
    backend dispatch, CUDA API and kernel costs keep their defaults, so the
    collection span is dominated by the inference service's replica
    horizons — the regime in which sharding the model across GPUs pays off.
    """
    return CostModelConfig(python_op_us=0.001)


@dataclass
class ReplicaSweepPoint:
    """One (workers, replicas, routing) setting's measurements."""

    num_workers: int
    num_replicas: int
    routing: str
    engine_calls: int
    rows: int
    mean_batch_rows: float
    mean_occupancy: float
    cross_worker_share: float
    mean_queue_delay_us: float
    span_us: float             #: parallel collection span (slowest worker)
    moves: int
    eager_serves: int          #: full-batch serves issued while workers ran
    replica_calls: List[int]           #: engine calls per replica (index-aligned)
    replica_rows: List[int]            #: rows per replica
    replica_occupancy: List[float]     #: mean batch fill per replica
    replica_utilisation: List[float]   #: busy fraction of the span per replica
    routing_decisions: List[int]       #: batches the policy routed per replica


@dataclass
class ReplicaSweepResult:
    leaf_batch: int
    inference_max_batch: int
    flush_policy: str
    flush_timeout_us: Optional[float]
    points: List[ReplicaSweepPoint]

    def point(self, num_workers: int, num_replicas: int, routing: str) -> ReplicaSweepPoint:
        for point in self.points:
            if (point.num_workers == num_workers and point.num_replicas == num_replicas
                    and point.routing == routing):
                return point
        raise KeyError(f"no sweep point for workers={num_workers}, "
                       f"replicas={num_replicas}, routing={routing!r}")

    def speedup(self, num_workers: int, num_replicas: int, routing: str) -> float:
        """Collection-span improvement over the 1-replica baseline (same workers)."""
        baseline = self.point(num_workers, 1, ROUTING_ROUND_ROBIN)
        point = self.point(num_workers, num_replicas, routing)
        return baseline.span_us / point.span_us if point.span_us else 0.0

    def report(self) -> str:
        policy = self.flush_policy
        if self.flush_timeout_us is not None:
            policy += f" (timeout {self.flush_timeout_us:.0f}us)"
        header = (f"{'workers':>7} {'replicas':>8} {'routing':>12} {'calls':>6} "
                  f"{'mean batch':>10} {'occupancy':>9} {'x-worker %':>10} "
                  f"{'queue delay':>11} {'span (ms)':>9} {'speedup':>7}")
        lines = [
            f"Replica sweep: sharded inference service, leaf_batch={self.leaf_batch}, "
            f"max_batch={self.inference_max_batch}, flush policy {policy}, "
            f"inference-bound cost model",
            header,
        ]
        for point in self.points:
            speedup = self.speedup(point.num_workers, point.num_replicas, point.routing)
            lines.append(
                f"{point.num_workers:>7d} {point.num_replicas:>8d} {point.routing:>12} "
                f"{point.engine_calls:>6d} {point.mean_batch_rows:>10.2f} "
                f"{point.mean_occupancy:>9.1%} {100.0 * point.cross_worker_share:>9.1f}% "
                f"{point.mean_queue_delay_us:>9.1f}us {point.span_us / 1e3:>9.3f} "
                f"{speedup:>6.2f}x")
            # Per-replica utilisation and routing decisions: imbalance shows
            # up as skewed routed/util columns (satellite requirement).
            for index in range(point.num_replicas):
                lines.append(
                    f"{'':>16} replica_{index}: routed={point.routing_decisions[index]:<4d} "
                    f"calls={point.replica_calls[index]:<4d} rows={point.replica_rows[index]:<5d} "
                    f"occupancy={point.replica_occupancy[index]:.1%} "
                    f"utilisation={point.replica_utilisation[index]:.1%}")
        best_workers = max(point.num_workers for point in self.points)
        best = max((p for p in self.points if p.num_workers == best_workers),
                   key=lambda p: self.speedup(p.num_workers, p.num_replicas, p.routing))
        lines.append(
            f"best at {best_workers} workers: {best.num_replicas} replicas / {best.routing} — "
            f"{self.speedup(best.num_workers, best.num_replicas, best.routing):.2f}x shorter "
            f"collection span than one replica, mean per-replica utilisation "
            f"{sum(best.replica_utilisation) / len(best.replica_utilisation):.1%}")
        lines.append(
            "note: spans include the queueing delay batches pay on their routed "
            "replica's horizon; eager full-batch serves let free replicas start "
            "while other workers still run")
        return "\n".join(lines)


def run_replica_sweep(
    replica_counts: Sequence[int] = DEFAULT_REPLICA_COUNTS,
    *,
    worker_counts: Sequence[int] = DEFAULT_REPLICA_WORKERS,
    routings: Sequence[str] = DEFAULT_REPLICA_ROUTINGS,
    board_size: int = DEFAULT_REPLICA_POOL_KWARGS["board_size"],
    num_simulations: int = DEFAULT_REPLICA_POOL_KWARGS["num_simulations"],
    games_per_worker: int = DEFAULT_REPLICA_POOL_KWARGS["games_per_worker"],
    max_moves: Optional[int] = DEFAULT_REPLICA_POOL_KWARGS["max_moves"],
    hidden: tuple = DEFAULT_REPLICA_POOL_KWARGS["hidden"],
    leaf_batch: int = DEFAULT_REPLICA_POOL_KWARGS["leaf_batch"],
    inference_max_batch: int = DEFAULT_REPLICA_POOL_KWARGS["inference_max_batch"],
    flush_policy: str = DEFAULT_REPLICA_POOL_KWARGS["flush_policy"],
    flush_timeout_us: Optional[float] = DEFAULT_REPLICA_POOL_KWARGS["flush_timeout_us"],
    cost_config: Optional[CostModelConfig] = None,
    seed: int = 0,
) -> ReplicaSweepResult:
    """Run the event-driven pool over the (workers, replicas, routing) grid.

    Every point with more than one replica is run under every routing
    policy; the single-replica baseline is run once per worker count (all
    routing policies degenerate to replica 0 there, bit-for-bit).
    """
    if not replica_counts:
        raise ValueError("replica_counts must not be empty")
    if 1 not in replica_counts:
        replica_counts = (1, *replica_counts)
    if not worker_counts or not routings:
        raise ValueError("worker_counts and routings must not be empty")
    cost_config = cost_config if cost_config is not None else inference_bound_cost_config()
    points: List[ReplicaSweepPoint] = []
    for num_workers in worker_counts:
        for num_replicas in sorted(set(replica_counts)):
            for routing in ((ROUTING_ROUND_ROBIN,) if num_replicas == 1 else tuple(routings)):
                pool = SelfPlayPool(
                    num_workers,
                    board_size=board_size,
                    num_simulations=num_simulations,
                    games_per_worker=games_per_worker,
                    max_moves=max_moves,
                    hidden=hidden,
                    profile=False,
                    cost_config=cost_config,
                    seed=seed,
                    batched_inference=True,
                    leaf_batch=leaf_batch,
                    inference_max_batch=inference_max_batch,
                    num_replicas=num_replicas,
                    routing=routing,
                    scheduler=SCHEDULER_EVENT,
                    flush_policy=flush_policy,
                    flush_timeout_us=flush_timeout_us,
                )
                pool.run()
                service = pool.inference_service
                span_us = pool.collection_span_us()
                points.append(ReplicaSweepPoint(
                    num_workers=num_workers,
                    num_replicas=num_replicas,
                    routing=routing,
                    engine_calls=service.stats.engine_calls,
                    rows=service.stats.rows,
                    mean_batch_rows=service.stats.mean_batch_rows,
                    mean_occupancy=service.stats.mean_occupancy,
                    cross_worker_share=service.stats.cross_worker_share,
                    mean_queue_delay_us=service.stats.mean_queue_delay_us,
                    span_us=span_us,
                    moves=sum(run.result.moves for run in pool.runs),
                    eager_serves=pool.pool_scheduler.stats.eager_serves,
                    replica_calls=[r.stats.engine_calls for r in service.replicas],
                    replica_rows=[r.stats.rows for r in service.replicas],
                    replica_occupancy=[r.stats.mean_occupancy for r in service.replicas],
                    replica_utilisation=service.replica_utilisation(span_us),
                    routing_decisions=service.routing_decisions(),
                ))
    return ReplicaSweepResult(leaf_batch=leaf_batch, inference_max_batch=inference_max_batch,
                              flush_policy=flush_policy, flush_timeout_us=flush_timeout_us,
                              points=points)
