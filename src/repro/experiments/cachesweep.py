"""Cache sweep: engine work saved by the evaluation cache, on/off across a grid.

ISSUE 9's evaluation cache spans three layers — the per-search MCTS
transposition table, the service-side weight-versioned LRU with in-batch
dedupe, and admission-time hits in the serving tier.  This sweep measures
the middle layer where the engine calls actually disappear: for every
(workers x replicas x evaluation games) cell it runs one full Minigo
training round twice from identical weights — cache off (the bit-for-bit
baseline) and cache on — and reports the engine work each phase avoided:

* **self-play** — the pinned wall-clock pool shape: hot openings repeat
  across workers, so the save shows up as fewer *engine calls* (rows shaved
  off a wave rarely delete the wave, but whole cached waves delete calls);
* **evaluation** — all games now run concurrently under one scheduler
  (games alternate colors with period 2, and noise-free argmax play makes
  game N replay game N-2 exactly), so the save shows up as *engine rows*:
  with 4 games, roughly half the round's rows are answered from cache.

The candidate's win count must be identical on/off in every cell — the
cache returns bitwise-equal rows, so it cannot change a game — and the
sweep marks each cell accordingly (``benchmarks/test_bench_cache.py``
asserts it, plus the reduction floors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..minigo.training import MinigoConfig, MinigoTraining

DEFAULT_CACHE_WORKERS = (4, 8)
DEFAULT_CACHE_REPLICAS = (1, 2)
DEFAULT_CACHE_EVAL_GAMES = (2, 4)

#: Round shape shared by every cell (and by the quick CI smoke).
DEFAULT_CACHE_KWARGS = dict(
    board_size=5,
    num_simulations=8,
    games_per_worker=1,
    max_moves=8,
    hidden=(16,),
    leaf_batch=4,
    sgd_steps=2,
    cache_capacity=4096,
)


@dataclass
class CacheSweepPoint:
    """One (workers, replicas, evaluation games) cell, cache off vs on."""

    num_workers: int
    num_replicas: int
    evaluation_games: int
    # Self-play phase (the shared batched service).
    selfplay_calls_off: int
    selfplay_calls_on: int
    selfplay_rows_off: int
    selfplay_rows_on: int
    selfplay_cache_hits: int
    selfplay_dedupe_rows: int
    # Evaluation phase (concurrent games, one service).
    eval_calls_off: int
    eval_calls_on: int
    eval_rows_off: int
    eval_rows_on: int
    eval_cache_hits: int
    eval_dedupe_rows: int
    # Outcome parity: cached rows are bitwise-equal, so wins must match.
    wins_off: int
    wins_on: int

    @property
    def selfplay_call_reduction(self) -> float:
        return self.selfplay_calls_off / max(self.selfplay_calls_on, 1)

    @property
    def selfplay_row_reduction(self) -> float:
        return self.selfplay_rows_off / max(self.selfplay_rows_on, 1)

    @property
    def eval_call_reduction(self) -> float:
        return self.eval_calls_off / max(self.eval_calls_on, 1)

    @property
    def eval_row_reduction(self) -> float:
        return self.eval_rows_off / max(self.eval_rows_on, 1)

    @property
    def wins_match(self) -> bool:
        return self.wins_off == self.wins_on


@dataclass
class CacheSweepResult:
    board_size: int
    num_simulations: int
    max_moves: int
    leaf_batch: int
    cache_capacity: int
    transposition: bool
    points: List[CacheSweepPoint]

    def point(self, num_workers: int, num_replicas: int,
              evaluation_games: int) -> CacheSweepPoint:
        for point in self.points:
            if (point.num_workers == num_workers
                    and point.num_replicas == num_replicas
                    and point.evaluation_games == evaluation_games):
                return point
        raise KeyError(f"no sweep point for workers={num_workers}, "
                       f"replicas={num_replicas}, eval_games={evaluation_games}")

    def report(self) -> str:
        header = (f"{'work':>4} {'repl':>4} {'games':>5} "
                  f"{'selfplay calls':>16} {'red':>6} "
                  f"{'eval rows':>14} {'red':>6} "
                  f"{'hits':>5} {'dedupe':>6} {'wins':>7}")
        lines = [
            "Cache sweep: evaluation cache off vs on, identical seeds and weights",
            f"board={self.board_size}, sims={self.num_simulations}, "
            f"leaf_batch={self.leaf_batch}, max_moves={self.max_moves}, "
            f"capacity={self.cache_capacity}, "
            f"transposition={'on' if self.transposition else 'off'}",
            header,
        ]
        for p in self.points:
            wins = (f"{p.wins_off}={p.wins_on}" +
                    (" ok" if p.wins_match else " !!"))
            lines.append(
                f"{p.num_workers:>4d} {p.num_replicas:>4d} {p.evaluation_games:>5d} "
                f"{p.selfplay_calls_off:>7d} ->{p.selfplay_calls_on:>6d} "
                f"{p.selfplay_call_reduction:>5.2f}x "
                f"{p.eval_rows_off:>6d} ->{p.eval_rows_on:>5d} "
                f"{p.eval_row_reduction:>5.2f}x "
                f"{p.eval_cache_hits:>5d} {p.eval_dedupe_rows:>6d} {wins:>7}")
        lines.append(
            "note: self-play saves whole engine calls (cached waves never "
            "depart); the concurrent evaluation round saves engine rows — "
            "with games alternating colors at period 2, game N's argmax play "
            "replays game N-2 and its rows are answered from cache")
        return "\n".join(lines)


def run_cache_sweep(
    worker_counts: Sequence[int] = DEFAULT_CACHE_WORKERS,
    *,
    replica_counts: Sequence[int] = DEFAULT_CACHE_REPLICAS,
    evaluation_games: Sequence[int] = DEFAULT_CACHE_EVAL_GAMES,
    board_size: int = DEFAULT_CACHE_KWARGS["board_size"],
    num_simulations: int = DEFAULT_CACHE_KWARGS["num_simulations"],
    games_per_worker: int = DEFAULT_CACHE_KWARGS["games_per_worker"],
    max_moves: int = DEFAULT_CACHE_KWARGS["max_moves"],
    hidden: Tuple[int, ...] = DEFAULT_CACHE_KWARGS["hidden"],
    leaf_batch: int = DEFAULT_CACHE_KWARGS["leaf_batch"],
    sgd_steps: int = DEFAULT_CACHE_KWARGS["sgd_steps"],
    cache_capacity: int = DEFAULT_CACHE_KWARGS["cache_capacity"],
    transposition: bool = True,
    seed: int = 0,
) -> CacheSweepResult:
    """Run every cell of the grid with the cache off and on.

    Both runs of a cell start from bit-identical initial weights (a fresh
    :class:`~repro.minigo.training.MinigoTraining` each, same seed), so any
    divergence in win counts would be a real correctness bug, not drift.
    """
    if not worker_counts or any(w <= 0 for w in worker_counts):
        raise ValueError("worker_counts must be positive")
    if not replica_counts or any(r <= 0 for r in replica_counts):
        raise ValueError("replica_counts must be positive")
    if not evaluation_games or any(g <= 0 for g in evaluation_games):
        raise ValueError("evaluation_games must be positive")
    if cache_capacity <= 0:
        raise ValueError("cache_capacity must be positive")

    def run_round(num_workers: int, num_replicas: int, games: int, *,
                  cache: bool):
        config = MinigoConfig(
            num_workers=num_workers,
            board_size=board_size,
            num_simulations=num_simulations,
            games_per_worker=games_per_worker,
            max_moves=max_moves,
            hidden=hidden,
            sgd_steps=sgd_steps,
            evaluation_games=games,
            profile=False,
            seed=seed,
            batched_inference=True,
            leaf_batch=leaf_batch,
            num_replicas=num_replicas,
            scheduler="event",
            transposition=transposition if cache else False,
            cache_capacity=cache_capacity if cache else None,
        )
        return MinigoTraining(config).run_round()

    points: List[CacheSweepPoint] = []
    for num_workers in worker_counts:
        for num_replicas in replica_counts:
            for games in evaluation_games:
                off = run_round(num_workers, num_replicas, games, cache=False)
                on = run_round(num_workers, num_replicas, games, cache=True)
                sp_off, sp_on = off.selfplay_inference_stats, on.selfplay_inference_stats
                ev_off, ev_on = off.evaluation_inference_stats, on.evaluation_inference_stats
                points.append(CacheSweepPoint(
                    num_workers=num_workers,
                    num_replicas=num_replicas,
                    evaluation_games=games,
                    selfplay_calls_off=sp_off.engine_calls,
                    selfplay_calls_on=sp_on.engine_calls,
                    selfplay_rows_off=sp_off.rows,
                    selfplay_rows_on=sp_on.rows,
                    selfplay_cache_hits=sp_on.cache_hits,
                    selfplay_dedupe_rows=sp_on.dedupe_rows,
                    eval_calls_off=ev_off.engine_calls,
                    eval_calls_on=ev_on.engine_calls,
                    eval_rows_off=ev_off.rows,
                    eval_rows_on=ev_on.rows,
                    eval_cache_hits=ev_on.cache_hits,
                    eval_dedupe_rows=ev_on.dedupe_rows,
                    wins_off=off.candidate_wins,
                    wins_on=on.candidate_wins,
                ))
    return CacheSweepResult(
        board_size=board_size, num_simulations=num_simulations,
        max_moves=max_moves, leaf_batch=leaf_batch,
        cache_capacity=cache_capacity, transposition=transposition,
        points=points)
